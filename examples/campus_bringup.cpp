// Campus bring-up: the scenario the paper's introduction motivates — a
// large crowd of devices entering a field one after another (a campus,
// conference hall or disaster-relief staging area), configuring themselves
// with no infrastructure, then roaming at vehicle speed.
//
// Demonstrates: sequential arrivals at scale, cluster formation, QuorumSpace
// extension (§V-A), and the periodic vs upon-leave location-update schemes.
#include <cstdio>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/seed.hpp"
#include "harness/world.hpp"
#include "obs/trace_session.hpp"

using namespace qip;

namespace {

std::uint64_t g_seed = 2026;

struct RunResult {
  double configured = 0.0;
  double latency = 0.0;
  std::uint64_t movement_hops = 0;
  std::size_t heads = 0;
  double visible = 0.0;
  double own = 0.0;
};

RunResult run_campus(bool periodic_updates) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  wp.speed = 20.0;
  World world(wp, g_seed);

  QipParams qp;
  qp.pool_size = 1024;
  qp.periodic_location_update = periodic_updates;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();

  Driver driver(world, proto);
  driver.join(150);      // a building's worth of devices
  world.run_for(60.0);   // one minute of roaming

  RunResult r;
  r.configured = driver.configured_fraction();
  r.latency = driver.mean_config_latency();
  r.movement_hops = world.stats().of(Traffic::kMovement).hops;
  r.heads = proto.clusters().head_count();
  r.visible = proto.average_visible_space();
  r.own = proto.average_own_space();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  obs::TraceSession trace(obs::extract_trace_arg(argc, argv));
  g_seed = resolve_seed(/*fallback=*/2026, argc, argv);
  std::printf("Campus bring-up: 150 devices, 1 km^2, 20 m/s roaming\n\n");

  const RunResult periodic = run_campus(true);
  std::printf("[periodic location updates]\n");
  std::printf("  configured: %.1f%%   mean latency: %.2f hops\n",
              100.0 * periodic.configured, periodic.latency);
  std::printf("  cluster heads: %zu   visible/own IP space: %.1f/%.1f "
              "(x%.1f extension)\n",
              periodic.heads, periodic.visible, periodic.own,
              periodic.own > 0 ? periodic.visible / periodic.own : 0.0);
  std::printf("  movement traffic: %llu hops\n\n",
              static_cast<unsigned long long>(periodic.movement_hops));

  const RunResult uponleave = run_campus(false);
  std::printf("[upon-leave updates only]\n");
  std::printf("  configured: %.1f%%   mean latency: %.2f hops\n",
              100.0 * uponleave.configured, uponleave.latency);
  std::printf("  movement traffic: %llu hops  (periodic scheme used %llu)\n",
              static_cast<unsigned long long>(uponleave.movement_hops),
              static_cast<unsigned long long>(periodic.movement_hops));
  return 0;
}
