// Protocol face-off: runs all five implemented autoconfiguration protocols
// (QIP and the four baselines of §III) through the same scenario and prints
// a side-by-side comparison — a one-binary tour of the design space the
// paper surveys.
#include <cstdio>
#include <memory>

#include "baselines/boleng.hpp"
#include "baselines/buddy.hpp"
#include "baselines/ctree.hpp"
#include "baselines/dad.hpp"
#include "baselines/manetconf.hpp"
#include "baselines/pdad.hpp"
#include "baselines/weak_dad.hpp"
#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/seed.hpp"
#include "harness/world.hpp"
#include "util/table.hpp"

using namespace qip;

namespace {

std::uint64_t g_seed = 99;

struct Row {
  std::string name;
  double configured = 0.0;
  double latency = 0.0;
  double config_hops = 0.0;
  double upkeep_hops = 0.0;
};

template <typename MakeProto>
Row run_scenario(const std::string& name, MakeProto&& make) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  World world(wp, g_seed);
  auto proto = make(world);

  DriverOptions dopt;
  dopt.arrival_interval = 0.8;  // give slow protocols (DAD) room
  Driver driver(world, *proto, dopt);

  constexpr std::uint32_t kNodes = 80;
  PhaseMeter meter(world.stats());
  driver.join(kNodes);
  world.run_for(3.0);
  Row row;
  row.name = name;
  row.configured = driver.configured_fraction();
  row.latency = driver.mean_config_latency();
  row.config_hops =
      static_cast<double>(meter.hops(Traffic::kConfiguration)) / kNodes;

  meter.reset();
  world.run_for(20.0);  // steady state: upkeep only
  row.upkeep_hops = static_cast<double>(meter.protocol_hops()) / kNodes;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  g_seed = resolve_seed(/*fallback=*/99, argc, argv);
  std::printf("80 nodes join a 1 km^2 field (tr=150m, 20 m/s), then 20 s of "
              "steady state.\n\n");
  std::vector<Row> rows;
  rows.push_back(run_scenario("QIP (this paper)", [](World& w) {
    auto p = std::make_unique<QipEngine>(w.transport(), w.rng(), QipParams{});
    p->start_hello();
    return p;
  }));
  rows.push_back(run_scenario("MANETconf [1]", [](World& w) {
    return std::make_unique<ManetConf>(w.transport(), w.rng());
  }));
  rows.push_back(run_scenario("Buddy [2]", [](World& w) {
    auto p = std::make_unique<BuddyProtocol>(w.transport(), w.rng());
    p->start_sync();
    return p;
  }));
  rows.push_back(run_scenario("C-tree [3]", [](World& w) {
    auto p = std::make_unique<CTreeProtocol>(w.transport(), w.rng());
    p->start_updates();
    return p;
  }));
  rows.push_back(run_scenario("DAD [9]", [](World& w) {
    return std::make_unique<DadProtocol>(w.transport(), w.rng());
  }));
  rows.push_back(run_scenario("WeakDAD [11]", [](World& w) {
    auto p = std::make_unique<WeakDadProtocol>(w.transport(), w.rng());
    p->start_updates();
    return p;
  }));
  rows.push_back(run_scenario("PDAD [14]", [](World& w) {
    auto p = std::make_unique<PdadProtocol>(w.transport(), w.rng());
    p->start_routing();
    return p;
  }));
  rows.push_back(run_scenario("Boleng [10]", [](World& w) {
    auto p = std::make_unique<BolengProtocol>(w.transport(), w.rng());
    p->start_beacons();
    return p;
  }));

  TextTable table({"protocol", "configured%", "latency (hops)",
                   "config hops/node", "upkeep hops/node/20s"});
  for (const Row& r : rows) {
    table.add_row({r.name, format_double(100.0 * r.configured, 1),
                   format_double(r.latency, 2), format_double(r.config_hops, 1),
                   format_double(r.upkeep_hops, 1)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
