// Protocol face-off: runs all five implemented autoconfiguration protocols
// (QIP and the four baselines of §III) through the same scenario and prints
// a side-by-side comparison — a one-binary tour of the design space the
// paper surveys.
//
// Pass `--trace-dir DIR` to additionally record one structured trace per
// protocol (DIR/faceoff_<name>.trace.json, Perfetto-loadable) and print the
// qip-trace summary for each run.  The summaries use sim-time only, so the
// extra output is as deterministic as the comparison table.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <memory>

#include "baselines/boleng.hpp"
#include "baselines/buddy.hpp"
#include "baselines/ctree.hpp"
#include "baselines/dad.hpp"
#include "baselines/manetconf.hpp"
#include "baselines/pdad.hpp"
#include "baselines/weak_dad.hpp"
#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/seed.hpp"
#include "harness/world.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_recorder.hpp"
#include "obs/trace_session.hpp"
#include "util/table.hpp"

using namespace qip;

namespace {

std::uint64_t g_seed = 99;
std::string g_trace_dir;

struct Row {
  std::string name;
  double configured = 0.0;
  double latency = 0.0;
  double config_hops = 0.0;
  double upkeep_hops = 0.0;
  std::string trace_file;
  std::string trace_summary;
};

// "QIP (this paper)" -> "qip_this_paper", for use in a filename.
std::string slugify(const std::string& name) {
  std::string slug;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

// Strips `--trace-dir <dir>` from argv, mirroring obs::extract_trace_arg.
std::string extract_trace_dir(int& argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-dir") != 0) continue;
    std::string dir = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return dir;
  }
  return "";
}

template <typename MakeProto>
Row run_scenario(const std::string& name, MakeProto&& make) {
  obs::TraceSession trace;
  std::string trace_file;
  if (!g_trace_dir.empty()) {
    trace_file = g_trace_dir + "/faceoff_" + slugify(name) + ".trace.json";
    trace = obs::TraceSession(trace_file);
  }
  // Fresh metric values per protocol so ProfileScope histograms and exported
  // counters describe this run alone (handles stay valid across resets).
  obs::process_metrics().reset_values();
  WorldParams wp;
  wp.transmission_range = 150.0;
  World world(wp, g_seed);
  auto proto = make(world);

  DriverOptions dopt;
  dopt.arrival_interval = 0.8;  // give slow protocols (DAD) room
  Driver driver(world, *proto, dopt);

  constexpr std::uint32_t kNodes = 80;
  PhaseMeter meter(world.stats());
  driver.join(kNodes);
  world.run_for(3.0);
  Row row;
  row.name = name;
  row.configured = driver.configured_fraction();
  row.latency = driver.mean_config_latency();
  row.config_hops =
      static_cast<double>(meter.hops(Traffic::kConfiguration)) / kNodes;

  meter.reset();
  world.run_for(20.0);  // steady state: upkeep only
  row.upkeep_hops = static_cast<double>(meter.protocol_hops()) / kNodes;

  if (trace.active()) {
    // Summarize from the live ring before dumping: identical numbers to
    // `qip-trace summary <file>`, minus the nondeterministic wall section.
    const auto parsed = obs::to_parsed(obs::process_recorder().events());
    row.trace_summary =
        obs::render_summary(obs::summarize(parsed), /*include_wall=*/false);
    row.trace_file = trace_file;
    trace.dump();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  g_trace_dir = extract_trace_dir(argc, argv);
  g_seed = resolve_seed(/*fallback=*/99, argc, argv);
  std::printf("80 nodes join a 1 km^2 field (tr=150m, 20 m/s), then 20 s of "
              "steady state.\n\n");
  std::vector<Row> rows;
  rows.push_back(run_scenario("QIP (this paper)", [](World& w) {
    auto p = std::make_unique<QipEngine>(w.transport(), w.rng(), QipParams{});
    p->start_hello();
    return p;
  }));
  rows.push_back(run_scenario("MANETconf [1]", [](World& w) {
    return std::make_unique<ManetConf>(w.transport(), w.rng());
  }));
  rows.push_back(run_scenario("Buddy [2]", [](World& w) {
    auto p = std::make_unique<BuddyProtocol>(w.transport(), w.rng());
    p->start_sync();
    return p;
  }));
  rows.push_back(run_scenario("C-tree [3]", [](World& w) {
    auto p = std::make_unique<CTreeProtocol>(w.transport(), w.rng());
    p->start_updates();
    return p;
  }));
  rows.push_back(run_scenario("DAD [9]", [](World& w) {
    return std::make_unique<DadProtocol>(w.transport(), w.rng());
  }));
  rows.push_back(run_scenario("WeakDAD [11]", [](World& w) {
    auto p = std::make_unique<WeakDadProtocol>(w.transport(), w.rng());
    p->start_updates();
    return p;
  }));
  rows.push_back(run_scenario("PDAD [14]", [](World& w) {
    auto p = std::make_unique<PdadProtocol>(w.transport(), w.rng());
    p->start_routing();
    return p;
  }));
  rows.push_back(run_scenario("Boleng [10]", [](World& w) {
    auto p = std::make_unique<BolengProtocol>(w.transport(), w.rng());
    p->start_beacons();
    return p;
  }));

  TextTable table({"protocol", "configured%", "latency (hops)",
                   "config hops/node", "upkeep hops/node/20s"});
  for (const Row& r : rows) {
    table.add_row({r.name, format_double(100.0 * r.configured, 1),
                   format_double(r.latency, 2), format_double(r.config_hops, 1),
                   format_double(r.upkeep_hops, 1)});
  }
  std::printf("%s", table.render().c_str());

  if (!g_trace_dir.empty()) {
    for (const Row& r : rows) {
      std::printf("\n=== %s (trace: %s) ===\n%s", r.name.c_str(),
                  r.trace_file.c_str(), r.trace_summary.c_str());
    }
  }
  return 0;
}
