// Disaster recovery: mass abrupt failures and address reclamation (§IV-D,
// §VI-D.2, §VI-E).
//
// A 120-node network loses 30% of its members at once — batteries die,
// radios are destroyed.  The run shows (1) how much IP state survives thanks
// to QDSet replication, (2) quorum adjustment shrinking around the dead
// heads, and (3) local address reclamation returning the leaked space to
// service, after which new arrivals configure normally again.
#include <cstdio>
#include <set>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/seed.hpp"
#include "harness/world.hpp"
#include "obs/trace_session.hpp"

using namespace qip;

int main(int argc, char** argv) {
  obs::TraceSession trace(obs::extract_trace_arg(argc, argv));
  WorldParams wp;
  wp.transmission_range = 150.0;
  wp.speed = 5.0;  // survivors move slowly
  World world(wp, resolve_seed(/*fallback=*/1234, argc, argv));

  QipParams qp;
  qp.pool_size = 1024;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();

  Driver driver(world, proto);
  std::printf("Building a 120-node network...\n");
  driver.join(120);
  world.run_for(5.0);
  std::printf("  configured: %.1f%%, heads: %zu, avg |QDSet|: %.2f\n\n",
              100.0 * driver.configured_fraction(),
              proto.clusters().head_count(), proto.average_qdset_size());

  // Pick 30% of the network to fail, and predict survivability: a dead
  // head's state is recoverable while at least half its QDSet survives.
  std::set<NodeId> doomed;
  for (NodeId id : driver.members()) {
    if (world.rng().chance(0.30)) doomed.insert(id);
  }
  std::uint64_t at_risk = 0, predicted_safe = 0;
  for (NodeId id : doomed) {
    if (!proto.knows(id)) continue;
    const auto& st = proto.state_of(id);
    if (st.role != Role::kClusterHead) continue;
    at_risk += st.owned_universe.size();
    std::uint32_t surviving = 0;
    for (NodeId m : st.qdset) {
      if (!doomed.count(m)) ++surviving;
    }
    if (!st.qdset.empty() && surviving * 2 >= st.qdset.size()) {
      predicted_safe += st.owned_universe.size();
    }
  }
  std::printf("Catastrophe: %zu nodes fail abruptly.\n", doomed.size());
  if (at_risk > 0) {
    std::printf("  address space held by dying heads: %llu; predicted "
                "recoverable via replicas: %llu (%.1f%%)\n",
                static_cast<unsigned long long>(at_risk),
                static_cast<unsigned long long>(predicted_safe),
                100.0 * static_cast<double>(predicted_safe) /
                    static_cast<double>(at_risk));
  }

  const auto recl_before = world.stats().of(Traffic::kReclamation).hops;
  for (NodeId id : doomed) driver.depart_abrupt(id);

  std::printf("\nQuorum adjustment + reclamation running...\n");
  world.run_for(40.0);
  std::printf("  reclamations: %llu started, %llu completed\n",
              static_cast<unsigned long long>(proto.reclaims_started()),
              static_cast<unsigned long long>(proto.reclaims_completed()));
  std::printf("  reclamation traffic: %llu hops\n",
              static_cast<unsigned long long>(
                  world.stats().of(Traffic::kReclamation).hops -
                  recl_before));

  std::printf("\nRelief workers arrive: 20 new nodes join the survivors.\n");
  driver.join(20);
  world.run_for(10.0);
  std::printf("  configured overall: %.1f%%, heads: %zu\n",
              100.0 * driver.configured_fraction(),
              proto.clusters().head_count());
  std::printf("  config failures so far: %llu\n",
              static_cast<unsigned long long>(proto.config_failures()));
  return 0;
}
