// Quickstart: bring up a 60-node MANET with the quorum-based protocol,
// watch the cluster hierarchy form, then retire a few nodes.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass `--trace run.json` to record a structured trace of the whole run
// (loads in chrome://tracing / Perfetto; summarize with qip-trace).
#include <cstdio>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/seed.hpp"
#include "harness/world.hpp"
#include "obs/trace_session.hpp"

int main(int argc, char** argv) {
  using namespace qip;
  obs::TraceSession trace(obs::extract_trace_arg(argc, argv));

  // 1 km x 1 km field, 150 m radios, nodes roam at 20 m/s.
  WorldParams wp;
  wp.transmission_range = 150.0;
  World world(wp, resolve_seed(/*fallback=*/42, argc, argv));

  QipParams qp;
  qp.pool_size = 1024;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();

  Driver driver(world, proto);

  std::printf("Joining 60 nodes sequentially...\n");
  driver.join(60);
  world.run_for(5.0);

  std::printf("configured: %.0f%%  heads: %zu  mean latency: %.2f hops\n",
              100.0 * driver.configured_fraction(),
              proto.clusters().head_count(), driver.mean_config_latency());
  std::printf("avg |QDSet|: %.2f   avg visible IP space per head: %.1f\n",
              proto.average_qdset_size(), proto.average_visible_space());

  // Every configured node holds a distinct address.
  const auto addresses = proto.configured_addresses();
  std::printf("distinct addresses: %zu\n", addresses.size());

  std::printf("\nRetiring nodes 3 (graceful) and 7 (abrupt)...\n");
  driver.depart_graceful(3);
  driver.depart_abrupt(7);
  world.run_for(10.0);

  std::printf("post-departure heads: %zu, failures so far: %llu\n",
              proto.clusters().head_count(),
              static_cast<unsigned long long>(proto.config_failures()));
  std::printf("message stats:\n%s", world.stats().to_string().c_str());
  return 0;
}
