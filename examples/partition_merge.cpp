// Partition & merge walkthrough (§V-C).
//
// Two groups of nodes form independent networks on opposite sides of the
// field; a convoy of relays then bridges them.  The protocol detects the
// merge at the boundary (different network ids in neighboring hellos), the
// network with the larger id dissolves, and its nodes rejoin one by one —
// ending with a single network and no duplicate addresses.
#include <cstdio>
#include <map>
#include <set>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/seed.hpp"
#include "harness/world.hpp"
#include "obs/trace_session.hpp"

using namespace qip;

namespace {

void print_census(const QipEngine& proto, const Driver& driver) {
  std::map<NetworkId, std::size_t> census;
  for (NodeId id : driver.members()) {
    if (proto.knows(id) && proto.configured(id)) {
      ++census[proto.state_of(id).network_id];
    }
  }
  for (const auto& [net, count] : census) {
    std::printf("  network %s#%llu: %zu nodes\n", net.low.to_string().c_str(),
                static_cast<unsigned long long>(net.nonce & 0xffff), count);
  }
  std::set<IpAddress> addrs;
  std::size_t dups = 0;
  for (const auto& [id, addr] : proto.configured_addresses()) {
    if (!addrs.insert(addr).second) ++dups;
  }
  std::printf("  duplicate addresses across the field: %zu\n", dups);
}

}  // namespace

int main(int argc, char** argv) {
  obs::TraceSession trace(obs::extract_trace_arg(argc, argv));
  WorldParams wp;
  wp.transmission_range = 150.0;
  World world(wp, resolve_seed(/*fallback=*/7, argc, argv));

  QipParams qp;
  qp.pool_size = 512;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();

  DriverOptions dopt;
  dopt.mobility = false;  // choreographed positions
  Driver driver(world, proto, dopt);

  std::printf("Phase 1: two camps form independent networks\n");
  // West camp around (150, 500).
  driver.join_at({150, 500});
  world.run_for(6.0);
  driver.join_at({220, 430});
  driver.join_at({220, 570});
  driver.join_at({90, 420});
  // East camp around (850, 500).
  driver.join_at({850, 500});
  world.run_for(6.0);
  driver.join_at({780, 430});
  driver.join_at({780, 570});
  driver.join_at({910, 580});
  world.run_for(5.0);
  print_census(proto, driver);

  std::printf("\nPhase 2: a relay convoy bridges the camps\n");
  for (double x : {330.0, 450.0, 570.0, 690.0}) {
    driver.join_at({x, 500});
  }
  world.run_for(30.0);
  print_census(proto, driver);
  std::printf("  merges handled: %llu\n",
              static_cast<unsigned long long>(proto.merges_handled()));

  std::printf("\nPhase 3: the bridge collapses (relays leave abruptly)\n");
  for (NodeId relay : {8u, 9u, 10u, 11u}) {
    driver.depart_abrupt(relay);
  }
  world.run_for(30.0);
  print_census(proto, driver);
  std::printf(
      "\nEach side keeps serving: quorum voting lets the majority side of\n"
      "each replica group keep allocating while the minority side falls\n"
      "back to QuorumSpace or a fresh pool (isolated heads).\n");
  return 0;
}
