// Regenerates fig12 of Xu & Wu, ICDCS'07 (see harness/figures.hpp).
#include "bench_figure_main.hpp"

int main() { return qip::benchmain::run(&qip::fig12_quorum_space); }
