// Adversarial-autoconfiguration ablation (docs/ADVERSARY.md).
//
// Converges an honest network, flips a fraction of nodes into attackers —
// address squatting, false-conflict flooding, replica poisoning, silent
// defection — and measures what the paper's protocol does about it, with
// the hardening layer on versus off:
//
//   * uniqueness violations: runs where the always-on auditor caught a
//     duplicate address that outlived the healing grace window;
//   * configuration quality under attack: configured fraction and mean
//     latency of nodes joining while the attack runs;
//   * overhead: protocol hops during the attack phase (hellos excluded);
//   * response: quarantines issued and the attack actions that landed.
//
// Arms are selected with QIP_HARDEN=on|off (default: both).  Rounds come
// from QIP_ROUNDS; QIP_BENCH_JSON=<path> additionally writes the full cell
// grid as JSON (BENCH_adversary.json at the repo root is the committed
// baseline, validated by the bench_json ctest).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_figure_main.hpp"
#include "core/qip_engine.hpp"
#include "fault/adversary_plan.hpp"
#include "harness/driver.hpp"
#include "harness/parallel.hpp"
#include "harness/world.hpp"
#include "net/failure_detector.hpp"
#include "sim/sim_context.hpp"
#include "util/assert.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace qip;

namespace {

struct Outcome {
  double violation = 0.0;  ///< 1 if the auditor aborted this run
  double configured = 0.0;
  double latency = 0.0;
  double protocol_hops = 0.0;  ///< attack-phase overhead
  double quarantines = 0.0;
  double actions = 0.0;  ///< attack actions that landed (kind-specific)
};

constexpr std::uint32_t kPopulation = 60;
constexpr std::uint32_t kJoinUnderAttack = 12;

Outcome run_cell(AttackKind kind, double fraction, bool hardened,
                 std::uint64_t seed, SimContext& ctx) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  // Denser than the paper's 1 km² default: attacks are only interesting (and
  // duplicates only observable) when attacker and victim share a component.
  wp.area_side = 500.0;
  World world(wp, seed, ctx);

  QipParams qp;
  qp.harden.enabled = hardened;
  QipEngine proto(world.transport(), world.rng(), qp);
  // Both arms run the SWIM detector: the comparison isolates what the
  // hardening (suspicion, quarantine, verified merges) buys, not what
  // failure detection buys.
  SwimDetector swim(world.transport());
  proto.set_failure_detector(&swim);
  proto.start_hello();
  Driver d(world, proto);

  Outcome out;
  PhaseMeter meter(world.stats());
  try {
    d.join(kPopulation);
    world.run_for(10.0);  // post-join convergence; attacks start after this

    // Attacker pool: service attacks need protocol servers (cluster heads);
    // squatting works from any configured common node.
    std::vector<NodeId> pool;
    if (kind == AttackKind::kSquat) {
      for (NodeId n : d.members()) {
        if (proto.knows(n) &&
            proto.state_of(n).role == Role::kCommonNode)
          pool.push_back(n);
      }
    } else {
      pool = proto.clusters().heads();
    }
    AdversaryPlan plan;
    if (!pool.empty() && fraction > 0.0) {
      const std::size_t k = std::max<std::size_t>(
          1, static_cast<std::size_t>(fraction *
                                      static_cast<double>(pool.size()) +
                                      0.5));
      for (std::size_t i = 0; i < k; ++i) {
        // Even stride over the sorted pool: deterministic and spread out.
        const NodeId attacker = pool[i * pool.size() / k];
        plan.attacks.push_back(
            {attacker, kind, world.sim().now(), /*until=*/1.0e18});
      }
    }
    // fraction 0 is the honest baseline row: same phases, no attackers.
    if (!plan.attacks.empty()) world.enable_adversary(plan);

    meter.reset();
    world.run_for(15.0);
    d.join(kJoinUnderAttack);  // configure while under attack
    // Long enough past the last attack action for the auditor's 30 s
    // healing grace to expire on any unresolved duplicate.
    world.run_for(35.0);
  } catch (const InvariantViolation&) {
    out.violation = 1.0;
  }

  out.configured = d.configured_fraction();
  out.latency = d.mean_config_latency();
  out.protocol_hops = static_cast<double>(meter.protocol_hops());
  out.quarantines = static_cast<double>(proto.quarantines());
  if (const AdversaryController* a = world.adversary()) {
    const AdversaryStats& s = a->stats();
    switch (kind) {
      case AttackKind::kSquat:
        out.actions = static_cast<double>(s.squats);
        break;
      case AttackKind::kConflictFlood:
        out.actions = static_cast<double>(s.false_conflicts);
        break;
      case AttackKind::kReplicaPoison:
        out.actions = static_cast<double>(s.poisoned_snapshots);
        break;
      case AttackKind::kSilentDefection:
        out.actions = static_cast<double>(s.dropped_services);
        break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t rounds = rounds_from_env(2);
  const std::uint32_t jobs = benchmain::jobs_from_args(argc, argv);

  bool run_hardened = true;
  bool run_unhardened = true;
  if (const char* env = std::getenv("QIP_HARDEN")) {
    if (std::strcmp(env, "on") == 0) run_unhardened = false;
    if (std::strcmp(env, "off") == 0) run_hardened = false;
  }

  // The fraction-0 squat row is the honest baseline (no attackers are ever
  // flipped), printed once per arm so attack damage reads against it.
  struct Cell {
    AttackKind kind;
    double fraction;
  };
  const Cell grid[] = {{AttackKind::kSquat, 0.0},
                       {AttackKind::kSquat, 0.1},
                       {AttackKind::kSquat, 0.3},
                       {AttackKind::kConflictFlood, 0.1},
                       {AttackKind::kConflictFlood, 0.3},
                       {AttackKind::kReplicaPoison, 0.1},
                       {AttackKind::kReplicaPoison, 0.3},
                       {AttackKind::kSilentDefection, 0.1},
                       {AttackKind::kSilentDefection, 0.3}};

  JsonValue cells = JsonValue::array();

  std::printf("== Adversarial autoconfiguration: %u honest nodes, %u joining "
              "under attack ==\n",
              kPopulation, kJoinUnderAttack);
  TextTable t({"attack", "attackers", "hardened", "violations", "configured%",
               "latency", "hops", "quarantines", "actions"});
  for (const Cell& cell : grid) {
    const AttackKind kind = cell.kind;
    const double fraction = cell.fraction;
    const char* label = fraction == 0.0 ? "none" : to_string(kind);
    for (int arm = 0; arm < 2; ++arm) {
      const bool hardened = (arm == 1);
      if (hardened && !run_hardened) continue;
      if (!hardened && !run_unhardened) continue;
      RunningStats viol, cfg, lat, hops, quar, act;
      run_cells<Outcome>(
          process_context(), jobs, rounds,
          [&](std::size_t r, SimContext& ctx) {
            const std::uint64_t seed =
                7000 + 100 * static_cast<std::uint64_t>(kind) +
                static_cast<std::uint64_t>(fraction * 10) * 10 + r;
            return run_cell(kind, fraction, hardened, seed, ctx);
          },
          [&](std::size_t, Outcome&& o) {
            viol.add(o.violation);
            cfg.add(100.0 * o.configured);
            lat.add(o.latency);
            hops.add(o.protocol_hops);
            quar.add(o.quarantines);
            act.add(o.actions);
          });
      t.add_row({label,
                 format_double(100.0 * fraction, 0) + "%",
                 hardened ? "on" : "off",
                 format_double(viol.sum(), 0) + "/" +
                     format_double(rounds, 0),
                 format_double(cfg.mean(), 1), format_double(lat.mean(), 2),
                 format_double(hops.mean(), 0),
                 format_double(quar.mean(), 1),
                 format_double(act.mean(), 0)});
      cells.push(JsonValue::object()
                     .set("attack", label)
                     .set("attacker_fraction", fraction)
                     .set("hardened", hardened)
                     .set("rounds", rounds)
                     .set("violations", viol.sum())
                     .set("configured_pct", cfg.mean())
                     .set("latency_hops", lat.mean())
                     .set("protocol_hops", hops.mean())
                     .set("quarantines", quar.mean())
                     .set("attack_actions", act.mean()));
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf("(rounds per cell: %u; set QIP_ROUNDS to raise, QIP_HARDEN to "
              "pick one arm)\n\n",
              rounds);

  if (const char* path = std::getenv("QIP_BENCH_JSON")) {
    JsonValue doc = JsonValue::object();
    doc.set("bench", "ablation_adversary")
        .set("population", kPopulation)
        .set("join_under_attack", kJoinUnderAttack)
        .set("rounds", rounds)
        .set("cells", std::move(cells));
    if (!doc.write_file(path)) {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
    std::printf("wrote %s\n", path);
  }
  return 0;
}
