// Microbenchmarks for the unit-disk topology: neighbor queries and BFS
// routing dominate simulation time.
//
// The *Uncached variants pin the raw substrate (grid query + sort per
// visited node); the *Cached variants run the epoch-versioned TopologyCache
// under the simulator's real access pattern — one node moves, then the
// graph is queried — so the pair measures exactly what the cache buys on
// the hot path (components for the auditor, BFS for routing/floods).
#include <benchmark/benchmark.h>

#include "net/topology.hpp"
#include "util/rng.hpp"

using namespace qip;

namespace {

Topology make_topology(std::uint32_t n, double range, Rng& rng,
                       bool cached) {
  Topology topo(Rect{1000.0, 1000.0}, range);
  topo.set_cache_enabled(cached);
  for (std::uint32_t i = 0; i < n; ++i)
    topo.add_node(i, topo.area().sample(rng));
  return topo;
}

}  // namespace

static void BM_Neighbors(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Topology topo = make_topology(n, 150.0, rng, /*cached=*/false);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.neighbors(i++ % n));
  }
}
BENCHMARK(BM_Neighbors)->Arg(100)->Arg(200)->Arg(400);

static void BM_HopDistance(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Topology topo = make_topology(n, 150.0, rng, /*cached=*/false);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.hop_distance(i % n, (i * 7 + 3) % n));
    ++i;
  }
}
BENCHMARK(BM_HopDistance)->Arg(100)->Arg(200);

static void BM_Components(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Topology topo = make_topology(n, 120.0, rng, /*cached=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.components());
  }
}
BENCHMARK(BM_Components)->Arg(200);

static void BM_KHopNeighbors(benchmark::State& state) {
  Rng rng(8);
  Topology topo = make_topology(200, 150.0, rng, /*cached=*/false);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo.k_hop_neighbors(i++ % 200,
                             static_cast<std::uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_KHopNeighbors)->Arg(2)->Arg(3);

// ---------------------------------------------------------------------------
// Cached vs. uncached under churn: one random-waypoint style move per
// iteration, then the query — the UniquenessAuditor / mobility-tick pattern.
// arg0 = node count, arg1 = cache on/off.
// ---------------------------------------------------------------------------

static void BM_ComponentsChurn(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Topology topo = make_topology(n, 120.0, rng, state.range(1) != 0);
  std::uint32_t i = 0;
  for (auto _ : state) {
    topo.move_node(i++ % n, topo.area().sample(rng));
    benchmark::DoNotOptimize(topo.components_view());
  }
}
BENCHMARK(BM_ComponentsChurn)
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({400, 0})
    ->Args({400, 1});

static void BM_BfsSweepChurn(benchmark::State& state) {
  // Full-source BFS (hop_distances_from) after a move: the nearest-server
  // scan every baseline runs on arrival.
  Rng rng(6);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Topology topo = make_topology(n, 150.0, rng, state.range(1) != 0);
  std::uint32_t i = 0;
  for (auto _ : state) {
    topo.move_node(i % n, topo.area().sample(rng));
    std::uint64_t sum = 0;
    topo.for_each_reachable((i * 13 + 1) % n,
                            [&](NodeId, std::uint32_t d) { sum += d; });
    benchmark::DoNotOptimize(sum);
    ++i;
  }
}
BENCHMARK(BM_BfsSweepChurn)->Args({200, 0})->Args({200, 1});

static void BM_KHopChurn(benchmark::State& state) {
  // 3-hop neighborhood (QIP's QDSet discovery radius) after a move.
  Rng rng(8);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Topology topo = make_topology(n, 150.0, rng, state.range(1) != 0);
  std::uint32_t i = 0;
  for (auto _ : state) {
    topo.move_node(i % n, topo.area().sample(rng));
    benchmark::DoNotOptimize(topo.k_hop_view((i * 7 + 3) % n, 3));
    ++i;
  }
}
BENCHMARK(BM_KHopChurn)->Args({200, 0})->Args({200, 1});

static void BM_AuditProbeSteadyState(benchmark::State& state) {
  // The auditor's favourable case: probes fire between movement steps, so
  // the epoch is unchanged and the partition is served from cache.
  Rng rng(7);
  Topology topo = make_topology(200, 120.0, rng, state.range(0) != 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.components_view());
  }
}
BENCHMARK(BM_AuditProbeSteadyState)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
