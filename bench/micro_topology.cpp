// Microbenchmarks for the unit-disk topology: neighbor queries and BFS
// routing dominate simulation time.
#include <benchmark/benchmark.h>

#include "net/topology.hpp"
#include "util/rng.hpp"

using namespace qip;

namespace {

Topology make_topology(std::uint32_t n, double range, Rng& rng) {
  Topology topo(Rect{1000.0, 1000.0}, range);
  for (std::uint32_t i = 0; i < n; ++i)
    topo.add_node(i, topo.area().sample(rng));
  return topo;
}

}  // namespace

static void BM_Neighbors(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Topology topo = make_topology(n, 150.0, rng);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.neighbors(i++ % n));
  }
}
BENCHMARK(BM_Neighbors)->Arg(100)->Arg(200)->Arg(400);

static void BM_HopDistance(benchmark::State& state) {
  Rng rng(6);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Topology topo = make_topology(n, 150.0, rng);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.hop_distance(i % n, (i * 7 + 3) % n));
    ++i;
  }
}
BENCHMARK(BM_HopDistance)->Arg(100)->Arg(200);

static void BM_Components(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Topology topo = make_topology(n, 120.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.components());
  }
}
BENCHMARK(BM_Components)->Arg(200);

static void BM_KHopNeighbors(benchmark::State& state) {
  Rng rng(8);
  Topology topo = make_topology(200, 150.0, rng);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo.k_hop_neighbors(i++ % 200,
                             static_cast<std::uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_KHopNeighbors)->Arg(2)->Arg(3);

BENCHMARK_MAIN();
