// Regenerates fig9 of Xu & Wu, ICDCS'07 (see harness/figures.hpp).
#include "bench_figure_main.hpp"

int main(int argc, char** argv) {
  return qip::benchmain::run(&qip::fig9_departure_overhead, argc, argv);
}
