// Microbenchmarks for the AddressBlock interval set: the hot data structure
// behind IPSpace/QuorumSpace bookkeeping.
#include <benchmark/benchmark.h>

#include "addr/address_block.hpp"
#include "util/rng.hpp"

using namespace qip;

static void BM_BlockSplitHalf(benchmark::State& state) {
  const auto size = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    AddressBlock block = AddressBlock::contiguous(kPoolBase, size);
    while (block.size() >= 2) {
      AddressBlock upper = block.split_half();
      benchmark::DoNotOptimize(upper);
      block = std::move(upper);
    }
  }
}
BENCHMARK(BM_BlockSplitHalf)->Arg(256)->Arg(1024)->Arg(4096);

static void BM_BlockPopInsertChurn(benchmark::State& state) {
  Rng rng(7);
  AddressBlock block =
      AddressBlock::contiguous(kPoolBase,
                               static_cast<std::uint64_t>(state.range(0)));
  std::vector<IpAddress> out;
  for (auto _ : state) {
    out.clear();
    for (int i = 0; i < 64; ++i) out.push_back(block.pop_lowest());
    rng.shuffle(out);
    for (IpAddress a : out) block.insert(a);
  }
}
BENCHMARK(BM_BlockPopInsertChurn)->Arg(1024);

static void BM_BlockFragmentedContains(benchmark::State& state) {
  // Every other address present: worst-case range count.
  AddressBlock block;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < n; i += 2)
    block.insert(IpAddress(kPoolBase.value() + i));
  Rng rng(13);
  for (auto _ : state) {
    const IpAddress probe(kPoolBase.value() +
                          static_cast<std::uint32_t>(rng.below(n)));
    benchmark::DoNotOptimize(block.contains(probe));
  }
}
BENCHMARK(BM_BlockFragmentedContains)->Arg(1024)->Arg(8192);

static void BM_BlockMinus(benchmark::State& state) {
  AddressBlock a = AddressBlock::contiguous(kPoolBase, 4096);
  AddressBlock b;
  for (std::uint32_t i = 0; i < 4096; i += 3)
    b.insert(IpAddress(kPoolBase.value() + i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.minus(b));
  }
}
BENCHMARK(BM_BlockMinus);

BENCHMARK_MAIN();
