// Microbenchmarks for the discrete-event core, run against BOTH scheduler
// backends (heap and calendar — see docs/SIMULATOR.md).
//
// The headline case is BM_Churn_*: the classic hold model at 10^4–10^6
// pending events (pop the minimum, reschedule it one mean-gap ahead), which
// is what a metropolis-scale run looks like to the scheduler.  The bench
// counts global operator new calls inside the timed region and reports them
// as the `allocs_per_op` counter; steady-state churn must be allocation-free
// on both backends, and the committed BENCH_event_queue.json is gated on
// that plus a >= 3x calendar-over-heap speedup at 10^6 pending events
// (tools/check_bench_json.cmake, KIND=event_queue).
//
// Regenerate the baseline with
//   bench/micro_event_queue --benchmark_out=BENCH_event_queue.json
//                           --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace qip;

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in the process bumps it, so
// differencing it around a batch of scheduler ops measures exactly what the
// scheduler allocates (the bench loops are single-threaded).
namespace {
std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace

// GCC pairs this file's malloc-backed operator new with the matching frees
// only after inlining, which trips -Wmismatched-new-delete spuriously.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

// ---------------------------------------------------------------------------
// Hold-model churn: n pending events, every op pops the minimum and
// reschedules it a mean gap of 1.0 ahead, so the pending-set size and time
// spread are stationary.  Deterministic (fixed seed, fixed iteration count)
// so the committed baseline is reproducible.
constexpr std::size_t kChurnBatch = 10000;

void BM_Churn(benchmark::State& state, SchedulerKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  EventQueue q(kind);
  Rng rng(7);
  for (std::size_t i = 0; i < n; ++i) {
    q.post(rng.uniform(0.0, static_cast<double>(n)), [] {});
  }
  // The hold model's stationary distribution only emerges once the uniform
  // prefill has drained — a full turnover of the pending set.  Without this
  // the timed region at 10^6 pending events measures the transition (and
  // the calendar backend's distribution-shift resizes), not steady state.
  for (std::size_t i = 0; i < n; ++i) {
    auto fired = q.pop();
    q.post(fired.time + rng.uniform(0.0, 2.0), [] {});
  }
  // Then warm until internal capacities (slab, heap vector, calendar node
  // pool) plateau: the steady state the acceptance gate measures begins when
  // one full batch completes without a single allocation.
  for (int tries = 0; tries < 1000; ++tries) {
    const std::uint64_t before = allocs_now();
    for (std::size_t i = 0; i < kChurnBatch; ++i) {
      auto fired = q.pop();
      q.post(fired.time + rng.uniform(0.0, 2.0), [] {});
    }
    if (allocs_now() == before) break;
  }
  std::uint64_t allocs = 0;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocs_now();
    for (std::size_t i = 0; i < kChurnBatch; ++i) {
      auto fired = q.pop();
      q.post(fired.time + rng.uniform(0.0, 2.0), [] {});
    }
    allocs += allocs_now() - before;
    ops += kChurnBatch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["allocs_per_op"] =
      static_cast<double>(allocs) / static_cast<double>(ops);
  state.counters["pending"] = static_cast<double>(n);
}

// Ramp-and-drain: schedule n events, then pop them all.  Covers the resize
// path of the calendar backend (the churn case never resizes).
void BM_ScheduleDrain(benchmark::State& state, SchedulerKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    EventQueue q(kind);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(rng.uniform(0.0, 100.0), [&acc] { ++acc; });
    }
    while (!q.empty()) q.pop().fn();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// Cancellation-heavy load: the retransmit-timer pattern under PR 1's fault
// plans — most timers die before firing.  Exercises eager callable release
// plus lazy tombstone skimming.
void BM_CancelHeavy(benchmark::State& state, SchedulerKind kind) {
  Rng rng(4);
  std::vector<EventHandle> handles;
  handles.reserve(4096);
  for (auto _ : state) {
    EventQueue q(kind);
    handles.clear();
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < 4096; ++i) {
      handles.push_back(
          q.schedule(rng.uniform(0.0, 10.0), [&acc] { ++acc; }));
    }
    // Cancel three quarters.
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (i % 4 != 0) handles[i].cancel();
    }
    while (!q.empty()) q.pop().fn();
    benchmark::DoNotOptimize(acc);
  }
}

// Self-rescheduling timer through the full Simulator: the hello/maintenance
// pattern.  The capture is a couple of pointers, so it stays in EventFn's
// inline buffer.
void BM_TimerChain(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::uint64_t ticks = 0;
    struct Tick {
      Simulator* sim;
      std::uint64_t* ticks;
      void operator()() const {
        if (++*ticks < 10000) sim->after(1.0, Tick{sim, ticks});
      }
    };
    sim.after(1.0, Tick{&sim, &ticks});
    sim.run();
    benchmark::DoNotOptimize(ticks);
  }
}

void register_all() {
  static const struct {
    SchedulerKind kind;
    const char* name;
  } kBackends[] = {{SchedulerKind::kHeap, "heap"},
                   {SchedulerKind::kCalendar, "calendar"}};
  for (const auto& b : kBackends) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Churn_") + b.name).c_str(), BM_Churn, b.kind)
        ->Arg(10000)
        ->Arg(100000)
        ->Arg(1000000)
        ->Iterations(20);
    benchmark::RegisterBenchmark(
        (std::string("BM_ScheduleDrain_") + b.name).c_str(), BM_ScheduleDrain,
        b.kind)
        ->Arg(1024)
        ->Arg(16384);
    benchmark::RegisterBenchmark(
        (std::string("BM_CancelHeavy_") + b.name).c_str(), BM_CancelHeavy,
        b.kind);
  }
  benchmark::RegisterBenchmark("BM_TimerChain", BM_TimerChain);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
