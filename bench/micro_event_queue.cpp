// Microbenchmarks for the discrete-event core.
#include <benchmark/benchmark.h>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace qip;

static void BM_ScheduleDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    Simulator sim;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sim.after(rng.uniform(0.0, 100.0), [&acc] { ++acc; });
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScheduleDrain)->Arg(1024)->Arg(16384);

static void BM_CancelHeavy(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    Simulator sim;
    std::vector<EventHandle> handles;
    handles.reserve(4096);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < 4096; ++i) {
      handles.push_back(
          sim.after(rng.uniform(0.0, 10.0), [&acc] { ++acc; }));
    }
    // Cancel three quarters.
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (i % 4 != 0) handles[i].cancel();
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CancelHeavy);

static void BM_TimerChain(benchmark::State& state) {
  // Self-rescheduling timer: the hello/maintenance pattern.
  for (auto _ : state) {
    Simulator sim;
    std::uint64_t ticks = 0;
    std::function<void()> tick = [&] {
      if (++ticks < 10000) sim.after(1.0, tick);
    };
    sim.after(1.0, tick);
    sim.run();
    benchmark::DoNotOptimize(ticks);
  }
}
BENCHMARK(BM_TimerChain);

BENCHMARK_MAIN();
