// Address-fragmentation study — the §VI-C claim the overhead figures only
// hint at: "while our protocol requires that each IP address be returned to
// its original allocator, it is not realized for protocol [3].  Therefore
// after a long period of time, our protocol would not suffer from address
// fragmentation."
//
// Scenario: a network endures sustained join/leave churn for several
// epochs.  After each epoch we measure, per cluster head / coordinator:
//
//   * fragments per head — how many disjoint ranges its free pool has
//     splintered into (1.0 = perfectly coalesced);
//   * contiguity — size of the largest free run over total free space
//     (1.0 = one solid block, small = confetti).
//
// QIP routes every RETURN_ADDR back to the owning head, so freed addresses
// coalesce with the block they came from.  The C-tree baseline returns a
// leaver's address to whichever coordinator issued it but returns dissolved
// coordinators' pools to arbitrary parents, scattering ranges over time.
#include <cstdio>

#include "baselines/ctree.hpp"
#include "bench_figure_main.hpp"
#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/figures.hpp"
#include "harness/parallel.hpp"
#include "harness/world.hpp"
#include "sim/sim_context.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace qip;

namespace {

struct FragStats {
  double fragments_per_head = 0.0;
  double contiguity = 1.0;
};

FragStats frag_of(const AddressBlock& pool) {
  FragStats f;
  if (pool.empty()) return f;
  f.fragments_per_head = static_cast<double>(pool.ranges().size());
  std::uint64_t largest = 0;
  for (const auto& r : pool.ranges()) largest = std::max(largest, r.size());
  f.contiguity =
      static_cast<double>(largest) / static_cast<double>(pool.size());
  return f;
}

template <typename GetPools>
FragStats measure(GetPools&& pools) {
  RunningStats frags, contig;
  for (const AddressBlock* pool : pools()) {
    if (pool->empty()) continue;
    const FragStats f = frag_of(*pool);
    frags.add(f.fragments_per_head);
    contig.add(f.contiguity);
  }
  return {frags.mean(), contig.empty() ? 1.0 : contig.mean()};
}

template <typename Proto>
void churn_epoch(World& w, Driver& d, Proto& proto, Rng& rng) {
  (void)proto;
  for (int i = 0; i < 15 && !d.members().empty(); ++i) {
    const NodeId victim = d.members()[rng.index(d.members().size())];
    if (rng.chance(0.15)) {
      d.depart_abrupt(victim);
    } else {
      d.depart_graceful(victim);
    }
    d.join_one();
    w.run_for(0.3);
  }
  w.run_for(5.0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t rounds = rounds_from_env(2);
  const std::uint32_t jobs = benchmain::jobs_from_args(argc, argv);
  constexpr int kEpochs = 6;
  constexpr std::uint32_t kNodes = 80;

  std::printf("== Ablation D: address fragmentation under sustained churn "
              "(nn=%u, %d epochs x 15 join/leave) ==\n",
              kNodes, kEpochs);
  TextTable t({"epoch", "QIP frags/head", "QIP contiguity",
               "C-tree frags/head", "C-tree contiguity"});

  std::vector<RunningStats> qf(kEpochs), qc(kEpochs), cf(kEpochs),
      cc(kEpochs);
  // Per-epoch samples of one round: [qip frags, qip contig, ctree frags,
  // ctree contig] so cells fan across --jobs workers and merge in round
  // order, keeping every mean byte-identical to the sequential run.
  struct RoundResult {
    std::vector<double> qf, qc, cf, cc;
  };
  run_cells<RoundResult>(
      process_context(), jobs, rounds,
      [&](std::size_t r, SimContext& ctx) {
        RoundResult res;
        // --- QIP -----------------------------------------------------------
        {
          WorldParams wp;
          World w(wp, 777 + r, ctx);
          QipParams qp;
          qp.pool_size = 1024;
          QipEngine proto(w.transport(), w.rng(), qp);
          proto.start_hello();
          Driver d(w, proto);
          d.join(kNodes);
          w.run_for(3.0);
          for (int e = 0; e < kEpochs; ++e) {
            churn_epoch(w, d, proto, w.rng());
            const FragStats f = measure([&] {
              std::vector<const AddressBlock*> pools;
              for (NodeId h : proto.clusters().heads()) {
                pools.push_back(&proto.state_of(h).ip_space);
              }
              return pools;
            });
            res.qf.push_back(f.fragments_per_head);
            res.qc.push_back(f.contiguity);
          }
        }
        // --- C-tree ---------------------------------------------------------
        {
          WorldParams wp;
          World w(wp, 777 + r, ctx);
          CTreeParams cp;
          cp.pool_size = 1024;
          CTreeProtocol proto(w.transport(), w.rng(), cp);
          proto.start_updates();
          Driver d(w, proto);
          d.join(kNodes);
          w.run_for(3.0);
          for (int e = 0; e < kEpochs; ++e) {
            churn_epoch(w, d, proto, w.rng());
            // Coordinators' pools via the public surface: sample every member
            // and query the protocol for its pool size is not exposed; use the
            // visible_space API per coordinator plus block introspection kept
            // for tests.  The C-tree keeps pools private, so approximate the
            // fragment count from the census the protocol exposes.
            RunningStats frags, contig;
            for (NodeId id : d.members()) {
              if (!proto.is_coordinator(id)) continue;
              const auto pool = proto.pool_of(id);
              if (pool.empty()) continue;
              const FragStats f = frag_of(pool);
              frags.add(f.fragments_per_head);
              contig.add(f.contiguity);
            }
            res.cf.push_back(frags.mean());
            res.cc.push_back(contig.empty() ? 1.0 : contig.mean());
          }
        }
        return res;
      },
      [&](std::size_t, RoundResult&& res) {
        for (int e = 0; e < kEpochs; ++e) {
          const auto i = static_cast<std::size_t>(e);
          qf[i].add(res.qf[i]);
          qc[i].add(res.qc[i]);
          cf[i].add(res.cf[i]);
          cc[i].add(res.cc[i]);
        }
      });

  for (int e = 0; e < kEpochs; ++e) {
    const auto i = static_cast<std::size_t>(e);
    t.add_row({std::to_string(e + 1), format_double(qf[i].mean(), 2),
               format_double(qc[i].mean(), 3), format_double(cf[i].mean(), 2),
               format_double(cc[i].mean(), 3)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(rounds: %u; QIP returns addresses to their allocator — its "
              "pools stay coalesced)\n\n",
              rounds);
  return 0;
}
