// Microbenchmarks for quorum-system construction and intersection checking.
#include <benchmark/benchmark.h>

#include <numeric>

#include "quorum/dynamic_linear.hpp"
#include "quorum/intersection_checker.hpp"
#include "quorum/quorum_policy.hpp"
#include "quorum/quorum_system.hpp"
#include "quorum/slices.hpp"

using namespace qip;

static std::vector<std::uint32_t> universe(std::uint32_t n) {
  std::vector<std::uint32_t> u(n);
  std::iota(u.begin(), u.end(), 1u);
  return u;
}

static void BM_MajorityConstruction(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuorumSystem::majority(universe(n)));
  }
}
BENCHMARK(BM_MajorityConstruction)->Arg(5)->Arg(9)->Arg(13);

static void BM_PairwiseIntersection(benchmark::State& state) {
  const auto qs = QuorumSystem::majority(
      universe(static_cast<std::uint32_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(qs.pairwise_intersecting());
  }
}
BENCHMARK(BM_PairwiseIntersection)->Arg(7)->Arg(9);

static void BM_CoversQuorum(benchmark::State& state) {
  const auto qs = QuorumSystem::dynamic_linear(universe(8), 1);
  const QuorumSet probe{1, 3, 5, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(qs.covers_quorum(probe));
  }
}
BENCHMARK(BM_CoversQuorum);

static void BM_QuorumThreshold(benchmark::State& state) {
  std::uint32_t g = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quorum_threshold(1 + (g++ % 16), (g & 1) != 0));
  }
}
BENCHMARK(BM_QuorumThreshold);

static void BM_PolicyThreshold(benchmark::State& state) {
  // The engine's hot-path dispatch: virtual threshold() per vote tally.
  const QuorumPolicy& policy =
      quorum_policy(static_cast<QuorumBackend>(state.range(0)));
  std::uint32_t g = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.threshold(1 + (g++ % 16), (g & 1) != 0));
  }
}
BENCHMARK(BM_PolicyThreshold)->Arg(0)->Arg(1)->Arg(2);

static void BM_SlicesIsQuorum(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const SliceConfig cfg = SliceConfig::flat_majority(universe(n));
  const auto probe = universe(n / 2 + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg.is_quorum(probe));
  }
}
BENCHMARK(BM_SlicesIsQuorum)->Arg(6)->Arg(12);

static void BM_FromSlices(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto u = universe(n);
  const SliceConfig cfg = SliceConfig::flat_majority(u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuorumSystem::from_slices(cfg, u));
  }
}
BENCHMARK(BM_FromSlices)->Arg(6)->Arg(10);

static void BM_CheckerExhaustive(benchmark::State& state) {
  const QuorumPolicy& policy =
      quorum_policy(static_cast<QuorumBackend>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_intersection_exhaustive(policy, 6));
  }
}
BENCHMARK(BM_CheckerExhaustive)->Arg(0)->Arg(1)->Arg(2);

static void BM_CheckerRandom(benchmark::State& state) {
  const QuorumPolicy& policy = quorum_policy(QuorumBackend::kDynamicLinear);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        check_intersection_random(policy, 14, 0x5eed, 16));
  }
}
BENCHMARK(BM_CheckerRandom);

BENCHMARK_MAIN();
