// Microbenchmarks for quorum-system construction and intersection checking.
#include <benchmark/benchmark.h>

#include <numeric>

#include "quorum/dynamic_linear.hpp"
#include "quorum/quorum_system.hpp"

using namespace qip;

static std::vector<std::uint32_t> universe(std::uint32_t n) {
  std::vector<std::uint32_t> u(n);
  std::iota(u.begin(), u.end(), 1u);
  return u;
}

static void BM_MajorityConstruction(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuorumSystem::majority(universe(n)));
  }
}
BENCHMARK(BM_MajorityConstruction)->Arg(5)->Arg(9)->Arg(13);

static void BM_PairwiseIntersection(benchmark::State& state) {
  const auto qs = QuorumSystem::majority(
      universe(static_cast<std::uint32_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(qs.pairwise_intersecting());
  }
}
BENCHMARK(BM_PairwiseIntersection)->Arg(7)->Arg(9);

static void BM_CoversQuorum(benchmark::State& state) {
  const auto qs = QuorumSystem::dynamic_linear(universe(8), 1);
  const QuorumSet probe{1, 3, 5, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(qs.covers_quorum(probe));
  }
}
BENCHMARK(BM_CoversQuorum);

static void BM_QuorumThreshold(benchmark::State& state) {
  std::uint32_t g = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(quorum_threshold(1 + (g++ % 16), (g & 1) != 0));
  }
}
BENCHMARK(BM_QuorumThreshold);

BENCHMARK_MAIN();
