// Metropolis-scale "city day" scenario (docs/SCALE.md): the scale gate for
// the n>=100k core — SoA node state, arena messaging, incremental
// connectivity, streaming metrics.  Not a paper figure: the paper stops at
// 200 nodes; this bench takes the same protocol through a day in a city and
// reports what the engineering actually bought, per phase:
//
//   flash_crowd — everyone arrives in dense waves (stadium gates open)
//   drift       — Gauss-Markov pedestrian drift (correlated velocities)
//   departure   — a third of the city leaves, half gracefully, half abruptly
//   plateau     — quiescent steady state: hello beacons and nothing else
//
// Per phase: wall-clock seconds, peak RSS (VmHWM), simulator events, and
// global operator-new calls (counted by the override below, the
// micro_event_queue precedent) — allocs/event in the plateau pins the
// arena + inline-capture claim that the steady state runs allocation-free
// per delivered event.  Topology patch/rebuild counters pin the incremental
// connectivity path actually engaging at scale.
//
// Sizing: --nodes N or QIP_METRO_NODES (default 2000 so a bare run finishes
// in seconds; the committed BENCH_metro.json baseline is the
// QIP_METRO_NODES=100000 run, see tools/check_bench_json.cmake).  The area
// scales with n at constant density (~9 expected neighbors), so protocol
// locality matches the paper's geometry at any size.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "core/qip_engine.hpp"
#include "harness/env.hpp"
#include "harness/world.hpp"
#include "net/node_id.hpp"
#include "sim/arena.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace qip;

// ---------------------------------------------------------------------------
// Global allocation counter (same idiom as bench/micro_event_queue.cpp).
namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace

#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

/// Peak resident set (VmHWM) in MiB, from /proc/self/status.  Monotone over
/// the process lifetime; per-phase values therefore report the high-water
/// mark reached *by the end of* each phase.
double peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kib = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
}

struct PhaseReport {
  std::string name;
  double wall_s = 0.0;
  double peak_rss_mib = 0.0;
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  double allocs_per_event = 0.0;
  std::uint64_t configured = 0;
};

/// Brackets one phase: wall clock plus event and allocation deltas.  The
/// deltas are read before the (allocating) configured-address scan so the
/// scan never pollutes the phase it closes.
class PhaseMeter {
 public:
  PhaseMeter(World& world, const QipEngine& proto)
      : world_(world), proto_(proto) {}

  void begin() {
    start_ = std::chrono::steady_clock::now();
    events0_ = world_.sim().events_executed();
    allocs0_ = allocs_now();
  }

  PhaseReport end(std::string name) {
    PhaseReport r;
    r.name = std::move(name);
    r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
                   .count();
    r.events = world_.sim().events_executed() - events0_;
    r.allocs = allocs_now() - allocs0_;
    r.allocs_per_event = r.events ? static_cast<double>(r.allocs) /
                                        static_cast<double>(r.events)
                                  : 0.0;
    r.peak_rss_mib = peak_rss_mib();
    r.configured = proto_.configured_addresses().size();
    return r;
  }

 private:
  World& world_;
  const QipEngine& proto_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t events0_ = 0;
  std::uint64_t allocs0_ = 0;
};

std::uint32_t nodes_from_args(int argc, const char* const* argv) {
  std::uint32_t n = env_positive_u32("QIP_METRO_NODES", 2000);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      n = parse_positive_u32("--nodes", argv[i + 1]);
    } else if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      n = parse_positive_u32("--nodes", argv[i] + 8);
    }
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n = nodes_from_args(argc, argv);

  // Constant density: ~9 expected neighbors at any n, the paper's regime.
  constexpr double kRange = 150.0;
  const double side = std::sqrt(static_cast<double>(n) * 3.14159265358979 *
                                kRange * kRange / 9.0);

  WorldParams wp;
  wp.area_side = side;
  wp.transmission_range = kRange;
  World world(wp, /*seed=*/0xc17ada7ULL);

  QipParams qp;
  // Pool sized to the city: twice the population, rounded up to 2^k.
  std::uint64_t pool = 1024;
  while (pool < 2ull * n) pool <<= 1;
  qp.pool_size = pool;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();

  std::vector<PhaseReport> phases;
  PhaseMeter meter(world, proto);

  // -- Phase 1: flash crowd --------------------------------------------------
  // A seed node first (one self-election instead of n parallel ones), then
  // dense waves: ~n/20 arrivals per simulated second.
  meter.begin();
  world.place_random(0);
  proto.node_entered(0);
  world.run_for(3.0);
  const std::uint32_t wave = n / 20 + 1;
  for (NodeId id = 1; id < n;) {
    for (std::uint32_t k = 0; k < wave && id < n; ++k, ++id) {
      world.place_random(id);
      proto.node_entered(id);
    }
    world.run_for(1.0);
  }
  world.run_for(10.0);  // let the tail of the entry storm settle
  phases.push_back(meter.end("flash_crowd"));

  // -- Phase 2: Gauss-Markov drift -------------------------------------------
  // Correlated pedestrian velocities: v' = a·v + (1-a)·mean + s·sqrt(1-a²)·g.
  // Drawn from a dedicated RNG so mobility noise never perturbs protocol
  // randomness.
  meter.begin();
  {
    const double alpha = 0.85, mean_v = 1.5, sigma = 0.6;
    const double noise = sigma * std::sqrt(1.0 - alpha * alpha);
    Rng gm(0x6a055);
    std::vector<double> vx(n, 0.0), vy(n, 0.0);
    const auto gauss = [&gm] {
      // Sum of four uniforms, centered: cheap, deterministic, close enough.
      return (gm.uniform() + gm.uniform() + gm.uniform() + gm.uniform()) * 2.0 -
             4.0;
    };
    for (int tick = 0; tick < 20; ++tick) {
      for (NodeId id = 0; id < n; ++id) {
        if (!world.topology().has_node(id)) continue;
        vx[id] = alpha * vx[id] + (1.0 - alpha) * mean_v + noise * gauss();
        vy[id] = alpha * vy[id] + noise * gauss();
        Point p = world.topology().position(id);
        p.x += vx[id];
        p.y += vy[id];
        // Reflect at the city limits.
        if (p.x < 0.0) { p.x = -p.x; vx[id] = -vx[id]; }
        if (p.y < 0.0) { p.y = -p.y; vy[id] = -vy[id]; }
        if (p.x > side) { p.x = 2.0 * side - p.x; vx[id] = -vx[id]; }
        if (p.y > side) { p.y = 2.0 * side - p.y; vy[id] = -vy[id]; }
        world.topology().move_node(id, p);
      }
      proto.on_mobility_tick();
      world.run_for(1.0);
    }
  }
  phases.push_back(meter.end("drift"));

  // -- Phase 3: mass departure ----------------------------------------------
  // Every third node leaves; alternating graceful (protocol farewell, short
  // settle, then the radio goes dark — harness/driver.cpp's contract) and
  // abrupt (the radio goes dark mid-conversation).  Departures go out in 20
  // batches so the phase spans constant simulated time at any n — the wave
  // structure of an evening rush, not a single-file exit.
  meter.begin();
  {
    std::vector<NodeId> graceful, abrupt;
    std::uint32_t departed = 0;
    for (NodeId id = 1; id < n; id += 3, ++departed) {
      if (!world.topology().has_node(id)) continue;
      (departed % 2 == 0 ? graceful : abrupt).push_back(id);
    }
    const std::size_t batches = 20;
    for (std::size_t b = 0; b < batches; ++b) {
      const auto slice = [&](const std::vector<NodeId>& v) {
        const std::size_t lo = v.size() * b / batches;
        const std::size_t hi = v.size() * (b + 1) / batches;
        return std::pair<std::size_t, std::size_t>{lo, hi};
      };
      const auto [glo, ghi] = slice(graceful);
      for (std::size_t i = glo; i < ghi; ++i)
        proto.node_departing(graceful[i]);
      world.run_for(0.5);  // farewells propagate before the radios go dark
      for (std::size_t i = glo; i < ghi; ++i) {
        world.topology().remove_node(graceful[i]);
        proto.node_left(graceful[i]);
      }
      const auto [alo, ahi] = slice(abrupt);
      for (std::size_t i = alo; i < ahi; ++i) {
        world.topology().remove_node(abrupt[i]);
        proto.node_vanished(abrupt[i]);
      }
      world.run_for(0.5);
    }
    world.run_for(10.0);
  }
  phases.push_back(meter.end("departure"));

  // -- Phase 4: quiescent plateau --------------------------------------------
  meter.begin();
  world.run_for(20.0);
  phases.push_back(meter.end("plateau"));

  // -- Report ----------------------------------------------------------------
  const Topology& topo = world.topology();
  const auto& arena = CaptureArena::instance();

  TextTable t({"phase", "wall_s", "peak_rss_mib", "events", "allocs",
               "allocs_per_event", "configured"});
  for (const PhaseReport& p : phases) {
    t.add_row({p.name, format_double(p.wall_s, 3),
               format_double(p.peak_rss_mib, 1), std::to_string(p.events),
               std::to_string(p.allocs), format_double(p.allocs_per_event, 4),
               std::to_string(p.configured)});
  }
  std::printf("fig_metro: city day, n=%u, side=%.0f m, range=%.0f m\n\n%s\n",
              n, side, kRange, t.render().c_str());
  std::printf(
      "topology: %llu incremental patches, %llu full rebuilds, "
      "%llu component repairs\n",
      static_cast<unsigned long long>(topo.csr_incremental_patches()),
      static_cast<unsigned long long>(topo.csr_full_rebuilds()),
      static_cast<unsigned long long>(topo.component_repairs()));
  std::printf(
      "capture arena: %llu blocks reused, %llu fresh, %zu bytes carved\n",
      static_cast<unsigned long long>(arena.reused()),
      static_cast<unsigned long long>(arena.fresh()), arena.arena_bytes());

  if (const char* path = std::getenv("QIP_BENCH_JSON")) {
    JsonValue rows = JsonValue::array();
    for (const PhaseReport& p : phases) {
      rows.push(JsonValue::object()
                    .set("name", p.name)
                    .set("wall_s", p.wall_s)
                    .set("peak_rss_mib", p.peak_rss_mib)
                    .set("events", p.events)
                    .set("allocs", p.allocs)
                    .set("allocs_per_event", p.allocs_per_event)
                    .set("configured", p.configured));
    }
    JsonValue doc = JsonValue::object();
    doc.set("bench", "fig_metro")
        .set("nodes", n)
        .set("area_side_m", side)
        .set("range_m", kRange)
        .set("phases", std::move(rows))
        .set("topo",
             JsonValue::object()
                 .set("incremental_patches", topo.csr_incremental_patches())
                 .set("full_rebuilds", topo.csr_full_rebuilds())
                 .set("component_repairs", topo.component_repairs()))
        .set("arena",
             JsonValue::object()
                 .set("blocks_reused", arena.reused())
                 .set("blocks_fresh", arena.fresh())
                 .set("bytes", static_cast<std::uint64_t>(arena.arena_bytes())));
    if (!doc.write_file(path)) {
      std::fprintf(stderr, "fig_metro: failed to write %s\n", path);
      return 1;
    }
    std::printf("wrote %s\n", path);
  }
  return 0;
}
