// Microbenchmarks for the observability layer: what a disabled
// instrumentation site costs (the branch every hot path pays), what an
// enabled one costs (ring write, no allocation), and the end-to-end drag on
// a representative transport workload.  The budget: tracing disabled must
// stay within noise of no instrumentation at all.
#include <benchmark/benchmark.h>

#include "harness/driver.hpp"
#include "harness/world.hpp"
#include "core/qip_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"

using namespace qip;

namespace {

/// Scope guard: the recorder is process-global, so every enabling bench
/// must hand it back disabled and empty.
struct TraceOff {
  ~TraceOff() {
    auto& rec = obs::process_recorder();
    rec.disable();
    rec.clear();
  }
};

}  // namespace

static void BM_InstantDisabled(benchmark::State& state) {
  auto& rec = obs::process_recorder();
  rec.disable();
  for (auto _ : state) {
    // The exact shape of every instrumentation site: one guarded call.
    if (obs::tracing_on()) {
      rec.instant(1.0, "unicast", "net", 7,
                  {{"traffic", "configuration"}, {"hops", std::uint32_t{3}}});
    }
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_InstantDisabled);

static void BM_InstantEnabled(benchmark::State& state) {
  TraceOff guard;
  auto& rec = obs::process_recorder();
  rec.enable();
  rec.clear();
  for (auto _ : state) {
    if (obs::tracing_on()) {
      rec.instant(1.0, "unicast", "net", 7,
                  {{"traffic", "configuration"}, {"hops", std::uint32_t{3}}});
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InstantEnabled);

static void BM_SpanEnabled(benchmark::State& state) {
  TraceOff guard;
  auto& rec = obs::process_recorder();
  rec.enable();
  rec.clear();
  for (auto _ : state) {
    const auto id = rec.begin_span(1.0, "config_txn", "qip", 7,
                                   {{"txn", std::uint64_t{42}}});
    rec.end_span(2.0, id, "config_txn", "qip", 7, {{"outcome", "committed"}});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_SpanEnabled);

static void BM_MetricsCounterCached(benchmark::State& state) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("qip_bench_total", {{"traffic", "configuration"}});
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c.value());
  }
}
BENCHMARK(BM_MetricsCounterCached);

static void BM_MetricsCounterLookup(benchmark::State& state) {
  obs::MetricsRegistry reg;
  for (auto _ : state) {
    reg.counter("qip_bench_total", {{"traffic", "configuration"}}).inc();
  }
}
BENCHMARK(BM_MetricsCounterLookup);

/// The ProfileScope exit path: interned by site address after the first
/// observation.  `slow_lookups` must report 0 — one string-keyed map walk
/// in the timed region is a regression (tests/obs_test.cpp enforces the
/// same invariant functionally).
static void BM_ProfileObserveInterned(benchmark::State& state) {
  obs::MetricsRegistry reg;
  static const char* kSite = "bench_site";
  reg.profile_histogram(kSite);  // warm the intern cache
  const std::uint64_t before = reg.map_lookups();
  for (auto _ : state) {
    reg.profile_histogram(kSite).observe(1.5);
  }
  state.counters["slow_lookups"] =
      static_cast<double>(reg.map_lookups() - before);
}
BENCHMARK(BM_ProfileObserveInterned);

/// The honest number: a full bring-up through the instrumented transport,
/// tracing off vs on.  Arg(0)=off, Arg(1)=on.
static void BM_BringupTraced(benchmark::State& state) {
  TraceOff guard;
  auto& rec = obs::process_recorder();
  const bool traced = state.range(0) != 0;
  for (auto _ : state) {
    if (traced) {
      rec.enable();
      rec.clear();
    } else {
      rec.disable();
    }
    World world({}, /*seed=*/11);
    QipEngine proto(world.transport(), world.rng(), QipParams{});
    proto.start_hello();
    Driver driver(world, proto);
    driver.join(40);
    world.run_for(5.0);
    benchmark::DoNotOptimize(driver.configured_fraction());
  }
}
BENCHMARK(BM_BringupTraced)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
