// Ablation bench for the §V protocol extensions DESIGN.md calls out:
//
//   1. Address borrowing (§V-A): with a deliberately tight pool, how many
//      configurations succeed with and without QuorumSpace borrowing?
//   2. Dynamic linear voting (§II-D): configuration success and latency
//      under head churn, distinguished-copy tie-break on vs. strict
//      majority.
//   3. Replica floor (§V-B): min_qdset sweep — replication level vs. the
//      maintenance overhead it costs and the QDSet size it buys.
//
// Like the figure benches, rounds are controlled by QIP_ROUNDS.
#include <cstdio>

#include "bench_figure_main.hpp"
#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/figures.hpp"
#include "harness/parallel.hpp"
#include "harness/world.hpp"
#include "sim/sim_context.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace qip;

namespace {

struct Outcome {
  double configured = 0.0;
  double latency = 0.0;
  double failures = 0.0;
  double maintenance_hops = 0.0;
  double qdset = 0.0;
};

Outcome run(const QipParams& qp, std::uint32_t nn, std::uint64_t seed,
            SimContext& ctx, double abrupt_head_ratio = 0.0) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  World world(wp, seed, ctx);
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  Driver d(world, proto);
  d.join(nn);
  world.run_for(3.0);

  if (abrupt_head_ratio > 0.0) {
    // Kill a share of the cluster heads, then keep joining: the quorum
    // machinery must keep configuring through the churn.
    for (NodeId h : proto.clusters().heads()) {
      if (world.rng().chance(abrupt_head_ratio)) d.depart_abrupt(h);
    }
    world.run_for(8.0);
    d.join(nn / 5);
    world.run_for(5.0);
  }

  Outcome out;
  out.configured = d.configured_fraction();
  out.latency = d.mean_config_latency();
  out.failures = static_cast<double>(proto.config_failures());
  out.maintenance_hops =
      static_cast<double>(world.stats().of(Traffic::kMaintenance).hops);
  out.qdset = proto.average_qdset_size();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t rounds = rounds_from_env(3);
  const std::uint32_t jobs = benchmain::jobs_from_args(argc, argv);

  // --- 1. Borrowing, under a pool squeezed to 1.6x the population --------
  std::printf("== Ablation A: QuorumSpace borrowing (§V-A), pool=96, nn=60 "
              "==\n");
  {
    TextTable t({"variant", "configured%", "failures", "latency"});
    for (bool borrowing : {true, false}) {
      RunningStats cfg, fail, lat;
      run_cells<Outcome>(
          process_context(), jobs, rounds,
          [&](std::size_t r, SimContext& ctx) {
            QipParams qp;
            qp.pool_size = 96;
            qp.enable_borrowing = borrowing;
            return run(qp, 60, 1000 + r, ctx);
          },
          [&](std::size_t, Outcome&& o) {
            cfg.add(100.0 * o.configured);
            fail.add(o.failures);
            lat.add(o.latency);
          });
      t.add_row({borrowing ? "borrowing on" : "borrowing off",
                 format_double(cfg.mean(), 1), format_double(fail.mean(), 1),
                 format_double(lat.mean(), 2)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // --- 2. Dynamic linear voting under head churn -------------------------
  std::printf("== Ablation B: dynamic linear voting (§II-D) under 40%% head "
              "failure, nn=100 ==\n");
  {
    TextTable t({"variant", "configured%", "failures", "latency"});
    for (bool dl : {true, false}) {
      RunningStats cfg, fail, lat;
      run_cells<Outcome>(
          process_context(), jobs, rounds,
          [&](std::size_t r, SimContext& ctx) {
            QipParams qp;
            qp.quorum = dl ? QuorumBackend::kDynamicLinear
                           : QuorumBackend::kMajority;
            return run(qp, 100, 2000 + r, ctx, /*abrupt_head_ratio=*/0.4);
          },
          [&](std::size_t, Outcome&& o) {
            cfg.add(100.0 * o.configured);
            fail.add(o.failures);
            lat.add(o.latency);
          });
      t.add_row({dl ? "dynamic linear" : "strict majority",
                 format_double(cfg.mean(), 1), format_double(fail.mean(), 1),
                 format_double(lat.mean(), 2)});
    }
    std::printf("%s\n", t.render().c_str());
  }

  // --- 3. Replica floor sweep --------------------------------------------
  std::printf("== Ablation C: replica floor min_qdset (§V-B), nn=100 ==\n");
  {
    TextTable t({"min_qdset", "avg |QDSet|", "maintenance hops",
                 "configured%"});
    for (std::uint32_t floor : {0u, 2u, 3u, 5u}) {
      RunningStats qd, maint, cfg;
      run_cells<Outcome>(
          process_context(), jobs, rounds,
          [&](std::size_t r, SimContext& ctx) {
            QipParams qp;
            qp.min_qdset = floor;
            return run(qp, 100, 3000 + r, ctx);
          },
          [&](std::size_t, Outcome&& o) {
            qd.add(o.qdset);
            maint.add(o.maintenance_hops);
            cfg.add(100.0 * o.configured);
          });
      t.add_row({format_double(floor, 0), format_double(qd.mean(), 2),
                 format_double(maint.mean(), 0),
                 format_double(cfg.mean(), 1)});
    }
    std::printf("%s\n", t.render().c_str());
  }
  std::printf("(rounds per cell: %u; set QIP_ROUNDS to raise)\n\n", rounds);
  return 0;
}
