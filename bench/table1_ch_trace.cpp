// Regenerates Table 1 of Xu & Wu, ICDCS'07: the message exchange of a
// cluster-head configuration (CH_REQ, CH_PRP, CH_CNF, QUORUM_CLT,
// QUORUM_CFM, CH_CFG, CH_ACK), traced live from the protocol engine.
#include <cstdio>
#include <vector>

#include "bench_figure_main.hpp"
#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

using namespace qip;

int main(int argc, char** argv) {
  // One traced exchange — nothing to replicate, but --jobs/QIP_JOBS are
  // still validated for a uniform figure-suite invocation.
  (void)benchmain::jobs_from_args(argc, argv);
  WorldParams wp;
  wp.transmission_range = 200.0;
  World world(wp, /*seed=*/11);

  QipParams qp;
  qp.pool_size = 256;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();

  DriverOptions dopt;
  dopt.mobility = false;
  Driver driver(world, proto, dopt);

  // Grow until the next join will be a cluster-head configuration: the
  // trace is armed, and we stop at the first CH_REQ-initiated exchange.
  std::vector<TraceEvent> events;
  bool armed = false;
  proto.set_trace([&](const TraceEvent& ev) {
    if (ev.msg == QipMsg::kChReq) {
      // Keep only the newest exchange: later ones involve a populated QDSet
      // and therefore show the quorum collection of Table 1.
      events.clear();
      armed = true;
    }
    if (armed) events.push_back(ev);
  });

  std::printf("== Table 1: cluster head configuration message exchange ==\n");
  driver.join(60);
  world.run_for(2.0);

  std::printf("%-12s %-6s %-6s %-5s %s\n", "message", "from", "to", "hops",
              "detail");
  std::size_t shown = 0;
  for (const auto& ev : events) {
    switch (ev.msg) {
      case QipMsg::kChReq:
      case QipMsg::kChPrp:
      case QipMsg::kChCnf:
      case QipMsg::kQuorumClt:
      case QipMsg::kQuorumCfm:
      case QipMsg::kQuorumUpd:
      case QipMsg::kChCfg:
      case QipMsg::kChAck:
        std::printf("%-12s %-6u %-6u %-5u %s\n", to_string(ev.msg), ev.from,
                    ev.to, ev.hops, ev.detail.c_str());
        ++shown;
        break;
      default:
        break;
    }
    if (ev.msg == QipMsg::kChAck) break;  // exchange complete
  }
  if (shown == 0) {
    std::printf("(no cluster-head configuration occurred; rerun with a "
                "different seed)\n");
  }
  std::printf("\n");
  return 0;
}
