// Quorum-backend ablation (docs/QUORUM.md).
//
// Three sections:
//
//   A. Intersection checker — the safety side.  Runs the property-based
//      checker (exhaustive over small QDSets, seeded-random over larger
//      ones) against every backend, and shows it refuting a deliberately
//      broken federated configuration (disjoint trust cliques).
//   B. Availability under faults — the liveness side.  Replays the PR-1
//      fault plans (message loss, permanent head outages) against each
//      backend and reports configured fraction / latency / overhead: what
//      the dynamic-linear discount (and its absence) costs under stress.
//   C. Figure 12 per-backend sweep — the paper's quorum-size story
//      (visible IP space per head vs network size) re-run under each
//      backend via QIP_QUORUM.
//
// Arms are selected with QIP_QUORUM (default: all three).  Rounds come from
// QIP_ROUNDS; QIP_BENCH_JSON=<path> additionally writes sections A and B as
// JSON (BENCH_quorum.json at the repo root is the committed baseline,
// validated by the bench_json_quorum ctest).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_figure_main.hpp"
#include "core/qip_engine.hpp"
#include "fault/fault_plan.hpp"
#include "harness/driver.hpp"
#include "harness/parallel.hpp"
#include "harness/world.hpp"
#include "quorum/intersection_checker.hpp"
#include "quorum/quorum_policy.hpp"
#include "sim/sim_context.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace qip;

namespace {

constexpr QuorumBackend kBackends[] = {QuorumBackend::kMajority,
                                       QuorumBackend::kDynamicLinear,
                                       QuorumBackend::kSlices};

constexpr std::uint32_t kPopulation = 50;
constexpr std::uint32_t kJoinUnderFaults = 10;

// ---------------------------------------------------------------------------
// Section A: intersection checker
// ---------------------------------------------------------------------------

void render_checker(TextTable& t, JsonValue& out, const char* backend,
                    const char* mode, std::uint32_t n,
                    const IntersectionReport& r) {
  t.add_row({backend, mode, std::to_string(n), std::to_string(r.views),
             std::to_string(r.shrinks), std::to_string(r.pairs),
             r.ok ? "intersects" : "REFUTED"});
  out.push(JsonValue::object()
               .set("backend", backend)
               .set("mode", mode)
               .set("universe", n)
               .set("views", static_cast<double>(r.views))
               .set("shrinks", static_cast<double>(r.shrinks))
               .set("pairs", static_cast<double>(r.pairs))
               .set("ok", r.ok));
}

JsonValue section_checker() {
  std::printf("== A. Quorum-intersection checker: every reachable view, "
              "including mid-adjustment ==\n");
  JsonValue rows = JsonValue::array();
  TextTable t({"backend", "check", "n", "views", "shrinks", "pairs",
               "verdict"});
  for (QuorumBackend b : kBackends) {
    const QuorumPolicy& policy = quorum_policy(b);
    render_checker(t, rows, policy.name(), "exhaustive", 5,
                   check_intersection_exhaustive(policy, 5));
    render_checker(t, rows, policy.name(), "exhaustive", 6,
                   check_intersection_exhaustive(policy, 6));
    render_checker(t, rows, policy.name(), "random", 14,
                   check_intersection_random(policy, 14, 0x5eed, 48));
  }
  // Federated declarations beyond flat majority: a sound non-uniform config
  // passes, two self-trusting cliques are refuted.
  {
    std::vector<std::uint32_t> u6{1, 2, 3, 4, 5, 6};
    render_checker(t, rows, "slices(flat)", "config", 6,
                   check_slice_config(SliceConfig::flat_majority(u6), u6));
    SliceConfig broken;
    QuorumSlice left, right;
    left.threshold = 2;
    left.validators = {1, 2, 3};
    right.threshold = 2;
    right.validators = {4, 5, 6};
    for (std::uint32_t n : {1u, 2u, 3u}) broken.set(n, left);
    for (std::uint32_t n : {4u, 5u, 6u}) broken.set(n, right);
    const IntersectionReport r = check_slice_config(broken, u6);
    render_checker(t, rows, "slices(cliques)", "config", 6, r);
    if (r.ok) {
      std::fprintf(stderr, "BUG: disjoint-clique config not refuted\n");
      std::exit(1);
    }
    std::printf("%s", t.render().c_str());
    std::printf("refutation: %s\n\n", r.violation.c_str());
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Section B: availability vs intersection under the PR-1 fault plans
// ---------------------------------------------------------------------------

struct Outcome {
  double configured = 0.0;
  double latency = 0.0;
  double protocol_hops = 0.0;
};

struct PlanSpec {
  const char* name;
  FaultPlan plan;
};

std::vector<PlanSpec> fault_plans() {
  std::vector<PlanSpec> plans;
  plans.push_back({"none", {}});
  FaultPlan drop10;
  drop10.drop = 0.10;
  plans.push_back({"drop 10%", drop10});
  FaultPlan drop30;
  drop30.drop = 0.30;
  plans.push_back({"drop 30%", drop30});
  FaultPlan outage;  // three heads go permanently dark mid-run
  for (NodeId n : {NodeId{1}, NodeId{2}, NodeId{3}}) {
    outage.node_outages.push_back({n, 15.0, 1.0e18});
  }
  plans.push_back({"3 node crashes", outage});
  return plans;
}

Outcome run_cell(QuorumBackend backend, const FaultPlan& plan,
                 std::uint64_t seed, SimContext& ctx) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  wp.area_side = 600.0;  // dense enough that QDSets span several heads
  World world(wp, seed, ctx);
  QipParams qp;
  qp.quorum = backend;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  Driver d(world, proto);

  PhaseMeter meter(world.stats());
  d.join(kPopulation);
  world.run_for(10.0);  // converge before faults engage
  if (!plan.null()) world.enable_faults(plan);
  meter.reset();
  d.join(kJoinUnderFaults);  // configure through the faults
  world.run_for(25.0);

  Outcome out;
  out.configured = d.configured_fraction();
  out.latency = d.mean_config_latency();
  out.protocol_hops = static_cast<double>(meter.protocol_hops());
  return out;
}

JsonValue section_availability(std::uint32_t rounds, std::uint32_t jobs,
                               QuorumBackend only, bool all_backends) {
  std::printf("== B. Availability under fault plans: %u nodes, %u joining "
              "under faults ==\n",
              kPopulation, kJoinUnderFaults);
  JsonValue cells = JsonValue::array();
  TextTable t({"fault plan", "backend", "configured%", "latency", "hops"});
  const auto plans = fault_plans();
  for (std::size_t p = 0; p < plans.size(); ++p) {
    for (std::size_t bi = 0; bi < 3; ++bi) {
      const QuorumBackend backend = kBackends[bi];
      if (!all_backends && backend != only) continue;
      RunningStats cfg, lat, hops;
      run_cells<Outcome>(
          process_context(), jobs, rounds,
          [&](std::size_t r, SimContext& ctx) {
            // Same seed for every backend: the columns compare the quorum
            // rule on identical scenario draws, so the majority and slices
            // rows coming out identical is the count-equivalence showing.
            const std::uint64_t seed =
                9000 + 100 * static_cast<std::uint64_t>(p) + r;
            return run_cell(backend, plans[p].plan, seed, ctx);
          },
          [&](std::size_t, Outcome&& o) {
            cfg.add(100.0 * o.configured);
            lat.add(o.latency);
            hops.add(o.protocol_hops);
          });
      t.add_row({plans[p].name, to_string(backend),
                 format_double(cfg.mean(), 1), format_double(lat.mean(), 2),
                 format_double(hops.mean(), 0)});
      cells.push(JsonValue::object()
                     .set("plan", plans[p].name)
                     .set("backend", to_string(backend))
                     .set("rounds", rounds)
                     .set("configured_pct", cfg.mean())
                     .set("latency_hops", lat.mean())
                     .set("protocol_hops", hops.mean()));
    }
  }
  std::printf("%s\n", t.render().c_str());
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  benchmain::apply_quorum_args(argc, argv);
  const std::uint32_t rounds = rounds_from_env(2);
  const std::uint32_t jobs = benchmain::jobs_from_args(argc, argv);

  // QIP_QUORUM narrows sections B and C to one arm (the checker section is
  // cheap and always covers all backends).
  const char* env_raw = std::getenv("QIP_QUORUM");
  const bool had_env = (env_raw != nullptr && *env_raw != '\0');
  const std::string env = had_env ? env_raw : "";
  const bool all_backends = !had_env;
  const QuorumBackend only = quorum_backend_from_env();

  JsonValue checker = section_checker();
  JsonValue cells = section_availability(rounds, jobs, only, all_backends);

  std::printf("== C. Figure 12 sweep per backend ==\n");
  ExperimentOptions opt;
  opt.rounds = rounds;
  opt.jobs = jobs;
  for (QuorumBackend b : kBackends) {
    if (!all_backends && b != only) continue;
    setenv("QIP_QUORUM", to_string(b), /*overwrite=*/1);
    std::printf("-- backend: %s --\n", to_string(b));
    std::printf("%s", fig12_quorum_space(opt).render().c_str());
  }
  if (had_env) {
    setenv("QIP_QUORUM", env.c_str(), 1);
  } else {
    unsetenv("QIP_QUORUM");
  }
  std::printf("(rounds per cell: %u; set QIP_ROUNDS to raise, QIP_QUORUM to "
              "pick one arm)\n\n",
              rounds);

  if (const char* path = std::getenv("QIP_BENCH_JSON")) {
    JsonValue doc = JsonValue::object();
    doc.set("bench", "ablation_quorum_backend")
        .set("population", kPopulation)
        .set("join_under_faults", kJoinUnderFaults)
        .set("rounds", rounds)
        .set("checker", std::move(checker))
        .set("cells", std::move(cells));
    if (!doc.write_file(path)) {
      std::fprintf(stderr, "failed to write %s\n", path);
      return 1;
    }
    std::printf("wrote %s\n", path);
  }
  return 0;
}
