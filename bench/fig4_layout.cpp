// Regenerates Fig. 4 of Xu & Wu, ICDCS'07: a randomly generated network
// layout (100 nodes, 1 km x 1 km) after clustering, as an ASCII map.
#include <cstdio>

#include "bench_figure_main.hpp"
#include "harness/figures.hpp"

int main(int argc, char** argv) {
  // A single layout has no replication to fan out, but --jobs/QIP_JOBS are
  // still validated so the whole figure suite accepts a uniform invocation.
  (void)qip::benchmain::jobs_from_args(argc, argv);
  const qip::LayoutStats layout = qip::fig4_layout(/*seed=*/7, 100, 150.0);
  std::printf("== Fig 4: random 100-node layout (1km x 1km, tr=150m) ==\n");
  std::printf("'#' = cluster head, 'o' = common node\n%s",
              layout.ascii_map.c_str());
  std::printf(
      "nodes=%zu  cluster heads=%zu  mean cluster size=%.2f  mean "
      "|QDSet|=%.2f\n\n",
      layout.nodes, layout.heads, layout.mean_cluster_size,
      layout.mean_qdset);
  return 0;
}
