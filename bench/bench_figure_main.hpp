// Shared main() skeleton for the figure-reproduction benches.
//
// Each bench binary regenerates one figure of the paper and prints the same
// series the paper plots, as an aligned table.  QIP_ROUNDS in the
// environment raises the number of rounds per data point (default is small
// so the whole suite finishes in minutes; the paper used 1000).
#pragma once

#include <cstdio>

#include "harness/figures.hpp"

namespace qip::benchmain {

inline int run(FigureData (*figure)(const ExperimentOptions&),
               std::uint32_t default_rounds = 3) {
  ExperimentOptions opt;
  opt.rounds = rounds_from_env(default_rounds);
  const FigureData fig = figure(opt);
  std::printf("%s", fig.render().c_str());
  std::printf("(rounds per point: %u; set QIP_ROUNDS to raise)\n\n",
              opt.rounds);
  return 0;
}

}  // namespace qip::benchmain
