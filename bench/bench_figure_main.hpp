// Shared main() skeleton for the figure-reproduction benches.
//
// Each bench binary regenerates one figure of the paper and prints the same
// series the paper plots, as an aligned table.  QIP_ROUNDS in the
// environment raises the number of rounds per data point (default is small
// so the whole suite finishes in minutes; the paper used 1000).
//
// Replication parallelism: --jobs N (or QIP_JOBS) fans the (x, round) cells
// across N worker threads.  The output is byte-identical for every value —
// the point of the deterministic runner — so the table deliberately never
// mentions which jobs count produced it.
// Quorum backend: --quorum NAME (or QIP_QUORUM) selects majority /
// dynamic_linear / slices for every engine the bench constructs; malformed
// names exit 2 before any cell runs (docs/QUORUM.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/env.hpp"
#include "harness/figures.hpp"
#include "harness/parallel.hpp"
#include "quorum/quorum_policy.hpp"

namespace qip::benchmain {

/// Parses --quorum NAME / --quorum=NAME into QIP_QUORUM so the backend
/// reaches every internally-constructed QipParams; exits 2 on a bad name.
inline void apply_quorum_args(int argc, const char* const* argv) {
  const char* chosen = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quorum") == 0 && i + 1 < argc) {
      chosen = argv[i + 1];
    } else if (std::strncmp(arg, "--quorum=", 9) == 0) {
      chosen = arg + 9;
    }
  }
  if (chosen != nullptr) {
    if (!parse_quorum_backend(chosen)) {
      std::fprintf(stderr,
                   "--quorum %s is not a quorum backend (expected "
                   "\"majority\", \"dynamic_linear\" or \"slices\")\n",
                   chosen);
      std::exit(2);
    }
    setenv("QIP_QUORUM", chosen, /*overwrite=*/1);
  }
  // Validate eagerly even when only the env var is set, so a typo fails
  // fast instead of mid-run at the first QipParams construction.
  (void)quorum_backend_from_env();
}

/// Parses --jobs N / --jobs=N, falling back to QIP_JOBS, then `fallback`.
inline std::uint32_t jobs_from_args(int argc, const char* const* argv,
                                    std::uint32_t fallback = 1) {
  std::uint32_t jobs = jobs_from_env(fallback);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      jobs = parse_positive_u32("--jobs", argv[i + 1]);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      jobs = parse_positive_u32("--jobs", arg + 7);
    }
  }
  return jobs;
}

inline int run(FigureData (*figure)(const ExperimentOptions&), int argc = 0,
               const char* const* argv = nullptr,
               std::uint32_t default_rounds = 3) {
  apply_quorum_args(argc, argv);
  ExperimentOptions opt;
  opt.rounds = rounds_from_env(default_rounds);
  opt.jobs = jobs_from_args(argc, argv);
  const FigureData fig = figure(opt);
  std::printf("%s", fig.render().c_str());
  std::printf("(rounds per point: %u; set QIP_ROUNDS to raise)\n\n",
              opt.rounds);
  return 0;
}

}  // namespace qip::benchmain
