// Scaling microbench for the deterministic parallel runner: the same fixed
// grid of replication cells (QIP bring-up worlds) at 1/2/4/8 workers.
// Wall-clock time (UseRealTime) is the honest metric — worker threads do
// the simulating, so main-thread CPU time would report nearly nothing.
//
// QIP_ROUNDS sets the cell count (default 8; the acceptance run uses 20).
// Speedup is bounded by the machine: on a single-core container every jobs
// value reports the same time, by design — the runner trades nothing for
// determinism, it only adds merge ordering.
#include <benchmark/benchmark.h>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/figures.hpp"
#include "harness/parallel.hpp"
#include "harness/world.hpp"
#include "sim/sim_context.hpp"

using namespace qip;

static void BM_ParallelCells(benchmark::State& state) {
  const auto jobs = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t cells = rounds_from_env(8);
  double checksum = 0.0;
  for (auto _ : state) {
    double acc = 0.0;
    run_cells<double>(
        process_context(), jobs, cells,
        [](std::size_t idx, SimContext& ctx) {
          World w({}, /*seed=*/100 + idx, ctx);
          QipEngine proto(w.transport(), w.rng(), QipParams{});
          proto.start_hello();
          Driver d(w, proto);
          d.join(60);
          w.run_for(5.0);
          return d.mean_config_latency();
        },
        [&](std::size_t, double&& v) { acc += v; });
    benchmark::DoNotOptimize(acc);
    checksum = acc;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          cells);
  // Same cells, same seeds: every jobs value must agree on the merged sum.
  state.counters["checksum"] = checksum;
}
BENCHMARK(BM_ParallelCells)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
