// Tests for the related-work survey protocols (§III): Weak DAD [11],
// passive DAD [14] and Boleng's variable-length addressing [10].
#include <gtest/gtest.h>

#include <set>

#include "baselines/boleng.hpp"
#include "baselines/pdad.hpp"
#include "baselines/weak_dad.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

struct SurveyFixture : ::testing::Test {
  WorldParams wp{};
  World world{wp, /*seed=*/404};
  DriverOptions dopt{};

  void SetUp() override {
    dopt.mobility = false;
    dopt.arrival_interval = 0.2;
  }
};

// ---------------------------------------------------------------------------
// Weak DAD
// ---------------------------------------------------------------------------

TEST_F(SurveyFixture, WeakDadConfiguresInstantly) {
  WeakDadProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  const NodeId a = d.join_at({500, 500});
  ASSERT_TRUE(proto.configured(a));
  EXPECT_EQ(proto.config_record(a)->latency_hops, 0u);
  EXPECT_NE(proto.key_of(a), 0u);  // overwhelmingly likely
}

TEST_F(SurveyFixture, WeakDadDetectsAddressConflicts) {
  WeakDadParams wdp;
  wdp.pool_size = 2;  // force address collisions fast
  wdp.key_bits = 32;  // keys stay distinct
  WeakDadProtocol proto(world.transport(), world.rng(), wdp);
  Driver d(world, proto, dopt);
  d.join(8);  // 8 nodes, 2 addresses: guaranteed duplicates
  proto.update_tick();
  world.run_for(1.0);
  proto.update_tick();
  world.run_for(1.0);
  EXPECT_GT(proto.conflicts_detected(), 0u)
      << "link-state keys must reveal the duplicate addresses";
}

TEST_F(SurveyFixture, WeakDadBlindToAddressAndKeyCollision) {
  WeakDadParams wdp;
  wdp.pool_size = 1;
  wdp.key_bits = 1;  // keys collide half the time
  WeakDadProtocol proto(world.transport(), world.rng(), wdp);
  Driver d(world, proto, dopt);
  d.join(12);
  // With one address and 1-bit keys some nodes share both — the scheme's
  // documented blind spot.
  EXPECT_GT(proto.silent_collisions(), 0u);
}

TEST_F(SurveyFixture, WeakDadUpdatesCostMaintenance) {
  WeakDadProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join(10);
  const auto before = world.stats().of(Traffic::kMaintenance).hops;
  proto.update_tick();
  world.run_for(1.0);
  EXPECT_GT(world.stats().of(Traffic::kMaintenance).hops, before)
      << "link-state dissemination is the scheme's real cost";
}

// ---------------------------------------------------------------------------
// PDAD
// ---------------------------------------------------------------------------

TEST_F(SurveyFixture, PdadAddsNoProtocolTraffic) {
  PdadProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join(10);
  proto.routing_tick();
  world.run_for(1.0);
  // Everything PDAD consumes is the routing substrate's own traffic.
  EXPECT_EQ(world.stats().protocol_hops(), 0u);
  EXPECT_GT(world.stats().of(Traffic::kHello).hops, 0u);
}

TEST_F(SurveyFixture, PdadFlagsDuplicatesFromRoutingHints) {
  PdadParams pp;
  pp.pool_size = 3;  // force duplicates among 12 nodes
  PdadProtocol proto(world.transport(), world.rng(), pp);
  Driver d(world, proto, dopt);
  d.join(12);
  ASSERT_GT(proto.actual_duplicates(), 0u);
  for (int i = 0; i < 6; ++i) {
    proto.routing_tick();
    world.run_for(1.0);
  }
  EXPECT_GT(proto.duplicates_flagged(), 0u);
  EXPECT_GT(proto.reconfigurations(), 0u);
}

TEST_F(SurveyFixture, PdadEventuallyConverges) {
  PdadParams pp;
  pp.pool_size = 64;  // enough space that re-picks can find free addresses
  PdadProtocol proto(world.transport(), world.rng(), pp);
  Driver d(world, proto, dopt);
  d.join(20);
  for (int i = 0; i < 30 && proto.actual_duplicates() > 0; ++i) {
    proto.routing_tick();
    world.run_for(1.0);
  }
  EXPECT_EQ(proto.actual_duplicates(), 0u);
}

TEST_F(SurveyFixture, PdadUniqueWhenPoolLarge) {
  PdadProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join(25);
  for (int i = 0; i < 10 && proto.actual_duplicates() > 0; ++i) {
    proto.routing_tick();
    world.run_for(1.0);
  }
  std::set<IpAddress> addrs;
  for (NodeId id : d.members()) {
    auto a = proto.address_of(id);
    if (a) EXPECT_TRUE(addrs.insert(*a).second);
  }
}

// ---------------------------------------------------------------------------
// Boleng variable-length addressing
// ---------------------------------------------------------------------------

TEST_F(SurveyFixture, BolengAssignsMonotonicallyIncreasing) {
  BolengProtocol proto(world.transport(), world.rng());
  proto.start_beacons();
  Driver d(world, proto, dopt);
  const NodeId a = d.join_at({500, 500});
  world.run_for(1.5);
  const NodeId b = d.join_at({600, 500});
  world.run_for(1.5);
  const NodeId c = d.join_at({550, 560});
  world.run_for(1.5);
  EXPECT_EQ(proto.address_of(a), kPoolBase);
  EXPECT_LT(*proto.address_of(a), *proto.address_of(b));
  EXPECT_LT(*proto.address_of(b), *proto.address_of(c));
}

TEST_F(SurveyFixture, BolengAddressBitsGrow) {
  BolengProtocol proto(world.transport(), world.rng());
  proto.start_beacons();
  Driver d(world, proto, dopt);
  d.join(40);
  world.run_for(3.0);
  // 40 assignments need at least 6 bits; the parameter must have spread.
  std::uint32_t max_bits = 0;
  for (NodeId id : d.members()) {
    max_bits = std::max(max_bits, proto.address_bits(id));
  }
  EXPECT_GE(max_bits, 6u);
}

TEST_F(SurveyFixture, BolengNeverReusesAddresses) {
  BolengProtocol proto(world.transport(), world.rng());
  proto.start_beacons();
  Driver d(world, proto, dopt);
  const auto ids = d.join(10);
  world.run_for(2.0);
  const IpAddress departed = *proto.address_of(ids[4]);
  d.depart_graceful(ids[4]);
  world.run_for(2.0);
  const NodeId fresh = d.join_one();
  world.run_for(2.0);
  ASSERT_TRUE(proto.configured(fresh));
  EXPECT_GT(*proto.address_of(fresh), departed)
      << "departed addresses are never reassigned within an epoch";
}

TEST_F(SurveyFixture, BolengUniqueWhileConnected) {
  BolengProtocol proto(world.transport(), world.rng());
  proto.start_beacons();
  Driver d(world, proto, dopt);
  d.join(30);
  world.run_for(3.0);
  EXPECT_EQ(proto.actual_duplicates(), 0u);
  std::set<IpAddress> addrs;
  for (NodeId id : d.members()) {
    auto a = proto.address_of(id);
    ASSERT_TRUE(a.has_value());
    EXPECT_TRUE(addrs.insert(*a).second);
  }
}

TEST_F(SurveyFixture, BolengMergeResolvesPartitionDuplicates) {
  BolengProtocol proto(world.transport(), world.rng());
  proto.start_beacons();
  DriverOptions opts = dopt;
  opts.connected_arrivals = false;
  Driver d(world, proto, opts);
  // Two far camps assign independently: duplicates by construction.
  const NodeId a1 = d.join_at({100, 500});
  const NodeId a2 = d.join_at({170, 500});
  const NodeId b1 = d.join_at({900, 500});
  const NodeId b2 = d.join_at({830, 500});
  world.run_for(2.0);
  EXPECT_GT(proto.actual_duplicates(), 0u);
  // Bridge the camps; the beacon census resolves the duplicates.
  for (double x : {270.0, 400.0, 530.0, 660.0, 790.0}) d.join_at({x, 500});
  world.run_for(5.0);
  EXPECT_EQ(proto.actual_duplicates(), 0u);
  (void)a1; (void)a2; (void)b1; (void)b2;
}

}  // namespace
}  // namespace qip
