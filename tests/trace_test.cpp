// Protocol-trace grammar tests: the engine's observable message sequences
// must follow the exchanges of §IV (Table 1 and Figures 2–3).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

struct TraceFixture : ::testing::Test {
  WorldParams wp{};
  World world{wp, /*seed=*/808};
  QipParams qp{};
  std::unique_ptr<QipEngine> proto;
  std::unique_ptr<Driver> driver;
  std::vector<TraceEvent> events;

  void init() {
    qp.pool_size = 256;
    proto = std::make_unique<QipEngine>(world.transport(), world.rng(), qp);
    proto->start_hello();
    proto->set_trace([this](const TraceEvent& ev) { events.push_back(ev); });
    DriverOptions dopt;
    dopt.mobility = false;
    dopt.arrival_interval = 1.0;
    driver = std::make_unique<Driver>(world, *proto, dopt);
  }

  std::vector<const TraceEvent*> of_kind(QipMsg m) const {
    std::vector<const TraceEvent*> out;
    for (const auto& ev : events) {
      if (ev.msg == m) out.push_back(&ev);
    }
    return out;
  }

  /// Index of the first event of kind m, or npos.
  std::size_t first_of(QipMsg m) const {
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].msg == m) return i;
    }
    return static_cast<std::size_t>(-1);
  }
};

TEST_F(TraceFixture, CommonNodeExchangeOrder) {
  init();
  driver->join_at({500, 500});
  world.run_for(5.0);
  events.clear();
  const NodeId b = driver->join_at({600, 500});
  world.run_for(2.0);
  ASSERT_TRUE(proto->configured(b));
  // COM_REQ strictly precedes COM_CFG, which precedes COM_ACK.
  const auto req = first_of(QipMsg::kComReq);
  const auto cfg = first_of(QipMsg::kComCfg);
  const auto ack = first_of(QipMsg::kComAck);
  ASSERT_NE(req, static_cast<std::size_t>(-1));
  ASSERT_NE(cfg, static_cast<std::size_t>(-1));
  ASSERT_NE(ack, static_cast<std::size_t>(-1));
  EXPECT_LT(req, cfg);
  EXPECT_LT(cfg, ack);
}

TEST_F(TraceFixture, QuorumReadPrecedesWrite) {
  init();
  // Two linked heads so quorum rounds actually run.
  driver->join_at({100, 500});
  world.run_for(5.0);
  driver->join_at({240, 500});
  driver->join_at({380, 500});
  driver->join_at({520, 500});
  world.run_for(3.0);
  events.clear();
  const NodeId c = driver->join_at({560, 560});
  world.run_for(3.0);
  ASSERT_TRUE(proto->configured(c));
  const auto clt = first_of(QipMsg::kQuorumClt);
  const auto cfm = first_of(QipMsg::kQuorumCfm);
  const auto upd = first_of(QipMsg::kQuorumUpd);
  ASSERT_NE(clt, static_cast<std::size_t>(-1));
  ASSERT_NE(cfm, static_cast<std::size_t>(-1));
  ASSERT_NE(upd, static_cast<std::size_t>(-1));
  EXPECT_LT(clt, cfm) << "votes cannot arrive before they are solicited";
  EXPECT_LT(cfm, upd) << "the write round must follow the read quorum";
  // Every CFM is a grant/busy/conflict — the detail field says which.
  for (const TraceEvent* ev : of_kind(QipMsg::kQuorumCfm)) {
    EXPECT_TRUE(ev->detail == "grant" || ev->detail == "busy" ||
                ev->detail == "conflict")
        << ev->detail;
  }
}

TEST_F(TraceFixture, Table1HandshakeComplete) {
  init();
  driver->join_at({100, 500});
  world.run_for(5.0);
  driver->join_at({240, 500});
  driver->join_at({380, 500});
  events.clear();
  const NodeId b = driver->join_at({520, 500});
  world.run_for(3.0);
  ASSERT_EQ(proto->state_of(b).role, Role::kClusterHead);
  const QipMsg order[] = {QipMsg::kChReq, QipMsg::kChPrp, QipMsg::kChCnf,
                          QipMsg::kChCfg, QipMsg::kChAck};
  std::size_t prev = 0;
  for (QipMsg m : order) {
    const auto at = first_of(m);
    ASSERT_NE(at, static_cast<std::size_t>(-1)) << to_string(m);
    EXPECT_GE(at, prev) << to_string(m) << " out of order";
    prev = at;
  }
}

TEST_F(TraceFixture, TimesAreNonDecreasing) {
  init();
  driver->join(10);
  world.run_for(5.0);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
  EXPECT_GT(events.size(), 10u);
}

TEST_F(TraceFixture, DepartureEmitsReturnAddr) {
  init();
  driver->join_at({500, 500});
  world.run_for(5.0);
  const NodeId b = driver->join_at({600, 500});
  world.run_for(2.0);
  events.clear();
  driver->depart_graceful(b);
  world.run_for(1.0);
  EXPECT_FALSE(of_kind(QipMsg::kReturnAddr).empty());
  EXPECT_FALSE(of_kind(QipMsg::kReturnAck).empty());
}

}  // namespace
}  // namespace qip
