// Randomized property sweeps across seeds (TEST_P): protocol-level
// invariants that must hold for any arrival pattern, plus harness-level
// conservation checks.
#include <gtest/gtest.h>

#include <set>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

class QipSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QipSeedProperty, StaticJoinUniquenessAndConservation) {
  WorldParams wp;
  World world(wp, GetParam());
  QipParams qp;
  qp.pool_size = 512;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  DriverOptions dopt;
  dopt.mobility = false;
  Driver d(world, proto, dopt);
  d.join(40);
  world.run_for(5.0);

  // 1. Uniqueness.
  std::set<IpAddress> addrs;
  for (const auto& [id, addr] : proto.configured_addresses()) {
    ASSERT_TRUE(addrs.insert(addr).second) << "duplicate " << addr;
  }

  // 2. Conservation: in a static single network, every head's universe is a
  // sub-block of the pool and the union of universes plus nothing else
  // covers exactly the pool.
  const AddressBlock pool = AddressBlock::contiguous(qp.pool_base,
                                                     qp.pool_size);
  AddressBlock covered;
  std::uint64_t total = 0;
  for (NodeId id : d.members()) {
    if (!proto.knows(id)) continue;
    const auto& st = proto.state_of(id);
    if (st.role != Role::kClusterHead) continue;
    ASSERT_TRUE(pool.contains_all(st.owned_universe));
    ASSERT_TRUE(covered.disjoint_with(st.owned_universe));
    covered.merge(st.owned_universe);
    total += st.owned_universe.size();
  }
  EXPECT_EQ(total, qp.pool_size) << "head universes must partition the pool";

  // 3. Every allocated address belongs to a configured node or is the
  // head's own, and free pools never contain allocated addresses.
  for (NodeId id : d.members()) {
    if (!proto.knows(id)) continue;
    const auto& st = proto.state_of(id);
    if (st.role != Role::kClusterHead) continue;
    for (IpAddress a : st.table.known_addresses()) {
      if (st.table.allocated(a)) {
        EXPECT_FALSE(st.ip_space.contains(a));
      }
    }
  }
}

TEST_P(QipSeedProperty, ConfiguredFractionHigh) {
  WorldParams wp;
  World world(wp, GetParam() ^ 0xabcdef);
  QipEngine proto(world.transport(), world.rng(), QipParams{});
  proto.start_hello();
  Driver d(world, proto);
  d.join(60);
  world.run_for(5.0);
  EXPECT_GE(d.configured_fraction(), 0.9);
}

TEST_P(QipSeedProperty, LatencyBoundedByNetworkDiameter) {
  WorldParams wp;
  World world(wp, GetParam() ^ 0x1234);
  QipEngine proto(world.transport(), world.rng(), QipParams{});
  proto.start_hello();
  Driver d(world, proto);
  d.join(50);
  world.run_for(3.0);
  // Hop latency for any single configuration should never exceed a small
  // multiple of the diameter (request + quorum RTT + configure).
  for (NodeId id : d.members()) {
    const ConfigRecord* rec = proto.config_record(id);
    if (!rec || !rec->success) continue;
    EXPECT_LE(rec->latency_hops, 60u) << "node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QipSeedProperty,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006, 7007, 8008));

/// Graceful-departure round trips: after any sequence of joins and graceful
/// leaves the total free space across heads equals pool minus live nodes.
class DepartureProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DepartureProperty, GracefulLeaveRestoresSpace) {
  WorldParams wp;
  World world(wp, GetParam());
  QipParams qp;
  qp.pool_size = 512;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  DriverOptions dopt;
  dopt.mobility = false;
  Driver d(world, proto, dopt);
  d.join(30);
  world.run_for(3.0);

  // Gracefully retire 10 random non-head members.
  int retired = 0;
  auto members = d.members();
  world.rng().shuffle(members);
  for (NodeId id : members) {
    if (retired >= 10) break;
    if (!proto.knows(id)) continue;
    if (proto.state_of(id).role != Role::kCommonNode) continue;
    d.depart_graceful(id);
    ++retired;
  }
  world.run_for(5.0);

  // Count free + allocated across heads.
  std::uint64_t free_total = 0, alloc_total = 0;
  for (NodeId id : d.members()) {
    if (!proto.knows(id)) continue;
    const auto& st = proto.state_of(id);
    if (st.role != Role::kClusterHead) continue;
    free_total += st.ip_space.size();
    alloc_total += st.table.allocated_count();
  }
  const std::uint64_t live = [&] {
    std::uint64_t n = 0;
    for (NodeId id : d.members()) {
      if (proto.knows(id) && proto.configured(id)) ++n;
    }
    return n;
  }();
  // Every live node holds exactly one address; all returned addresses are
  // free again (static network, no leaks possible).
  EXPECT_EQ(alloc_total, live);
  EXPECT_EQ(free_total + alloc_total, qp.pool_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepartureProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace qip
