// Unit tests for the discrete-event core: ordering, cancellation, clock.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qip {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelDropsEvent) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EmptyIsExactUnderCancellation) {
  EventQueue q;
  auto a = q.schedule(1.0, [] {});
  auto b = q.schedule(2.0, [] {});
  a.cancel();
  b.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FiredHandleNotPending) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.pop().fn();
  EXPECT_FALSE(h.pending());
  h.cancel();  // harmless
}

TEST(EventQueue, DefaultHandleInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(EventQueue, LiveSizeExcludesTombstones) {
  EventQueue q;
  auto a = q.schedule(1.0, [] {});
  auto b = q.schedule(2.0, [] {});
  q.schedule(3.0, [] {});
  EXPECT_EQ(q.live_size(), 3u);
  a.cancel();
  // The tombstone still occupies a heap slot; live_size sees through it.
  EXPECT_EQ(q.live_size(), 2u);
  EXPECT_EQ(q.size(), 3u);
  b.cancel();
  EXPECT_EQ(q.live_size(), 1u);
  q.pop().fn();  // pops the sole live event (skipping tombstones)
  EXPECT_EQ(q.live_size(), 0u);
}

TEST(EventQueue, LiveSizeTracksPopsExactly) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(1.0 + i, [] {});
  for (std::size_t expect = 5; expect > 0; --expect) {
    EXPECT_EQ(q.live_size(), expect);
    q.pop().fn();
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.live_size(), 0u);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto a = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  a.cancel();
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(Simulator, ClockAdvancesMonotonically) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.after(2.0, [&] { seen.push_back(sim.now()); });
  sim.after(1.0, [&] {
    seen.push_back(sim.now());
    sim.after(0.5, [&] { seen.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[0], 1.0);
  EXPECT_DOUBLE_EQ(seen[1], 1.5);
  EXPECT_DOUBLE_EQ(seen[2], 2.0);
}

TEST(Simulator, RunHorizonIncludesBoundary) {
  Simulator sim;
  int fired = 0;
  sim.after(1.0, [&] { ++fired; });
  sim.after(2.0, [&] { ++fired; });
  sim.after(3.0, [&] { ++fired; });
  sim.run(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, HorizonAdvancesIdleClock) {
  Simulator sim;
  sim.run(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.after(-1.0, [] {}), InvariantViolation);
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.after(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(1.0, [] {}), InvariantViolation);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.after(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.after(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.after(0.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ResetEventsDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.after(1.0, [&] { ++fired; });
  sim.reset_events();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.after(static_cast<double>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, SelfReschedulingTimer) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 100) sim.after(1.0, tick);
  };
  sim.after(1.0, tick);
  sim.run();
  EXPECT_EQ(ticks, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

/// Property: simulator ordering matches a reference sort for random loads.
class SimOrderingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimOrderingProperty, MatchesReferenceOrder) {
  Rng rng(GetParam());
  Simulator sim;
  std::vector<std::pair<double, int>> expect;
  std::vector<int> got;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.uniform(0.0, 50.0);
    expect.emplace_back(t, i);
    sim.after(t, [&got, i] { got.push_back(i); });
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  sim.run();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimOrderingProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace qip
