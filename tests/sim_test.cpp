// Unit tests for the discrete-event core: ordering, cancellation, clock,
// handle lifetime edges, and heap-vs-calendar backend equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qip {
namespace {

std::string backend_name(
    const ::testing::TestParamInfo<SchedulerKind>& info) {
  return info.param == SchedulerKind::kHeap ? "heap" : "calendar";
}

/// Every EventQueue test runs on both scheduler backends: the backend is
/// mechanism, and all observable behavior must be identical.
class EventQueueTest : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  EventQueueTest() : q(GetParam()) {}
  EventQueue q;
};

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueTest,
                         ::testing::Values(SchedulerKind::kHeap,
                                           SchedulerKind::kCalendar),
                         backend_name);

TEST_P(EventQueueTest, OrdersByTime) {
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, TiesAreFifo) {
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(EventQueueTest, CancelDropsEvent) {
  int fired = 0;
  auto h = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST_P(EventQueueTest, EmptyIsExactUnderCancellation) {
  auto a = q.schedule(1.0, [] {});
  auto b = q.schedule(2.0, [] {});
  a.cancel();
  b.cancel();
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, FiredHandleNotPending) {
  auto h = q.schedule(1.0, [] {});
  q.pop().fn();
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(q.live_size(), 0u);
  h.cancel();  // harmless
  EXPECT_EQ(q.live_size(), 0u);
}

TEST_P(EventQueueTest, DefaultHandleInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST_P(EventQueueTest, LiveSizeExcludesTombstones) {
  auto a = q.schedule(1.0, [] {});
  auto b = q.schedule(2.0, [] {});
  q.schedule(3.0, [] {});
  EXPECT_EQ(q.live_size(), 3u);
  a.cancel();
  // The tombstone still occupies a backend slot; live_size sees through it.
  EXPECT_EQ(q.live_size(), 2u);
  EXPECT_EQ(q.size(), 3u);
  b.cancel();
  EXPECT_EQ(q.live_size(), 1u);
  q.pop().fn();  // pops the sole live event (skipping tombstones)
  EXPECT_EQ(q.live_size(), 0u);
}

TEST_P(EventQueueTest, LiveSizeTracksPopsExactly) {
  for (int i = 0; i < 5; ++i) q.schedule(1.0 + i, [] {});
  for (std::size_t expect = 5; expect > 0; --expect) {
    EXPECT_EQ(q.live_size(), expect);
    q.pop().fn();
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.live_size(), 0u);
}

TEST_P(EventQueueTest, NextTimeSkipsCancelled) {
  auto a = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  a.cancel();
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

// ---------------------------------------------------------------------------
// Closure-retention regression (the PR's bugfix): a cancelled event must
// release everything its closure captured *immediately*, not when the
// tombstone eventually surfaces — retransmit-heavy runs cancel thousands of
// buried timers that would otherwise pin dead state for the whole run.

TEST_P(EventQueueTest, CancelReleasesClosureEagerly) {
  auto sentinel = std::make_shared<int>(42);
  std::weak_ptr<int> alive = sentinel;
  q.schedule(0.5, [] {});  // stays in front; the cancelled ones never surface
  std::vector<EventHandle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(q.schedule(1.0 + i, [sentinel] {}));
  }
  sentinel.reset();
  EXPECT_FALSE(alive.expired());
  for (auto& h : handles) h.cancel();
  // All 64 tombstones are still buried (nothing was popped), yet every
  // captured copy of the sentinel is gone.
  EXPECT_TRUE(alive.expired());
  EXPECT_EQ(q.size(), 65u);
  EXPECT_EQ(q.live_size(), 1u);
}

TEST_P(EventQueueTest, ClearReleasesClosures) {
  auto sentinel = std::make_shared<int>(7);
  std::weak_ptr<int> alive = sentinel;
  for (int i = 0; i < 16; ++i) q.schedule(1.0 + i, [sentinel] {});
  sentinel.reset();
  EXPECT_FALSE(alive.expired());
  q.clear();
  EXPECT_TRUE(alive.expired());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.live_size(), 0u);
}

TEST_P(EventQueueTest, QueueDestructionReleasesClosures) {
  auto sentinel = std::make_shared<int>(9);
  std::weak_ptr<int> alive = sentinel;
  {
    EventQueue local(GetParam());
    local.schedule(1.0, [sentinel] {});
    sentinel.reset();
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

// ---------------------------------------------------------------------------
// Handle lifetime edges: stale handles must be inert in every order of
// queue mutation, and live_size must stay exact throughout.

TEST_P(EventQueueTest, CancelAfterClearIsInert) {
  auto h = q.schedule(1.0, [] {});
  q.clear();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not double-decrement the reset live count
  EXPECT_EQ(q.live_size(), 0u);
  // The cleared slot is recycled; the stale handle must not alias the new
  // occupant.
  auto fresh = q.schedule(2.0, [] {});
  EXPECT_EQ(q.live_size(), 1u);
  h.cancel();
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_TRUE(fresh.pending());
}

TEST_P(EventQueueTest, CancelAfterFireIsInert) {
  auto h = q.schedule(1.0, [] {});
  auto fired = q.pop();
  fired.fn();
  EXPECT_FALSE(h.pending());
  // The fired slot is recycled; the stale handle must not cancel the new
  // occupant.
  auto fresh = q.schedule(2.0, [] {});
  EXPECT_EQ(q.live_size(), 1u);
  h.cancel();
  EXPECT_EQ(q.live_size(), 1u);
  EXPECT_TRUE(fresh.pending());
}

TEST_P(EventQueueTest, HandleOutlivesQueue) {
  EventHandle h;
  {
    EventQueue local(GetParam());
    h = local.schedule(1.0, [] {});
    EXPECT_TRUE(h.pending());
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, no dangling access
}

TEST_P(EventQueueTest, DoubleCancelDecrementsOnce) {
  q.schedule(5.0, [] {});
  auto h = q.schedule(1.0, [] {});
  h.cancel();
  EXPECT_EQ(q.live_size(), 1u);
  h.cancel();
  EXPECT_EQ(q.live_size(), 1u);
}

TEST_P(EventQueueTest, SchedulingNonFiniteTimeThrows) {
  EXPECT_THROW(
      q.schedule(std::numeric_limits<double>::infinity(), [] {}),
      InvariantViolation);
}

// ---------------------------------------------------------------------------
// Backend equivalence: both schedulers must pop the exact (time, seq) order
// under a randomized schedule/cancel/pop workload that crosses the calendar
// queue's grow and shrink thresholds (bursts of equal timestamps included).

class SchedulerDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SchedulerDifferential, HeapAndCalendarAgree) {
  Rng rng(GetParam());
  EventQueue heap(SchedulerKind::kHeap);
  EventQueue calendar(SchedulerKind::kCalendar);
  std::vector<std::pair<SimTime, int>> heap_order, calendar_order;
  std::vector<std::pair<EventHandle, EventHandle>> handles;
  int next_id = 0;
  double clock = 0.0;

  const auto schedule_both = [&](SimTime t) {
    const int id = next_id++;
    handles.emplace_back(
        heap.schedule(t, [&heap_order, t, id] {
          heap_order.emplace_back(t, id);
        }),
        calendar.schedule(t, [&calendar_order, t, id] {
          calendar_order.emplace_back(t, id);
        }));
  };

  for (int step = 0; step < 12000; ++step) {
    const double r = rng.uniform(0.0, 1.0);
    if (r < 0.55 || heap.empty()) {
      // Mixed time scales, quantized so exact ties are common.
      const double span = r < 0.1 ? 10000.0 : 10.0;
      const SimTime t =
          clock + std::floor(rng.uniform(0.0, span) * 8.0) / 8.0;
      schedule_both(t);
    } else if (r < 0.7 && !handles.empty()) {
      auto& [hh, ch] = handles[static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(handles.size()) - 0.001))];
      ASSERT_EQ(hh.pending(), ch.pending());
      hh.cancel();
      ch.cancel();
    } else {
      ASSERT_EQ(heap.live_size(), calendar.live_size());
      ASSERT_DOUBLE_EQ(heap.next_time(), calendar.next_time());
      auto hf = heap.pop();
      auto cf = calendar.pop();
      ASSERT_DOUBLE_EQ(hf.time, cf.time);
      hf.fn();
      cf.fn();
      clock = hf.time;  // keep new events quasi-monotone, as a simulator does
      ASSERT_EQ(heap_order.back(), calendar_order.back());
    }
  }
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    heap.pop().fn();
    calendar.pop().fn();
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(heap_order, calendar_order);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerDifferential,
                         ::testing::Values(101, 202, 303, 404));

TEST(SchedulerEnv, QipSchedSelectsBackend) {
  const char* saved = std::getenv("QIP_SCHED");
  const std::string restore = saved ? saved : "";
  ::unsetenv("QIP_SCHED");
  EXPECT_EQ(scheduler_kind_from_env(), SchedulerKind::kCalendar);
  ::setenv("QIP_SCHED", "heap", 1);
  EXPECT_EQ(scheduler_kind_from_env(), SchedulerKind::kHeap);
  ::setenv("QIP_SCHED", "calendar", 1);
  EXPECT_EQ(scheduler_kind_from_env(), SchedulerKind::kCalendar);
  if (saved) {
    ::setenv("QIP_SCHED", restore.c_str(), 1);
  } else {
    ::unsetenv("QIP_SCHED");
  }
}

TEST(Simulator, ClockAdvancesMonotonically) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.after(2.0, [&] { seen.push_back(sim.now()); });
  sim.after(1.0, [&] {
    seen.push_back(sim.now());
    sim.after(0.5, [&] { seen.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[0], 1.0);
  EXPECT_DOUBLE_EQ(seen[1], 1.5);
  EXPECT_DOUBLE_EQ(seen[2], 2.0);
}

TEST(Simulator, RunHorizonIncludesBoundary) {
  Simulator sim;
  int fired = 0;
  sim.after(1.0, [&] { ++fired; });
  sim.after(2.0, [&] { ++fired; });
  sim.after(3.0, [&] { ++fired; });
  sim.run(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, HorizonAdvancesIdleClock) {
  Simulator sim;
  sim.run(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.after(-1.0, [] {}), InvariantViolation);
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.after(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(1.0, [] {}), InvariantViolation);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.after(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.after(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.after(0.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ResetEventsDropsPending) {
  Simulator sim;
  int fired = 0;
  sim.after(1.0, [&] { ++fired; });
  sim.reset_events();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.after(static_cast<double>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, SelfReschedulingTimer) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 100) sim.after(1.0, tick);
  };
  sim.after(1.0, tick);
  sim.run();
  EXPECT_EQ(ticks, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

/// Property: simulator ordering matches a reference sort for random loads.
class SimOrderingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimOrderingProperty, MatchesReferenceOrder) {
  Rng rng(GetParam());
  Simulator sim;
  std::vector<std::pair<double, int>> expect;
  std::vector<int> got;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.uniform(0.0, 50.0);
    expect.emplace_back(t, i);
    sim.after(t, [&got, i] { got.push_back(i); });
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  sim.run();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expect[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimOrderingProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace qip
