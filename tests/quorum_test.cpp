// Unit and property tests for quorum voting, dynamic linear voting and
// explicit quorum systems (§II-C, §II-D).
#include <gtest/gtest.h>

#include <numeric>

#include "quorum/dynamic_linear.hpp"
#include "quorum/quorum_system.hpp"
#include "quorum/voting.hpp"
#include "util/assert.hpp"

namespace qip {
namespace {

std::vector<std::uint32_t> universe(std::uint32_t n) {
  std::vector<std::uint32_t> u(n);
  std::iota(u.begin(), u.end(), 1u);
  return u;
}

// ---------------------------------------------------------------------------
// QuorumSpec — w > v/2 and r + w > v
// ---------------------------------------------------------------------------

class QuorumSpecProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QuorumSpecProperty, MinimalSatisfiesPaperConditions) {
  const std::uint32_t v = GetParam();
  const QuorumSpec spec = QuorumSpec::minimal(v);
  EXPECT_TRUE(spec.valid());
  EXPECT_GT(2 * spec.write_quorum, v);
  EXPECT_GT(spec.read_quorum + spec.write_quorum, v);
  // Minimality: one fewer write vote breaks the first condition.
  EXPECT_LE(2 * (spec.write_quorum - 1), v);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuorumSpecProperty,
                         ::testing::Range(1u, 26u));

TEST(QuorumSpec, KnownValues) {
  EXPECT_EQ(QuorumSpec::minimal(1).write_quorum, 1u);
  EXPECT_EQ(QuorumSpec::minimal(5).write_quorum, 3u);
  EXPECT_EQ(QuorumSpec::minimal(5).read_quorum, 3u);
  EXPECT_EQ(QuorumSpec::minimal(6).write_quorum, 4u);
  EXPECT_EQ(QuorumSpec::minimal(6).read_quorum, 3u);
}

// ---------------------------------------------------------------------------
// VoteCounter
// ---------------------------------------------------------------------------

TEST(VoteCounter, ReachesThreshold) {
  VoteCounter c(2, 3);
  EXPECT_FALSE(c.settled());
  c.confirm(5);
  EXPECT_FALSE(c.reached());
  c.confirm(9);
  EXPECT_TRUE(c.reached());
  EXPECT_EQ(c.latest_timestamp(), 9u);
}

TEST(VoteCounter, FailsWhenImpossible) {
  VoteCounter c(2, 3);
  c.deny();
  EXPECT_FALSE(c.failed());  // 2 of the remaining 2 could still confirm
  c.deny();
  EXPECT_TRUE(c.failed());  // only 1 outstanding, 2 needed
  EXPECT_TRUE(c.settled());
}

TEST(VoteCounter, OverCountingThrows) {
  VoteCounter c(1, 1);
  c.confirm(0);
  EXPECT_THROW(c.confirm(0), InvariantViolation);
  EXPECT_THROW(c.deny(), InvariantViolation);
}

// ---------------------------------------------------------------------------
// Dynamic linear voting
// ---------------------------------------------------------------------------

TEST(DynamicLinear, ThresholdEvenOdd) {
  // Odd group: distinguished node gives no discount.
  EXPECT_EQ(quorum_threshold(5, false), 3u);
  EXPECT_EQ(quorum_threshold(5, true), 3u);
  // Even group: exactly-half acceptable with the distinguished node.
  EXPECT_EQ(quorum_threshold(6, false), 4u);
  EXPECT_EQ(quorum_threshold(6, true), 3u);
  EXPECT_EQ(quorum_threshold(1, true), 1u);
  EXPECT_EQ(quorum_threshold(2, true), 1u);
}

TEST(DynamicLinear, IsQuorumMajority) {
  EXPECT_TRUE(is_quorum(5, {1, 2, 3}));
  EXPECT_FALSE(is_quorum(5, {1, 2}));
  EXPECT_FALSE(is_quorum(4, {1, 2}));             // exactly half, no dist
  EXPECT_TRUE(is_quorum(4, {1, 2}, 1));           // half containing dist
  EXPECT_FALSE(is_quorum(4, {2, 3}, 1));          // half without dist
  EXPECT_TRUE(is_quorum(4, {2, 3, 4}, 1));        // majority wins anyway
}

TEST(DynamicLinear, TwoHalvesCannotBothBeQuorums) {
  // Complementary halves of an even group: at most one contains the
  // distinguished node, so at most one is a quorum.
  const std::vector<std::uint32_t> left{1, 2, 3};
  const std::vector<std::uint32_t> right{4, 5, 6};
  for (std::uint32_t dist = 1; dist <= 6; ++dist) {
    EXPECT_FALSE(is_quorum(6, left, dist) && is_quorum(6, right, dist));
  }
}

// ---------------------------------------------------------------------------
// QuorumSystem
// ---------------------------------------------------------------------------

TEST(QuorumSystem, MajorityExample) {
  // Figure 1's neighborhood: quorums of ⌊6/2⌋+1 = 4 over six heads.
  const auto qs = QuorumSystem::majority(universe(6));
  EXPECT_EQ(qs.min_quorum_size(), 4u);
  EXPECT_TRUE(qs.pairwise_intersecting());
  EXPECT_TRUE(qs.covers_quorum({1, 2, 3, 4}));
  EXPECT_FALSE(qs.covers_quorum({1, 2, 3}));
}

TEST(QuorumSystem, DynamicLinearAddsHalfSets) {
  // §II-D's example: with node 1 distinguished over an even universe, sets
  // of size n/2 containing node 1 become quorums.
  const auto qs = QuorumSystem::dynamic_linear(universe(6), 1);
  EXPECT_EQ(qs.min_quorum_size(), 3u);
  EXPECT_TRUE(qs.pairwise_intersecting());
  EXPECT_TRUE(qs.covers_quorum({1, 2, 3}));
  EXPECT_FALSE(qs.covers_quorum({2, 3, 4}));
}

TEST(QuorumSystem, DuplicateUniverseThrows) {
  EXPECT_THROW(QuorumSystem::majority({1, 1, 2}), InvariantViolation);
  EXPECT_THROW(QuorumSystem::majority({}), InvariantViolation);
}

TEST(QuorumSystem, DistinguishedMustBeMember) {
  EXPECT_THROW(QuorumSystem::dynamic_linear(universe(4), 9),
               InvariantViolation);
}

/// Property (Definition 1): every constructed system is pairwise
/// intersecting, for both plain majority and dynamic linear variants.
class QuorumSystemProperty : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(QuorumSystemProperty, PairwiseIntersectionHolds) {
  const std::uint32_t n = GetParam();
  const auto maj = QuorumSystem::majority(universe(n));
  EXPECT_TRUE(maj.pairwise_intersecting()) << "majority over " << n;
  for (std::uint32_t dist = 1; dist <= n; ++dist) {
    const auto dl = QuorumSystem::dynamic_linear(universe(n), dist);
    EXPECT_TRUE(dl.pairwise_intersecting())
        << "dynamic-linear over " << n << " dist " << dist;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuorumSystemProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

/// Property: quorum_threshold matches the explicit set system — a subset is
/// a quorum iff its size reaches the threshold (given whether it holds the
/// distinguished element).
class ThresholdConsistency : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThresholdConsistency, MatchesSetSystem) {
  const std::uint32_t n = GetParam();
  const std::uint32_t dist = 1;
  const auto qs = QuorumSystem::dynamic_linear(universe(n), dist);
  // Enumerate all subsets of the universe.
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<std::uint32_t> subset;
    bool has_dist = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        subset.push_back(i + 1);
        has_dist |= (i + 1 == dist);
      }
    }
    const bool by_sets = qs.covers_quorum(subset);
    const bool by_threshold =
        subset.size() >= quorum_threshold(n, has_dist) &&
        (2 * subset.size() > n || has_dist);
    EXPECT_EQ(by_sets, by_threshold)
        << "n=" << n << " subset size=" << subset.size()
        << " has_dist=" << has_dist;
    // And is_quorum agrees too.
    EXPECT_EQ(is_quorum(n, subset, dist), by_sets);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThresholdConsistency,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u));

}  // namespace
}  // namespace qip
