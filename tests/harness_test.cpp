// Tests for the experiment harness itself: World, Driver, PhaseMeter, and
// the figure helpers — the machinery every reported number flows through.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/figures.hpp"
#include "harness/parallel.hpp"
#include "harness/seed.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

TEST(World, PlacesNodesInsideArea) {
  World world(WorldParams{}, 5);
  for (NodeId id = 0; id < 50; ++id) {
    const Point p = world.place_random(id);
    EXPECT_TRUE(world.topology().area().contains(p));
  }
  EXPECT_EQ(world.topology().node_count(), 50u);
}

TEST(World, RunForAdvancesClock) {
  World world(WorldParams{}, 5);
  world.run_for(3.5);
  EXPECT_DOUBLE_EQ(world.sim().now(), 3.5);
}

TEST(World, SettleBudgetGuardsLivelock) {
  World world(WorldParams{}, 5);
  // A self-rescheduling event never drains: the budget must trip.
  std::function<void()> forever = [&] { world.sim().after(0.1, forever); };
  world.sim().after(0.1, forever);
  EXPECT_THROW(world.settle(/*max_events=*/100), InvariantViolation);
}

TEST(Driver, ConnectedArrivalsFormOneComponent) {
  World world(WorldParams{}, 17);
  QipEngine proto(world.transport(), world.rng(), QipParams{});
  proto.start_hello();
  DriverOptions dopt;
  dopt.mobility = false;  // static: connectivity is preserved
  Driver driver(world, proto, dopt);
  driver.join(40);
  EXPECT_EQ(world.topology().components().size(), 1u);
}

TEST(Driver, MembersTrackJoinsAndDepartures) {
  World world(WorldParams{}, 18);
  QipEngine proto(world.transport(), world.rng(), QipParams{});
  proto.start_hello();
  Driver driver(world, proto);
  const auto ids = driver.join(5);
  EXPECT_EQ(driver.members().size(), 5u);
  driver.depart_graceful(ids[1]);
  driver.depart_abrupt(ids[3]);
  EXPECT_EQ(driver.members().size(), 3u);
  EXPECT_FALSE(world.topology().has_node(ids[1]));
  EXPECT_FALSE(world.topology().has_node(ids[3]));
  EXPECT_EQ(driver.joined_count(), 5u);
}

TEST(Driver, ConfiguredFractionAndLatency) {
  World world(WorldParams{}, 19);
  QipEngine proto(world.transport(), world.rng(), QipParams{});
  proto.start_hello();
  Driver driver(world, proto);
  driver.join(20);
  world.run_for(3.0);
  EXPECT_GT(driver.configured_fraction(), 0.9);
  EXPECT_GT(driver.mean_config_latency(), 0.0);
}

TEST(PhaseMeter, DiffsSinceReset) {
  MessageStats stats;
  PhaseMeter meter(stats);
  stats.record(Traffic::kConfiguration, 10);
  stats.record(Traffic::kHello, 5, 5);
  EXPECT_EQ(meter.hops(Traffic::kConfiguration), 10u);
  EXPECT_EQ(meter.protocol_hops(), 10u);  // hello excluded
  meter.reset();
  EXPECT_EQ(meter.hops(Traffic::kConfiguration), 0u);
  stats.record(Traffic::kDeparture, 3, 2);
  EXPECT_EQ(meter.hops(Traffic::kDeparture), 3u);
  EXPECT_EQ(meter.messages(Traffic::kDeparture), 2u);
}

TEST(Figures, RoundsFromEnv) {
  unsetenv("QIP_ROUNDS");
  EXPECT_EQ(rounds_from_env(7), 7u);
  setenv("QIP_ROUNDS", "12", 1);
  EXPECT_EQ(rounds_from_env(7), 12u);
  unsetenv("QIP_ROUNDS");
}

// A typo in a replication knob must not silently demote a long run to the
// default — malformed values are a hard error (exit 2), not a fallback.
TEST(EnvParseDeathTest, MalformedRoundsRejected) {
  setenv("QIP_ROUNDS", "garbage", 1);
  EXPECT_EXIT(rounds_from_env(7), ::testing::ExitedWithCode(2),
              "invalid QIP_ROUNDS");
  setenv("QIP_ROUNDS", "1O", 1);  // digit one, letter O
  EXPECT_EXIT(rounds_from_env(7), ::testing::ExitedWithCode(2),
              "invalid QIP_ROUNDS");
  setenv("QIP_ROUNDS", "0", 1);
  EXPECT_EXIT(rounds_from_env(7), ::testing::ExitedWithCode(2),
              "invalid QIP_ROUNDS");
  setenv("QIP_ROUNDS", "-3", 1);
  EXPECT_EXIT(rounds_from_env(7), ::testing::ExitedWithCode(2),
              "invalid QIP_ROUNDS");
  unsetenv("QIP_ROUNDS");
}

TEST(EnvParseDeathTest, MalformedJobsRejected) {
  setenv("QIP_JOBS", "four", 1);
  EXPECT_EXIT(jobs_from_env(1), ::testing::ExitedWithCode(2),
              "invalid QIP_JOBS");
  setenv("QIP_JOBS", "0", 1);
  EXPECT_EXIT(jobs_from_env(1), ::testing::ExitedWithCode(2),
              "invalid QIP_JOBS");
  unsetenv("QIP_JOBS");
  EXPECT_EQ(jobs_from_env(3), 3u);
  setenv("QIP_JOBS", "8", 1);
  EXPECT_EQ(jobs_from_env(3), 8u);
  unsetenv("QIP_JOBS");
}

TEST(EnvParseDeathTest, MalformedSeedRejected) {
  setenv("QIP_SEED", "not-a-seed", 1);
  EXPECT_EXIT(resolve_seed(1, 0, nullptr, false),
              ::testing::ExitedWithCode(2), "invalid QIP_SEED");
  setenv("QIP_SEED", "0x1cdc52007", 1);
  EXPECT_EQ(resolve_seed(1, 0, nullptr, false), 0x1cdc52007ULL);
  unsetenv("QIP_SEED");
  const char* argv[] = {"bench", "--seed", "bogus"};
  EXPECT_EXIT(resolve_seed(1, 3, argv, false), ::testing::ExitedWithCode(2),
              "invalid --seed");
}

TEST(Figures, Fig4LayoutProducesClusters) {
  const LayoutStats layout = fig4_layout(/*seed=*/3, 60, 150.0);
  EXPECT_EQ(layout.nodes, 60u);
  EXPECT_GE(layout.heads, 1u);
  EXPECT_LT(layout.heads, 30u);
  EXPECT_FALSE(layout.ascii_map.empty());
  // The map contains exactly one '#' or 'o' style marker per populated cell
  // and 20 lines.
  EXPECT_EQ(std::count(layout.ascii_map.begin(), layout.ascii_map.end(),
                       '\n'),
            20);
  EXPECT_NE(layout.ascii_map.find('#'), std::string::npos);
  EXPECT_NE(layout.ascii_map.find('o'), std::string::npos);
}

TEST(Figures, FigureDataRenders) {
  FigureData fig;
  fig.title = "t";
  fig.x_name = "x";
  fig.x = {1, 2};
  fig.series = {Series{"s", {3.0, 4.0}}};
  const std::string out = fig.render();
  EXPECT_NE(out.find("t"), std::string::npos);
  EXPECT_NE(out.find("4.00"), std::string::npos);
}

// ---------------------------------------------------------------------------
// UniquenessAuditor grace-window edges.  The conflict clock must survive a
// holder flickering out of the component and back — otherwise a node that
// departs and re-enters inside the healing grace masks a genuine duplicate
// indefinitely — and must survive extra claimants piling on, while a
// genuinely *new* collision on a previously-conflicted address still gets a
// fresh window.
// ---------------------------------------------------------------------------

/// Scripted protocol: the test dictates every address; nothing else runs.
class ScriptedProtocol : public AutoconfProtocol {
 public:
  using AutoconfProtocol::AutoconfProtocol;
  std::string name() const override { return "scripted"; }
  void node_entered(NodeId) override {}
  void node_departing(NodeId) override {}
  void node_left(NodeId) override {}
  void node_vanished(NodeId) override {}
  std::optional<IpAddress> address_of(NodeId id) const override {
    const auto it = addresses.find(id);
    if (it == addresses.end()) return std::nullopt;
    return it->second;
  }

  std::map<NodeId, IpAddress> addresses;
};

struct AuditorFixture : ::testing::Test {
  AuditorFixture() {
    topo.add_node(1, {0.0, 0.0});
    topo.add_node(2, {10.0, 0.0});
  }

  Simulator sim;
  Topology topo{Rect{1000.0, 1000.0}, 120.0};
  MessageStats stats;
  Transport transport{sim, topo, stats, 0.01};
  Rng rng{99};
  ScriptedProtocol proto{transport, rng};
  // Huge probe period: every audit below is an explicit check_now() call at
  // a clock position set with sim.run().
  UniquenessAuditor auditor{sim, topo, proto, /*period=*/1e9, /*grace=*/10.0};
  const IpAddress kAddr{0x0A000001};
};

TEST_F(AuditorFixture, FlickeringHolderCannotResetTheGraceClock) {
  proto.addresses = {{1, kAddr}, {2, kAddr}};
  auditor.check_now();  // conflict first observed at t=0
  EXPECT_EQ(auditor.conflicts_pending(), 1u);

  sim.run(4.0);
  topo.remove_node(2);  // holder drifts out: conflict unobservable
  EXPECT_NO_THROW(auditor.check_now());
  sim.run(8.0);
  topo.add_node(2, {10.0, 0.0});  // ...and re-enters inside the grace window
  EXPECT_NO_THROW(auditor.check_now());  // clock continued: 8 < 10 still

  // The window is measured from t=0, not from the re-entry: the duplicate
  // becomes fatal at t=10, not t=18.
  sim.run(11.0);
  EXPECT_THROW(auditor.check_now(), InvariantViolation);
}

TEST_F(AuditorFixture, ThirdClaimantDoesNotRestartTheClock) {
  proto.addresses = {{1, kAddr}, {2, kAddr}};
  auditor.check_now();
  sim.run(5.0);
  topo.add_node(3, {20.0, 0.0});
  proto.addresses[3] = kAddr;  // piles onto the existing duplicate
  EXPECT_NO_THROW(auditor.check_now());
  sim.run(11.0);
  EXPECT_THROW(auditor.check_now(), InvariantViolation);
}

TEST_F(AuditorFixture, NewCollisionOnOldAddressGetsAFreshWindow) {
  proto.addresses = {{1, kAddr}, {2, kAddr}};
  auditor.check_now();
  sim.run(5.0);
  // The original conflict resolves; two different nodes then collide on the
  // same address.  Fewer than two holders carry over, so this is a new
  // conflict with its own grace window starting at t=5.
  topo.add_node(3, {20.0, 0.0});
  topo.add_node(4, {30.0, 0.0});
  proto.addresses = {{1, IpAddress{0x0A000002}},
                     {2, IpAddress{0x0A000003}},
                     {3, kAddr},
                     {4, kAddr}};
  EXPECT_NO_THROW(auditor.check_now());
  sim.run(12.0);
  EXPECT_NO_THROW(auditor.check_now());  // 7 s into the new window
  sim.run(16.0);
  EXPECT_THROW(auditor.check_now(), InvariantViolation);
}

TEST_F(AuditorFixture, ConflictQuietForAFullGraceIsResolved) {
  proto.addresses = {{1, kAddr}, {2, kAddr}};
  auditor.check_now();
  sim.run(2.0);
  topo.remove_node(2);
  auditor.check_now();  // unobservable, but carried (clock intact)
  EXPECT_EQ(auditor.conflicts_pending(), 1u);
  sim.run(13.0);  // quiet for > grace: considered resolved, not flickering
  auditor.check_now();
  EXPECT_EQ(auditor.conflicts_pending(), 0u);
  // A re-collision after resolution is a new conflict with a new window.
  topo.add_node(2, {10.0, 0.0});
  sim.run(14.0);
  EXPECT_NO_THROW(auditor.check_now());
  sim.run(20.0);
  EXPECT_NO_THROW(auditor.check_now());  // 6 s into the new window
  sim.run(25.0);
  EXPECT_THROW(auditor.check_now(), InvariantViolation);
}

}  // namespace
}  // namespace qip
