// Cross-module integration tests: full churn scenarios driving the QIP
// engine through the harness, with invariants checked at checkpoints, plus
// cross-protocol comparisons the paper's headline claims rest on.
#include <gtest/gtest.h>

#include <set>

#include "baselines/buddy.hpp"
#include "baselines/ctree.hpp"
#include "baselines/manetconf.hpp"
#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

/// Checks the QIP global invariants *per logical network*: mobility and
/// abrupt failures can legitimately split the world into several networks
/// (each with its own pool, §V-C), but within one network addresses must be
/// unique, head universes disjoint, and free pools within universes.
void check_invariants(const QipEngine& proto, const std::vector<NodeId>& ids) {
  std::map<NetworkId, std::set<IpAddress>> addrs;
  for (NodeId id : ids) {
    if (!proto.knows(id)) continue;
    const auto& st = proto.state_of(id);
    if (!st.ip) continue;
    EXPECT_TRUE(addrs[st.network_id].insert(*st.ip).second)
        << "duplicate address " << *st.ip << " at node " << id
        << " within network " << st.network_id;
  }
  std::map<NetworkId, std::vector<NodeId>> heads;
  for (NodeId id : ids) {
    if (proto.knows(id) &&
        proto.state_of(id).role == Role::kClusterHead) {
      heads[proto.state_of(id).network_id].push_back(id);
    }
  }
  for (const auto& [net, hs] : heads) {
    for (std::size_t i = 0; i < hs.size(); ++i) {
      const auto& a = proto.state_of(hs[i]);
      EXPECT_TRUE(a.owned_universe.contains_all(a.ip_space));
      for (std::size_t j = i + 1; j < hs.size(); ++j) {
        const auto& b = proto.state_of(hs[j]);
        EXPECT_TRUE(a.owned_universe.disjoint_with(b.owned_universe))
            << "universes of heads " << hs[i] << " and " << hs[j]
            << " overlap within network " << net;
      }
    }
  }
}

TEST(Integration, ChurnScenarioKeepsInvariants) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  World world(wp, 4242);
  QipParams qp;
  qp.pool_size = 1024;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  Driver driver(world, proto);

  driver.join(60);
  world.run_for(3.0);
  check_invariants(proto, driver.members());

  // Churn: alternate graceful/abrupt departures with fresh arrivals.
  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 5 && !driver.members().empty(); ++i) {
      const NodeId victim =
          driver.members()[world.rng().index(driver.members().size())];
      if (world.rng().chance(0.3)) {
        driver.depart_abrupt(victim);
      } else {
        driver.depart_graceful(victim);
      }
    }
    driver.join(5);
    world.run_for(5.0);
  }
  world.run_for(10.0);
  check_invariants(proto, driver.members());
  // 20 churn departures (30% abrupt) against 80 joins: most of the network
  // must remain served.
  EXPECT_GE(driver.configured_fraction(), 0.8);
}

TEST(Integration, MobilityScenarioStaysConsistent) {
  WorldParams wp;
  wp.speed = 20.0;
  World world(wp, 999);
  QipParams qp;
  qp.pool_size = 1024;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  Driver driver(world, proto);
  driver.join(50);
  for (int i = 0; i < 6; ++i) {
    world.run_for(5.0);
    check_invariants(proto, driver.members());
  }
}

TEST(Integration, LatencyOrderingMatchesPaper) {
  // §VI-B: QIP configures in roughly half MANETconf's hops.
  double qip_lat = 0.0, mc_lat = 0.0;
  {
    WorldParams wp;
    World world(wp, 31337);
    QipParams qp;
    QipEngine proto(world.transport(), world.rng(), qp);
    proto.start_hello();
    Driver d(world, proto);
    d.join(100);
    world.run_for(2.0);
    qip_lat = d.mean_config_latency();
  }
  {
    WorldParams wp;
    World world(wp, 31337);
    ManetConf proto(world.transport(), world.rng());
    Driver d(world, proto);
    d.join(100);
    world.run_for(2.0);
    mc_lat = d.mean_config_latency();
  }
  EXPECT_LT(qip_lat, 12.0);
  EXPECT_GT(mc_lat, 12.0);
  EXPECT_LT(qip_lat, 0.7 * mc_lat);
}

TEST(Integration, OverheadOrderingMatchesPaper) {
  // §VI-C: QIP's join-phase overhead beats the buddy protocol's (which pays
  // for periodic global table sync).
  std::uint64_t qip_hops = 0, buddy_hops = 0;
  {
    WorldParams wp;
    World world(wp, 555);
    QipParams qp;
    QipEngine proto(world.transport(), world.rng(), qp);
    proto.start_hello();
    Driver d(world, proto);
    d.join(80);
    world.run_for(2.0);
    qip_hops = world.stats().protocol_hops();
  }
  {
    WorldParams wp;
    World world(wp, 555);
    BuddyProtocol proto(world.transport(), world.rng());
    proto.start_sync();
    Driver d(world, proto);
    d.join(80);
    world.run_for(2.0);
    buddy_hops = world.stats().protocol_hops();
  }
  EXPECT_LT(qip_hops, buddy_hops);
}

TEST(Integration, QuorumSpaceExtendsVisibleSpace) {
  // §VI-D.1: replication extends a head's usable space several-fold.
  WorldParams wp;
  World world(wp, 808);
  QipParams qp;
  qp.pool_size = 1024;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  DriverOptions dopt;
  dopt.mobility = false;
  Driver d(world, proto, dopt);
  d.join(100);
  world.run_for(5.0);
  const double own = proto.average_own_space();
  const double visible = proto.average_visible_space();
  ASSERT_GT(own, 0.0);
  EXPECT_GT(visible / own, 2.0);
  EXPECT_LT(visible / own, 9.0);
}

TEST(Integration, HelloTrafficExcludedFromProtocolHops) {
  WorldParams wp;
  World world(wp, 21);
  QipParams qp;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  Driver d(world, proto);
  d.join(20);
  world.run_for(10.0);
  const auto& stats = world.stats();
  EXPECT_GT(stats.of(Traffic::kHello).hops, 0u);
  EXPECT_EQ(stats.protocol_hops() + stats.of(Traffic::kHello).hops,
            stats.total_hops());
}

TEST(Integration, DeterministicAcrossRuns) {
  auto run_once = [] {
    WorldParams wp;
    World world(wp, 777);
    QipParams qp;
    QipEngine proto(world.transport(), world.rng(), qp);
    proto.start_hello();
    Driver d(world, proto);
    d.join(40);
    world.run_for(10.0);
    return std::tuple(world.stats().total_hops(), d.mean_config_latency(),
                      proto.clusters().head_count());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, CTreeAndQipBothServeSteadyChurn) {
  // Sanity guard for Figs 10/13/14: both protocols survive the same churn
  // scenario and keep configuring.
  for (int which = 0; which < 2; ++which) {
    WorldParams wp;
    World world(wp, 3131);
    std::unique_ptr<AutoconfProtocol> proto;
    if (which == 0) {
      auto p = std::make_unique<QipEngine>(world.transport(), world.rng(),
                                           QipParams{});
      p->start_hello();
      proto = std::move(p);
    } else {
      auto p = std::make_unique<CTreeProtocol>(world.transport(),
                                               world.rng(), CTreeParams{});
      p->start_updates();
      proto = std::move(p);
    }
    Driver d(world, *proto);
    d.join(50);
    world.run_for(5.0);
    for (int i = 0; i < 8; ++i) {
      const NodeId victim =
          d.members()[world.rng().index(d.members().size())];
      if (i % 3 == 0) {
        d.depart_abrupt(victim);
      } else {
        d.depart_graceful(victim);
      }
    }
    d.join(8);
    world.run_for(10.0);
    EXPECT_GE(d.configured_fraction(), 0.8) << proto->name();
  }
}

}  // namespace
}  // namespace qip
