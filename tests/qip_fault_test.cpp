// Fault-path tests of the QIP engine: departures, address reclamation,
// quorum adjustment, partition and merge (§IV-C/D, §V-B/C).
#include <gtest/gtest.h>

#include <set>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

struct QipFaultFixture : ::testing::Test {
  WorldParams wp{};
  World world{wp, /*seed=*/91};
  QipParams qp{};
  std::unique_ptr<QipEngine> proto;
  std::unique_ptr<Driver> driver;

  void init(std::uint64_t pool = 256) {
    qp.pool_size = pool;
    proto = std::make_unique<QipEngine>(world.transport(), world.rng(), qp);
    proto->start_hello();
    DriverOptions dopt;
    dopt.mobility = false;
    dopt.arrival_interval = 1.0;
    driver = std::make_unique<Driver>(world, *proto, dopt);
  }

  /// Head A at x=100 with two relays, head B at x=520 (3 hops from A).
  NodeId build_two_head_chain() {
    driver->join_at({100, 500});
    world.run_for(5.0);
    driver->join_at({240, 500});
    driver->join_at({380, 500});
    const NodeId b = driver->join_at({520, 500});
    world.run_for(3.0);
    EXPECT_EQ(proto->state_of(b).role, Role::kClusterHead);
    return b;
  }
};

TEST_F(QipFaultFixture, GracefulCommonDepartureReturnsAddress) {
  init();
  const NodeId a = driver->join_at({500, 500});
  world.run_for(5.0);
  const NodeId b = driver->join_at({600, 500});
  world.run_for(2.0);
  const IpAddress addr = *proto->address_of(b);
  const std::uint64_t free_before = proto->state_of(a).ip_space.size();

  driver->depart_graceful(b);
  world.run_for(2.0);
  const auto& sa = proto->state_of(a);
  EXPECT_EQ(sa.ip_space.size(), free_before + 1);
  EXPECT_TRUE(sa.ip_space.contains(addr));
  EXPECT_FALSE(sa.table.allocated(addr));
  EXPECT_FALSE(proto->knows(b));
}

TEST_F(QipFaultFixture, ReturnedAddressIsReassigned) {
  init();
  driver->join_at({500, 500});
  world.run_for(5.0);
  const NodeId b = driver->join_at({600, 500});
  world.run_for(2.0);
  const IpAddress addr = *proto->address_of(b);
  driver->depart_graceful(b);
  world.run_for(2.0);
  const NodeId c = driver->join_at({580, 520});
  world.run_for(2.0);
  ASSERT_TRUE(proto->configured(c));
  EXPECT_EQ(*proto->address_of(c), addr);  // lowest free again
}

TEST_F(QipFaultFixture, GracefulHeadDepartureHandsBlockToConfigurer) {
  init(256);
  const NodeId b = build_two_head_chain();
  const NodeId a = 0;
  const AddressBlock b_universe = proto->state_of(b).owned_universe;
  const std::uint64_t a_before = proto->state_of(a).owned_universe.size();

  driver->depart_graceful(b);
  world.run_for(3.0);
  const auto& sa = proto->state_of(a);
  EXPECT_EQ(sa.owned_universe.size(), a_before + b_universe.size());
  EXPECT_TRUE(sa.owned_universe.contains_all(b_universe));
  EXPECT_FALSE(sa.qdset.count(b));
  EXPECT_FALSE(sa.replicas.count(b));
}

TEST_F(QipFaultFixture, HeadDepartureReassignsMembers) {
  init(256);
  const NodeId b = build_two_head_chain();
  const NodeId m = driver->join_at({560, 560});  // member of B
  world.run_for(2.0);
  ASSERT_EQ(proto->state_of(m).configurer, b);

  driver->depart_graceful(b);
  world.run_for(3.0);
  EXPECT_EQ(proto->state_of(m).configurer, 0u)
      << "ALLOC_CHANGE should point members at the block's new owner";
  EXPECT_TRUE(proto->configured(m));
}

TEST_F(QipFaultFixture, AbruptHeadLeaveIsReclaimed) {
  init(256);
  const NodeId b = build_two_head_chain();
  // Member of B that stays reachable from A even after B dies (within range
  // of the x=380 relay).
  const NodeId m = driver->join_at({500, 560});
  world.run_for(2.0);
  const AddressBlock b_universe = proto->state_of(b).owned_universe;
  const IpAddress m_addr = *proto->address_of(m);

  driver->depart_abrupt(b);
  // Quorum adjustment: hello scan -> T_d -> REP_REQ -> T_r -> reclamation
  // flood -> settle.  Allow generous time.
  world.run_for(15.0);

  EXPECT_GE(proto->reclaims_completed(), 1u);
  const auto& sa = proto->state_of(0);
  EXPECT_TRUE(sa.owned_universe.contains_all(b_universe))
      << "the surviving replica holder adopts the dead head's space";
  // The member that claimed via REC_REP keeps its address...
  EXPECT_TRUE(sa.table.allocated(m_addr));
  EXPECT_EQ(proto->state_of(m).configurer, 0u);
  // ...and B's own identity address was freed for reuse.
  EXPECT_FALSE(sa.qdset.count(b));
  EXPECT_FALSE(sa.replicas.count(b));
}

TEST_F(QipFaultFixture, AbruptCommonLeaveLeaksUntilReclaim) {
  init();
  const NodeId a = driver->join_at({500, 500});
  world.run_for(5.0);
  const NodeId b = driver->join_at({600, 500});
  world.run_for(2.0);
  const IpAddress addr = *proto->address_of(b);
  driver->depart_abrupt(b);
  world.run_for(2.0);
  // Nobody was told: the allocator still considers the address taken.
  EXPECT_TRUE(proto->state_of(a).table.allocated(addr));
  EXPECT_FALSE(proto->state_of(a).ip_space.contains(addr));
}

TEST_F(QipFaultFixture, QuorumShrinksAfterSilence) {
  init(256);
  const NodeId b = build_two_head_chain();
  ASSERT_TRUE(proto->state_of(0).qdset.count(b));
  driver->depart_abrupt(b);
  world.run_for(10.0);
  EXPECT_FALSE(proto->state_of(0).qdset.count(b))
      << "T_d expiry shrinks the quorum set around the silent head";
}

TEST_F(QipFaultFixture, ConfigurationSurvivesDeadQdsetMember) {
  init(256);
  const NodeId b = build_two_head_chain();
  driver->depart_abrupt(b);
  world.run_for(10.0);
  // A can still configure: its quorum adjusted.
  const NodeId c = driver->join_at({150, 550});
  world.run_for(3.0);
  EXPECT_TRUE(proto->configured(c));
}

TEST_F(QipFaultFixture, PartitionedMinorityHeadCannotShrinkAlone) {
  // Head B has QDSet {A}; when the network splits so B is alone with its
  // members, the view-change majority guard must keep B from shrinking to
  // a solo quorum over A's replicated space.
  init(256);
  const NodeId b = build_two_head_chain();
  // Partition: remove the two relays so B's side is {b} only.
  driver->depart_abrupt(1);
  driver->depart_abrupt(2);
  world.run_for(6.0);
  const auto& sb = proto->state_of(b);
  // Group {A,B} of size 2: B alone is exactly half — cannot shrink.
  EXPECT_TRUE(sb.qdset.count(0))
      << "minority side must not view-change A out of its quorum group";
}

TEST_F(QipFaultFixture, MergeReconfiguresLargerIdNetwork) {
  init(256);
  // Two independent networks far apart (800 m > any multi-hop path).
  const NodeId a = driver->join_at({100, 500});
  world.run_for(6.0);
  const NodeId b = driver->join_at({900, 500});
  world.run_for(6.0);
  ASSERT_EQ(proto->state_of(a).role, Role::kClusterHead);
  ASSERT_EQ(proto->state_of(b).role, Role::kClusterHead);
  const NetworkId net_a = proto->state_of(a).network_id;
  const NetworkId net_b = proto->state_of(b).network_id;
  ASSERT_NE(net_a, net_b) << "independent bootstraps get distinct ids";

  // Bridge them with a 130 m-spaced relay chain: merge is detected at the
  // boundary and the larger-id network must rejoin the smaller-id one.
  for (double x : {230.0, 360.0, 490.0, 620.0, 750.0}) {
    driver->join_at({x, 500});
  }
  world.run_for(20.0);

  EXPECT_GE(proto->merges_handled(), 1u);
  const NetworkId winner = std::min(net_a, net_b);
  std::uint32_t configured = 0;
  for (NodeId id : driver->members()) {
    if (!proto->configured(id)) continue;
    ++configured;
    EXPECT_EQ(proto->state_of(id).network_id, winner)
        << "node " << id << " should belong to the surviving network";
  }
  EXPECT_GE(configured, 5u);
  // No duplicate addresses after the merge.
  std::set<IpAddress> addrs;
  for (const auto& [id, addr] : proto->configured_addresses()) {
    EXPECT_TRUE(addrs.insert(addr).second)
        << "duplicate " << addr << " after merge";
  }
}

TEST_F(QipFaultFixture, VanishedNodeStateIsDropped) {
  init();
  driver->join_at({500, 500});
  world.run_for(5.0);
  const NodeId b = driver->join_at({600, 500});
  world.run_for(2.0);
  driver->depart_abrupt(b);
  EXPECT_FALSE(proto->knows(b));
  // Records survive for latency accounting.
  EXPECT_NE(proto->config_record(b), nullptr);
}

TEST_F(QipFaultFixture, ReentryAfterMergeKeepsRecordsConsistent) {
  init();
  const NodeId a = driver->join_at({500, 500});
  world.run_for(5.0);
  // Simulated re-entry (the merge path calls node_entered again).
  proto->node_entered(a);
  world.run_for(6.0);
  EXPECT_TRUE(proto->configured(a));
}

}  // namespace
}  // namespace qip
