// Unit tests for util: rng, stats, tables, csv, assertions, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace qip {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(5);
  Rng child1 = a.fork(1);
  Rng child2 = a.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next() == child2.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, RoundRngIndependentOfOrder) {
  Rng r5 = round_rng(99, 5);
  Rng r2 = round_rng(99, 2);
  Rng r5_again = round_rng(99, 5);
  EXPECT_EQ(r5.next(), r5_again.next());
  (void)r2;
}

// ---------------------------------------------------------------------------
// RunningStats / Histogram
// ---------------------------------------------------------------------------

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(31);
  RunningStats whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10, 10);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Histogram, MeanQuantiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.quantile(0.5), 50);
  EXPECT_EQ(h.quantile(0.0), 1);
  EXPECT_EQ(h.quantile(1.0), 100);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
}

TEST(Histogram, WeightedAdd) {
  Histogram h;
  h.add(3, 10);
  h.add(7, 30);
  EXPECT_EQ(h.total(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 6.0);
  EXPECT_EQ(h.quantile(0.2), 3);
  EXPECT_EQ(h.quantile(0.9), 7);
}

// Nearest-rank pins (feeds the _p50/_p99 metric lines): rank is clamped to
// >= 1, so q=0 is the minimum by construction, not by accident of the
// cumulative comparison, and q=1 is exactly the maximum.
TEST(Histogram, QuantileEndpointsAreMinAndMax) {
  Histogram h;
  h.add(5);
  EXPECT_EQ(h.quantile(0.0), 5);
  EXPECT_EQ(h.quantile(1.0), 5);
  h.add(-3, 2);
  h.add(11, 4);
  EXPECT_EQ(h.quantile(0.0), h.min());
  EXPECT_EQ(h.quantile(1.0), h.max());
  // Out-of-range q clamps rather than misbehaving.
  EXPECT_EQ(h.quantile(-0.5), h.min());
  EXPECT_EQ(h.quantile(1.5), h.max());
}

TEST(Histogram, QuantileWeightedBucketBoundaries) {
  Histogram h;
  h.add(1, 3);  // cumulative 3 of 4
  h.add(2, 1);  // cumulative 4 of 4
  // rank = ceil(q*4): q up to 0.75 lands in the first bucket, anything
  // beyond crosses into the second.
  EXPECT_EQ(h.quantile(0.75), 1);
  EXPECT_EQ(h.quantile(0.7501), 2);
  EXPECT_EQ(h.quantile(1.0), 2);
  // A tiny-but-positive q has rank ceil(eps) = 1: still the minimum.
  EXPECT_EQ(h.quantile(1e-12), 1);
}

TEST(Summary, Format) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  const Summary sum = summarize(s);
  EXPECT_DOUBLE_EQ(sum.mean, 2.0);
  EXPECT_EQ(sum.rounds, 2u);
  EXPECT_NE(format_summary(sum).find("2.00"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TextTable / CSV
// ---------------------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(TextTable, RowArityChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvariantViolation);
}

TEST(TextTable, DoubleRows) {
  TextTable t({"x", "y"});
  t.add_row("row", {1.2345}, 2);
  EXPECT_NE(t.render().find("1.23"), std::string::npos);
}

TEST(RenderFigure, SeriesLengthsChecked) {
  EXPECT_THROW(
      render_figure("t", "x", {1, 2}, {Series{"s", {1.0}}}),
      InvariantViolation);
}

TEST(RenderFigure, ContainsTitleAndValues) {
  const std::string out =
      render_figure("My Figure", "nn", {50, 100},
                    {Series{"QIP", {1.5, 2.5}}, Series{"Other", {3.0, 4.0}}});
  EXPECT_NE(out.find("My Figure"), std::string::npos);
  EXPECT_NE(out.find("QIP"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c"});
  w.write_row("label", {1.5, 2.0});
  EXPECT_EQ(os.str(), "a,\"b,c\"\nlabel,1.5,2\n");
}

// ---------------------------------------------------------------------------
// Assertions / logging
// ---------------------------------------------------------------------------

TEST(Assert, ThrowsWithMessage) {
  try {
    QIP_ASSERT_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Assert, PassesSilently) {
  QIP_ASSERT(1 + 1 == 2);
  QIP_ASSERT_MSG(true, "never evaluated");
}

TEST(Logging, LevelFilters) {
  auto& logger = process_logger();
  const LogLevel before = logger.level();
  std::ostringstream sink;
  logger.set_sink(&sink);
  logger.set_level(LogLevel::kWarn);
  QIP_DEBUG << "hidden";
  QIP_WARN << "visible";
  logger.set_sink(nullptr);
  logger.set_level(before);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible"), std::string::npos);
}

}  // namespace
}  // namespace qip
