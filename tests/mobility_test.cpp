// Unit tests for the random-waypoint mobility manager.
#include <gtest/gtest.h>

#include "mobility/waypoint.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace qip {
namespace {

struct MobilityFixture : ::testing::Test {
  Simulator sim;
  Topology topo{Rect{1000.0, 1000.0}, 150.0};
  Rng rng{42};
  MobilityManager mob{sim, topo, rng, /*tick=*/1.0};
};

TEST_F(MobilityFixture, StepMovesAtMostSpeedTimesTick) {
  topo.add_node(1, {500.0, 500.0});
  mob.add(1, 20.0);
  for (int i = 0; i < 50; ++i) {
    const Point before = topo.position(1);
    mob.step();
    const Point after = topo.position(1);
    EXPECT_LE(distance(before, after), 20.0 + 1e-9);
    EXPECT_TRUE(topo.area().contains(after));
  }
}

TEST_F(MobilityFixture, ZeroSpeedStaysPut) {
  topo.add_node(1, {100.0, 100.0});
  mob.add(1, 0.0);
  mob.step();
  EXPECT_EQ(topo.position(1), (Point{100.0, 100.0}));
}

TEST_F(MobilityFixture, PeriodicTicksViaSimulator) {
  topo.add_node(1, {500.0, 500.0});
  mob.add(1, 10.0);
  int ticks = 0;
  mob.set_on_tick([&] { ++ticks; });
  mob.start();
  sim.run(10.0);
  EXPECT_EQ(ticks, 10);
  mob.stop();
  sim.run(20.0);
  EXPECT_EQ(ticks, 10);
}

TEST_F(MobilityFixture, StartIsIdempotent) {
  topo.add_node(1, {500.0, 500.0});
  mob.add(1, 10.0);
  int ticks = 0;
  mob.set_on_tick([&] { ++ticks; });
  mob.start();
  mob.start();
  sim.run(3.0);
  EXPECT_EQ(ticks, 3);
}

TEST_F(MobilityFixture, RemoveStopsManaging) {
  topo.add_node(1, {500.0, 500.0});
  mob.add(1, 20.0);
  EXPECT_TRUE(mob.manages(1));
  mob.remove(1);
  EXPECT_FALSE(mob.manages(1));
  const Point before = topo.position(1);
  mob.step();
  EXPECT_EQ(topo.position(1), before);
}

TEST_F(MobilityFixture, EventuallyReachesNewWaypoints) {
  // Over a long run the node should traverse a substantial part of the
  // field, i.e. pick multiple waypoints.
  topo.add_node(1, {500.0, 500.0});
  mob.add(1, 50.0);
  double travelled = 0.0;
  Point prev = topo.position(1);
  for (int i = 0; i < 200; ++i) {
    mob.step();
    travelled += distance(prev, topo.position(1));
    prev = topo.position(1);
  }
  EXPECT_GT(travelled, 2000.0);  // several waypoint legs
}

TEST_F(MobilityFixture, DeterministicUnderSeed) {
  topo.add_node(1, {500.0, 500.0});
  mob.add(1, 20.0);
  std::vector<Point> track1;
  for (int i = 0; i < 20; ++i) {
    mob.step();
    track1.push_back(topo.position(1));
  }

  // Re-run with identical seed and initial state.
  Simulator sim2;
  Topology topo2{Rect{1000.0, 1000.0}, 150.0};
  Rng rng2{42};
  MobilityManager mob2{sim2, topo2, rng2, 1.0};
  topo2.add_node(1, {500.0, 500.0});
  mob2.add(1, 20.0);
  for (int i = 0; i < 20; ++i) {
    mob2.step();
    EXPECT_EQ(topo2.position(1), track1[static_cast<std::size_t>(i)]);
  }
}

TEST_F(MobilityFixture, ManagesManyNodesInIdOrder) {
  for (NodeId id = 0; id < 10; ++id) {
    topo.add_node(id, {500.0, 500.0});
    mob.add(id, 15.0);
  }
  EXPECT_EQ(mob.managed_count(), 10u);
  mob.step();
  for (NodeId id = 0; id < 10; ++id) {
    EXPECT_TRUE(topo.area().contains(topo.position(id)));
  }
}

}  // namespace
}  // namespace qip
