// Deterministic tests for the §V-C machinery: network ids, partition
// detection via dynamic lowest-IP, same-pool healing, cross-pool merging,
// and isolated-head recovery.
#include <gtest/gtest.h>

#include <set>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

struct PartitionFixture : ::testing::Test {
  WorldParams wp{};
  World world{wp, /*seed=*/555};
  QipParams qp{};
  std::unique_ptr<QipEngine> proto;
  std::unique_ptr<Driver> driver;

  void init(std::uint64_t pool = 256) {
    qp.pool_size = pool;
    proto = std::make_unique<QipEngine>(world.transport(), world.rng(), qp);
    proto->start_hello();
    DriverOptions dopt;
    dopt.mobility = false;
    dopt.arrival_interval = 1.0;
    driver = std::make_unique<Driver>(world, *proto, dopt);
  }

  /// Line network A(0) - r1 - r2 - B(head) with a member near B, then cut
  /// the relays: A-side and B-side partition.
  struct TwoSides {
    NodeId a = 0, r1 = 1, r2 = 2, b = 3, m = 4;
  };
  TwoSides build_and_cut() {
    TwoSides t;
    driver->join_at({100, 500});
    world.run_for(5.0);
    driver->join_at({240, 500});
    driver->join_at({380, 500});
    t.b = driver->join_at({520, 500});
    world.run_for(3.0);
    t.m = driver->join_at({520, 620});  // member of B, reachable only via B
    world.run_for(2.0);
    EXPECT_EQ(proto->state_of(t.b).role, Role::kClusterHead);
    EXPECT_EQ(proto->state_of(t.m).configurer, t.b);
    driver->depart_abrupt(t.r1);
    driver->depart_abrupt(t.r2);
    return t;
  }
};

TEST_F(PartitionFixture, NetworkIdTracksLowestLiveIp) {
  init();
  const auto t = build_and_cut();
  world.run_for(3.0);  // refresh ticks run
  // A-side kept 10.0.0.0 (A is the first head); B-side's lowest live IP is
  // whatever B or m holds — strictly greater.
  const NetworkId ida = proto->state_of(t.a).network_id;
  const NetworkId idb = proto->state_of(t.b).network_id;
  EXPECT_EQ(ida.low, kPoolBase);
  EXPECT_GT(idb.low, ida.low);
  EXPECT_EQ(ida.nonce, idb.nonce) << "one pool, one epoch";
  EXPECT_EQ(proto->state_of(t.m).network_id, idb);
}

TEST_F(PartitionFixture, HealUnifiesIdsWithoutDissolvingHeads) {
  init();
  const auto t = build_and_cut();
  world.run_for(3.0);
  const std::uint64_t head_universe_before =
      proto->state_of(t.b).owned_universe.size();
  // Re-bridge the sides.
  driver->join_at({240, 500});
  driver->join_at({380, 500});
  world.run_for(5.0);
  // Ids unified...
  EXPECT_EQ(proto->state_of(t.a).network_id, proto->state_of(t.b).network_id);
  EXPECT_EQ(proto->state_of(t.a).network_id.low, kPoolBase);
  // ...and B kept its role and space: same-pool healing never dissolves.
  EXPECT_EQ(proto->state_of(t.b).role, Role::kClusterHead);
  EXPECT_EQ(proto->state_of(t.b).owned_universe.size(),
            head_universe_before);
  EXPECT_TRUE(proto->configured(t.m));
  // The pool did not leak: head universes still partition it.
  std::uint64_t total = 0;
  for (NodeId h : proto->clusters().heads()) {
    total += proto->state_of(h).owned_universe.size();
  }
  EXPECT_EQ(total, qp.pool_size);
}

TEST_F(PartitionFixture, HealResolvesReissuedAddressByTimestamp) {
  init();
  const auto t = build_and_cut();
  const IpAddress m_addr = *proto->address_of(t.m);
  // A reclaims B's space during the partition (B unreachable; A holds B's
  // replica and the group {A,B} with A distinguished).
  world.run_for(15.0);
  ASSERT_GE(proto->reclaims_completed(), 1u);
  // A hands m's address to a fresh node on its side: a genuine duplicate
  // across the partition.  (Force it by allocating everything below it.)
  ASSERT_TRUE(proto->state_of(t.a).owned_universe.contains(m_addr));
  // Reconnect; the heal must detect the boundary and resolve m's address
  // by record freshness.
  driver->join_at({240, 500});
  driver->join_at({380, 500});
  world.run_for(8.0);
  std::set<IpAddress> addrs;
  for (const auto& [id, addr] : proto->configured_addresses()) {
    EXPECT_TRUE(addrs.insert(addr).second) << "duplicate " << addr;
  }
  EXPECT_TRUE(proto->configured(t.m));
}

TEST_F(PartitionFixture, IsolatedHeadRestartsFreshNetwork) {
  init(256);
  qp.isolation_patience = 3;  // speed the test up
  proto = std::make_unique<QipEngine>(world.transport(), world.rng(), qp);
  proto->start_hello();
  DriverOptions dopt;
  dopt.mobility = false;
  dopt.arrival_interval = 1.0;
  driver = std::make_unique<Driver>(world, *proto, dopt);

  const auto t = build_and_cut();
  const NetworkId before = proto->state_of(t.b).network_id;
  // B is a head with replicas but no reachable peer head: after the
  // patience window it restarts as a fresh network with the full pool.
  world.run_for(12.0);
  const auto& sb = proto->state_of(t.b);
  EXPECT_EQ(sb.role, Role::kClusterHead);
  EXPECT_NE(sb.network_id.nonce, before.nonce);
  EXPECT_EQ(sb.owned_universe.size(), qp.pool_size);
  // Its member was reconfigured into the fresh network.
  EXPECT_EQ(proto->state_of(t.m).network_id, sb.network_id);
  EXPECT_TRUE(proto->configured(t.m));
}

TEST_F(PartitionFixture, CrossPoolMergeDissolvesLargerId) {
  init(128);
  // Two independent pools.
  const NodeId a = driver->join_at({100, 500});
  world.run_for(6.0);
  const NodeId b = driver->join_at({900, 500});
  world.run_for(6.0);
  const NetworkId na = proto->state_of(a).network_id;
  const NetworkId nb = proto->state_of(b).network_id;
  ASSERT_NE(na.nonce, nb.nonce);
  const NetworkId winner = std::min(na, nb);
  // Bridge.
  for (double x : {230.0, 360.0, 490.0, 620.0, 750.0}) driver->join_at({x, 500});
  world.run_for(20.0);
  EXPECT_GE(proto->merges_handled(), 1u);
  for (NodeId id : driver->members()) {
    if (!proto->configured(id)) continue;
    EXPECT_EQ(proto->state_of(id).network_id.nonce, winner.nonce)
        << "node " << id;
  }
}

TEST_F(PartitionFixture, PendingMergeNotMaskedByRefresh) {
  init();
  const auto t = build_and_cut();
  world.run_for(3.0);
  const NetworkId ida = proto->state_of(t.a).network_id;
  const NetworkId idb = proto->state_of(t.b).network_id;
  ASSERT_NE(ida, idb);
  // Re-bridge and run exactly one hello tick by hand: the refresh must not
  // silently unify the divergent lows before a heal processed them.
  driver->join_at({240, 500});
  driver->join_at({380, 500});
  proto->hello_tick();
  // Either the heal already ran (ids unified AND merges counted) or the ids
  // are still divergent awaiting the next tick — never unified-without-heal.
  const bool unified =
      proto->state_of(t.a).network_id == proto->state_of(t.b).network_id;
  if (unified) {
    EXPECT_GE(proto->merges_handled(), 1u);
  }
}

}  // namespace
}  // namespace qip
