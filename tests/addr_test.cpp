// Unit tests for addresses, interval blocks and allocation tables.
#include <gtest/gtest.h>

#include <set>

#include "addr/address_block.hpp"
#include "addr/allocation_table.hpp"
#include "addr/ip_address.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qip {
namespace {

TEST(IpAddress, Formatting) {
  EXPECT_EQ(IpAddress(10, 0, 1, 200).to_string(), "10.0.1.200");
  EXPECT_EQ(IpAddress(0).to_string(), "0.0.0.0");
  EXPECT_EQ(kPoolBase.to_string(), "10.0.0.0");
}

TEST(IpAddress, OrderingAndSuccessor) {
  const IpAddress a(10, 0, 0, 255);
  EXPECT_LT(a, a.next());
  EXPECT_EQ(a.next().to_string(), "10.0.1.0");
  EXPECT_EQ(a.next().prev(), a);
}

// ---------------------------------------------------------------------------
// AddressBlock
// ---------------------------------------------------------------------------

TEST(AddressBlock, ContiguousBasics) {
  const auto b = AddressBlock::contiguous(kPoolBase, 256);
  EXPECT_EQ(b.size(), 256u);
  EXPECT_EQ(b.lowest(), kPoolBase);
  EXPECT_EQ(b.highest().to_string(), "10.0.0.255");
  EXPECT_TRUE(b.contains(IpAddress(10, 0, 0, 128)));
  EXPECT_FALSE(b.contains(IpAddress(10, 0, 1, 0)));
}

TEST(AddressBlock, InsertCoalesces) {
  AddressBlock b;
  b.insert(IpAddress(10, 0, 0, 1));
  b.insert(IpAddress(10, 0, 0, 3));
  EXPECT_EQ(b.ranges().size(), 2u);
  b.insert(IpAddress(10, 0, 0, 2));  // bridges the gap
  EXPECT_EQ(b.ranges().size(), 1u);
  EXPECT_EQ(b.size(), 3u);
}

TEST(AddressBlock, InsertOverlapThrows) {
  AddressBlock b(kPoolBase, IpAddress(10, 0, 0, 10));
  EXPECT_THROW(b.insert(IpAddress(10, 0, 0, 5)), InvariantViolation);
  EXPECT_THROW(b.insert({IpAddress(10, 0, 0, 8), IpAddress(10, 0, 0, 12)}),
               InvariantViolation);
}

TEST(AddressBlock, EraseSplitsRange) {
  AddressBlock b(kPoolBase, IpAddress(10, 0, 0, 9));
  b.erase(IpAddress(10, 0, 0, 5));
  EXPECT_EQ(b.size(), 9u);
  EXPECT_EQ(b.ranges().size(), 2u);
  EXPECT_FALSE(b.contains(IpAddress(10, 0, 0, 5)));
  EXPECT_THROW(b.erase(IpAddress(10, 0, 0, 5)), InvariantViolation);
}

TEST(AddressBlock, EraseEndsKeepRange) {
  AddressBlock b(kPoolBase, IpAddress(10, 0, 0, 9));
  b.erase(kPoolBase);
  b.erase(IpAddress(10, 0, 0, 9));
  EXPECT_EQ(b.ranges().size(), 1u);
  EXPECT_EQ(b.lowest(), IpAddress(10, 0, 0, 1));
  EXPECT_EQ(b.highest(), IpAddress(10, 0, 0, 8));
}

TEST(AddressBlock, EraseRange) {
  AddressBlock b(kPoolBase, IpAddress(10, 0, 0, 255));
  b.erase({IpAddress(10, 0, 0, 64), IpAddress(10, 0, 0, 127)});
  EXPECT_EQ(b.size(), 192u);
  EXPECT_FALSE(b.contains(IpAddress(10, 0, 0, 100)));
  EXPECT_THROW(b.erase({IpAddress(10, 0, 0, 60), IpAddress(10, 0, 0, 70)}),
               InvariantViolation);
}

TEST(AddressBlock, PopLowestDrains) {
  AddressBlock b(kPoolBase, IpAddress(10, 0, 0, 2));
  EXPECT_EQ(b.pop_lowest(), kPoolBase);
  EXPECT_EQ(b.pop_lowest(), IpAddress(10, 0, 0, 1));
  EXPECT_EQ(b.pop_lowest(), IpAddress(10, 0, 0, 2));
  EXPECT_TRUE(b.empty());
  EXPECT_THROW(b.pop_lowest(), InvariantViolation);
}

TEST(AddressBlock, SplitHalfKeepsLowAndIdentity) {
  auto b = AddressBlock::contiguous(kPoolBase, 256);
  const IpAddress low = b.lowest();
  const AddressBlock upper = b.split_half();
  EXPECT_EQ(b.size(), 128u);
  EXPECT_EQ(upper.size(), 128u);
  EXPECT_EQ(b.lowest(), low);
  EXPECT_TRUE(b.disjoint_with(upper));
  EXPECT_EQ(upper.lowest(), IpAddress(10, 0, 0, 128));
}

TEST(AddressBlock, SplitHalfOddSize) {
  auto b = AddressBlock::contiguous(kPoolBase, 7);
  const AddressBlock upper = b.split_half();
  EXPECT_EQ(b.size(), 4u);  // lower keeps the ceiling half
  EXPECT_EQ(upper.size(), 3u);
}

TEST(AddressBlock, SplitHalfFragmented) {
  AddressBlock b;
  for (std::uint32_t i = 0; i < 20; i += 2) {
    b.insert(IpAddress(kPoolBase.value() + i));
  }
  const std::uint64_t before = b.size();
  const AddressBlock upper = b.split_half();
  EXPECT_EQ(b.size() + upper.size(), before);
  EXPECT_TRUE(b.disjoint_with(upper));
  EXPECT_LT(b.highest(), upper.lowest());
}

TEST(AddressBlock, SplitTooSmallThrows) {
  AddressBlock b(kPoolBase, kPoolBase);
  EXPECT_THROW(b.split_half(), InvariantViolation);
}

TEST(AddressBlock, MergeDisjoint) {
  AddressBlock a(kPoolBase, IpAddress(10, 0, 0, 9));
  AddressBlock b(IpAddress(10, 0, 0, 10), IpAddress(10, 0, 0, 19));
  a.merge(b);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(a.ranges().size(), 1u);  // coalesced
}

TEST(AddressBlock, MinusBasics) {
  AddressBlock a(kPoolBase, IpAddress(10, 0, 0, 9));
  AddressBlock b(IpAddress(10, 0, 0, 3), IpAddress(10, 0, 0, 6));
  const AddressBlock diff = a.minus(b);
  EXPECT_EQ(diff.size(), 6u);
  EXPECT_TRUE(diff.contains(IpAddress(10, 0, 0, 2)));
  EXPECT_FALSE(diff.contains(IpAddress(10, 0, 0, 4)));
  EXPECT_TRUE(diff.disjoint_with(b));
}

TEST(AddressBlock, MinusDisjointIsIdentity) {
  AddressBlock a(kPoolBase, IpAddress(10, 0, 0, 9));
  AddressBlock b(IpAddress(10, 0, 1, 0), IpAddress(10, 0, 1, 9));
  EXPECT_EQ(a.minus(b), a);
  EXPECT_TRUE(a.minus(a).empty());
}

TEST(AddressBlock, ContainsAll) {
  AddressBlock a(kPoolBase, IpAddress(10, 0, 0, 100));
  AddressBlock sub(IpAddress(10, 0, 0, 10), IpAddress(10, 0, 0, 20));
  EXPECT_TRUE(a.contains_all(sub));
  AddressBlock crossing(IpAddress(10, 0, 0, 90), IpAddress(10, 0, 0, 110));
  EXPECT_FALSE(a.contains_all(crossing));
}

TEST(AddressBlock, ToStringRendersRanges) {
  AddressBlock b;
  b.insert(kPoolBase);
  b.insert({IpAddress(10, 0, 0, 5), IpAddress(10, 0, 0, 7)});
  const std::string s = b.to_string();
  EXPECT_NE(s.find("[10.0.0.0]"), std::string::npos);
  EXPECT_NE(s.find("[10.0.0.5-10.0.0.7]"), std::string::npos);
}

/// Property: block operations agree with a std::set reference model.
class AddressBlockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AddressBlockProperty, MatchesSetModel) {
  Rng rng(GetParam());
  AddressBlock block;
  std::set<std::uint32_t> model;
  constexpr std::uint32_t kSpan = 512;
  for (int step = 0; step < 2000; ++step) {
    const std::uint32_t v =
        kPoolBase.value() + static_cast<std::uint32_t>(rng.below(kSpan));
    const IpAddress a(v);
    switch (rng.below(4)) {
      case 0:  // insert if absent
        if (!model.count(v)) {
          block.insert(a);
          model.insert(v);
        }
        break;
      case 1:  // erase if present
        if (model.count(v)) {
          block.erase(a);
          model.erase(v);
        }
        break;
      case 2:  // membership must agree
        EXPECT_EQ(block.contains(a), model.count(v) != 0);
        break;
      case 3:  // pop_lowest must agree
        if (!model.empty()) {
          EXPECT_EQ(block.pop_lowest().value(), *model.begin());
          model.erase(model.begin());
        }
        break;
    }
    ASSERT_EQ(block.size(), model.size());
  }
  // Final full sweep.
  for (std::uint32_t v = kPoolBase.value(); v < kPoolBase.value() + kSpan;
       ++v) {
    ASSERT_EQ(block.contains(IpAddress(v)), model.count(v) != 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressBlockProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

/// Property: minus/contains_all agree with the std::set reference model.
class MinusProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinusProperty, MatchesSetModel) {
  Rng rng(GetParam());
  constexpr std::uint32_t kSpan = 256;
  for (int round = 0; round < 20; ++round) {
    AddressBlock a, b;
    std::set<std::uint32_t> ma, mb;
    for (int i = 0; i < 120; ++i) {
      const std::uint32_t v =
          kPoolBase.value() + static_cast<std::uint32_t>(rng.below(kSpan));
      if (rng.chance(0.5) && !ma.count(v)) {
        a.insert(IpAddress(v));
        ma.insert(v);
      }
      const std::uint32_t w =
          kPoolBase.value() + static_cast<std::uint32_t>(rng.below(kSpan));
      if (rng.chance(0.5) && !mb.count(w)) {
        b.insert(IpAddress(w));
        mb.insert(w);
      }
    }
    const AddressBlock diff = a.minus(b);
    std::uint64_t expected = 0;
    for (std::uint32_t v : ma) {
      const bool in_diff = diff.contains(IpAddress(v));
      EXPECT_EQ(in_diff, mb.count(v) == 0) << IpAddress(v);
      if (!mb.count(v)) ++expected;
    }
    EXPECT_EQ(diff.size(), expected);
    EXPECT_TRUE(a.contains_all(diff));
    EXPECT_TRUE(diff.disjoint_with(b));
    // contains_all agrees with subset relation on the models.
    const bool subset =
        std::includes(ma.begin(), ma.end(), mb.begin(), mb.end());
    EXPECT_EQ(a.contains_all(b), subset);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinusProperty,
                         ::testing::Values(21, 42, 63, 84));

/// Property: split_half then merge round-trips.
class SplitMergeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitMergeProperty, RoundTrips) {
  Rng rng(GetParam());
  AddressBlock b;
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t v =
        kPoolBase.value() + static_cast<std::uint32_t>(rng.below(1024));
    if (!b.contains(IpAddress(v))) b.insert(IpAddress(v));
  }
  const AddressBlock original = b;
  AddressBlock upper = b.split_half();
  EXPECT_TRUE(b.disjoint_with(upper));
  b.merge(upper);
  EXPECT_EQ(b, original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitMergeProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// AllocationTable
// ---------------------------------------------------------------------------

TEST(AllocationTable, ImplicitFreeRecord) {
  AllocationTable t;
  const auto rec = t.get(kPoolBase);
  EXPECT_EQ(rec.status, AddressStatus::kFree);
  EXPECT_EQ(rec.timestamp, 0u);
  EXPECT_FALSE(t.allocated(kPoolBase));
  EXPECT_EQ(t.entries(), 0u);
}

TEST(AllocationTable, CommitAllocateBumpsTimestamp) {
  AllocationTable t;
  const auto rec = t.commit_allocate(kPoolBase, 7, 0);
  EXPECT_EQ(rec.status, AddressStatus::kAllocated);
  EXPECT_EQ(rec.holder, 7u);
  EXPECT_EQ(rec.timestamp, 1u);
  const auto rec2 = t.commit_free(kPoolBase, 5);  // newer quorum info
  EXPECT_EQ(rec2.timestamp, 6u);
  EXPECT_FALSE(t.allocated(kPoolBase));
}

TEST(AllocationTable, DoubleAllocateSameHolderOk) {
  AllocationTable t;
  t.commit_allocate(kPoolBase, 7, 0);
  EXPECT_NO_THROW(t.commit_allocate(kPoolBase, 7, 1));
  EXPECT_THROW(t.commit_allocate(kPoolBase, 9, 2), InvariantViolation);
}

TEST(AllocationTable, AdoptIfNewer) {
  AllocationTable t;
  t.commit_allocate(kPoolBase, 3, 0);  // ts 1
  AddressRecord stale{AddressStatus::kFree, 0, 0};
  EXPECT_FALSE(t.adopt_if_newer(kPoolBase, stale));
  AddressRecord fresh{AddressStatus::kFree, 9, 0};
  EXPECT_TRUE(t.adopt_if_newer(kPoolBase, fresh));
  EXPECT_FALSE(t.allocated(kPoolBase));
}

TEST(AllocationTable, MergeNewerCounts) {
  AllocationTable a, b;
  a.commit_allocate(kPoolBase, 1, 0);                   // ts 1
  b.commit_allocate(kPoolBase, 1, 5);                   // ts 6 (newer)
  b.commit_allocate(IpAddress(10, 0, 0, 1), 2, 0);      // new addr
  EXPECT_EQ(a.merge_newer(b), 2u);
  EXPECT_EQ(a.get(kPoolBase).timestamp, 6u);
  EXPECT_TRUE(a.allocated(IpAddress(10, 0, 0, 1)));
  EXPECT_EQ(a.merge_newer(b), 0u);  // idempotent
}

TEST(AllocationTable, AllocatedCount) {
  AllocationTable t;
  t.commit_allocate(kPoolBase, 1, 0);
  t.commit_allocate(IpAddress(10, 0, 0, 1), 2, 0);
  t.commit_free(IpAddress(10, 0, 0, 1), 1);
  EXPECT_EQ(t.allocated_count(), 1u);
  EXPECT_EQ(t.known_addresses().size(), 2u);
}

TEST(DeriveFreePool, UniverseMinusAllocated) {
  const auto universe = AddressBlock::contiguous(kPoolBase, 8);
  AllocationTable t;
  t.commit_allocate(IpAddress(10, 0, 0, 2), 1, 0);
  t.commit_allocate(IpAddress(10, 0, 0, 5), 2, 0);
  // derive_free_pool lives in core/qip_types.hpp but only depends on addr.
  AddressBlock free = universe;
  for (IpAddress a : t.known_addresses()) {
    if (t.allocated(a)) free.erase(a);
  }
  EXPECT_EQ(free.size(), 6u);
  EXPECT_FALSE(free.contains(IpAddress(10, 0, 0, 2)));
}

}  // namespace
}  // namespace qip
