// Failure-detector suite (ctest -L adversary): HelloTimeoutDetector and
// SwimDetector unit mechanics — grace periods, detection latency, the
// clear()-on-outage contract — plus the engine-level equivalence guarantee:
// on a fault-free run, none / hello_timeout / swim produce byte-identical
// configurations with zero suspicions or quarantines (the detectors are
// pure observers until something actually fails).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"
#include "net/failure_detector.hpp"
#include "net/metrics.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace qip {
namespace {

/// The net_test chain: 0 - 1 - 2 - 3 - 4, 100 m apart, range 120 m.
Topology chain_topology() {
  Topology topo(Rect{1000.0, 1000.0}, 120.0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    topo.add_node(i, {100.0 * i, 0.0});
  }
  return topo;
}

struct DetectorFixture : ::testing::Test {
  Simulator sim;
  Topology topo = chain_topology();
  MessageStats stats;
  Transport transport{sim, topo, stats, 0.01};
};

// ---------------------------------------------------------------------------
// HelloTimeoutDetector
// ---------------------------------------------------------------------------

TEST_F(DetectorFixture, HelloFreshEntryGetsFullGrace) {
  HelloTimeoutDetector det(sim, /*timeout=*/3.0);
  det.observe(0, {1});  // no heard-source installed: nobody is ever heard
  EXPECT_FALSE(det.suspects(0, 1));
  sim.run(2.0);
  EXPECT_FALSE(det.suspects(0, 1));  // inside the grace window
  sim.run(3.5);
  EXPECT_TRUE(det.suspects(0, 1));  // 3.5 s of silence > 3 s timeout
  EXPECT_FALSE(det.suspects(0, 2));  // never watched: no opinion
}

TEST_F(DetectorFixture, HelloHeardBeaconRefreshesDeadline) {
  HelloTimeoutDetector det(sim, 3.0);
  bool beaconing = true;
  det.set_heard([&](NodeId, NodeId) { return beaconing; });
  det.observe(0, {1});
  sim.run(2.0);
  det.observe(0, {1});  // heard at t=2: deadline moves to t=5
  sim.run(4.0);
  EXPECT_FALSE(det.suspects(0, 1));
  beaconing = false;
  det.observe(0, {1});  // silent: no refresh
  sim.run(5.5);
  EXPECT_TRUE(det.suspects(0, 1));  // > 3 s past the t=2 refresh
}

TEST_F(DetectorFixture, HelloClearRestoresGrace) {
  HelloTimeoutDetector det(sim, 3.0);
  det.observe(0, {1});
  sim.run(4.0);
  ASSERT_TRUE(det.suspects(0, 1));
  // The protocol clears the pair while its oracle says the peer is
  // unreachable: silence across an outage is not evidence.
  det.clear(0, 1);
  EXPECT_FALSE(det.suspects(0, 1));
  det.observe(0, {1});  // re-observed: stamps fresh
  sim.run(6.0);
  EXPECT_FALSE(det.suspects(0, 1));  // 2 s into a brand-new grace period
}

TEST_F(DetectorFixture, HelloForgetDropsBothDirections) {
  HelloTimeoutDetector det(sim, 3.0);
  det.observe(0, {1});
  det.observe(1, {0});
  sim.run(4.0);
  ASSERT_TRUE(det.suspects(0, 1));
  ASSERT_TRUE(det.suspects(1, 0));
  det.forget(1);
  EXPECT_FALSE(det.suspects(0, 1));
  EXPECT_FALSE(det.suspects(1, 0));
}

// ---------------------------------------------------------------------------
// SwimDetector
// ---------------------------------------------------------------------------

TEST_F(DetectorFixture, SwimRespondingTargetNeverSuspected) {
  SwimDetector det(transport);
  det.set_responder([](NodeId) { return true; });
  for (int i = 0; i < 5; ++i) {
    det.observe(0, {1});
    sim.run(sim.now() + 1.0);
  }
  EXPECT_EQ(det.misses(0, 1), 0u);
  EXPECT_FALSE(det.suspects(0, 1));
  // Probe traffic is metered as maintenance: ping + ack, one hop each.
  EXPECT_EQ(stats.of(Traffic::kMaintenance).messages, 10u);
}

TEST_F(DetectorFixture, SwimSilentTargetSuspectedWithinTwoProbeCycles) {
  SwimDetector det(transport);
  det.set_responder([](NodeId) { return false; });
  // Watch of one: no proxies, so a miss is confirmed at the direct
  // ack_timeout (0.5 s).  confirm_misses = 2 — one miss is not a verdict.
  det.observe(0, {1});
  sim.run(0.6);
  EXPECT_EQ(det.misses(0, 1), 1u);
  EXPECT_FALSE(det.suspects(0, 1));
  det.observe(0, {1});
  sim.run(1.2);
  EXPECT_TRUE(det.suspects(0, 1));
  // Detection latency: two probe cycles, ~2 × ack_timeout of sim time.
  EXPECT_LE(sim.now(), 1.2);
}

TEST_F(DetectorFixture, SwimUnreachableTargetSuspectedAtSameCadence) {
  topo.add_node(99, {900.0, 900.0});  // out of everyone's range
  SwimDetector det(transport);
  det.set_responder([](NodeId) { return true; });
  det.observe(0, {99});  // ping is never delivered: silence, not a refusal
  sim.run(0.6);
  EXPECT_EQ(det.misses(0, 99), 1u);
  det.observe(0, {99});
  sim.run(1.2);
  EXPECT_TRUE(det.suspects(0, 99));
}

TEST_F(DetectorFixture, SwimIndirectRoundExtendsConfirmationDeadline) {
  SwimDetector det(transport);
  // Proxy 4 serves probes; target 1 refuses everything.  The direct miss at
  // 0.5 s starts a ping-req round through the proxy, and only its 1.0 s
  // deadline expiring confirms the miss.
  det.set_responder([](NodeId n) { return n == 4; });
  det.observe(0, {1, 4});  // round-robin starts at the lowest id: target 1
  sim.run(1.0);
  EXPECT_EQ(det.misses(0, 1), 0u);  // indirect round still in flight
  sim.run(1.6);
  EXPECT_EQ(det.misses(0, 1), 1u);
  EXPECT_FALSE(det.suspects(0, 1));
}

TEST_F(DetectorFixture, SwimAckClearsAccumulatedMisses) {
  SwimDetector det(transport);
  bool serving = false;
  det.set_responder([&](NodeId) { return serving; });
  det.observe(0, {1});
  sim.run(0.6);
  ASSERT_EQ(det.misses(0, 1), 1u);
  serving = true;  // the node recovers before the threshold
  det.observe(0, {1});
  sim.run(1.2);
  EXPECT_EQ(det.misses(0, 1), 0u);
  EXPECT_FALSE(det.suspects(0, 1));
}

// Regression for the stale-evidence bug: misses accumulated while a peer was
// genuinely unreachable must not condemn it the moment it drifts back into
// range.  The engine calls clear() whenever its own (crash-level) oracle
// already accounts for the peer; a cleared pair starts from zero.
TEST_F(DetectorFixture, SwimClearWipesStaleOutageEvidence) {
  SwimDetector det(transport);
  bool in_range = false;  // models the peer being away
  det.set_responder([&](NodeId) { return in_range; });
  for (int i = 0; i < 2; ++i) {
    det.observe(0, {1});
    sim.run(sim.now() + 0.6);
  }
  ASSERT_TRUE(det.suspects(0, 1));  // outage looked like two misses
  det.clear(0, 1);
  EXPECT_FALSE(det.suspects(0, 1));
  EXPECT_EQ(det.misses(0, 1), 0u);
  in_range = true;  // the peer returns, honest
  det.observe(0, {1});
  sim.run(sim.now() + 1.0);
  EXPECT_EQ(det.misses(0, 1), 0u);  // fresh start, immediate ack
  EXPECT_FALSE(det.suspects(0, 1));
}

TEST_F(DetectorFixture, SwimForgetDropsAllStateAboutPeer) {
  SwimDetector det(transport);
  det.set_responder([](NodeId) { return false; });
  for (int i = 0; i < 2; ++i) {
    det.observe(0, {1});
    det.observe(1, {0});
    sim.run(sim.now() + 0.6);
  }
  ASSERT_TRUE(det.suspects(0, 1));
  ASSERT_TRUE(det.suspects(1, 0));
  det.forget(1);
  EXPECT_FALSE(det.suspects(0, 1));
  EXPECT_FALSE(det.suspects(1, 0));
  EXPECT_EQ(det.misses(0, 1), 0u);
}

TEST_F(DetectorFixture, SwimRoundRobinCyclesThroughWatchList) {
  SwimDetector det(transport);
  std::vector<NodeId> pinged;
  det.set_responder([&](NodeId n) {
    pinged.push_back(n);
    return true;
  });
  for (int i = 0; i < 4; ++i) {
    det.observe(0, {1, 2, 3});
    sim.run(sim.now() + 1.0);
  }
  // Deterministic rotation over the sorted watch-list, wrapping around.
  EXPECT_EQ(pinged, (std::vector<NodeId>{1, 2, 3, 1}));
}

// ---------------------------------------------------------------------------
// Engine-level equivalence: on a fault-free run the detector choice is
// invisible — same addresses, no suspicion, no quarantine, for all three of
// none / hello_timeout / swim.
// ---------------------------------------------------------------------------

enum class DetectorKind { kNone, kHello, kSwim };

struct EquivalenceResult {
  std::map<NodeId, IpAddress> addresses;
  double configured = 0.0;
  std::uint64_t quarantines = 0;
  std::uint64_t challenges = 0;
};

EquivalenceResult run_with_detector(DetectorKind kind) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  wp.area_side = 500.0;
  World world(wp, /*seed=*/31337);
  QipParams qp;
  qp.harden.enabled = true;  // full hardening path active, nothing to harden
  QipEngine proto(world.transport(), world.rng(), qp);
  HelloTimeoutDetector hello(world.sim());
  SwimDetector swim(world.transport());
  if (kind == DetectorKind::kHello) proto.set_failure_detector(&hello);
  if (kind == DetectorKind::kSwim) proto.set_failure_detector(&swim);
  proto.start_hello();
  Driver d(world, proto);
  d.join(40);
  world.run_for(30.0);

  EquivalenceResult out;
  out.addresses = proto.configured_addresses();
  out.configured = d.configured_fraction();
  out.quarantines = proto.quarantines();
  out.challenges = proto.challenges_sent();
  return out;
}

TEST(DetectorEquivalence, FaultFreeRunIsIdenticalAcrossDetectors) {
  const EquivalenceResult none = run_with_detector(DetectorKind::kNone);
  const EquivalenceResult hello = run_with_detector(DetectorKind::kHello);
  const EquivalenceResult swim = run_with_detector(DetectorKind::kSwim);

  EXPECT_EQ(none.configured, 1.0);
  for (const EquivalenceResult* r : {&none, &hello, &swim}) {
    EXPECT_EQ(r->quarantines, 0u);
    EXPECT_EQ(r->challenges, 0u);
  }
  // Probe traffic differs; protocol decisions must not.
  EXPECT_EQ(none.addresses, hello.addresses);
  EXPECT_EQ(none.addresses, swim.addresses);
  EXPECT_EQ(none.configured, hello.configured);
  EXPECT_EQ(none.configured, swim.configured);
}

}  // namespace
}  // namespace qip
