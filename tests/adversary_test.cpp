// Adversarial autoconfiguration suite (docs/ADVERSARY.md).
//
// Four attack families against the live protocol, each in both arms of the
// hardening ablation.  The unhardened arm demonstrates the damage — address
// squatting and replica poisoning break the uniqueness invariant (the
// always-on auditor throws), silent defection drops service — and the
// hardened arm demonstrates the defense: challenges, suspicion and
// quarantine contain every attack with zero post-convergence uniqueness
// violations.  Plan validation and the no-adversary byte-identity contract
// are covered here too.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/qip_engine.hpp"
#include "fault/adversary.hpp"
#include "fault/adversary_plan.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"
#include "net/failure_detector.hpp"
#include "util/assert.hpp"

namespace qip {
namespace {

// ---------------------------------------------------------------------------
// Plan validation
// ---------------------------------------------------------------------------

TEST(AdversaryPlan, ValidPlansPass) {
  AdversaryPlan empty;
  EXPECT_NO_THROW(empty.validate());
  EXPECT_TRUE(empty.null());

  AdversaryPlan plan;
  plan.attacks.push_back({7, AttackKind::kSquat, 5.0, 20.0});
  plan.attacks.push_back({7, AttackKind::kSquat, 20.0, 30.0});  // abuts: fine
  plan.attacks.push_back({7, AttackKind::kConflictFlood, 0.0, 50.0});
  plan.attacks.push_back({9, AttackKind::kSquat, 0.0});  // until = +inf
  EXPECT_NO_THROW(plan.validate());
  EXPECT_FALSE(plan.null());
}

TEST(AdversaryPlan, RejectsMissingNode) {
  AdversaryPlan plan;
  plan.attacks.push_back({kNoNode, AttackKind::kSquat, 0.0, 1.0});
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(AdversaryPlan, RejectsNegativeStart) {
  AdversaryPlan plan;
  plan.attacks.push_back({3, AttackKind::kReplicaPoison, -1.0, 1.0});
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(AdversaryPlan, RejectsInvertedWindow) {
  AdversaryPlan plan;
  plan.attacks.push_back({3, AttackKind::kSilentDefection, 10.0, 5.0});
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(AdversaryPlan, RejectsOverlappingWindowsForSameNodeAndKind) {
  AdversaryPlan plan;
  plan.attacks.push_back({3, AttackKind::kSquat, 0.0, 10.0});
  plan.attacks.push_back({3, AttackKind::kSquat, 5.0, 15.0});
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(AdversaryController, WindowSemanticsAndClaimLatch) {
  AdversaryPlan plan;
  plan.attacks.push_back({4, AttackKind::kSquat, 10.0, 20.0});
  AdversaryController ctl(plan);
  EXPECT_TRUE(ctl.active());

  EXPECT_FALSE(ctl.is(4, AttackKind::kSquat, 9.9));
  EXPECT_TRUE(ctl.is(4, AttackKind::kSquat, 10.0));
  EXPECT_FALSE(ctl.is(4, AttackKind::kSquat, 20.0));  // half-open window
  EXPECT_FALSE(ctl.is(4, AttackKind::kConflictFlood, 15.0));
  EXPECT_FALSE(ctl.is(5, AttackKind::kSquat, 15.0));
  EXPECT_EQ(ctl.attackers(AttackKind::kSquat, 15.0), std::vector<NodeId>{4});

  EXPECT_FALSE(ctl.claim_once(4, AttackKind::kSquat, 5.0));  // window closed
  EXPECT_TRUE(ctl.claim_once(4, AttackKind::kSquat, 12.0));  // fires once
  EXPECT_FALSE(ctl.claim_once(4, AttackKind::kSquat, 13.0));
}

// ---------------------------------------------------------------------------
// Attack scenarios (mirrors bench/ablation_adversary.cpp's cell)
// ---------------------------------------------------------------------------

struct AttackRun {
  bool violated = false;
  double configured = 0.0;
  std::uint64_t quarantines = 0;
  std::uint64_t challenges = 0;
  std::vector<NodeId> attackers;
  std::vector<NodeId> quarantined;
  AdversaryStats stats;
};

AttackRun run_attack(AttackKind kind, double fraction, bool hardened,
                     std::uint64_t seed) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  wp.area_side = 500.0;  // dense enough that attacker and victim share a
                         // component — where uniqueness is auditable
  World world(wp, seed);
  QipParams qp;
  qp.harden.enabled = hardened;
  QipEngine proto(world.transport(), world.rng(), qp);
  SwimDetector swim(world.transport());
  proto.set_failure_detector(&swim);
  proto.start_hello();
  Driver d(world, proto);

  AttackRun out;
  try {
    d.join(60);
    world.run_for(10.0);
    std::vector<NodeId> pool;
    if (kind == AttackKind::kSquat) {
      for (NodeId n : d.members()) {
        if (proto.knows(n) && proto.state_of(n).role == Role::kCommonNode)
          pool.push_back(n);
      }
    } else {
      pool = proto.clusters().heads();
    }
    AdversaryPlan plan;
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               fraction * static_cast<double>(pool.size()) + 0.5));
    for (std::size_t i = 0; i < k && !pool.empty(); ++i) {
      const NodeId attacker = pool[i * pool.size() / k];
      out.attackers.push_back(attacker);
      plan.attacks.push_back({attacker, kind, world.sim().now(), 1.0e18});
    }
    world.enable_adversary(plan);
    world.run_for(15.0);
    d.join(12);
    world.run_for(35.0);
  } catch (const InvariantViolation&) {
    out.violated = true;
  }
  out.configured = d.configured_fraction();
  out.quarantines = proto.quarantines();
  out.challenges = proto.challenges_sent();
  for (NodeId a : out.attackers) {
    if (proto.is_quarantined(a)) out.quarantined.push_back(a);
  }
  if (world.adversary()) out.stats = world.adversary()->stats();
  return out;
}

TEST(Squat, UnhardenedViolatesUniqueness) {
  const AttackRun r = run_attack(AttackKind::kSquat, 0.1, false, 7010);
  EXPECT_GT(r.stats.squats, 0u);
  // The squatters answer to stolen addresses and nothing evicts them: the
  // duplicate outlives the auditor's healing grace and the run aborts.
  EXPECT_TRUE(r.violated);
  EXPECT_EQ(r.quarantines, 0u);
}

TEST(Squat, HardenedChallengesAndQuarantines) {
  const AttackRun r = run_attack(AttackKind::kSquat, 0.1, true, 7010);
  EXPECT_GT(r.stats.squats, 0u);
  EXPECT_FALSE(r.violated);
  // Every squatter was challenged (its claim contradicted a head's table),
  // stayed silent, and was expelled into its own audit domain.
  EXPECT_GE(r.challenges, r.stats.squats);
  EXPECT_EQ(r.quarantined.size(), r.attackers.size());
  EXPECT_EQ(r.configured, 1.0);
}

TEST(Squat, QuarantineMovesSquatterToOwnAuditDomain) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  wp.area_side = 500.0;
  World world(wp, 7010);
  QipParams qp;
  qp.harden.enabled = true;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  Driver d(world, proto);
  d.join(40);
  world.run_for(10.0);
  NodeId attacker = kNoNode;
  for (NodeId n : d.members()) {
    if (proto.knows(n) && proto.state_of(n).role == Role::kCommonNode) {
      attacker = n;
      break;
    }
  }
  ASSERT_NE(attacker, kNoNode);
  const std::uint64_t honest_domain = proto.audit_domain(attacker);
  AdversaryPlan plan;
  plan.attacks.push_back(
      {attacker, AttackKind::kSquat, world.sim().now(), 1.0e18});
  world.enable_adversary(plan);
  world.run_for(20.0);
  ASSERT_TRUE(proto.is_quarantined(attacker));
  // The expelled claim no longer collides as far as the protocol's service
  // is concerned; the audit reflects that with a per-node domain.
  EXPECT_NE(proto.audit_domain(attacker), honest_domain);
  // ...and the quarantined node holds no protocol role anymore.
  EXPECT_FALSE(proto.clusters().is_head(attacker));
}

TEST(ReplicaPoison, UnhardenedReissuesLiveAddresses) {
  const AttackRun r = run_attack(AttackKind::kReplicaPoison, 0.3, false, 7230);
  EXPECT_GT(r.stats.poisoned_snapshots, 0u);
  // Honest owners believe the poisoned "free" records and re-issue addresses
  // still in use: a duplicate the protocol never heals.
  EXPECT_TRUE(r.violated);
}

TEST(ReplicaPoison, HardenedVerifiesDemotionsAndQuarantines) {
  const AttackRun r = run_attack(AttackKind::kReplicaPoison, 0.3, true, 7230);
  EXPECT_FALSE(r.violated);
  EXPECT_GE(r.quarantines, 1u);
  // Owner-verified demotions cut the poison off after the first pushes; the
  // unhardened arm absorbs two orders of magnitude more.
  EXPECT_LT(r.stats.poisoned_snapshots, 30u);
  EXPECT_EQ(r.configured, 1.0);
}

TEST(ConflictFlood, HardenedQuarantinesProvenFalseVetoes) {
  const AttackRun off = run_attack(AttackKind::kConflictFlood, 0.3, false,
                                   7131);
  const AttackRun on = run_attack(AttackKind::kConflictFlood, 0.3, true, 7131);
  EXPECT_GT(off.stats.false_conflicts, 0u);
  // Quorum redundancy absorbs a minority of false vetoes (no uniqueness
  // breach either way)...
  EXPECT_FALSE(off.violated);
  EXPECT_FALSE(on.violated);
  // ...but hardened, a veto contradicted by the committed grant is evidence,
  // and repeat flooders are expelled from every future voting group.
  EXPECT_GE(on.quarantines, 1u);
  EXPECT_LE(on.stats.false_conflicts, off.stats.false_conflicts);
}

TEST(SilentDefection, HardenedRestoresService) {
  const AttackRun off = run_attack(AttackKind::kSilentDefection, 0.3, false,
                                   7330);
  const AttackRun on = run_attack(AttackKind::kSilentDefection, 0.3, true,
                                  7330);
  EXPECT_GT(off.stats.dropped_services, 0u);
  // Defectors beacon but serve nothing; the SWIM detector raises them and
  // the hardened arm expels them, so service recovers.
  EXPECT_GE(on.quarantines, 1u);
  EXPECT_LT(on.stats.dropped_services, off.stats.dropped_services);
  EXPECT_GE(on.configured, off.configured);
  EXPECT_FALSE(off.violated);
  EXPECT_FALSE(on.violated);
}

// ---------------------------------------------------------------------------
// Byte-identity: a dormant adversary and hardening-off must leave a run
// untouched (the repo's golden/trace gates check the same property globally).
// ---------------------------------------------------------------------------

struct RunDigest {
  std::map<NodeId, IpAddress> addresses;
  std::uint64_t total_hops = 0;
};

RunDigest digest_run(bool with_dormant_adversary) {
  World world({}, /*seed=*/4242);
  QipEngine proto(world.transport(), world.rng());
  proto.start_hello();
  Driver d(world, proto);
  if (with_dormant_adversary) {
    AdversaryPlan plan;
    plan.attacks.push_back({1, AttackKind::kSquat, 1.0e17, 1.0e18});
    world.enable_adversary(plan);
  }
  d.join(30);
  world.run_for(20.0);
  RunDigest out;
  for (NodeId n : d.members()) {
    if (const auto a = proto.address_of(n)) out.addresses[n] = *a;
  }
  out.total_hops = world.stats().total_hops();
  return out;
}

TEST(Adversary, DormantPlanIsByteIdentical) {
  const RunDigest plain = digest_run(false);
  const RunDigest dormant = digest_run(true);
  EXPECT_EQ(plain.addresses, dormant.addresses);
  EXPECT_EQ(plain.total_hops, dormant.total_hops);
}

}  // namespace
}  // namespace qip
