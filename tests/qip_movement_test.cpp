// Location-update behavior (§IV-C.1): periodic UPDATE_LOC vs the
// upon-leave scheme, administrator hand-off, and address return routing
// after movement.
#include <gtest/gtest.h>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

struct MovementFixture : ::testing::Test {
  WorldParams wp{};
  World world{wp, /*seed=*/606};
  QipParams qp{};
  std::unique_ptr<QipEngine> proto;
  std::unique_ptr<Driver> driver;

  void init(bool periodic) {
    qp.pool_size = 256;
    qp.periodic_location_update = periodic;
    proto = std::make_unique<QipEngine>(world.transport(), world.rng(), qp);
    proto->start_hello();
    DriverOptions dopt;
    dopt.mobility = false;  // movement is injected by hand
    dopt.arrival_interval = 1.0;
    driver = std::make_unique<Driver>(world, *proto, dopt);
  }

  /// Two heads four hops apart with relays; a member of head A.
  struct Net {
    NodeId a, b, m;
  };
  Net build() {
    Net n{};
    n.a = driver->join_at({100, 500});
    world.run_for(5.0);
    driver->join_at({240, 500});
    driver->join_at({380, 500});
    n.b = driver->join_at({520, 500});
    world.run_for(2.0);
    driver->join_at({660, 500});  // extend the chain beyond B
    driver->join_at({800, 500});
    n.m = driver->join_at({140, 560});  // member of A
    world.run_for(2.0);
    EXPECT_EQ(proto->state_of(n.m).configurer, n.a);
    return n;
  }

  /// Walks node `id` to `target` and runs the location-update scan.
  void teleport(NodeId id, const Point& target) {
    world.topology().move_node(id, target);
    proto->on_mobility_tick();
    world.run_for(1.0);
  }
};

TEST_F(MovementFixture, PeriodicSchemeHandsOffAdministrator) {
  init(/*periodic=*/true);
  const Net n = build();
  const auto before = world.stats().of(Traffic::kMovement).hops;
  // Move m from A's side to beyond B: > 3 hops from its configurer.
  teleport(n.m, {810, 560});
  const auto& st = proto->state_of(n.m);
  EXPECT_NE(st.administrator, kNoNode);
  EXPECT_NE(st.administrator, n.a);
  EXPECT_GT(world.stats().of(Traffic::kMovement).hops, before)
      << "UPDATE_LOC must be charged to movement traffic";
  // The administrator recorded the configurer for return routing.
  const auto& admin = proto->state_of(st.administrator);
  ASSERT_TRUE(admin.administered.count(n.m));
  EXPECT_EQ(admin.administered.at(n.m), n.a);
}

TEST_F(MovementFixture, PeriodicSchemeQuietWithinThreshold) {
  init(true);
  const Net n = build();
  const auto before = world.stats().of(Traffic::kMovement).hops;
  // Small move: still within 3 hops of the configurer.
  teleport(n.m, {250, 560});
  EXPECT_EQ(world.stats().of(Traffic::kMovement).hops, before);
  EXPECT_EQ(proto->state_of(n.m).administrator, kNoNode);
}

TEST_F(MovementFixture, UponLeaveSchemeSendsNoLocationUpdates) {
  init(/*periodic=*/false);
  const Net n = build();
  teleport(n.m, {810, 560});
  teleport(n.m, {140, 560});
  teleport(n.m, {810, 560});
  EXPECT_EQ(world.stats().of(Traffic::kMovement).hops, 0u);
  EXPECT_EQ(proto->state_of(n.m).administrator, kNoNode);
}

TEST_F(MovementFixture, ReturnAfterMovementReachesAllocator) {
  init(true);
  const Net n = build();
  const IpAddress addr = *proto->address_of(n.m);
  teleport(n.m, {810, 560});  // far from A, administered near B
  // Graceful departure from the far side: RETURN_ADDR goes to the nearest
  // head and is forwarded home; A's pool regains the address.
  driver->depart_graceful(n.m);
  world.run_for(3.0);
  const auto& sa = proto->state_of(n.a);
  EXPECT_TRUE(sa.ip_space.contains(addr))
      << "the address must find its way back to its allocator";
  EXPECT_FALSE(sa.table.allocated(addr));
}

TEST_F(MovementFixture, UponLeaveReturnStillReachesAllocator) {
  init(false);
  const Net n = build();
  const IpAddress addr = *proto->address_of(n.m);
  teleport(n.m, {810, 560});
  driver->depart_graceful(n.m);
  world.run_for(3.0);
  EXPECT_TRUE(proto->state_of(n.a).ip_space.contains(addr))
      << "without location updates the return pays forwarding instead";
}

TEST_F(MovementFixture, LargestBlockPollingChargesConfiguration) {
  qp.pick_largest_block = true;
  init(true);
  // Two heads both within two hops of the newcomer: the poll must run.
  driver->join_at({500, 500});
  world.run_for(5.0);
  driver->join_at({500, 300});
  driver->join_at({500, 400});  // relay; second head forms at distance
  world.run_for(2.0);
  const auto before = world.stats().of(Traffic::kConfiguration).hops;
  const NodeId x = driver->join_at({500, 440});
  world.run_for(2.0);
  EXPECT_TRUE(proto->configured(x));
  EXPECT_GT(world.stats().of(Traffic::kConfiguration).hops, before + 2)
      << "candidate polling adds request/reply pairs beyond the join itself";
}

}  // namespace
}  // namespace qip
