// Behavioural tests of the QIP engine: bootstrap, clustering, quorum-voted
// configuration, borrowing, and the §IV data-structure invariants.
#include <gtest/gtest.h>

#include <set>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

/// Deterministic fixture: static nodes (no mobility) with explicit
/// placement, 150 m radios.
struct QipFixture : ::testing::Test {
  WorldParams wp{};
  World world{wp, /*seed=*/77};
  QipParams qp{};
  std::unique_ptr<QipEngine> proto;
  std::unique_ptr<Driver> driver;

  void init(std::uint64_t pool = 256) {
    qp.pool_size = pool;
    proto = std::make_unique<QipEngine>(world.transport(), world.rng(), qp);
    proto->start_hello();
    DriverOptions dopt;
    dopt.mobility = false;
    dopt.arrival_interval = 1.0;  // bootstrap needs up to max_r * te
    driver = std::make_unique<Driver>(world, *proto, dopt);
  }
};

TEST_F(QipFixture, FirstNodeBecomesHeadWithWholePool) {
  init(256);
  const NodeId a = driver->join_at({500, 500});
  world.run_for(5.0);
  ASSERT_TRUE(proto->configured(a));
  const auto& st = proto->state_of(a);
  EXPECT_EQ(st.role, Role::kClusterHead);
  EXPECT_EQ(st.owned_universe.size(), 256u);
  EXPECT_EQ(*st.ip, kPoolBase);
  EXPECT_EQ(st.ip_space.size(), 255u);  // pool minus its own address
  EXPECT_EQ(st.network_id.low, kPoolBase);
  EXPECT_EQ(proto->clusters().head_count(), 1u);
}

TEST_F(QipFixture, SecondNodeNearbyBecomesCommonNode) {
  init();
  const NodeId a = driver->join_at({500, 500});
  world.run_for(5.0);
  const NodeId b = driver->join_at({600, 500});  // 1 hop from the head
  world.run_for(2.0);
  ASSERT_TRUE(proto->configured(b));
  const auto& st = proto->state_of(b);
  EXPECT_EQ(st.role, Role::kCommonNode);
  EXPECT_EQ(st.configurer, a);
  EXPECT_EQ(*st.ip, kPoolBase.next());  // lowest free address
  EXPECT_EQ(proto->clusters().head_of(b), a);
}

TEST_F(QipFixture, DistantNodeBecomesClusterHeadWithHalfBlock) {
  init(256);
  const NodeId a = driver->join_at({100, 500});
  world.run_for(5.0);
  // 3 hops away (via two relays) — beyond ch_radius=2.
  const NodeId r1 = driver->join_at({240, 500});
  const NodeId r2 = driver->join_at({380, 500});
  world.run_for(2.0);
  const NodeId b = driver->join_at({520, 500});
  world.run_for(3.0);
  ASSERT_TRUE(proto->configured(b));
  const auto& sb = proto->state_of(b);
  EXPECT_EQ(sb.role, Role::kClusterHead);
  EXPECT_EQ(sb.configurer, a);
  // Half of A's remaining space (A keeps the ceiling half).
  EXPECT_GE(sb.owned_universe.size(), 120u);
  EXPECT_LE(sb.owned_universe.size(), 128u);
  const auto& sa = proto->state_of(a);
  EXPECT_TRUE(sa.owned_universe.disjoint_with(sb.owned_universe));
  // Relays joined as common nodes of A.
  EXPECT_EQ(proto->state_of(r1).role, Role::kCommonNode);
  EXPECT_EQ(proto->state_of(r2).role, Role::kCommonNode);
}

TEST_F(QipFixture, QdSetFormsBetweenNearbyHeads) {
  init(256);
  driver->join_at({100, 500});
  world.run_for(5.0);
  driver->join_at({240, 500});
  driver->join_at({380, 500});
  const NodeId b = driver->join_at({520, 500});
  world.run_for(3.0);
  ASSERT_EQ(proto->state_of(b).role, Role::kClusterHead);
  // Heads 0 and b are 3 hops apart: each other's QDSet.
  const auto& sa = proto->state_of(0);
  const auto& sb = proto->state_of(b);
  EXPECT_TRUE(sa.qdset.count(b));
  EXPECT_TRUE(sb.qdset.count(0));
  // And they hold each other's replicas with matching universes.
  ASSERT_TRUE(sa.replicas.count(b));
  ASSERT_TRUE(sb.replicas.count(0));
  EXPECT_EQ(sa.replicas.at(b).universe, sb.owned_universe);
}

TEST_F(QipFixture, QuorumVotedAllocationUpdatesReplicas) {
  init(256);
  // Build two linked heads as above.
  driver->join_at({100, 500});
  world.run_for(5.0);
  driver->join_at({240, 500});
  driver->join_at({380, 500});
  const NodeId b = driver->join_at({520, 500});
  world.run_for(3.0);
  ASSERT_EQ(proto->state_of(b).role, Role::kClusterHead);
  // New node joins near B: the allocation runs a quorum round with A and
  // afterwards A's replica of B reflects the allocation.
  const NodeId c = driver->join_at({560, 560});
  world.run_for(3.0);
  ASSERT_TRUE(proto->configured(c));
  const auto& sc = proto->state_of(c);
  EXPECT_EQ(sc.role, Role::kCommonNode);
  EXPECT_EQ(sc.configurer, b);
  const auto& sa = proto->state_of(0);
  ASSERT_TRUE(sa.replicas.count(b));
  EXPECT_TRUE(sa.replicas.at(b).table.allocated(*sc.ip));
  EXPECT_FALSE(sa.replicas.at(b).free_pool.contains(*sc.ip));
}

TEST_F(QipFixture, AddressesAreUnique) {
  init(1024);
  // Connected arrivals (static topology): one network, one address space.
  driver->join(41);
  world.run_for(5.0);
  const auto addresses = proto->configured_addresses();
  std::set<IpAddress> unique;
  for (const auto& [id, addr] : addresses) unique.insert(addr);
  EXPECT_EQ(unique.size(), addresses.size());
  EXPECT_GE(driver->configured_fraction(), 0.95);
}

TEST_F(QipFixture, UniverseDisjointnessAcrossHeads) {
  init(1024);
  driver->join(41);
  world.run_for(5.0);
  const auto heads = proto->clusters().heads();
  for (std::size_t i = 0; i < heads.size(); ++i) {
    for (std::size_t j = i + 1; j < heads.size(); ++j) {
      const auto& a = proto->state_of(heads[i]);
      const auto& b = proto->state_of(heads[j]);
      EXPECT_TRUE(a.owned_universe.disjoint_with(b.owned_universe))
          << "heads " << heads[i] << " and " << heads[j];
    }
  }
}

TEST_F(QipFixture, IpSpaceSubsetOfUniverse) {
  init(1024);
  Rng place(11);
  driver->join_at({500, 500});
  world.run_for(5.0);
  for (int i = 0; i < 30; ++i) {
    driver->join_at({place.uniform(200, 800), place.uniform(200, 800)});
  }
  world.run_for(5.0);
  for (NodeId h : proto->clusters().heads()) {
    const auto& st = proto->state_of(h);
    EXPECT_TRUE(st.owned_universe.contains_all(st.ip_space));
    // The head's own address is allocated, not free.
    EXPECT_FALSE(st.ip_space.contains(*st.ip));
  }
}

TEST_F(QipFixture, ConfigRecordBookkeeping) {
  init();
  const NodeId a = driver->join_at({500, 500});
  world.run_for(5.0);
  const NodeId b = driver->join_at({600, 500});
  world.run_for(2.0);
  const ConfigRecord* rec = proto->config_record(b);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->success);
  EXPECT_GE(rec->attempts, 1u);
  EXPECT_GT(rec->latency_hops, 0u);
  EXPECT_GE(rec->completed_at, rec->requested_at);
  EXPECT_EQ(proto->address_of(b), rec->address);
  EXPECT_EQ(proto->config_failures(), 0u);
  EXPECT_EQ(proto->config_successes(), 2u);
  (void)a;
}

TEST_F(QipFixture, LatencyLowForLocalConfiguration) {
  init();
  driver->join_at({500, 500});
  world.run_for(5.0);
  const NodeId b = driver->join_at({590, 500});
  world.run_for(2.0);
  // One-hop requestor with an empty QDSet at the allocator: request +
  // configure = 2 hops.
  EXPECT_LE(proto->config_record(b)->latency_hops, 4u);
}

TEST_F(QipFixture, BorrowingFromQuorumSpace) {
  // Tiny pool: A keeps ~7 free after the relays; B's half holds ~6, so six
  // joiners near B exhaust B's own space and force QuorumSpace borrowing.
  init(16);
  const NodeId a = driver->join_at({100, 500});
  world.run_for(5.0);
  driver->join_at({240, 500});
  driver->join_at({380, 500});
  const NodeId b = driver->join_at({520, 500});
  world.run_for(3.0);
  ASSERT_EQ(proto->state_of(b).role, Role::kClusterHead);
  // Exhaust B's tiny space (it got ~4 addresses, one for itself) and keep
  // joining near B: the later ones must borrow from A's space via B's
  // QuorumSpace or agent forwarding.
  std::vector<NodeId> joiners;
  for (int i = 0; i < 6; ++i) {
    joiners.push_back(driver->join_at({520.0 + 10 * i, 560.0}));
    world.run_for(1.5);
  }
  world.run_for(3.0);
  std::uint32_t configured = 0;
  std::set<IpAddress> addrs;
  for (NodeId j : joiners) {
    if (proto->configured(j)) {
      ++configured;
      addrs.insert(*proto->address_of(j));
    }
  }
  EXPECT_EQ(configured, joiners.size())
      << "borrowing/agent forwarding should cover exhaustion";
  EXPECT_EQ(addrs.size(), configured);  // still unique
  (void)a;
}

TEST_F(QipFixture, LargestBlockAllocatorChoice) {
  qp.pick_largest_block = true;
  init(256);
  driver->join_at({500, 500});
  world.run_for(5.0);
  for (int i = 0; i < 8; ++i) {
    driver->join_at({450.0 + 15 * i, 540.0});
  }
  world.run_for(3.0);
  EXPECT_GE(driver->configured_fraction(), 0.99);
}

TEST_F(QipFixture, StrictMajorityVariantStillConfigures) {
  qp.quorum = QuorumBackend::kMajority;
  init(256);
  driver->join_at({500, 500});
  world.run_for(5.0);
  for (int i = 0; i < 10; ++i) {
    driver->join_at({300.0 + 40 * i, 520.0});
  }
  world.run_for(3.0);
  EXPECT_GE(driver->configured_fraction(), 0.9);
}

TEST_F(QipFixture, HelloTickCountsBeacons) {
  init();
  driver->join_at({500, 500});
  world.run_for(5.0);
  const auto before = world.stats().of(Traffic::kHello).messages;
  proto->hello_tick();
  EXPECT_EQ(world.stats().of(Traffic::kHello).messages, before + 1);
}

TEST_F(QipFixture, AverageMetricsSane) {
  init(1024);
  Rng place(13);
  driver->join_at({500, 500});
  world.run_for(5.0);
  for (int i = 0; i < 30; ++i) {
    driver->join_at({place.uniform(150, 850), place.uniform(150, 850)});
  }
  world.run_for(5.0);
  EXPECT_GT(proto->average_own_space(), 0.0);
  EXPECT_GE(proto->average_visible_space(), proto->average_own_space());
  EXPECT_GE(proto->average_qdset_size(), 0.0);
}

}  // namespace
}  // namespace qip
