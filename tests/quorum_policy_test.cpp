// Tests for the pluggable quorum-backend layer: backend parsing, counting
// and set-form equivalences across majority / dynamic_linear / slices,
// federated slice semantics, enumeration-cap rejection, and the
// property-based intersection checker (docs/QUORUM.md).
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"
#include "quorum/dynamic_linear.hpp"
#include "quorum/intersection_checker.hpp"
#include "quorum/quorum_policy.hpp"
#include "quorum/quorum_system.hpp"
#include "quorum/slices.hpp"
#include "util/assert.hpp"

namespace qip {
namespace {

std::vector<std::uint32_t> universe(std::uint32_t n) {
  std::vector<std::uint32_t> u(n);
  std::iota(u.begin(), u.end(), 1u);
  return u;
}

std::vector<std::uint32_t> subset_of(std::uint32_t mask,
                                     const std::vector<std::uint32_t>& u) {
  std::vector<std::uint32_t> s;
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (mask & (1u << i)) s.push_back(u[i]);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Backend selection surface
// ---------------------------------------------------------------------------

TEST(QuorumBackend, ParseAcceptsExactNamesOnly) {
  EXPECT_EQ(parse_quorum_backend("majority"), QuorumBackend::kMajority);
  EXPECT_EQ(parse_quorum_backend("dynamic_linear"),
            QuorumBackend::kDynamicLinear);
  EXPECT_EQ(parse_quorum_backend("slices"), QuorumBackend::kSlices);
  EXPECT_FALSE(parse_quorum_backend(nullptr).has_value());
  EXPECT_FALSE(parse_quorum_backend("").has_value());
  EXPECT_FALSE(parse_quorum_backend("Majority").has_value());
  EXPECT_FALSE(parse_quorum_backend("slice").has_value());
  EXPECT_FALSE(parse_quorum_backend("dynamic-linear").has_value());
}

TEST(QuorumBackend, NamesRoundTrip) {
  for (QuorumBackend b : {QuorumBackend::kMajority,
                          QuorumBackend::kDynamicLinear,
                          QuorumBackend::kSlices}) {
    EXPECT_EQ(parse_quorum_backend(to_string(b)), b);
    EXPECT_EQ(quorum_policy(b).kind(), b);
    EXPECT_STREQ(quorum_policy(b).name(), to_string(b));
  }
}

TEST(QuorumBackendDeathTest, MalformedEnvExits2) {
  setenv("QIP_QUORUM", "consensus", 1);
  EXPECT_EXIT(quorum_backend_from_env(), ::testing::ExitedWithCode(2),
              "not a quorum backend");
  unsetenv("QIP_QUORUM");
}

TEST(QuorumBackend, UnsetEnvDefaultsToDynamicLinear) {
  unsetenv("QIP_QUORUM");
  EXPECT_EQ(quorum_backend_from_env(), QuorumBackend::kDynamicLinear);
  setenv("QIP_QUORUM", "", 1);
  EXPECT_EQ(quorum_backend_from_env(), QuorumBackend::kDynamicLinear);
  setenv("QIP_QUORUM", "slices", 1);
  EXPECT_EQ(quorum_backend_from_env(), QuorumBackend::kSlices);
  unsetenv("QIP_QUORUM");
}

// ---------------------------------------------------------------------------
// Cross-backend equivalences (the fault-free suite of docs/QUORUM.md)
// ---------------------------------------------------------------------------

TEST(QuorumPolicyEquivalence, CountingFormsAgree) {
  const auto& maj = quorum_policy(QuorumBackend::kMajority);
  const auto& dl = quorum_policy(QuorumBackend::kDynamicLinear);
  const auto& sl = quorum_policy(QuorumBackend::kSlices);
  for (std::uint32_t n = 1; n <= 20; ++n) {
    // Flat-majority slices collapse to majority counting, always.
    EXPECT_EQ(maj.threshold(n, false), n / 2 + 1);
    EXPECT_EQ(sl.threshold(n, false), maj.threshold(n, false));
    EXPECT_EQ(sl.threshold(n, true), maj.threshold(n, true));
    // Dynamic linear agrees except on the even-group distinguished discount.
    EXPECT_EQ(dl.threshold(n, false), maj.threshold(n, false));
    EXPECT_EQ(dl.threshold(n, true), quorum_threshold(n, true));
    if (n % 2 == 0 && n >= 2) {
      EXPECT_EQ(dl.threshold(n, true), maj.threshold(n, true) - 1);
    }
  }
}

TEST(QuorumPolicyEquivalence, SetFormsAgreeWithoutDistinguished) {
  // majority ≡ dynamic_linear(distinguished = ∅) ≡ slices(flat-majority),
  // on every subset of every small universe.
  const auto& maj = quorum_policy(QuorumBackend::kMajority);
  const auto& dl = quorum_policy(QuorumBackend::kDynamicLinear);
  const auto& sl = quorum_policy(QuorumBackend::kSlices);
  for (std::uint32_t n = 1; n <= 7; ++n) {
    const auto u = universe(n);
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      const auto s = subset_of(mask, u);
      const bool by_majority = maj.is_quorum(u, s, std::nullopt);
      EXPECT_EQ(dl.is_quorum(u, s, std::nullopt), by_majority)
          << "n=" << n << " mask=" << mask;
      EXPECT_EQ(sl.is_quorum(u, s, std::nullopt), by_majority)
          << "n=" << n << " mask=" << mask;
      // slices ≡ majority even in the presence of a distinguished node.
      EXPECT_EQ(sl.is_quorum(u, s, u.front()), by_majority);
    }
  }
}

TEST(QuorumPolicyEquivalence, MaterializedSystemsCoverIdentically) {
  const auto& maj = quorum_policy(QuorumBackend::kMajority);
  const auto& sl = quorum_policy(QuorumBackend::kSlices);
  for (std::uint32_t n = 1; n <= 7; ++n) {
    const auto u = universe(n);
    const QuorumSystem a = maj.materialize(u, std::nullopt);
    const QuorumSystem b = sl.materialize(u, std::nullopt);
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      const auto s = subset_of(mask, u);
      EXPECT_EQ(a.covers_quorum(s), b.covers_quorum(s))
          << "n=" << n << " mask=" << mask;
    }
  }
}

TEST(QuorumPolicyEquivalence, DynamicLinearMatchesFreeFunctions) {
  // The refactor must be byte-identical in behavior to the §II-D free
  // functions the engine used before the policy layer existed.
  const auto& dl = quorum_policy(QuorumBackend::kDynamicLinear);
  for (std::uint32_t n = 1; n <= 7; ++n) {
    const auto u = universe(n);
    for (std::uint32_t dist = 1; dist <= n; ++dist) {
      for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        const auto s = subset_of(mask, u);
        EXPECT_EQ(dl.is_quorum(u, s, dist), is_quorum(n, s, dist))
            << "n=" << n << " dist=" << dist << " mask=" << mask;
      }
      for (bool has : {false, true}) {
        EXPECT_EQ(dl.threshold(n, has), quorum_threshold(n, has));
      }
    }
  }
}

TEST(QuorumPolicy, ReadSystemsIntersectWriteSystems) {
  for (QuorumBackend b : {QuorumBackend::kMajority,
                          QuorumBackend::kDynamicLinear,
                          QuorumBackend::kSlices}) {
    const auto& policy = quorum_policy(b);
    for (std::uint32_t n = 1; n <= 7; ++n) {
      const auto u = universe(n);
      const QuorumSystem writes = policy.materialize(u, u.front());
      const QuorumSystem reads = policy.read_system(u, u.front());
      EXPECT_TRUE(writes.pairwise_intersecting()) << policy.name() << " " << n;
      for (const auto& r : reads.quorums()) {
        for (const auto& w : writes.quorums()) {
          std::vector<std::uint32_t> overlap;
          std::set_intersection(r.begin(), r.end(), w.begin(), w.end(),
                                std::back_inserter(overlap));
          EXPECT_FALSE(overlap.empty())
              << policy.name() << " n=" << n << ": read quorum misses write";
        }
      }
    }
  }
}

TEST(QuorumPolicy, MajorityReadQuorumsAreMinimal) {
  // r = n − w + 1: reads are cheaper than writes on even groups.
  const auto& maj = quorum_policy(QuorumBackend::kMajority);
  const QuorumSystem reads = maj.read_system(universe(6), std::nullopt);
  EXPECT_EQ(reads.min_quorum_size(), 3u);
  const QuorumSystem writes = maj.materialize(universe(6), std::nullopt);
  EXPECT_EQ(writes.min_quorum_size(), 4u);
}

// ---------------------------------------------------------------------------
// Federated slice semantics
// ---------------------------------------------------------------------------

TEST(Slices, FlatMajorityDeclarationShape) {
  const SliceConfig cfg = SliceConfig::flat_majority(universe(5));
  ASSERT_EQ(cfg.slices().size(), 5u);
  for (const auto& [node, slice] : cfg.slices()) {
    EXPECT_EQ(slice.threshold, 3u);
    EXPECT_EQ(slice.validators, universe(5));
  }
}

TEST(Slices, SatisfactionAndVBlocking) {
  QuorumSlice slice;
  slice.threshold = 2;
  slice.validators = {1, 2, 3};
  EXPECT_TRUE(SliceConfig::satisfies_slice(slice, {1, 3}));
  EXPECT_FALSE(SliceConfig::satisfies_slice(slice, {3}));
  EXPECT_TRUE(SliceConfig::satisfies_slice(slice, {1, 2, 3, 9}));
  // v-blocking: fewer than `threshold` validators survive outside the set.
  EXPECT_TRUE(SliceConfig::is_v_blocking(slice, {1, 2}));   // only 3 left
  EXPECT_FALSE(SliceConfig::is_v_blocking(slice, {1}));     // {2,3} suffice
  EXPECT_TRUE(SliceConfig::is_v_blocking(slice, {1, 2, 3}));
}

TEST(Slices, QuorumRequiresEveryMemberSatisfied) {
  // Node 4 trusts only {4,5}, so any quorum containing 4 needs both.
  SliceConfig cfg = SliceConfig::flat_majority(universe(3));
  QuorumSlice narrow;
  narrow.threshold = 2;
  narrow.validators = {4, 5};
  cfg.set(4, narrow);
  EXPECT_TRUE(cfg.is_quorum({1, 2}));        // flat majority of {1,2,3}
  EXPECT_FALSE(cfg.is_quorum({1, 2, 4}));    // 4's slice unsatisfied
  EXPECT_FALSE(cfg.is_quorum({1, 2, 5}));    // 5 never declared
  EXPECT_FALSE(cfg.is_quorum({}));
}

TEST(Slices, MaxQuorumWithinPrunesToFixpoint) {
  SliceConfig cfg = SliceConfig::flat_majority(universe(4));
  // {1,2,3} is the largest quorum inside {1,2,3}; adding undeclared 9
  // changes nothing; {1} alone prunes to empty.
  EXPECT_EQ(cfg.max_quorum_within({1, 2, 3}), universe(3));
  EXPECT_EQ(cfg.max_quorum_within({9, 3, 1, 2}), universe(3));
  EXPECT_TRUE(cfg.max_quorum_within({1}).empty());
}

TEST(Slices, MalformedDeclarationsThrow) {
  QuorumSlice slice;
  slice.threshold = 0;
  slice.validators = {1, 2};
  EXPECT_THROW(slice.validate(), InvariantViolation);
  slice.threshold = 3;
  EXPECT_THROW(slice.validate(), InvariantViolation);  // above validator count
  slice.threshold = 2;
  slice.validators = {2, 1};
  EXPECT_THROW(slice.validate(), InvariantViolation);  // unsorted
  slice.validators = {1, 1};
  EXPECT_THROW(slice.validate(), InvariantViolation);  // duplicate
  slice.validators.clear();
  EXPECT_THROW(slice.validate(), InvariantViolation);  // empty
}

TEST(QuorumSystem, FromSlicesMatchesConfigOnEverySubset) {
  SliceConfig cfg = SliceConfig::flat_majority(universe(5));
  QuorumSlice narrow;
  narrow.threshold = 1;
  narrow.validators = {1, 2};
  cfg.set(2, narrow);
  const QuorumSystem qs = QuorumSystem::from_slices(cfg, universe(5));
  for (std::uint32_t mask = 0; mask < (1u << 5); ++mask) {
    const auto s = subset_of(mask, universe(5));
    EXPECT_EQ(qs.covers_quorum(s), !cfg.max_quorum_within(s).empty())
        << "mask=" << mask;
  }
}

// ---------------------------------------------------------------------------
// Enumeration-cap rejection (FaultPlan::validate idiom)
// ---------------------------------------------------------------------------

TEST(QuorumSystemCaps, BuildersRejectOversizedUniverses) {
  const auto over = universe(QuorumSystem::kMaxUniverse + 1);
  EXPECT_THROW(QuorumSystem::majority(over), InvariantViolation);
  EXPECT_THROW(QuorumSystem::dynamic_linear(over, 1), InvariantViolation);
  EXPECT_THROW(QuorumSystem::fixed_size(over, 3), InvariantViolation);
  const auto over_slices = universe(QuorumSystem::kMaxSliceUniverse + 1);
  EXPECT_THROW(
      QuorumSystem::from_slices(SliceConfig::flat_majority(over_slices),
                                over_slices),
      InvariantViolation);
  // The caps themselves still build.
  EXPECT_NO_THROW(QuorumSystem::majority(universe(QuorumSystem::kMaxUniverse)));
  const auto at_slice_cap = universe(QuorumSystem::kMaxSliceUniverse);
  EXPECT_NO_THROW(QuorumSystem::from_slices(
      SliceConfig::flat_majority(at_slice_cap), at_slice_cap));
}

TEST(QuorumSystemCaps, RejectionNamesTheLimit) {
  try {
    QuorumSystem::majority(universe(QuorumSystem::kMaxUniverse + 4));
    FAIL() << "oversized universe was accepted";
  } catch (const InvariantViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("24"), std::string::npos) << what;
    EXPECT_NE(what.find("enumeration cap"), std::string::npos) << what;
  }
}

TEST(QuorumSystemCaps, FixedSizeRejectsBadK) {
  EXPECT_THROW(QuorumSystem::fixed_size(universe(4), 0), InvariantViolation);
  EXPECT_THROW(QuorumSystem::fixed_size(universe(4), 5), InvariantViolation);
  EXPECT_EQ(QuorumSystem::fixed_size(universe(4), 2).quorums().size(), 6u);
}

// ---------------------------------------------------------------------------
// Intersection checker
// ---------------------------------------------------------------------------

TEST(IntersectionChecker, ExhaustivePassesOnAllBackends) {
  for (QuorumBackend b : {QuorumBackend::kMajority,
                          QuorumBackend::kDynamicLinear,
                          QuorumBackend::kSlices}) {
    for (std::uint32_t n = 1; n <= 6; ++n) {
      const IntersectionReport r =
          check_intersection_exhaustive(quorum_policy(b), n);
      EXPECT_TRUE(r.ok) << to_string(b) << " n=" << n << ": " << r.violation;
      EXPECT_GE(r.views, 1u);
      if (n >= 3) {
        // Views beyond the starting QDSet means mid-adjustment states —
        // post-shrink views — were actually reached and checked.
        EXPECT_GT(r.views, 1u) << to_string(b) << " n=" << n;
        EXPECT_GT(r.shrinks, 0u) << to_string(b) << " n=" << n;
      }
    }
  }
}

TEST(IntersectionChecker, DynamicLinearReachesHalfSizeViews) {
  // The distinguished discount lets an even view shrink through exactly-half
  // survivorship: from {0,1,2,3}, survivors {0,1} (with distinguished 0)
  // commit the shrink — a view no majority backend can reach.
  const IntersectionReport dl =
      check_intersection_exhaustive(
          quorum_policy(QuorumBackend::kDynamicLinear), 4);
  const IntersectionReport maj =
      check_intersection_exhaustive(quorum_policy(QuorumBackend::kMajority),
                                    4);
  EXPECT_TRUE(dl.ok) << dl.violation;
  EXPECT_TRUE(maj.ok) << maj.violation;
  EXPECT_GT(dl.views, maj.views);
}

TEST(IntersectionChecker, RandomizedPassesOnLargerUniverses) {
  for (QuorumBackend b : {QuorumBackend::kMajority,
                          QuorumBackend::kDynamicLinear,
                          QuorumBackend::kSlices}) {
    const IntersectionReport r = check_intersection_random(
        quorum_policy(b), /*universe_size=*/14, /*seed=*/0x5eed,
        /*trials=*/64);
    EXPECT_TRUE(r.ok) << to_string(b) << ": " << r.violation;
    EXPECT_GE(r.views, 64u);
    EXPECT_GT(r.shrinks, 0u);
    EXPECT_GT(r.pairs, 0u);
  }
}

TEST(IntersectionChecker, SliceConfigAcceptsFlatMajority) {
  for (std::uint32_t n = 1; n <= 8; ++n) {
    const IntersectionReport r =
        check_slice_config(SliceConfig::flat_majority(universe(n)),
                           universe(n));
    EXPECT_TRUE(r.ok) << "n=" << n << ": " << r.violation;
  }
}

TEST(IntersectionChecker, RefutesDisjointTrustCliques) {
  // Two cliques that only trust themselves: {1,2,3} and {4,5,6} each form a
  // quorum, and they are disjoint — the checker must refuse this config.
  SliceConfig broken;
  QuorumSlice left, right;
  left.threshold = 2;
  left.validators = {1, 2, 3};
  right.threshold = 2;
  right.validators = {4, 5, 6};
  for (std::uint32_t n : {1u, 2u, 3u}) broken.set(n, left);
  for (std::uint32_t n : {4u, 5u, 6u}) broken.set(n, right);
  const IntersectionReport r = check_slice_config(broken, universe(6));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("disjoint"), std::string::npos) << r.violation;
  // The materialized system agrees: it is not pairwise intersecting.
  EXPECT_FALSE(
      QuorumSystem::from_slices(broken, universe(6)).pairwise_intersecting());
}

// ---------------------------------------------------------------------------
// Engine-level equivalence: majority vs slices, pop for pop
// ---------------------------------------------------------------------------

struct ScenarioOutcome {
  std::vector<std::pair<NodeId, std::string>> addresses;
  std::uint64_t protocol_hops = 0;
};

ScenarioOutcome run_scenario(QuorumBackend backend) {
  WorldParams wp;
  World world(wp, /*seed=*/77);
  QipParams qp;
  qp.pool_size = 256;
  qp.quorum = backend;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  DriverOptions dopt;
  dopt.mobility = false;
  dopt.arrival_interval = 1.0;
  Driver driver(world, proto, dopt);
  // A multi-head line so quorum rounds really span several QDSet members.
  driver.join_at({60, 500});
  world.run_for(5.0);
  for (int i = 1; i <= 9; ++i) {
    driver.join_at({60.0 + 98.0 * i, 500.0});
    world.run_for(1.5);
  }
  world.run_for(5.0);
  ScenarioOutcome out;
  for (NodeId id = 0; id < driver.joined_count(); ++id) {
    if (!proto.configured(id)) continue;
    out.addresses.emplace_back(id, proto.address_of(id)->to_string());
  }
  out.protocol_hops = world.stats().protocol_hops();
  return out;
}

TEST(QuorumPolicyEquivalence, EngineMajorityAndSlicesPopForPop) {
  // Flat-majority slices are count-equivalent to strict majority, so the
  // two backends must drive the engine through identical message flows:
  // same addresses, same hop totals.
  const ScenarioOutcome maj = run_scenario(QuorumBackend::kMajority);
  const ScenarioOutcome sl = run_scenario(QuorumBackend::kSlices);
  EXPECT_EQ(maj.addresses, sl.addresses);
  EXPECT_EQ(maj.protocol_hops, sl.protocol_hops);
  EXPECT_GE(maj.addresses.size(), 9u);
}

TEST(QuorumPolicyEquivalence, EngineDefaultMatchesExplicitDynamicLinear) {
  unsetenv("QIP_QUORUM");
  const ScenarioOutcome dflt = run_scenario(quorum_backend_from_env());
  const ScenarioOutcome dl = run_scenario(QuorumBackend::kDynamicLinear);
  EXPECT_EQ(dflt.addresses, dl.addresses);
  EXPECT_EQ(dflt.protocol_hops, dl.protocol_hops);
}

}  // namespace
}  // namespace qip
