// Parallel replication suite (ctest -L parallel).
//
// The determinism contract (docs/PARALLELISM.md): the worker count is pure
// mechanism.  run_cells() must produce the same results, the same merged
// trace, the same metrics and the same log bytes at every QIP_JOBS value —
// and two Worlds on two fresh SimContexts must never observe each other,
// however their event loops interleave.
//
// Wall-clock profile sections (cat "profile", profile_us histograms) are the
// one documented exception: ProfileScope measures real time, which differs
// run to run even sequentially.  Comparisons below filter them out; every
// sim-time event and every deterministic metric must match exactly.
//
// Run this suite under TSan (QIP_SANITIZE=thread) to validate the handoff
// protocol in run_cells: worker → merger slot publication, backpressure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/parallel.hpp"
#include "harness/world.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/sim_context.hpp"

namespace qip {
namespace {

DriverOptions static_arrivals() {
  DriverOptions d;
  d.mobility = false;
  return d;
}

/// One replication cell: a 25-node QIP bringup on `ctx`, exporting its
/// message accounting into the context's registry on the way out.
struct CellOutcome {
  double configured = 0.0;
  double latency = 0.0;
  std::uint64_t protocol_hops = 0;
};

CellOutcome bringup_cell(SimContext& ctx, std::uint64_t seed) {
  World world(WorldParams{}, seed, ctx);
  QipEngine proto(world.transport(), world.rng(), QipParams{});
  proto.start_hello();
  Driver driver(world, proto, static_arrivals());
  driver.join(25);
  world.run_for(3.0);
  world.stats().export_to(ctx.metrics());
  CellOutcome out;
  out.configured = driver.configured_fraction();
  out.latency = driver.mean_config_latency();
  out.protocol_hops = world.stats().protocol_hops();
  return out;
}

bool is_profile(const obs::Event& e) {
  return e.cat != nullptr && std::string_view(e.cat) == "profile";
}

std::vector<obs::Event> sim_events(const obs::TraceRecorder& rec) {
  std::vector<obs::Event> out;
  for (const auto& e : rec.events()) {
    if (!is_profile(e)) out.push_back(e);
  }
  return out;
}

/// render_text() minus the wall-clock profile_us series.
std::string deterministic_metrics(const obs::MetricsRegistry& metrics) {
  std::istringstream in(metrics.render_text());
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("profile_us") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

void expect_same_events(const std::vector<obs::Event>& a,
                        const std::vector<obs::Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_STREQ(a[i].name, b[i].name);
    EXPECT_STREQ(a[i].cat, b[i].cat);
    EXPECT_EQ(a[i].phase, b[i].phase);
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].tid, b[i].tid);
    ASSERT_EQ(a[i].argc, b[i].argc);
    for (std::uint8_t k = 0; k < a[i].argc; ++k) {
      EXPECT_STREQ(a[i].args[k].key, b[i].args[k].key);
      ASSERT_EQ(a[i].args[k].kind, b[i].args[k].kind);
      switch (a[i].args[k].kind) {
        case obs::Arg::Kind::kInt:
          EXPECT_EQ(a[i].args[k].i, b[i].args[k].i);
          break;
        case obs::Arg::Kind::kDouble:
          EXPECT_EQ(a[i].args[k].d, b[i].args[k].d);
          break;
        case obs::Arg::Kind::kStr:
          EXPECT_STREQ(a[i].args[k].s, b[i].args[k].s);
          break;
        case obs::Arg::Kind::kNone:
          break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// run_cells mechanics
// ---------------------------------------------------------------------------

TEST(RunCells, MergesInAscendingOrderAtAnyJobsCount) {
  for (std::uint32_t jobs : {1u, 2u, 4u, 16u}) {
    SCOPED_TRACE(jobs);
    SimContext parent(42);
    std::vector<std::size_t> order;
    std::vector<std::uint64_t> seeds;
    run_cells<std::uint64_t>(
        parent, jobs, 13,
        [](std::size_t, SimContext& ctx) { return ctx.root_seed(); },
        [&](std::size_t idx, std::uint64_t seed) {
          order.push_back(idx);
          seeds.push_back(seed);
        });
    ASSERT_EQ(order.size(), 13u);
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], i);
      // Cell seeds are a pure function of (parent seed, idx) — never of
      // which worker picked the cell up.
      EXPECT_EQ(seeds[i], parent.derive_seed(i));
    }
  }
}

TEST(RunCells, LowestIndexExceptionWinsAndLaterCellsAreDiscarded) {
  for (std::uint32_t jobs : {1u, 4u}) {
    SCOPED_TRACE(jobs);
    SimContext parent(1);
    std::vector<std::size_t> merged;
    try {
      run_cells<int>(
          parent, jobs, 12,
          [](std::size_t idx, SimContext&) -> int {
            if (idx == 3 || idx == 7) {
              throw std::runtime_error("boom " + std::to_string(idx));
            }
            return static_cast<int>(idx);
          },
          [&](std::size_t idx, int) { merged.push_back(idx); });
      FAIL() << "run_cells swallowed the cell exception";
    } catch (const CellFailure& e) {
      // Deterministic even when cell 7 finishes (and fails) first — and the
      // rethrown failure carries the cell's identity, not just the payload:
      // index and seed name the one simulation to re-run in isolation.
      EXPECT_EQ(e.index(), 3u);
      EXPECT_EQ(e.seed(), parent.derive_seed(3));
      EXPECT_NE(std::string(e.what()).find("cell 3 (seed 0x"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("boom 3"), std::string::npos)
          << e.what();
    }
    EXPECT_EQ(merged, (std::vector<std::size_t>{0, 1, 2}));
  }
}

TEST(RunCells, NonStdExceptionsStillCarryCellIdentity) {
  SimContext parent(5);
  try {
    run_cells<int>(
        parent, /*jobs=*/1, /*total=*/2,
        [](std::size_t, SimContext&) -> int { throw 42; },
        [](std::size_t, int) {});
    FAIL() << "run_cells swallowed the cell exception";
  } catch (const CellFailure& e) {
    EXPECT_EQ(e.index(), 0u);
    EXPECT_NE(std::string(e.what()).find("unknown exception"),
              std::string::npos);
  }
}

TEST(RunCells, FailureCancelsStillQueuedCells) {
  // Cell 0 fails immediately; everything queued behind the failure should be
  // skipped, not run to completion.  With the backpressure window (2*jobs+2)
  // only a bounded prefix can even start before the failure is recorded, so
  // an executed count anywhere near `total` means cancellation is broken.
  std::atomic<std::size_t> executed{0};
  SimContext parent(9);
  try {
    run_cells<int>(
        parent, /*jobs=*/4, /*total=*/400,
        [&](std::size_t idx, SimContext&) -> int {
          if (idx == 0) throw std::runtime_error("first cell fails");
          executed.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          return 0;
        },
        [](std::size_t, int) {});
    FAIL() << "run_cells swallowed the cell exception";
  } catch (const CellFailure& e) {
    EXPECT_EQ(e.index(), 0u);
  }
  EXPECT_LT(executed.load(), 100u);
}

TEST(Parallel, DeriveCellSeedIsPureAndCollisionFree) {
  EXPECT_EQ(derive_cell_seed(5, 2, 3), derive_cell_seed(5, 2, 3));
  std::set<std::uint64_t> seen;
  for (std::uint64_t xi = 0; xi < 6; ++xi) {
    for (std::uint64_t r = 0; r < 8; ++r) {
      seen.insert(derive_cell_seed(12345, xi, r));
    }
  }
  EXPECT_EQ(seen.size(), 48u);
}

// ---------------------------------------------------------------------------
// Byte-identity of merged results, traces, metrics and logs across jobs
// ---------------------------------------------------------------------------

std::vector<CellOutcome> replicate(std::uint32_t jobs, std::size_t cells) {
  SimContext parent(2026);
  std::vector<CellOutcome> merged;
  run_cells<CellOutcome>(
      parent, jobs, cells,
      [](std::size_t idx, SimContext& ctx) {
        return bringup_cell(ctx, derive_cell_seed(99, 0, idx));
      },
      [&](std::size_t, CellOutcome out) { merged.push_back(out); });
  return merged;
}

TEST(RunCells, ResultsAreBitIdenticalAcrossJobs) {
  const auto sequential = replicate(/*jobs=*/1, /*cells=*/4);
  const auto parallel = replicate(/*jobs=*/4, /*cells=*/4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    SCOPED_TRACE(i);
    // Exact equality, not near-equality: same seed, same event order, same
    // floating-point operations in the same order.
    EXPECT_EQ(sequential[i].configured, parallel[i].configured);
    EXPECT_EQ(sequential[i].latency, parallel[i].latency);
    EXPECT_EQ(sequential[i].protocol_hops, parallel[i].protocol_hops);
  }
  EXPECT_GT(sequential[0].configured, 0.9);
}

struct Observed {
  std::vector<obs::Event> events;
  std::string metrics;
  std::string logs;
  std::uint64_t warnings = 0;
};

Observed observe(std::uint32_t jobs) {
  SimContext parent(7);
  std::ostringstream sink;
  parent.logger().set_sink(&sink);
  parent.recorder().set_capacity(1u << 15);
  parent.recorder().enable();
  run_cells<CellOutcome>(
      parent, jobs, /*total=*/3,
      [](std::size_t idx, SimContext& ctx) {
        ctx.logger().write_raw("cell " + std::to_string(idx) + " ran\n");
        return bringup_cell(ctx, derive_cell_seed(7, 0, idx));
      },
      [](std::size_t, CellOutcome) {});
  Observed o;
  o.events = sim_events(parent.recorder());
  o.metrics = deterministic_metrics(parent.metrics());
  o.logs = sink.str();
  o.warnings = parent.logger().warning_count();
  parent.logger().set_sink(nullptr);
  return o;
}

TEST(RunCells, TraceMetricsAndLogsIdenticalAcrossJobs) {
  const Observed sequential = observe(/*jobs=*/1);
  const Observed parallel = observe(/*jobs=*/4);

  // The bringup traces something: empty-vs-empty would vacuously pass.
  ASSERT_GT(sequential.events.size(), 100u);
  expect_same_events(sequential.events, parallel.events);

  ASSERT_NE(sequential.metrics.find("qip_messages_total"), std::string::npos);
  EXPECT_EQ(sequential.metrics, parallel.metrics);

  // Replica log lines buffer per-cell and flush in merge order.
  EXPECT_EQ(sequential.logs, "cell 0 ran\ncell 1 ran\ncell 2 ran\n");
  EXPECT_EQ(parallel.logs, sequential.logs);
  EXPECT_EQ(parallel.warnings, sequential.warnings);
}

TEST(RunCells, ReplicaSpanIdsNeverCollideAfterMerge) {
  SimContext parent(3);
  parent.recorder().set_capacity(1u << 15);
  parent.recorder().enable();
  run_cells<int>(
      parent, /*jobs=*/4, /*total=*/4,
      [](std::size_t idx, SimContext& ctx) {
        bringup_cell(ctx, derive_cell_seed(3, 0, idx));
        return 0;
      },
      [](std::size_t, int) {});
  // Every begin must pair with exactly one end of the same id; ids from
  // different replicas were remapped past each other by merge_from().
  std::set<std::uint64_t> open;
  std::size_t spans = 0;
  for (const auto& e : sim_events(parent.recorder())) {
    if (e.phase == obs::Phase::kBegin) {
      EXPECT_TRUE(open.insert(e.id).second) << "duplicate span id " << e.id;
      ++spans;
    } else if (e.phase == obs::Phase::kEnd) {
      EXPECT_EQ(open.erase(e.id), 1u) << "end without begin, id " << e.id;
    }
  }
  EXPECT_TRUE(open.empty());
  EXPECT_GT(spans, 0u);
}

// ---------------------------------------------------------------------------
// SimContext isolation
// ---------------------------------------------------------------------------

/// A stepwise 20-node bringup on its own fresh context, so two instances can
/// interleave their event loops.
class Scenario {
 public:
  explicit Scenario(std::uint64_t seed)
      : ctx_(seed),
        world_(WorldParams{}, seed, ctx_),
        proto_(world_.transport(), world_.rng(), QipParams{}) {
    ctx_.recorder().set_capacity(1u << 14);
    ctx_.recorder().enable();
    proto_.start_hello();
    driver_.emplace(world_, proto_, static_arrivals());
    driver_->join(20);
  }

  void step(double dt) { world_.run_for(dt); }

  double configured() const { return driver_->configured_fraction(); }
  double latency() const { return driver_->mean_config_latency(); }
  SimContext& ctx() { return ctx_; }
  World& world() { return world_; }

 private:
  SimContext ctx_;
  World world_;
  QipEngine proto_;
  std::optional<Driver> driver_;
};

TEST(SimContextIsolation, InterleavedWorldsMatchEachSolo) {
  // Reference: each scenario run to 3.0 s on its own.
  Scenario solo_a(101);
  for (int i = 0; i < 12; ++i) solo_a.step(0.25);
  Scenario solo_b(202);
  for (int i = 0; i < 12; ++i) solo_b.step(0.25);

  // Same scenarios, event loops interleaved in 0.25 s slices.
  Scenario a(101);
  Scenario b(202);
  for (int i = 0; i < 12; ++i) {
    a.step(0.25);
    b.step(0.25);
  }

  EXPECT_EQ(a.configured(), solo_a.configured());
  EXPECT_EQ(a.latency(), solo_a.latency());
  EXPECT_EQ(b.configured(), solo_b.configured());
  EXPECT_EQ(b.latency(), solo_b.latency());
  EXPECT_EQ(a.world().stats().protocol_hops(),
            solo_a.world().stats().protocol_hops());
  EXPECT_EQ(b.world().stats().protocol_hops(),
            solo_b.world().stats().protocol_hops());

  expect_same_events(sim_events(a.ctx().recorder()),
                     sim_events(solo_a.ctx().recorder()));
  expect_same_events(sim_events(b.ctx().recorder()),
                     sim_events(solo_b.ctx().recorder()));

  // Nothing leaked into the process-wide recorder.
  EXPECT_FALSE(obs::process_recorder().enabled());
  EXPECT_EQ(obs::process_recorder().size(), 0u);
}

TEST(SimContextIsolation, FreshContextsDoNotShareMetricsOrLogs) {
  SimContext a(1), b(2);
  a.metrics().counter("isolation_probe").inc(3.0);
  EXPECT_EQ(b.metrics().counter("isolation_probe").value(), 0.0);
  EXPECT_EQ(a.metrics().counter("isolation_probe").value(), 3.0);

  std::ostringstream sink_a, sink_b;
  a.logger().set_sink(&sink_a);
  b.logger().set_sink(&sink_b);
  a.logger().write(LogLevel::kWarn, "from a");
  EXPECT_NE(sink_a.str().find("from a"), std::string::npos);
  EXPECT_TRUE(sink_b.str().empty());
  EXPECT_EQ(a.logger().warning_count(), 1u);
  EXPECT_EQ(b.logger().warning_count(), 0u);
  EXPECT_EQ(process_logger().sink(), nullptr);
}

}  // namespace
}  // namespace qip
