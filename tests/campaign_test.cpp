// Campaign subsystem tests: grid expansion, journal resume semantics, fault
// injection plans, strict env parsing, snapshot round-trips and the
// process-pool runner itself.  `ctest -L campaign` selects this suite.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign_spec.hpp"
#include "campaign/inject.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "campaign/snapshot.hpp"
#include "harness/parallel.hpp"

namespace qip {
namespace {

std::string unique_temp_path(const std::string& stem) {
  static int counter = 0;
  return ::testing::TempDir() + stem + "_" + std::to_string(::getpid()) +
         "_" + std::to_string(counter++);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---- grid expansion -------------------------------------------------------

TEST(CampaignSpec, ExpandsInIndexOrderWithDerivedSeeds) {
  CampaignSpec spec;
  spec.protocols = {"qip", "dad"};
  spec.nodes = {8, 16};
  spec.ranges = {120.0, 180.0};
  spec.seeds = 3;
  spec.base_seed = 42;
  const auto cells = spec.expand();
  ASSERT_EQ(cells.size(), spec.cell_count());
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 3u);
  // (protocol, nodes, range, round) nesting, round innermost; every seed is
  // the historical derive_cell_seed of the flat grid point.
  std::size_t i = 0;
  std::uint64_t point = 0;
  for (const std::string& proto : spec.protocols) {
    for (std::uint32_t n : spec.nodes) {
      for (double r : spec.ranges) {
        for (std::uint64_t round = 0; round < spec.seeds; ++round, ++i) {
          EXPECT_EQ(cells[i].protocol, proto);
          EXPECT_EQ(cells[i].nodes, n);
          EXPECT_EQ(cells[i].range, r);
          EXPECT_EQ(cells[i].seed, derive_cell_seed(42, point, round));
        }
        ++point;
      }
    }
  }
}

TEST(CampaignSpec, CellCanonicalRoundTrips) {
  CellSpec spec;
  spec.protocol = "manetconf";
  spec.nodes = 17;
  spec.range = 133.33333333333333;
  spec.speed = 12.5;
  spec.duration = 3.75;
  spec.churn = 4;
  spec.abrupt = 0.1;
  spec.seed = 0xdeadbeefcafef00dULL;
  CellSpec parsed;
  ASSERT_TRUE(CellSpec::parse(spec.canonical(), &parsed));
  EXPECT_EQ(parsed, spec);
  EXPECT_EQ(parsed.canonical(), spec.canonical());
}

TEST(CampaignSpec, ValidateRejectsNonsense) {
  std::string err;
  CampaignSpec spec;
  EXPECT_TRUE(spec.validate(&err)) << err;
  spec.protocols = {"qip", "notaproto"};
  EXPECT_FALSE(spec.validate(&err));
  EXPECT_NE(err.find("notaproto"), std::string::npos);
  spec.protocols = {};
  EXPECT_FALSE(spec.validate(&err));
  spec = CampaignSpec{};
  spec.nodes = {0};
  EXPECT_FALSE(spec.validate(&err));
  spec = CampaignSpec{};
  spec.ranges = {-5.0};
  EXPECT_FALSE(spec.validate(&err));
}

TEST(CampaignSpec, DigestPinsTheGrid) {
  CampaignSpec a, b;
  EXPECT_EQ(a.digest(), b.digest());
  b.seeds = 2;
  EXPECT_NE(a.digest(), b.digest());
}

// ---- cell results ---------------------------------------------------------

TEST(CellResult, RenderParseRoundTrips) {
  CellSpec spec;
  spec.seed = 99;
  CellResult r;
  r.configured = 0.96875;
  r.latency_hops = 2.3333333333333335;
  r.protocol_hops = 123456789;
  r.joins = 32;
  r.state_digest = 0x0123456789abcdefULL;
  CellSpec spec2;
  CellResult r2;
  ASSERT_TRUE(CellResult::parse(r.render(spec), &spec2, &r2));
  EXPECT_EQ(spec2, spec);
  EXPECT_EQ(r2.render(spec2), r.render(spec));
  EXPECT_FALSE(CellResult::parse("qip-cell v2\n", &spec2, &r2));
  EXPECT_FALSE(CellResult::parse("", &spec2, &r2));
}

// ---- injection plans ------------------------------------------------------

TEST(InjectPlan, ParsesEveryKind) {
  InjectPlan plan;
  std::string err;
  ASSERT_TRUE(InjectPlan::parse("crash:3@0,hang:1@2,die-after:5", &plan, &err))
      << err;
  EXPECT_TRUE(plan.matches(InjectKind::kCrash, 3, 0));
  EXPECT_FALSE(plan.matches(InjectKind::kCrash, 3, 1));
  EXPECT_TRUE(plan.matches(InjectKind::kHang, 1, 2));
  EXPECT_FALSE(plan.matches(InjectKind::kHang, 2, 1));
  EXPECT_EQ(plan.die_after, 5u);
  InjectPlan empty;
  ASSERT_TRUE(InjectPlan::parse("", &empty, &err));
  EXPECT_TRUE(empty.points.empty());
  EXPECT_EQ(empty.die_after, SIZE_MAX);
}

TEST(InjectPlan, RejectsMalformedTerms) {
  InjectPlan plan;
  std::string err;
  EXPECT_FALSE(InjectPlan::parse("explode:1@0", &plan, &err));
  EXPECT_FALSE(InjectPlan::parse("crash:1", &plan, &err));
  EXPECT_FALSE(InjectPlan::parse("crash:x@0", &plan, &err));
  EXPECT_FALSE(InjectPlan::parse("crash:1@-2", &plan, &err));
  EXPECT_FALSE(InjectPlan::parse("die-after:soon", &plan, &err));
  EXPECT_FALSE(InjectPlan::parse("crash:1@0,,hang:2@0", &plan, &err));
}

TEST(InjectPlanDeathTest, MalformedEnvExitsTwo) {
  setenv("QIP_CAMPAIGN_INJECT", "crash-1@0", 1);
  EXPECT_EXIT(inject_plan_from_env(), ::testing::ExitedWithCode(2),
              "QIP_CAMPAIGN_INJECT");
  unsetenv("QIP_CAMPAIGN_INJECT");
}

// ---- strict env parsing (satellite: campaign knobs) -----------------------

TEST(CampaignEnv, OverlaysDefaultsFromWellFormedVariables) {
  setenv("QIP_CAMPAIGN_JOBS", "3", 1);
  setenv("QIP_CAMPAIGN_RETRIES", "0", 1);  // zero is legal: never retry
  setenv("QIP_CAMPAIGN_DEADLINE_MS", "1500", 1);
  setenv("QIP_CAMPAIGN_BACKOFF_MS", "7", 1);
  const CampaignOptions o = campaign_options_from_env();
  EXPECT_EQ(o.jobs, 3u);
  EXPECT_EQ(o.retries, 0u);
  EXPECT_EQ(o.deadline_ms, 1500u);
  EXPECT_EQ(o.backoff_ms, 7u);
  unsetenv("QIP_CAMPAIGN_JOBS");
  unsetenv("QIP_CAMPAIGN_RETRIES");
  unsetenv("QIP_CAMPAIGN_DEADLINE_MS");
  unsetenv("QIP_CAMPAIGN_BACKOFF_MS");
  const CampaignOptions d = campaign_options_from_env();
  EXPECT_EQ(d.jobs, CampaignOptions{}.jobs);
}

TEST(CampaignEnvDeathTest, MalformedVariablesExitTwo) {
  setenv("QIP_CAMPAIGN_JOBS", "two", 1);
  EXPECT_EXIT(campaign_options_from_env(), ::testing::ExitedWithCode(2),
              "QIP_CAMPAIGN_JOBS");
  setenv("QIP_CAMPAIGN_JOBS", "0", 1);  // a campaign needs a worker
  EXPECT_EXIT(campaign_options_from_env(), ::testing::ExitedWithCode(2),
              "QIP_CAMPAIGN_JOBS");
  unsetenv("QIP_CAMPAIGN_JOBS");
  setenv("QIP_CAMPAIGN_RETRIES", "-1", 1);
  EXPECT_EXIT(campaign_options_from_env(), ::testing::ExitedWithCode(2),
              "QIP_CAMPAIGN_RETRIES");
  unsetenv("QIP_CAMPAIGN_RETRIES");
  setenv("QIP_CAMPAIGN_DEADLINE_MS", "1e3", 1);
  EXPECT_EXIT(campaign_options_from_env(), ::testing::ExitedWithCode(2),
              "QIP_CAMPAIGN_DEADLINE_MS");
  unsetenv("QIP_CAMPAIGN_DEADLINE_MS");
  setenv("QIP_CAMPAIGN_BACKOFF_MS", "10ms", 1);
  EXPECT_EXIT(campaign_options_from_env(), ::testing::ExitedWithCode(2),
              "QIP_CAMPAIGN_BACKOFF_MS");
  unsetenv("QIP_CAMPAIGN_BACKOFF_MS");
}

// ---- journal --------------------------------------------------------------

TEST(Journal, FreshRefusesToOverwrite) {
  const std::string path = unique_temp_path("journal");
  CampaignSpec spec;
  std::string err;
  {
    CampaignJournal j;
    ASSERT_TRUE(j.open_fresh(path, spec, &err)) << err;
  }
  CampaignJournal j2;
  EXPECT_FALSE(j2.open_fresh(path, spec, &err));
  EXPECT_NE(err.find("--resume"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Journal, ResumeReplaysProgressAndReArmsExhausted) {
  const std::string path = unique_temp_path("journal");
  CampaignSpec spec;
  spec.seeds = 4;  // cells 0..3
  std::string err;
  {
    CampaignJournal j;
    ASSERT_TRUE(j.open_fresh(path, spec, &err)) << err;
    j.record_start(0, 0);
    j.record_done(0, 0, 0xabcdULL);
    j.record_start(1, 0);
    j.record_fail(1, 0, "crash (injected)");
    j.record_start(1, 1);
    j.record_fail(1, 1, "deadline");
    j.record_exhausted(1, 2);
    j.record_start(2, 0);  // died mid-cell: no terminal record
  }
  // Simulate the torn final line of a SIGKILL.
  {
    std::ofstream torn(path, std::ios::app | std::ios::binary);
    torn << "done 3 0 12";  // no newline
  }
  std::vector<CellProgress> progress;
  CampaignJournal j;
  ASSERT_TRUE(j.open_resume(path, spec, &progress, &err)) << err;
  ASSERT_EQ(progress.size(), 4u);
  EXPECT_EQ(progress[0].status, CellStatus::kDone);
  EXPECT_EQ(progress[0].result_digest, 0xabcdULL);
  // Exhausted cells come back pending with their fail history intact.
  EXPECT_EQ(progress[1].status, CellStatus::kPending);
  EXPECT_EQ(progress[1].fails, 2u);
  EXPECT_EQ(progress[1].last_reason, "deadline");
  // An interrupted start is not an attempt.
  EXPECT_EQ(progress[2].status, CellStatus::kPending);
  EXPECT_EQ(progress[2].fails, 0u);
  // The torn record was discarded.
  EXPECT_EQ(progress[3].status, CellStatus::kPending);
  std::remove(path.c_str());
}

TEST(Journal, ResumeRefusesADifferentGrid) {
  const std::string path = unique_temp_path("journal");
  CampaignSpec spec;
  std::string err;
  {
    CampaignJournal j;
    ASSERT_TRUE(j.open_fresh(path, spec, &err)) << err;
  }
  CampaignSpec other = spec;
  other.base_seed ^= 1;
  std::vector<CellProgress> progress;
  CampaignJournal j;
  EXPECT_FALSE(j.open_resume(path, other, &progress, &err));
  EXPECT_NE(err.find("does not match"), std::string::npos);
  std::remove(path.c_str());
}

// ---- snapshots (satellite: round-trip property) ---------------------------

class SnapshotRoundTrip
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(SnapshotRoundTrip, SerializeRestoreContinueIsByteIdentical) {
  const auto [protocol, sched] = GetParam();
  setenv("QIP_SCHED", sched, 1);
  CellSpec spec;
  spec.protocol = protocol;
  spec.nodes = 8;
  spec.duration = 2.0;
  spec.churn = 2;
  spec.seed = derive_cell_seed(0x1cdc52007ULL, 0, 0);

  // Uninterrupted reference run.
  CellRunner reference(spec);
  reference.run_to_end();
  const std::string want = reference.result().render(spec);

  // Interrupted run: stop at a mid-grid phase boundary, snapshot, restore
  // into a fresh runner, continue.
  CellRunner first(spec);
  const std::size_t stop_at = first.phase_count() / 2;
  while (first.phases_run() < stop_at) first.run_phase();
  const std::string path = unique_temp_path("snapshot");
  std::string err;
  ASSERT_TRUE(save_snapshot(first, path, &err)) << err;

  const auto snap = load_snapshot(path, &err);
  ASSERT_TRUE(snap.has_value()) << err;
  EXPECT_EQ(snap->spec, spec);
  EXPECT_EQ(snap->phase, stop_at);
  EXPECT_EQ(snap->digest, first.state_digest());

  auto restored = restore_snapshot(*snap, &err);
  ASSERT_NE(restored, nullptr) << err;
  EXPECT_EQ(restored->state_digest(), first.state_digest());
  restored->run_to_end();
  EXPECT_EQ(restored->result().render(spec), want);
  std::remove(path.c_str());
  unsetenv("QIP_SCHED");
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsAndSchedulers, SnapshotRoundTrip,
    ::testing::Combine(::testing::Values("qip", "dad"),
                       ::testing::Values("heap", "calendar")),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

TEST(Snapshot, LoadRejectsCorruptFiles) {
  const std::string path = unique_temp_path("snapshot");
  std::string err;
  {
    std::ofstream f(path);
    f << "NOTASNAP v1\n";
  }
  EXPECT_FALSE(load_snapshot(path, &err).has_value());
  EXPECT_NE(err.find("magic"), std::string::npos);
  {
    std::ofstream f(path, std::ios::trunc);
    f << "QIPSNAP v99\n";
  }
  EXPECT_FALSE(load_snapshot(path, &err).has_value());
  EXPECT_NE(err.find("version"), std::string::npos);
  {
    std::ofstream f(path, std::ios::trunc);
    CellSpec spec;
    f << "QIPSNAP v1\nspec " << spec.canonical() << "\nphase 1\n";
  }
  EXPECT_FALSE(load_snapshot(path, &err).has_value());
  std::remove(path.c_str());
}

TEST(Snapshot, RestoreRejectsAMismatchedDigest) {
  CellSpec spec;
  spec.nodes = 6;
  spec.duration = 1.0;
  spec.seed = 7;
  CellRunner runner(spec);
  runner.run_phase();
  const std::string path = unique_temp_path("snapshot");
  std::string err;
  ASSERT_TRUE(save_snapshot(runner, path, &err)) << err;
  auto snap = load_snapshot(path, &err);
  ASSERT_TRUE(snap.has_value()) << err;
  snap->digest ^= 1;  // claim a different simulation
  EXPECT_EQ(restore_snapshot(*snap, &err), nullptr);
  EXPECT_NE(err.find("mismatch"), std::string::npos);
  std::remove(path.c_str());
}

// ---- the process-pool runner ---------------------------------------------

TEST(CampaignRunner, RunsAGridAndReportsEveryCell) {
  CampaignSpec spec;
  spec.protocols = {"qip"};
  spec.nodes = {6};
  spec.duration = 1.0;
  spec.seeds = 2;
  CampaignOptions options;
  options.jobs = 2;
  options.out_dir = unique_temp_path("campaign");
  CampaignRunner runner(spec, options);
  CampaignOutcome outcome;
  std::string err;
  ASSERT_TRUE(runner.run(&outcome, &err)) << err;
  EXPECT_TRUE(outcome.complete());
  ASSERT_EQ(outcome.cells.size(), 2u);
  for (const CellOutcome& c : outcome.cells) {
    EXPECT_EQ(c.status, CellStatus::kDone);
    EXPECT_EQ(c.fails, 0u);
    EXPECT_GT(c.result.joins, 0u);
  }
  // The consolidated report names the grid and both cells.
  const std::string report = render_campaign_report(spec, outcome);
  EXPECT_NE(report.find("qip-campaign v1"), std::string::npos);
  EXPECT_NE(report.find("done"), std::string::npos);
  EXPECT_EQ(report.find("FAILED"), std::string::npos);
}

TEST(CampaignRunner, InjectedCrashIsRetriedAndSurfaced) {
  CampaignSpec spec;
  spec.protocols = {"qip"};
  spec.nodes = {6};
  spec.duration = 1.0;
  spec.seeds = 1;
  CampaignOptions options;
  options.jobs = 1;
  options.retries = 1;
  options.backoff_ms = 1;
  options.out_dir = unique_temp_path("campaign");
  InjectPlan inject;
  std::string err;
  ASSERT_TRUE(InjectPlan::parse("crash:0@0", &inject, &err)) << err;
  CampaignRunner runner(spec, options, inject);
  CampaignOutcome outcome;
  ASSERT_TRUE(runner.run(&outcome, &err)) << err;
  EXPECT_TRUE(outcome.complete());
  ASSERT_EQ(outcome.cells.size(), 1u);
  EXPECT_EQ(outcome.cells[0].status, CellStatus::kDone);
  EXPECT_EQ(outcome.cells[0].fails, 1u);
  EXPECT_EQ(outcome.cells[0].last_reason, "crash (injected)");
  // The journal shows the failed attempt followed by the successful one.
  const std::string journal = slurp(runner.journal_path());
  EXPECT_NE(journal.find("fail 0 0 crash (injected)"), std::string::npos);
  EXPECT_NE(journal.find("done 0 1 "), std::string::npos);
}

TEST(CampaignRunner, ExhaustionIsMarkedNotFatal) {
  CampaignSpec spec;
  spec.protocols = {"qip"};
  spec.nodes = {6};
  spec.duration = 1.0;
  spec.seeds = 2;
  CampaignOptions options;
  options.jobs = 1;
  options.retries = 1;
  options.backoff_ms = 1;
  options.out_dir = unique_temp_path("campaign");
  InjectPlan inject;
  std::string err;
  ASSERT_TRUE(InjectPlan::parse("crash:0@0,crash:0@1", &inject, &err)) << err;
  CampaignRunner runner(spec, options, inject);
  CampaignOutcome outcome;
  ASSERT_TRUE(runner.run(&outcome, &err)) << err;
  EXPECT_FALSE(outcome.complete());
  EXPECT_EQ(outcome.exhausted, 1u);
  EXPECT_EQ(outcome.done, 1u);
  EXPECT_EQ(outcome.cells[0].status, CellStatus::kExhausted);
  EXPECT_EQ(outcome.cells[1].status, CellStatus::kDone);
  const std::string report = render_campaign_report(spec, outcome);
  EXPECT_NE(report.find("FAILED"), std::string::npos);
  EXPECT_NE(report.find("exhausted cells"), std::string::npos);
  EXPECT_NE(report.find("crash (injected)"), std::string::npos);
}

TEST(CampaignRunner, ResumeCompletesOnlyIncompleteCells) {
  CampaignSpec spec;
  spec.protocols = {"qip"};
  spec.nodes = {6};
  spec.duration = 1.0;
  spec.seeds = 3;
  CampaignOptions options;
  options.jobs = 1;
  options.retries = 0;
  options.out_dir = unique_temp_path("campaign");

  // First run: cell 1 never succeeds (no retries), cells 0 and 2 complete.
  InjectPlan inject;
  std::string err;
  ASSERT_TRUE(InjectPlan::parse("crash:1@0", &inject, &err)) << err;
  {
    CampaignRunner runner(spec, options, inject);
    CampaignOutcome outcome;
    ASSERT_TRUE(runner.run(&outcome, &err)) << err;
    EXPECT_EQ(outcome.done, 2u);
    EXPECT_EQ(outcome.exhausted, 1u);
  }
  // Resume with no injection: only cell 1 re-runs, and the final outcome is
  // indistinguishable from a clean campaign except for its fail count.
  options.resume = true;
  CampaignRunner runner(spec, options);
  CampaignOutcome outcome;
  ASSERT_TRUE(runner.run(&outcome, &err)) << err;
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.cells[1].fails, 1u);
  const std::string journal = slurp(runner.journal_path());
  // Cells 0 and 2 were started exactly once across both runs.
  EXPECT_EQ(journal.find("start 0 0"), journal.rfind("start 0 0"));
  EXPECT_EQ(journal.find("start 2 0"), journal.rfind("start 2 0"));
}

}  // namespace
}  // namespace qip
