// Observability suite (ctest -L obs).
//
// Covers the three halves of the subsystem and the guarantees they make:
//
//   * TraceRecorder / exporters — ring semantics, JSONL and Chrome output
//     that read_trace() parses back losslessly, and the file/session glue.
//   * MetricsRegistry — stable handles, label canonicalization, histogram
//     math, and MessageStats::export_to convergence.
//   * Instrumentation correctness — a deterministic two-cluster QIP bringup
//     whose span tree (config_txn ⊃ quorum_round, tied by txn id) must hold
//     exactly; fault drop reasons reconciling with FaultInjector stats; and
//     the ReliableChannel accounting rule (only routed retransmissions/acks
//     reach MessageStats) that fixed the double-count at the channel/
//     transport boundary.
//
// Tracing is global state: every test that enables it disables and clears
// on exit so the suite leaves the recorder as it found it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/qip_engine.hpp"
#include "fault/fault_plan.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"
#include "net/reliable_channel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_recorder.hpp"
#include "obs/trace_session.hpp"
#include "util/logging.hpp"

namespace qip {
namespace {

// Latch QIP_LOG_SIMTIME before any log line can be written: the logger reads
// the variable once, so it must be set before the first emission in this
// process (LoggerSimTime asserts on the timestamps it produces).
const bool kSimtimeEnv = [] {
  ::setenv("QIP_LOG_SIMTIME", "1", 1);
  return true;
}();

/// Enables a clean recorder for one test and restores the disabled state.
class RecorderScope {
 public:
  RecorderScope() {
    auto& rec = obs::process_recorder();
    rec.enable();
    rec.clear();
  }
  ~RecorderScope() {
    auto& rec = obs::process_recorder();
    rec.disable();
    rec.clear();
  }
  obs::TraceRecorder& rec() { return obs::process_recorder(); }
};

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(TraceRecorder, RecordsInstantsSpansAndCounters) {
  RecorderScope scope;
  auto& rec = scope.rec();

  rec.instant(1.0, "unicast", "net", 7,
              {{"traffic", "configuration"}, {"hops", std::uint32_t{3}}});
  const auto id = rec.begin_span(1.5, "config_txn", "qip", 7,
                                 {{"txn", std::uint64_t{42}}});
  rec.end_span(2.5, id, "config_txn", "qip", 7, {{"outcome", "committed"}});
  rec.counter(3.0, "event_queue_depth", "sim", 17.0);

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "unicast");
  EXPECT_EQ(events[0].phase, obs::Phase::kInstant);
  EXPECT_EQ(events[0].tid, 7u);
  ASSERT_EQ(events[0].argc, 2u);
  EXPECT_STREQ(events[0].args[0].s, "configuration");
  EXPECT_EQ(events[0].args[1].i, 3);

  EXPECT_EQ(events[1].phase, obs::Phase::kBegin);
  EXPECT_EQ(events[2].phase, obs::Phase::kEnd);
  EXPECT_NE(events[1].id, 0u);
  EXPECT_EQ(events[1].id, events[2].id);

  EXPECT_EQ(events[3].phase, obs::Phase::kCounter);
  EXPECT_EQ(events[3].args[0].d, 17.0);
}

TEST(TraceRecorder, DisabledRecorderKeepsNothing) {
  auto& rec = obs::process_recorder();
  ASSERT_FALSE(rec.enabled());
  EXPECT_FALSE(obs::tracing_on());
  // Instrumentation sites all guard on tracing_on(); a direct call while
  // disabled must still be harmless (clear() keeps the ring empty).
  rec.clear();
  EXPECT_EQ(rec.events().size(), 0u);
}

TEST(TraceRecorder, RingWrapsOldestFirst) {
  auto& rec = obs::process_recorder();
  const std::size_t old_capacity = rec.capacity();
  rec.set_capacity(8);
  {
    RecorderScope scope;  // enable() after set_capacity applies the new size
    for (int i = 0; i < 20; ++i) {
      rec.instant(static_cast<double>(i), "tick", "test", 0);
    }
    EXPECT_EQ(rec.size(), 8u);
    EXPECT_EQ(rec.overwritten(), 12u);
    const auto events = rec.events();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].ts, static_cast<double>(12 + i)) << i;
    }
  }
  rec.set_capacity(old_capacity);
  rec.clear();
}

// ---------------------------------------------------------------------------
// Exporters and read_trace
// ---------------------------------------------------------------------------

/// One of each phase, with both numeric and string args.
void record_sample_events(obs::TraceRecorder& rec) {
  rec.instant(0.5, "unicast", "net", 3,
              {{"traffic", "movement"}, {"hops", std::uint32_t{2}}});
  const auto id =
      rec.begin_span(1.0, "config_txn", "qip", 9, {{"txn", std::uint64_t{5}}});
  rec.end_span(1.25, id, "config_txn", "qip", 9, {{"outcome", "committed"}});
  rec.counter(2.0, "event_queue_depth", "sim", 11.0);
  rec.complete_wall("topo_csr_rebuild", "profile", 100.0, 42.5);
}

void expect_sample_roundtrip(const std::vector<obs::ParsedEvent>& parsed) {
  ASSERT_EQ(parsed.size(), 5u);

  EXPECT_EQ(parsed[0].name, "unicast");
  EXPECT_EQ(parsed[0].ph, 'i');
  EXPECT_EQ(parsed[0].pid, 1u);
  EXPECT_EQ(parsed[0].tid, 3u);
  EXPECT_DOUBLE_EQ(parsed[0].ts, 0.5e6);  // sim seconds -> µs
  EXPECT_EQ(parsed[0].str_args.at("traffic"), "movement");
  EXPECT_DOUBLE_EQ(parsed[0].num_args.at("hops"), 2.0);

  EXPECT_EQ(parsed[1].ph, 'b');
  EXPECT_EQ(parsed[2].ph, 'e');
  EXPECT_EQ(parsed[1].id, parsed[2].id);
  EXPECT_EQ(parsed[2].str_args.at("outcome"), "committed");

  EXPECT_EQ(parsed[3].ph, 'C');
  EXPECT_DOUBLE_EQ(parsed[3].num_args.at("value"), 11.0);

  EXPECT_EQ(parsed[4].ph, 'X');
  EXPECT_EQ(parsed[4].pid, 2u);  // wall-clock process
  EXPECT_DOUBLE_EQ(parsed[4].ts, 100.0);
  EXPECT_DOUBLE_EQ(parsed[4].dur, 42.5);
}

TEST(TraceExport, JsonlRoundtrip) {
  RecorderScope scope;
  record_sample_events(scope.rec());
  std::ostringstream os;
  scope.rec().dump_jsonl(os);

  std::istringstream is(os.str());
  std::string error;
  const auto parsed = obs::read_trace(is, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  expect_sample_roundtrip(*parsed);
}

TEST(TraceExport, ChromeRoundtrip) {
  RecorderScope scope;
  record_sample_events(scope.rec());
  std::ostringstream os;
  scope.rec().dump_chrome(os);
  // Perfetto-loadable shape: one top-level object wrapping traceEvents.
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(os.str().find("\"displayTimeUnit\""), std::string::npos);

  std::istringstream is(os.str());
  std::string error;
  const auto parsed = obs::read_trace(is, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  expect_sample_roundtrip(*parsed);  // ph "M" metadata rows are skipped
}

TEST(TraceExport, InMemoryParseMatchesFileParse) {
  RecorderScope scope;
  record_sample_events(scope.rec());
  expect_sample_roundtrip(obs::to_parsed(scope.rec().events()));
}

TEST(TraceExport, MalformedInputReportsErrors) {
  {
    std::istringstream is("{\"traceEvents\": oops}");
    std::string error;
    EXPECT_FALSE(obs::read_trace(is, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
  {
    std::istringstream is(
        "{\"name\":\"ok\",\"ph\":\"i\",\"ts\":1}\nnot json at all\n");
    std::string error;
    EXPECT_FALSE(obs::read_trace(is, &error).has_value());
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  }
}

TEST(TraceSession, ExtractsTraceFlagAndWritesFile) {
  const char* raw[] = {"prog", "--nodes", "12", "--trace", "out.json",
                       "--quiet"};
  char* argv[6];
  for (int i = 0; i < 6; ++i) argv[i] = const_cast<char*>(raw[i]);
  int argc = 6;
  EXPECT_EQ(obs::extract_trace_arg(argc, argv), "out.json");
  ASSERT_EQ(argc, 4);
  EXPECT_STREQ(argv[3], "--quiet");  // later args shifted down
  EXPECT_EQ(obs::extract_trace_arg(argc, argv), "");

  const std::string path = ::testing::TempDir() + "obs_session_test.json";
  {
    obs::TraceSession session(path);
    ASSERT_TRUE(session.active());
    ASSERT_TRUE(obs::tracing_on());
    obs::process_recorder().instant(1.0, "mark", "test", 1);
    EXPECT_TRUE(session.dump());
    EXPECT_FALSE(obs::tracing_on());  // dump() restores the disabled state
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string error;
  const auto parsed = obs::read_trace(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, "mark");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------------

TEST(TraceSummary, AggregatesMixSpansAndReliability) {
  RecorderScope scope;
  auto& rec = scope.rec();

  for (int i = 0; i < 3; ++i) {
    rec.instant(0.1 * i, "unicast", "net", 1,
                {{"traffic", "configuration"}, {"hops", std::uint32_t{2}}});
  }
  // Aggregate event: one instant standing for 5 hello beacons.
  rec.instant(0.5, "hello", "net", 0,
              {{"traffic", "hello"},
               {"hops", std::uint64_t{5}},
               {"count", std::uint64_t{5}}});
  // Four spans of 10/20/30/40 ms and one left open.
  for (int i = 1; i <= 4; ++i) {
    const auto id = rec.begin_span(1.0, "quorum_round", "qip", 1);
    rec.end_span(1.0 + 0.010 * i, id, "quorum_round", "qip", 1);
  }
  rec.begin_span(2.0, "quorum_round", "qip", 1);
  rec.instant(3.0, "drop", "net.drop", 4, {{"reason", "loss"}});
  rec.instant(3.0, "drop", "net.drop", 4, {{"reason", "outage"}});
  rec.instant(3.1, "retransmit", "rpc", 1, {{"to", std::uint32_t{4}}});
  rec.instant(3.2, "ack", "rpc", 4, {{"to", std::uint32_t{1}}});
  rec.instant(3.3, "give_up", "rpc", 1, {{"to", std::uint32_t{4}}});

  const auto s = obs::summarize(obs::to_parsed(rec.events()));

  ASSERT_FALSE(s.messages.empty());
  // Sorted by count descending: the 5-beacon aggregate outranks 3 unicasts.
  EXPECT_EQ(s.messages[0].name, "hello");
  EXPECT_EQ(s.messages[0].count, 5u);
  EXPECT_EQ(s.messages[0].hops, 5u);
  EXPECT_EQ(s.messages[1].name, "unicast");
  EXPECT_EQ(s.messages[1].cat, "configuration");
  EXPECT_EQ(s.messages[1].count, 3u);
  EXPECT_EQ(s.messages[1].hops, 6u);

  ASSERT_EQ(s.spans.size(), 1u);
  EXPECT_EQ(s.spans[0].count, 4u);
  EXPECT_EQ(s.spans[0].unmatched, 1u);
  EXPECT_DOUBLE_EQ(s.spans[0].p50, 20.0);
  EXPECT_DOUBLE_EQ(s.spans[0].max, 40.0);

  EXPECT_EQ(s.drops.at("loss"), 1u);
  EXPECT_EQ(s.drops.at("outage"), 1u);
  EXPECT_EQ(s.retransmissions, 1u);
  EXPECT_EQ(s.acks, 1u);
  EXPECT_EQ(s.give_ups, 1u);

  const std::string text = obs::render_summary(s, /*include_wall=*/false);
  EXPECT_NE(text.find("message mix"), std::string::npos);
  EXPECT_NE(text.find("quorum_round"), std::string::npos);
  EXPECT_EQ(text.find("wall-clock"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(Metrics, HandlesAreStableAndLabelsCanonical) {
  obs::MetricsRegistry reg;
  auto& a = reg.counter("qip_test_total", {{"traffic", "hello"}});
  a.inc(3.0);
  // Same series regardless of label order; different labels, different series.
  auto& b = reg.counter("qip_test_total", {{"traffic", "hello"}});
  EXPECT_EQ(&a, &b);
  auto& c = reg.counter("qip_test_total", {{"traffic", "movement"}});
  EXPECT_NE(&a, &c);
  auto& two1 = reg.counter("multi", {{"x", "1"}, {"y", "2"}});
  auto& two2 = reg.counter("multi", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&two1, &two2);

  EXPECT_EQ(a.value(), 3.0);
  reg.reset_values();
  EXPECT_EQ(a.value(), 0.0);  // handle survives, value zeroed
  a.inc();
  EXPECT_EQ(reg.counter("qip_test_total", {{"traffic", "hello"}}).value(),
            1.0);
}

TEST(Metrics, HistogramQuantilesAndRender) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("span_ms", {}, {1.0, 10.0, 100.0, 1000.0});
  for (double v : {0.5, 5.0, 5.0, 50.0, 500.0, 5000.0}) h.observe(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 5560.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_GT(h.quantile(0.99), 100.0);

  reg.gauge("depth").set(4.0);
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("span_ms_count 6"), std::string::npos) << text;
  EXPECT_NE(text.find("depth 4"), std::string::npos) << text;

  const auto lat = obs::latency_buckets_s();
  const auto dur = obs::duration_buckets_us();
  for (std::size_t i = 1; i < lat.size(); ++i) EXPECT_GT(lat[i], lat[i - 1]);
  for (std::size_t i = 1; i < dur.size(); ++i) EXPECT_GT(dur[i], dur[i - 1]);
}

TEST(Metrics, ProfileHandlesInternBySiteAddress) {
  obs::MetricsRegistry reg;
  static const char* kSite = "topo_rebuild";
  auto& h1 = reg.profile_histogram(kSite);
  const std::uint64_t warm = reg.map_lookups();
  // Steady state: same handle back, and ZERO string-keyed map walks — the
  // ProfileScope exit path must stay O(1) per observation.
  for (int i = 0; i < 1000; ++i) {
    auto& h = reg.profile_histogram(kSite);
    EXPECT_EQ(&h, &h1);
    h.observe(static_cast<double>(i));
  }
  EXPECT_EQ(reg.map_lookups(), warm);
  EXPECT_EQ(h1.count(), 1000u);

  // The interned series is the ordinary profile_us{site=...} series: the
  // string-keyed accessor resolves to the same histogram.
  auto& via_map =
      reg.histogram("profile_us", {{"site", kSite}}, obs::duration_buckets_us());
  EXPECT_EQ(&via_map, &h1);
  EXPECT_GT(reg.map_lookups(), warm);  // ...and that slow path was counted

  // A different site literal interns a distinct series.
  static const char* kOther = "transport_flood";
  EXPECT_NE(&reg.profile_histogram(kOther), &h1);
}

TEST(Metrics, StreamingReservoirQuantiles) {
  // Exact below capacity: the sample IS the stream.
  obs::StreamingReservoir small(128);
  for (int i = 1; i <= 100; ++i) small.observe(static_cast<double>(i));
  EXPECT_EQ(small.seen(), 100u);
  EXPECT_EQ(small.sample_size(), 100u);
  EXPECT_DOUBLE_EQ(small.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(small.quantile(1.0), 100.0);
  EXPECT_NEAR(small.quantile(0.5), 50.0, 1.0);

  // Sampled above capacity: uniform-ish, deterministic across runs.
  obs::StreamingReservoir big(256);
  obs::StreamingReservoir twin(256);
  for (int i = 0; i < 100000; ++i) {
    const double v = static_cast<double>(i % 1000);
    big.observe(v);
    twin.observe(v);
  }
  EXPECT_EQ(big.seen(), 100000u);
  EXPECT_EQ(big.sample_size(), 256u);
  EXPECT_NEAR(big.quantile(0.5), 500.0, 150.0);
  EXPECT_DOUBLE_EQ(big.quantile(0.5), twin.quantile(0.5));
  EXPECT_DOUBLE_EQ(big.quantile(0.99), twin.quantile(0.99));
}

TEST(Metrics, HistogramReservoirModeSharpensQuantiles) {
  // One wide bucket: interpolation can only guess inside [100, 10000]; the
  // reservoir answers from actual observations.
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("wide", {}, {100.0, 10000.0});
  h.enable_reservoir(512);
  EXPECT_TRUE(h.reservoir_enabled());
  for (int i = 0; i < 400; ++i) h.observe(150.0);
  for (int i = 0; i < 10; ++i) h.observe(9000.0);
  EXPECT_NEAR(h.quantile(0.5), 150.0, 1e-9);
  EXPECT_EQ(h.count(), 410u);
  // reset clears the sample too.
  h.reset();
  h.observe(42.0);
  EXPECT_NEAR(h.quantile(0.5), 42.0, 1e-9);
}

TEST(Metrics, MessageStatsExportConverges) {
  obs::MetricsRegistry reg;
  MessageStats stats;
  stats.record(Traffic::kConfiguration, /*hops=*/7, /*messages=*/2);
  stats.record(Traffic::kHello, 5, 5);
  stats.note_retransmission();
  stats.note_ack();
  stats.note_dropped_in_flight();

  stats.export_to(reg);
  stats.export_to(reg);  // snapshot semantics: repeated export, same values
  EXPECT_EQ(
      reg.counter("qip_messages_total", {{"traffic", "configuration"}}).value(),
      2.0);
  EXPECT_EQ(reg.counter("qip_hops_total", {{"traffic", "configuration"}})
                .value(),
            7.0);
  EXPECT_EQ(reg.counter("qip_messages_total", {{"traffic", "hello"}}).value(),
            5.0);
  EXPECT_EQ(reg.counter("qip_retransmissions_total").value(), 1.0);
  EXPECT_EQ(reg.counter("qip_acks_total").value(), 1.0);
  EXPECT_EQ(reg.counter("qip_dropped_in_flight_total").value(), 1.0);
}

// ---------------------------------------------------------------------------
// Instrumentation: deterministic two-cluster QIP scenario
// ---------------------------------------------------------------------------

struct TwoClusterRun {
  std::map<NodeId, IpAddress> addresses;
  std::uint64_t total_hops = 0;
  double configured = 0.0;
  std::size_t heads = 0;
  std::vector<obs::Event> events;  ///< empty when run untraced
};

/// Choreographed bringup of one network with two clusters: a west head, a
/// relay, then an east group too far from the west head — its first member
/// runs the CH handshake and becomes the second head, after which the two
/// heads form a QDSet and later allocations go through real quorum rounds.
/// No mobility: every message exchange is a pure function of the seed.
TwoClusterRun two_cluster_scenario(bool traced) {
  auto& rec = obs::process_recorder();
  if (traced) {
    rec.enable();
    rec.clear();
  }
  WorldParams wp;
  wp.transmission_range = 150.0;
  World world(wp, /*seed=*/7);
  QipParams qp;
  qp.pool_size = 512;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  DriverOptions dopt;
  dopt.mobility = false;
  Driver driver(world, proto, dopt);

  driver.join_at({150, 500});  // west head (bootstraps the network)
  world.run_for(4.0);
  driver.join_at({270, 500});  // common node under the west head; relay
  world.run_for(4.0);
  driver.join_at({390, 500});  // out of the west head's range: east head
  world.run_for(4.0);
  driver.join_at({510, 500});  // common under the east head
  driver.join_at({450, 430});  // common under the east head
  driver.join_at({210, 430});  // common under the west head
  world.run_for(10.0);

  TwoClusterRun r;
  r.addresses = proto.configured_addresses();
  r.total_hops = world.stats().total_hops();
  r.configured = driver.configured_fraction();
  r.heads = proto.clusters().head_count();
  if (traced) {
    r.events = rec.events();
    rec.disable();
    rec.clear();
  }
  return r;
}

/// Canonical sim-time view for cross-run comparison: wall-clock sections are
/// excluded (real microseconds differ per run) and span ids are renumbered
/// by first appearance (the global recorder's id sequence is not reset
/// between runs).
std::vector<std::string> canonical_sim_events(
    const std::vector<obs::ParsedEvent>& parsed) {
  std::map<std::uint64_t, std::uint64_t> id_map;
  std::vector<std::string> out;
  for (const auto& e : parsed) {
    if (e.pid != 1) continue;
    std::uint64_t id = 0;
    if (e.ph == 'b' || e.ph == 'e') {
      id = id_map.emplace(e.id, id_map.size() + 1).first->second;
    }
    std::ostringstream os;
    os << e.ph << ' ' << e.name << ' ' << e.cat << ' ' << e.ts << " tid="
       << e.tid << " id=" << id;
    for (const auto& [k, v] : e.num_args) os << ' ' << k << '=' << v;
    for (const auto& [k, v] : e.str_args) os << ' ' << k << '=' << v;
    out.push_back(os.str());
  }
  return out;
}

TEST(QipTrace, TwoClusterSpanTreeIsExact) {
  const TwoClusterRun run = two_cluster_scenario(/*traced=*/true);
  ASSERT_EQ(run.configured, 1.0);
  ASSERT_EQ(run.heads, 2u);
  const auto parsed = obs::to_parsed(run.events);

  struct Span {
    double begin = -1.0;
    double end = -1.0;
    std::uint64_t txn = 0;
    std::string outcome;
  };
  std::map<std::uint64_t, Span> txn_spans;    // by span id
  std::map<std::uint64_t, Span> round_spans;  // by span id
  std::map<std::uint64_t, std::pair<double, double>> txn_window;  // by txn arg
  int head_elected_first = 0, head_elected_later = 0;
  std::uint64_t wall_sections = 0, votes = 0;

  for (const auto& e : parsed) {
    if (e.ph == 'X') {
      EXPECT_EQ(e.pid, 2u);
      ++wall_sections;
    }
    if (e.ph == 'i' && e.name == "head_elected") {
      EXPECT_EQ(e.cat, "cluster");
      (e.num_args.at("first") == 1.0 ? head_elected_first
                                     : head_elected_later)++;
    }
    if (e.ph == 'i' && e.name == "vote") {
      EXPECT_EQ(e.cat, "quorum");
      const std::string v = e.str_args.at("vote");
      EXPECT_TRUE(v == "grant" || v == "busy" || v == "conflict") << v;
      ++votes;
    }
    if (e.ph != 'b' && e.ph != 'e') continue;
    auto* spans = e.name == "config_txn"     ? &txn_spans
                  : e.name == "quorum_round" ? &round_spans
                                             : nullptr;
    ASSERT_NE(spans, nullptr) << "unexpected span " << e.name;
    Span& s = (*spans)[e.id];
    if (e.ph == 'b') {
      s.begin = e.ts;
      s.txn = static_cast<std::uint64_t>(e.num_args.at("txn"));
    } else {
      s.end = e.ts;
      if (auto o = e.str_args.find("outcome"); o != e.str_args.end()) {
        s.outcome = o->second;
      }
      if (auto r = e.str_args.find("result"); r != e.str_args.end()) {
        s.outcome = r->second;
      }
    }
  }

  // Every span opened exactly once and closed exactly once.
  ASSERT_FALSE(txn_spans.empty());
  ASSERT_FALSE(round_spans.empty());
  std::uint64_t committed = 0;
  for (const auto& [id, s] : txn_spans) {
    ASSERT_GE(s.begin, 0.0) << "config_txn end without begin";
    ASSERT_GE(s.end, s.begin) << "config_txn begin without end";
    EXPECT_TRUE(s.outcome == "committed" || s.outcome == "failed" ||
                s.outcome == "handover_failed" || s.outcome == "handoff")
        << s.outcome;
    if (s.outcome == "committed") ++committed;
    auto [it, fresh] = txn_window.emplace(
        s.txn, std::make_pair(s.begin, s.end));
    if (!fresh) {
      it->second.first = std::min(it->second.first, s.begin);
      it->second.second = std::max(it->second.second, s.end);
    }
  }
  // A committed transaction per node that was allocated an address: all six
  // minus the bootstrap head, which created the network without one.
  EXPECT_EQ(committed, run.addresses.size() - 1);
  EXPECT_EQ(head_elected_first, 1);   // exactly one network founder
  EXPECT_GE(head_elected_later, 1);   // the east head, via the CH handshake
  EXPECT_GT(votes, 0u);               // two-head QDSet: real quorum voting

  // The span tree: every quorum_round nests inside the config_txn that
  // shares its txn id — child spans never leak outside their parent.
  for (const auto& [id, s] : round_spans) {
    ASSERT_GE(s.begin, 0.0);
    ASSERT_GE(s.end, s.begin);
    EXPECT_TRUE(s.outcome == "quorum" || s.outcome == "conflict" ||
                s.outcome == "busy" || s.outcome == "abort")
        << s.outcome;
    auto parent = txn_window.find(s.txn);
    ASSERT_NE(parent, txn_window.end())
        << "quorum_round with no config_txn parent (txn " << s.txn << ")";
    EXPECT_GE(s.begin, parent->second.first);
    EXPECT_LE(s.end, parent->second.second);
  }

  // Wall-clock profile sections (topology-cache rebuilds) ride along on
  // their own track; queue-depth sampling needs a busier run and is asserted
  // in FaultTrace below.
  EXPECT_GT(wall_sections, 0u);
}

TEST(QipTrace, TracedRunsAreDeterministicAndUnperturbed) {
  const TwoClusterRun a = two_cluster_scenario(/*traced=*/true);
  const TwoClusterRun b = two_cluster_scenario(/*traced=*/true);
  EXPECT_EQ(canonical_sim_events(obs::to_parsed(a.events)),
            canonical_sim_events(obs::to_parsed(b.events)));

  // Tracing must not perturb the simulation: the untraced run reaches the
  // same outcome, address for address and hop for hop.
  const TwoClusterRun off = two_cluster_scenario(/*traced=*/false);
  EXPECT_EQ(off.addresses, a.addresses);
  EXPECT_EQ(off.total_hops, a.total_hops);
  EXPECT_EQ(off.heads, a.heads);
}

// ---------------------------------------------------------------------------
// Faults in the trace
// ---------------------------------------------------------------------------

TEST(FaultTrace, DropReasonsReconcileWithInjectorStats) {
  RecorderScope scope;
  World world({}, /*seed=*/901);
  FaultPlan plan;
  plan.drop = 0.15;
  plan.duplicate = 0.05;
  world.enable_faults(plan);
  QipParams qp;
  qp.heal_on_conflict_evidence = true;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  Driver driver(world, proto);
  driver.join(25);
  world.run_for(8.0);

  const auto parsed = obs::to_parsed(scope.rec().events());
  std::uint64_t loss = 0, dup = 0, counter_samples = 0;
  for (const auto& e : parsed) {
    if (e.ph == 'C' && e.name == "event_queue_depth") ++counter_samples;
    if (e.cat != "net.drop") continue;
    if (e.name == "dup") {
      ++dup;
    } else if (e.str_args.at("reason") == "loss") {
      ++loss;
    }
  }
  EXPECT_GT(counter_samples, 0u);  // a 25-node run executes >> 128 events
  const FaultStats& fs = world.faults()->stats();
  EXPECT_GT(fs.dropped, 0u);
  EXPECT_EQ(loss, fs.dropped);
  EXPECT_EQ(dup, fs.duplicated);

  const auto s = obs::summarize(parsed);
  EXPECT_EQ(s.drops.at("loss"), fs.dropped);
  EXPECT_EQ(s.retransmissions, world.stats().retransmissions());
  EXPECT_EQ(s.acks, world.stats().acks());
  EXPECT_GT(s.retransmissions, 0u);
}

// ---------------------------------------------------------------------------
// ReliableChannel accounting (regression: the breakout counters used to
// tally attempts before the transport routed them, so unroutable
// retransmissions inflated MessageStats past the per-Traffic charges)
// ---------------------------------------------------------------------------

TEST(ReliableAccounting, OnlyRoutedAttemptsReachMessageStats) {
  World world({}, /*seed=*/31);
  FaultPlan plan;
  plan.drop = 1.0;  // every delivery lost: the channel retries to the cap
  world.enable_faults(plan);
  world.topology().add_node(1, {100, 100});
  world.topology().add_node(2, {150, 100});

  ReliableChannel channel(world.transport());
  ASSERT_TRUE(channel.active());
  bool delivered = false, gave_up = false;
  const auto hops = channel.send(
      1, 2, Traffic::kConfiguration,
      [&](NodeId, std::uint32_t) { delivered = true; },
      [&] { gave_up = true; });
  ASSERT_TRUE(hops.has_value());

  // First retry fires at 0.08 s with the destination still routable...
  world.run_for(0.1);
  const std::uint64_t routed = world.stats().retransmissions();
  EXPECT_GT(routed, 0u);

  // ...then the destination vanishes mid-retry: the channel keeps burning
  // its retry budget (transient outages deserve the attempts) but none of
  // those unroutable sends may reach MessageStats.
  world.topology().remove_node(2);
  world.run_for(10.0);
  EXPECT_TRUE(gave_up);
  EXPECT_FALSE(delivered);
  EXPECT_GT(channel.retransmissions(), world.stats().retransmissions());
  EXPECT_EQ(world.stats().retransmissions(), routed);

  // The reconciliation the fix restores: every configuration message charged
  // at send time is the first attempt plus exactly the routed
  // retransmissions — no acks ever flowed (nothing was delivered).
  EXPECT_EQ(world.stats().of(Traffic::kConfiguration).messages,
            1 + world.stats().retransmissions());
  EXPECT_EQ(world.stats().acks(), 0u);
}

// ---------------------------------------------------------------------------
// Logger sim-time timestamps (QIP_LOG_SIMTIME=1)
// ---------------------------------------------------------------------------

TEST(LoggerSimTime, TimestampsFollowTheActiveWorldClock) {
  ASSERT_TRUE(kSimtimeEnv);
  std::ostringstream captured;
  Logger& log = process_logger();
  const LogLevel old_level = log.level();
  log.set_sink(&captured);
  log.set_level(LogLevel::kInfo);

  {
    World world({}, /*seed=*/5);
    world.run_for(1.5);
    QIP_INFO << "mid-run marker";
    EXPECT_NE(captured.str().find("[INFO t=1.500] mid-run marker"),
              std::string::npos)
        << captured.str();
  }
  // The world unregistered its clock on destruction: plain prefixes return.
  captured.str("");
  QIP_INFO << "after-run marker";
  EXPECT_NE(captured.str().find("[INFO] after-run marker"), std::string::npos)
      << captured.str();

  log.set_sink(nullptr);
  log.set_level(old_level);
  log.reset_counters();
}

// ---------------------------------------------------------------------------
// SimContext isolation (the de-globalization contract; the parallel half —
// interleaved worlds, replica merge order — lives in
// tests/parallel_runner_test.cpp.  See docs/PARALLELISM.md.)
// ---------------------------------------------------------------------------

TEST(SimContextIsolation, ContextBoundWorldBypassesProcessObservability) {
  RecorderScope scope;  // process recorder enabled and empty: leaks would land
  const std::string process_metrics_before =
      obs::process_metrics().render_text();

  SimContext ctx(/*root_seed=*/77);
  ctx.recorder().enable();
  {
    World world({}, /*seed=*/77, ctx);
    QipEngine proto(world.transport(), world.rng(), QipParams{});
    proto.start_hello();
    Driver driver(world, proto);
    driver.join(15);
    world.run_for(3.0);
    world.stats().export_to(ctx.metrics());
  }

  // Everything the run did landed in the context...
  EXPECT_GT(ctx.recorder().size(), 0u);
  EXPECT_NE(ctx.metrics().render_text().find("qip_messages_total"),
            std::string::npos);
  // ...and nothing reached the process-wide recorder or registry, even with
  // process tracing switched on.
  EXPECT_EQ(scope.rec().size(), 0u);
  EXPECT_EQ(obs::process_metrics().render_text(), process_metrics_before);
}

TEST(SimContextIsolation, ProcessContextWorldStillFeedsProcessRecorder) {
  RecorderScope scope;
  SimContext bystander(/*root_seed=*/5);
  bystander.recorder().enable();

  World world({}, /*seed=*/42);  // compatibility path: process context
  QipEngine proto(world.transport(), world.rng(), QipParams{});
  proto.start_hello();
  Driver driver(world, proto);
  driver.join(10);
  world.run_for(2.0);

  EXPECT_TRUE(world.ctx().is_process_context());
  EXPECT_GT(scope.rec().size(), 0u);
  EXPECT_EQ(bystander.recorder().size(), 0u);
}

}  // namespace
}  // namespace qip
