// Unit tests for the cluster view (§II-B's two-layer hierarchy).
#include <gtest/gtest.h>

#include "cluster/cluster_view.hpp"
#include "net/topology.hpp"
#include "util/assert.hpp"

namespace qip {
namespace {

struct ClusterFixture : ::testing::Test {
  // Chain 0-1-2-3-4-5-6, 100 m spacing, 120 m range.
  Topology topo{Rect{1000.0, 1000.0}, 120.0};
  ClusterView view{topo};

  void SetUp() override {
    for (std::uint32_t i = 0; i < 7; ++i) {
      topo.add_node(i, {100.0 * i, 0.0});
    }
  }
};

TEST_F(ClusterFixture, RolesStartUnconfigured) {
  EXPECT_EQ(view.role(3), Role::kUnconfigured);
  EXPECT_FALSE(view.head_of(3).has_value());
}

TEST_F(ClusterFixture, HeadAndMembers) {
  view.set_head(0);
  view.set_member(1, 0);
  view.set_member(2, 0);
  EXPECT_TRUE(view.is_head(0));
  EXPECT_EQ(view.role(1), Role::kCommonNode);
  EXPECT_EQ(view.head_of(1), 0u);
  EXPECT_EQ(view.head_of(0), 0u);
  EXPECT_EQ(view.members_of(0), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(view.head_count(), 1u);
}

TEST_F(ClusterFixture, ReassignMember) {
  view.set_head(0);
  view.set_head(4);
  view.set_member(2, 0);
  view.reassign_member(2, 4);
  EXPECT_EQ(view.head_of(2), 4u);
  EXPECT_TRUE(view.members_of(0).empty());
  EXPECT_EQ(view.members_of(4), (std::vector<NodeId>{2}));
}

TEST_F(ClusterFixture, RemoveHeadOrphansMembers) {
  view.set_head(0);
  view.set_member(1, 0);
  view.remove(0);
  EXPECT_EQ(view.role(0), Role::kUnconfigured);
  EXPECT_EQ(view.role(1), Role::kCommonNode);  // still configured...
  EXPECT_FALSE(view.head_of(1).has_value());   // ...but orphaned
  EXPECT_EQ(view.head_count(), 0u);
}

TEST_F(ClusterFixture, MemberPromotedToHeadLeavesCluster) {
  view.set_head(0);
  view.set_member(3, 0);
  view.set_head(3);  // partition recovery promotes a member
  EXPECT_TRUE(view.is_head(3));
  EXPECT_TRUE(view.members_of(0).empty());
}

TEST_F(ClusterFixture, HeadsWithinRadius) {
  view.set_head(0);
  view.set_head(2);
  view.set_head(5);
  // From node 1: head 0 and 2 at one hop, head 5 at 4 hops.
  EXPECT_EQ(view.heads_within(1, 2), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(view.heads_within(1, 4), (std::vector<NodeId>{0, 2, 5}));
  // Sorted by hop distance first.
  EXPECT_EQ(view.heads_within(4, 3).front(), 5u);
}

TEST_F(ClusterFixture, NearestHead) {
  view.set_head(0);
  view.set_head(6);
  EXPECT_EQ(view.nearest_head(2), 0u);
  EXPECT_EQ(view.nearest_head(5), 6u);
  // Unreachable island has no head.
  topo.add_node(42, {900.0, 900.0});
  EXPECT_FALSE(view.nearest_head(42).has_value());
}

TEST_F(ClusterFixture, HeadsNonadjacentInvariant) {
  view.set_head(0);
  view.set_head(2);
  EXPECT_TRUE(view.heads_nonadjacent());
  view.set_head(3);  // neighbor of 2
  EXPECT_FALSE(view.heads_nonadjacent());
}

TEST_F(ClusterFixture, DoubleHeadThrows) {
  view.set_head(0);
  EXPECT_THROW(view.set_head(0), InvariantViolation);
}

TEST_F(ClusterFixture, MemberUnderNonHeadThrows) {
  EXPECT_THROW(view.set_member(1, 0), InvariantViolation);
}

TEST_F(ClusterFixture, HeadCannotBecomeMember) {
  view.set_head(0);
  view.set_head(2);
  EXPECT_THROW(view.set_member(2, 0), InvariantViolation);
}

TEST_F(ClusterFixture, HeadsSorted) {
  view.set_head(4);
  view.set_head(0);
  view.set_head(2);
  EXPECT_EQ(view.heads(), (std::vector<NodeId>{0, 2, 4}));
}

}  // namespace
}  // namespace qip
