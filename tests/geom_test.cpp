// Unit tests for geometry: points, rects, and the grid spatial index.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geom/grid_index.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qip {
namespace {

TEST(Point, DistanceBasics) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(length({6, 8}), 10.0);
}

TEST(Point, DirectionIsUnit) {
  const Point d = direction({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(d.x, 1.0);
  EXPECT_DOUBLE_EQ(d.y, 0.0);
  const Point zero = direction({2, 2}, {2, 2});
  EXPECT_DOUBLE_EQ(length(zero), 0.0);
}

TEST(Point, AdvanceClampsAtTarget) {
  const Point from{0, 0}, to{3, 4};
  EXPECT_EQ(advance(from, to, 100.0), to);
  const Point mid = advance(from, to, 2.5);
  EXPECT_NEAR(distance(from, mid), 2.5, 1e-12);
  EXPECT_NEAR(distance(mid, to), 2.5, 1e-12);
}

TEST(Rect, ContainsAndClamp) {
  Rect r{100.0, 50.0};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({100, 50}));
  EXPECT_FALSE(r.contains({100.1, 10}));
  EXPECT_FALSE(r.contains({-0.1, 10}));
  const Point c = r.clamp({200, -5});
  EXPECT_DOUBLE_EQ(c.x, 100.0);
  EXPECT_DOUBLE_EQ(c.y, 0.0);
}

TEST(Rect, SampleInside) {
  Rect r{1000.0, 1000.0};
  Rng rng(3);
  for (int i = 0; i < 500; ++i) EXPECT_TRUE(r.contains(r.sample(rng)));
}

// ---------------------------------------------------------------------------
// GridIndex
// ---------------------------------------------------------------------------

TEST(GridIndex, InsertQueryRemove) {
  GridIndex idx(100.0);
  idx.insert(1, {10, 10});
  idx.insert(2, {50, 10});
  idx.insert(3, {500, 500});
  auto near = idx.query({0, 0}, 100.0);
  std::sort(near.begin(), near.end());
  EXPECT_EQ(near, (std::vector<std::uint32_t>{1, 2}));
  idx.remove(2);
  near = idx.query({0, 0}, 100.0);
  EXPECT_EQ(near, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(idx.size(), 2u);
}

TEST(GridIndex, RadiusIsInclusive) {
  GridIndex idx(100.0);
  idx.insert(1, {100, 0});
  EXPECT_EQ(idx.query({0, 0}, 100.0).size(), 1u);
  EXPECT_EQ(idx.query({0, 0}, 99.999).size(), 0u);
}

TEST(GridIndex, ExcludeParameter) {
  GridIndex idx(100.0);
  idx.insert(7, {0, 0});
  idx.insert(8, {1, 1});
  auto out = idx.query({0, 0}, 50.0, 7);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{8}));
}

TEST(GridIndex, MoveAcrossCells) {
  GridIndex idx(100.0);
  idx.insert(1, {10, 10});
  idx.move(1, {950, 950});
  EXPECT_TRUE(idx.query({0, 0}, 100.0).empty());
  EXPECT_EQ(idx.query({949, 949}, 10.0).size(), 1u);
  EXPECT_DOUBLE_EQ(idx.position(1).x, 950.0);
}

TEST(GridIndex, BoundaryDistanceIsInclusive) {
  // The unit-disk model counts d == radius as connected.  QIP's head
  // separation (heads >= 2 hops apart) and every connectivity figure depend
  // on this boundary: two nodes exactly one transmission range apart must
  // be neighbors, and epsilon beyond must not.
  GridIndex idx(150.0);
  idx.insert(1, {0, 0});
  idx.insert(2, {150.0, 0});          // exactly on the boundary
  idx.insert(3, {0, 150.0000001});    // epsilon beyond
  auto out = idx.query({0, 0}, 150.0, 1);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{2}));
  // Both directions agree: the relation is symmetric on the boundary.
  EXPECT_EQ(idx.query({150.0, 0}, 150.0, 2),
            (std::vector<std::uint32_t>{1}));
}

TEST(GridIndex, EpochBumpsOnEveryMutation) {
  GridIndex idx(100.0);
  EXPECT_EQ(idx.epoch(), 0u);
  idx.insert(1, {10, 10});
  const auto e1 = idx.epoch();
  EXPECT_GT(e1, 0u);
  idx.move(1, {12, 12});  // same cell: still a mutation
  const auto e2 = idx.epoch();
  EXPECT_GT(e2, e1);
  idx.move(1, {500, 500});  // cross-cell
  const auto e3 = idx.epoch();
  EXPECT_GT(e3, e2);
  idx.remove(1);
  EXPECT_GT(idx.epoch(), e3);
}

TEST(GridIndex, WindowVersionIsLocal) {
  GridIndex idx(100.0);
  idx.insert(1, {50, 50});
  const auto near_origin = idx.window_version({50, 50}, 100.0);
  EXPECT_EQ(near_origin, idx.epoch());
  // A mutation far away must not disturb the origin's window...
  idx.insert(2, {900, 900});
  EXPECT_EQ(idx.window_version({50, 50}, 100.0), near_origin);
  // ...but a nearby one must.
  idx.insert(3, {60, 60});
  EXPECT_GT(idx.window_version({50, 50}, 100.0), near_origin);
  // Emptying a cell is a mutation its window must still report.
  const auto far_before = idx.window_version({900, 900}, 100.0);
  idx.remove(2);
  EXPECT_GT(idx.window_version({900, 900}, 100.0), far_before);
}

TEST(GridIndex, QueryRadiusLargerThanCell) {
  GridIndex idx(50.0);
  idx.insert(1, {400, 0});
  EXPECT_EQ(idx.query({0, 0}, 500.0).size(), 1u);
}

TEST(GridIndex, DuplicateInsertThrows) {
  GridIndex idx(10.0);
  idx.insert(1, {0, 0});
  EXPECT_THROW(idx.insert(1, {5, 5}), InvariantViolation);
}

TEST(GridIndex, MissingIdThrows) {
  GridIndex idx(10.0);
  EXPECT_THROW(idx.remove(42), InvariantViolation);
  EXPECT_THROW(idx.move(42, {0, 0}), InvariantViolation);
  EXPECT_THROW((void)idx.position(42), InvariantViolation);
}

/// Property: grid query matches brute force over random configurations.
class GridIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridIndexProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  GridIndex idx(150.0);
  std::vector<std::pair<std::uint32_t, Point>> pts;
  Rect area{1000.0, 1000.0};
  for (std::uint32_t i = 0; i < 120; ++i) {
    const Point p = area.sample(rng);
    idx.insert(i, p);
    pts.emplace_back(i, p);
  }
  // Random moves and removals.
  for (int i = 0; i < 40; ++i) {
    const std::size_t k = rng.index(pts.size());
    if (rng.chance(0.3)) {
      idx.remove(pts[k].first);
      pts.erase(pts.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      const Point p = area.sample(rng);
      idx.move(pts[k].first, p);
      pts[k].second = p;
    }
  }
  for (int q = 0; q < 25; ++q) {
    const Point c = area.sample(rng);
    const double r = rng.uniform(10.0, 400.0);
    auto got = idx.query(c, r);
    std::sort(got.begin(), got.end());
    std::vector<std::uint32_t> expect;
    for (const auto& [id, p] : pts) {
      if (distance_sq(p, c) <= r * r) expect.push_back(id);
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect) << "query center (" << c.x << "," << c.y
                           << ") radius " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace qip
