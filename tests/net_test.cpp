// Unit tests for topology, transport metering and traffic stats, plus the
// differential suite pinning the epoch-versioned topology cache to a
// brute-force oracle (ctest -L net).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>

#include "geom/point.hpp"
#include "net/metrics.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qip {
namespace {

/// A 5-node chain: 0 - 1 - 2 - 3 - 4, 100 m apart, range 120 m.
Topology chain_topology() {
  Topology topo(Rect{1000.0, 1000.0}, 120.0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    topo.add_node(i, {100.0 * i, 0.0});
  }
  return topo;
}

TEST(Topology, NeighborsOnChain) {
  auto topo = chain_topology();
  EXPECT_EQ(topo.neighbors(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(topo.neighbors(2), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(topo.neighbors(4), (std::vector<NodeId>{3}));
}

TEST(Topology, HopDistances) {
  auto topo = chain_topology();
  EXPECT_EQ(topo.hop_distance(0, 0), 0u);
  EXPECT_EQ(topo.hop_distance(0, 1), 1u);
  EXPECT_EQ(topo.hop_distance(0, 4), 4u);
  EXPECT_EQ(topo.hop_distance(4, 0), 4u);
}

TEST(Topology, UnreachableAcrossGap) {
  auto topo = chain_topology();
  topo.add_node(99, {900.0, 900.0});
  EXPECT_FALSE(topo.hop_distance(0, 99).has_value());
  EXPECT_FALSE(topo.reachable(99, 4));
}

TEST(Topology, KHopNeighbors) {
  auto topo = chain_topology();
  const auto two = topo.k_hop_neighbors(0, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], (std::pair<NodeId, std::uint32_t>{1, 1}));
  EXPECT_EQ(two[1], (std::pair<NodeId, std::uint32_t>{2, 2}));
}

TEST(Topology, Components) {
  auto topo = chain_topology();
  topo.add_node(10, {800.0, 800.0});
  topo.add_node(11, {850.0, 800.0});
  const auto comps = topo.components();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(comps[1], (std::vector<NodeId>{10, 11}));
}

TEST(Topology, Eccentricity) {
  auto topo = chain_topology();
  EXPECT_EQ(topo.eccentricity(0), 4u);
  EXPECT_EQ(topo.eccentricity(2), 2u);
}

TEST(Topology, MoveChangesConnectivity) {
  auto topo = chain_topology();
  topo.move_node(4, {0.0, 100.0});  // now adjacent to 0
  EXPECT_EQ(topo.hop_distance(0, 4), 1u);
}

TEST(Topology, Covered) {
  auto topo = chain_topology();
  EXPECT_TRUE(topo.covered({50.0, 0.0}));
  EXPECT_FALSE(topo.covered({900.0, 900.0}));
}

TEST(Topology, OutOfAreaThrows) {
  auto topo = chain_topology();
  EXPECT_THROW(topo.add_node(50, {-1.0, 0.0}), InvariantViolation);
  EXPECT_THROW(topo.move_node(0, {2000.0, 0.0}), InvariantViolation);
}

TEST(Topology, CoincidentAndAdjacentNodes) {
  // Regression for the early-exit BFS in hop_distance: nodes at distance 0
  // (coincident) or exactly at the range boundary are ordinary one-hop
  // neighbors, never self-loops, and distances stay symmetric and exact.
  Topology topo(Rect{1000.0, 1000.0}, 120.0);
  topo.add_node(0, {100.0, 100.0});
  topo.add_node(1, {100.0, 100.0});  // coincident with 0
  topo.add_node(2, {220.0, 100.0});  // exactly range away from both
  EXPECT_EQ(topo.hop_distance(0, 0), 0u);
  EXPECT_EQ(topo.hop_distance(0, 1), 1u);
  EXPECT_EQ(topo.hop_distance(1, 0), 1u);
  EXPECT_EQ(topo.hop_distance(0, 2), 1u);  // boundary d == range connects
  EXPECT_EQ(topo.hop_distance(1, 2), 1u);
  EXPECT_EQ(topo.neighbors(0), (std::vector<NodeId>{1, 2}));
  const auto hops = topo.k_hop_neighbors(0, 2);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0], (std::pair<NodeId, std::uint32_t>{1, 1}));
  EXPECT_EQ(hops[1], (std::pair<NodeId, std::uint32_t>{2, 1}));
  // The uncached path agrees.
  topo.set_cache_enabled(false);
  EXPECT_EQ(topo.hop_distance(0, 1), 1u);
  EXPECT_EQ(topo.hop_distance(0, 2), 1u);
  EXPECT_EQ(topo.neighbors(0), (std::vector<NodeId>{1, 2}));
}

TEST(Topology, EpochAdvancesWithMutations) {
  auto topo = chain_topology();
  const auto e0 = topo.epoch();
  (void)topo.components();  // queries never bump the epoch
  EXPECT_EQ(topo.epoch(), e0);
  topo.move_node(0, {1.0, 1.0});
  EXPECT_GT(topo.epoch(), e0);
}

TEST(Topology, CacheReactsToMutations) {
  // The memoized answers must track every kind of mutation, including ones
  // interleaved with queries (lazy rebuild, per-node invalidation).
  auto topo = chain_topology();
  ASSERT_TRUE(topo.cache_enabled());
  EXPECT_EQ(topo.components().size(), 1u);
  EXPECT_EQ(topo.neighbors(0), (std::vector<NodeId>{1}));
  topo.move_node(4, {0.0, 100.0});  // now adjacent to 0 (and still to 3? no)
  EXPECT_EQ(topo.neighbors(0), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(topo.hop_distance(0, 4), 1u);
  topo.remove_node(2);  // splits the chain: {0,1,4} vs {3}
  const auto comps = topo.components();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1, 4}));
  EXPECT_EQ(comps[1], (std::vector<NodeId>{3}));
  topo.add_node(2, {200.0, 0.0});  // heals it
  EXPECT_EQ(topo.components().size(), 1u);
  EXPECT_EQ(topo.k_hop_neighbors(4, 2),
            (std::vector<std::pair<NodeId, std::uint32_t>>{{0, 1}, {1, 2}}));
}

// ---------------------------------------------------------------------------
// Differential: cached topology vs. brute-force oracle under mobility
// ---------------------------------------------------------------------------

using OracleMap = std::map<NodeId, Point>;

std::vector<NodeId> oracle_neighbors(const OracleMap& pts, NodeId id,
                                     double range) {
  std::vector<NodeId> out;
  const Point& p = pts.at(id);
  for (const auto& [n, q] : pts) {
    if (n != id && distance_sq(p, q) <= range * range) out.push_back(n);
  }
  return out;  // std::map iteration is already id-sorted
}

std::vector<std::vector<NodeId>> oracle_components(const OracleMap& pts,
                                                   double range) {
  std::vector<std::vector<NodeId>> out;
  std::map<NodeId, bool> seen;
  for (const auto& [id, p] : pts) {
    if (seen[id]) continue;
    std::vector<NodeId> comp{id};
    seen[id] = true;
    for (std::size_t head = 0; head < comp.size(); ++head) {
      for (NodeId nb : oracle_neighbors(pts, comp[head], range)) {
        if (!seen[nb]) {
          seen[nb] = true;
          comp.push_back(nb);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    out.push_back(comp);
  }
  return out;
}

std::vector<std::pair<NodeId, std::uint32_t>> oracle_k_hop(
    const OracleMap& pts, NodeId id, std::uint32_t k, double range) {
  std::map<NodeId, std::uint32_t> dist{{id, 0}};
  std::vector<NodeId> frontier{id};
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId u = frontier[head];
    const std::uint32_t d = dist.at(u);
    if (d == k) continue;
    for (NodeId v : oracle_neighbors(pts, u, range)) {
      if (dist.emplace(v, d + 1).second) frontier.push_back(v);
    }
  }
  std::vector<std::pair<NodeId, std::uint32_t>> out;
  for (const auto& [n, d] : dist) {
    if (d > 0) out.emplace_back(n, d);
  }
  return out;  // map order == sorted by id, matching k_hop_neighbors
}

TEST(TopologyDifferential, MatchesOracleUnderMobilityTrace) {
  // A random-waypoint trace with churn (adds/removes), checked after every
  // movement step against an O(n^2) oracle AND against a cache-disabled
  // twin — including the hop-distance map's iteration order, which protocol
  // tie-breaks can observe.
  const double range = 180.0;
  const Rect area{1000.0, 1000.0};
  Rng rng(0xd1ff);
  Topology cached(area, range);
  cached.set_cache_enabled(true);
  Topology plain(area, range);
  plain.set_cache_enabled(false);
  OracleMap pts;
  std::map<NodeId, Point> dest;
  NodeId next_id = 0;

  const auto add = [&](const Point& p) {
    cached.add_node(next_id, p);
    plain.add_node(next_id, p);
    pts[next_id] = p;
    dest[next_id] = area.sample(rng);
    ++next_id;
  };
  for (int i = 0; i < 40; ++i) add(area.sample(rng));

  for (int step = 0; step < 60; ++step) {
    // Random-waypoint tick: 20 m/s, 1 s steps, new destination on arrival.
    for (auto& [id, p] : pts) {
      if (p == dest[id]) dest[id] = area.sample(rng);
      p = advance(p, dest[id], 20.0);
      cached.move_node(id, p);
      plain.move_node(id, p);
    }
    // Churn: occasional arrival or abrupt departure.
    if (rng.chance(0.2)) {
      add(area.sample(rng));
    } else if (rng.chance(0.2) && pts.size() > 10) {
      auto victim = std::next(pts.begin(),
                              static_cast<std::ptrdiff_t>(
                                  rng.index(pts.size())));
      cached.remove_node(victim->first);
      plain.remove_node(victim->first);
      dest.erase(victim->first);
      pts.erase(victim);
    }

    // Every node's adjacency, every step.
    for (const auto& [id, p] : pts) {
      ASSERT_EQ(cached.neighbors(id), oracle_neighbors(pts, id, range))
          << "step " << step << " node " << id;
      ASSERT_EQ(cached.neighbors_view(id), plain.neighbors_view(id));
    }
    // The components partition, every step.
    ASSERT_EQ(cached.components(), oracle_components(pts, range))
        << "step " << step;
    ASSERT_EQ(cached.components_view(), plain.components_view());
    // Sampled k-hop sets, hop distances, and the map's emplace order.
    for (int probe = 0; probe < 3; ++probe) {
      const NodeId a =
          std::next(pts.begin(),
                    static_cast<std::ptrdiff_t>(rng.index(pts.size())))
              ->first;
      const NodeId b =
          std::next(pts.begin(),
                    static_cast<std::ptrdiff_t>(rng.index(pts.size())))
              ->first;
      const auto k = static_cast<std::uint32_t>(1 + rng.index(3));
      ASSERT_EQ(cached.k_hop_neighbors(a, k), oracle_k_hop(pts, a, k, range))
          << "step " << step << " node " << a << " k " << k;
      ASSERT_EQ(cached.hop_distance(a, b), plain.hop_distance(a, b));
      ASSERT_EQ(cached.component_of(a), plain.component_of(a));
      ASSERT_EQ(cached.eccentricity(a), plain.eccentricity(a));
      const auto dc = cached.hop_distances_from(a);
      const auto dp = plain.hop_distances_from(a);
      // Not just equal as sets: byte-identical iteration order.
      std::vector<std::pair<NodeId, std::uint32_t>> seq_c(dc.begin(),
                                                          dc.end());
      std::vector<std::pair<NodeId, std::uint32_t>> seq_p(dp.begin(),
                                                          dp.end());
      ASSERT_EQ(seq_c, seq_p) << "iteration order diverged at step " << step;
    }
  }
}

// A typo'd QIP_TOPO_INCR must not silently pick a code path: the escape
// hatch is parsed strictly (src/harness/env.hpp), so "offf" is a hard
// exit 2, not a fallback to either mode.
TEST(TopologyEnvDeathTest, MalformedIncrSwitchExitsTwo) {
  setenv("QIP_TOPO_INCR", "offf", 1);
  EXPECT_EXIT(Topology(Rect{100.0, 100.0}, 30.0),
              ::testing::ExitedWithCode(2), "invalid QIP_TOPO_INCR");
  setenv("QIP_TOPO_INCR", "2", 1);
  EXPECT_EXIT(Topology(Rect{100.0, 100.0}, 30.0),
              ::testing::ExitedWithCode(2), "invalid QIP_TOPO_INCR");
  // The documented spellings parse.
  setenv("QIP_TOPO_INCR", "off", 1);
  { Topology t(Rect{100.0, 100.0}, 30.0); }
  setenv("QIP_TOPO_INCR", "on", 1);
  { Topology t(Rect{100.0, 100.0}, 30.0); }
  unsetenv("QIP_TOPO_INCR");
}

TEST(TopologyDifferential, IncrementalMatchesOracleOverLongChurn) {
  // 10k churn steps (adds, removes — including burst departures that sever
  // paths through the removed nodes — and moves) against the O(n^2) oracle
  // and against a QIP_TOPO_INCR=off twin that full-rebuilds every epoch.
  // Components are compared exactly every step; k-hop sets and BFS
  // discovery order are sampled.  This is the long-haul guard for the
  // incremental CSR patch + components repair (docs/SCALE.md).
  const double range = 180.0;
  const Rect area{1000.0, 1000.0};
  Rng rng(0x10c4);
  Topology incr(area, range);
  incr.set_incremental_enabled(true);
  Topology full(area, range);
  full.set_incremental_enabled(false);
  OracleMap pts;
  std::map<NodeId, Point> dest;
  NodeId next_id = 0;

  const auto add = [&](const Point& p) {
    incr.add_node(next_id, p);
    full.add_node(next_id, p);
    pts[next_id] = p;
    dest[next_id] = area.sample(rng);
    ++next_id;
  };
  const auto remove = [&](NodeId id) {
    incr.remove_node(id);
    full.remove_node(id);
    dest.erase(id);
    pts.erase(id);
  };
  const auto random_id = [&] {
    return std::next(pts.begin(),
                     static_cast<std::ptrdiff_t>(rng.index(pts.size())))
        ->first;
  };
  for (int i = 0; i < 48; ++i) add(area.sample(rng));

  for (int step = 0; step < 10000; ++step) {
    for (auto& [id, p] : pts) {
      if (p == dest[id]) dest[id] = area.sample(rng);
      p = advance(p, dest[id], 20.0);
      incr.move_node(id, p);
      full.move_node(id, p);
    }
    if (rng.chance(0.15)) add(area.sample(rng));
    if (rng.chance(0.15) && pts.size() > 16) remove(random_id());
    if (rng.chance(0.01)) {
      // Burst departure: severing several nodes at once exercises the
      // repair's transitive-split detection (fragments that were only
      // connected through the departed nodes).
      for (int i = 0; i < 6 && pts.size() > 16; ++i) remove(random_id());
    }

    // Exact components vs the oracle, every step.
    ASSERT_EQ(incr.components(), oracle_components(pts, range))
        << "step " << step;
    ASSERT_EQ(incr.components_view(), full.components_view())
        << "step " << step;

    // Sampled adjacency, k-hop sets, and BFS discovery order.
    const NodeId a = random_id();
    ASSERT_EQ(incr.neighbors(a), oracle_neighbors(pts, a, range))
        << "step " << step << " node " << a;
    const auto k = static_cast<std::uint32_t>(1 + rng.index(3));
    ASSERT_EQ(incr.k_hop_neighbors(a, k), oracle_k_hop(pts, a, k, range))
        << "step " << step << " node " << a << " k " << k;
    std::vector<std::pair<NodeId, std::uint32_t>> order_incr, order_full;
    incr.for_each_reachable(
        a, [&](NodeId n, std::uint32_t d) { order_incr.emplace_back(n, d); });
    full.for_each_reachable(
        a, [&](NodeId n, std::uint32_t d) { order_full.emplace_back(n, d); });
    ASSERT_EQ(order_incr, order_full)
        << "BFS discovery order diverged at step " << step;
  }

  // The incremental path must actually have been exercised: patches should
  // dwarf full rebuilds over 10k steps.
  EXPECT_GT(incr.csr_incremental_patches(), incr.csr_full_rebuilds());
  EXPECT_GT(incr.component_repairs(), 0u);
  EXPECT_EQ(full.csr_incremental_patches(), 0u);
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

struct TransportFixture : ::testing::Test {
  Simulator sim;
  Topology topo = chain_topology();
  MessageStats stats;
  Transport transport{sim, topo, stats, 0.01};
};

TEST_F(TransportFixture, UnicastChargesPathHops) {
  bool delivered = false;
  const auto hops =
      transport.unicast(0, 4, Traffic::kConfiguration,
                        [&](NodeId to, std::uint32_t h) {
                          delivered = true;
                          EXPECT_EQ(to, 4u);
                          EXPECT_EQ(h, 4u);
                        });
  ASSERT_TRUE(hops.has_value());
  EXPECT_EQ(*hops, 4u);
  EXPECT_FALSE(delivered);  // not before the latency elapses
  sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(sim.now(), 0.04);
  EXPECT_EQ(stats.of(Traffic::kConfiguration).hops, 4u);
  EXPECT_EQ(stats.of(Traffic::kConfiguration).messages, 1u);
}

TEST_F(TransportFixture, UnicastUnreachableChargesNothing) {
  topo.add_node(99, {900.0, 900.0});
  const auto hops = transport.unicast(0, 99, Traffic::kDeparture,
                                      [](NodeId, std::uint32_t) {
                                        FAIL() << "must not deliver";
                                      });
  EXPECT_FALSE(hops.has_value());
  EXPECT_EQ(stats.total_hops(), 0u);
}

TEST_F(TransportFixture, DeliverySkippedIfReceiverDeparted) {
  bool delivered = false;
  EXPECT_EQ(stats.dropped_in_flight(), 0u);
  transport.unicast(0, 2, Traffic::kConfiguration,
                    [&](NodeId, std::uint32_t) { delivered = true; });
  topo.remove_node(2);
  sim.run();
  EXPECT_FALSE(delivered);
  // The hops were still charged — the radio transmitted — and the silent
  // loss is tallied instead of vanishing.
  EXPECT_EQ(stats.of(Traffic::kConfiguration).hops, 2u);
  EXPECT_EQ(stats.dropped_in_flight(), 1u);
}

TEST_F(TransportFixture, LocalBroadcastReachesNeighborsOnly) {
  std::vector<NodeId> heard;
  const auto reached = transport.local_broadcast(
      2, Traffic::kHello,
      [&](NodeId n, std::uint32_t h) {
        heard.push_back(n);
        EXPECT_EQ(h, 1u);
      });
  EXPECT_EQ(reached, (std::vector<NodeId>{1, 3}));
  sim.run();
  EXPECT_EQ(heard.size(), 2u);
  EXPECT_EQ(stats.of(Traffic::kHello).hops, 1u);  // one transmission
}

TEST_F(TransportFixture, ScopedFloodCostAndReach) {
  std::vector<std::pair<NodeId, std::uint32_t>> got;
  const auto reached = transport.flood(
      0, 2, Traffic::kReclamation,
      [&](NodeId n, std::uint32_t h) { got.emplace_back(n, h); });
  EXPECT_EQ(reached, (std::vector<NodeId>{1, 2}));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<NodeId, std::uint32_t>{1, 1}));
  EXPECT_EQ(got[1], (std::pair<NodeId, std::uint32_t>{2, 2}));
  // Transmissions: sender + the radius-1 relay (node 1).
  EXPECT_EQ(stats.of(Traffic::kReclamation).hops, 2u);
}

TEST_F(TransportFixture, ComponentFloodCoversComponent) {
  std::vector<NodeId> got;
  const auto reached = transport.flood_component(
      2, Traffic::kPartition,
      [&](NodeId n, std::uint32_t) { got.push_back(n); });
  EXPECT_EQ(reached.size(), 4u);
  sim.run();
  EXPECT_EQ(got.size(), 4u);
  // Everyone except the two chain endpoints relays; cost is bounded by the
  // component size.
  EXPECT_GE(stats.of(Traffic::kPartition).hops, 3u);
  EXPECT_LE(stats.of(Traffic::kPartition).hops, 5u);
}

TEST_F(TransportFixture, IsolatedFloodChargesOneTransmission) {
  topo.add_node(99, {900.0, 900.0});
  const auto reached =
      transport.flood_component(99, Traffic::kPartition,
                                [](NodeId, std::uint32_t) {});
  EXPECT_TRUE(reached.empty());
  EXPECT_EQ(stats.of(Traffic::kPartition).hops, 1u);
}

// ---------------------------------------------------------------------------
// MessageStats
// ---------------------------------------------------------------------------

TEST(MessageStats, CategoriesIndependent) {
  MessageStats s;
  s.record(Traffic::kConfiguration, 5);
  s.record(Traffic::kHello, 7, 7);
  s.record(Traffic::kDeparture, 2, 2);
  EXPECT_EQ(s.of(Traffic::kConfiguration).hops, 5u);
  EXPECT_EQ(s.of(Traffic::kHello).messages, 7u);
  EXPECT_EQ(s.total_hops(), 14u);
  EXPECT_EQ(s.protocol_hops(), 7u);  // hello excluded
  s.reset();
  EXPECT_EQ(s.total_hops(), 0u);
}

TEST(MessageStats, ToStringListsNonZero) {
  MessageStats s;
  s.record(Traffic::kMovement, 3);
  const std::string out = s.to_string();
  EXPECT_NE(out.find("movement"), std::string::npos);
  EXPECT_EQ(out.find("departure"), std::string::npos);
}

}  // namespace
}  // namespace qip
