// Unit tests for topology, transport metering and traffic stats.
#include <gtest/gtest.h>

#include "net/metrics.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace qip {
namespace {

/// A 5-node chain: 0 - 1 - 2 - 3 - 4, 100 m apart, range 120 m.
Topology chain_topology() {
  Topology topo(Rect{1000.0, 1000.0}, 120.0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    topo.add_node(i, {100.0 * i, 0.0});
  }
  return topo;
}

TEST(Topology, NeighborsOnChain) {
  auto topo = chain_topology();
  EXPECT_EQ(topo.neighbors(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(topo.neighbors(2), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(topo.neighbors(4), (std::vector<NodeId>{3}));
}

TEST(Topology, HopDistances) {
  auto topo = chain_topology();
  EXPECT_EQ(topo.hop_distance(0, 0), 0u);
  EXPECT_EQ(topo.hop_distance(0, 1), 1u);
  EXPECT_EQ(topo.hop_distance(0, 4), 4u);
  EXPECT_EQ(topo.hop_distance(4, 0), 4u);
}

TEST(Topology, UnreachableAcrossGap) {
  auto topo = chain_topology();
  topo.add_node(99, {900.0, 900.0});
  EXPECT_FALSE(topo.hop_distance(0, 99).has_value());
  EXPECT_FALSE(topo.reachable(99, 4));
}

TEST(Topology, KHopNeighbors) {
  auto topo = chain_topology();
  const auto two = topo.k_hop_neighbors(0, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], (std::pair<NodeId, std::uint32_t>{1, 1}));
  EXPECT_EQ(two[1], (std::pair<NodeId, std::uint32_t>{2, 2}));
}

TEST(Topology, Components) {
  auto topo = chain_topology();
  topo.add_node(10, {800.0, 800.0});
  topo.add_node(11, {850.0, 800.0});
  const auto comps = topo.components();
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(comps[1], (std::vector<NodeId>{10, 11}));
}

TEST(Topology, Eccentricity) {
  auto topo = chain_topology();
  EXPECT_EQ(topo.eccentricity(0), 4u);
  EXPECT_EQ(topo.eccentricity(2), 2u);
}

TEST(Topology, MoveChangesConnectivity) {
  auto topo = chain_topology();
  topo.move_node(4, {0.0, 100.0});  // now adjacent to 0
  EXPECT_EQ(topo.hop_distance(0, 4), 1u);
}

TEST(Topology, Covered) {
  auto topo = chain_topology();
  EXPECT_TRUE(topo.covered({50.0, 0.0}));
  EXPECT_FALSE(topo.covered({900.0, 900.0}));
}

TEST(Topology, OutOfAreaThrows) {
  auto topo = chain_topology();
  EXPECT_THROW(topo.add_node(50, {-1.0, 0.0}), InvariantViolation);
  EXPECT_THROW(topo.move_node(0, {2000.0, 0.0}), InvariantViolation);
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

struct TransportFixture : ::testing::Test {
  Simulator sim;
  Topology topo = chain_topology();
  MessageStats stats;
  Transport transport{sim, topo, stats, 0.01};
};

TEST_F(TransportFixture, UnicastChargesPathHops) {
  bool delivered = false;
  const auto hops =
      transport.unicast(0, 4, Traffic::kConfiguration,
                        [&](NodeId to, std::uint32_t h) {
                          delivered = true;
                          EXPECT_EQ(to, 4u);
                          EXPECT_EQ(h, 4u);
                        });
  ASSERT_TRUE(hops.has_value());
  EXPECT_EQ(*hops, 4u);
  EXPECT_FALSE(delivered);  // not before the latency elapses
  sim.run();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(sim.now(), 0.04);
  EXPECT_EQ(stats.of(Traffic::kConfiguration).hops, 4u);
  EXPECT_EQ(stats.of(Traffic::kConfiguration).messages, 1u);
}

TEST_F(TransportFixture, UnicastUnreachableChargesNothing) {
  topo.add_node(99, {900.0, 900.0});
  const auto hops = transport.unicast(0, 99, Traffic::kDeparture,
                                      [](NodeId, std::uint32_t) {
                                        FAIL() << "must not deliver";
                                      });
  EXPECT_FALSE(hops.has_value());
  EXPECT_EQ(stats.total_hops(), 0u);
}

TEST_F(TransportFixture, DeliverySkippedIfReceiverDeparted) {
  bool delivered = false;
  EXPECT_EQ(stats.dropped_in_flight(), 0u);
  transport.unicast(0, 2, Traffic::kConfiguration,
                    [&](NodeId, std::uint32_t) { delivered = true; });
  topo.remove_node(2);
  sim.run();
  EXPECT_FALSE(delivered);
  // The hops were still charged — the radio transmitted — and the silent
  // loss is tallied instead of vanishing.
  EXPECT_EQ(stats.of(Traffic::kConfiguration).hops, 2u);
  EXPECT_EQ(stats.dropped_in_flight(), 1u);
}

TEST_F(TransportFixture, LocalBroadcastReachesNeighborsOnly) {
  std::vector<NodeId> heard;
  const auto reached = transport.local_broadcast(
      2, Traffic::kHello,
      [&](NodeId n, std::uint32_t h) {
        heard.push_back(n);
        EXPECT_EQ(h, 1u);
      });
  EXPECT_EQ(reached, (std::vector<NodeId>{1, 3}));
  sim.run();
  EXPECT_EQ(heard.size(), 2u);
  EXPECT_EQ(stats.of(Traffic::kHello).hops, 1u);  // one transmission
}

TEST_F(TransportFixture, ScopedFloodCostAndReach) {
  std::vector<std::pair<NodeId, std::uint32_t>> got;
  const auto reached = transport.flood(
      0, 2, Traffic::kReclamation,
      [&](NodeId n, std::uint32_t h) { got.emplace_back(n, h); });
  EXPECT_EQ(reached, (std::vector<NodeId>{1, 2}));
  sim.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<NodeId, std::uint32_t>{1, 1}));
  EXPECT_EQ(got[1], (std::pair<NodeId, std::uint32_t>{2, 2}));
  // Transmissions: sender + the radius-1 relay (node 1).
  EXPECT_EQ(stats.of(Traffic::kReclamation).hops, 2u);
}

TEST_F(TransportFixture, ComponentFloodCoversComponent) {
  std::vector<NodeId> got;
  const auto reached = transport.flood_component(
      2, Traffic::kPartition,
      [&](NodeId n, std::uint32_t) { got.push_back(n); });
  EXPECT_EQ(reached.size(), 4u);
  sim.run();
  EXPECT_EQ(got.size(), 4u);
  // Everyone except the two chain endpoints relays; cost is bounded by the
  // component size.
  EXPECT_GE(stats.of(Traffic::kPartition).hops, 3u);
  EXPECT_LE(stats.of(Traffic::kPartition).hops, 5u);
}

TEST_F(TransportFixture, IsolatedFloodChargesOneTransmission) {
  topo.add_node(99, {900.0, 900.0});
  const auto reached =
      transport.flood_component(99, Traffic::kPartition,
                                [](NodeId, std::uint32_t) {});
  EXPECT_TRUE(reached.empty());
  EXPECT_EQ(stats.of(Traffic::kPartition).hops, 1u);
}

// ---------------------------------------------------------------------------
// MessageStats
// ---------------------------------------------------------------------------

TEST(MessageStats, CategoriesIndependent) {
  MessageStats s;
  s.record(Traffic::kConfiguration, 5);
  s.record(Traffic::kHello, 7, 7);
  s.record(Traffic::kDeparture, 2, 2);
  EXPECT_EQ(s.of(Traffic::kConfiguration).hops, 5u);
  EXPECT_EQ(s.of(Traffic::kHello).messages, 7u);
  EXPECT_EQ(s.total_hops(), 14u);
  EXPECT_EQ(s.protocol_hops(), 7u);  // hello excluded
  s.reset();
  EXPECT_EQ(s.total_hops(), 0u);
}

TEST(MessageStats, ToStringListsNonZero) {
  MessageStats s;
  s.record(Traffic::kMovement, 3);
  const std::string out = s.to_string();
  EXPECT_NE(out.find("movement"), std::string::npos);
  EXPECT_EQ(out.find("departure"), std::string::npos);
}

}  // namespace
}  // namespace qip
