// Stress/regression suite: long mixed scenarios under tight pools, heavy
// churn and mobility.  These runs historically exposed state-consistency
// bugs (holder-minted replica versions reverting an owner's universe,
// double-frees after missed reclamation claims, commit-time lock-expiry
// races), so they assert both survival (no invariant violations escape)
// and the per-network safety properties.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

/// The domain where the protocol promises consistency at every instant is
/// one *connected* network: nodes that share a component and a network id.
/// Conflicts between nodes that cannot currently hear each other are
/// pending-merge states the paper resolves at contact (§V-C), so the check
/// groups by (component, network id).
void check_network_safety(const QipEngine& proto, const Topology& topo,
                          const std::vector<NodeId>& ids) {
  std::map<NodeId, std::size_t> comp_of;
  const auto comps = topo.components();
  for (std::size_t c = 0; c < comps.size(); ++c) {
    for (NodeId id : comps[c]) comp_of[id] = c;
  }
  using Domain = std::pair<std::size_t, NetworkId>;
  std::map<Domain, std::set<IpAddress>> addrs;
  std::map<Domain, std::vector<NodeId>> heads;
  for (NodeId id : ids) {
    if (!proto.knows(id) || !comp_of.count(id)) continue;
    const auto& st = proto.state_of(id);
    const Domain dom{comp_of.at(id), st.network_id};
    if (st.ip) {
      ASSERT_TRUE(addrs[dom].insert(*st.ip).second)
          << "duplicate " << *st.ip << " in connected network "
          << st.network_id;
    }
    if (st.role == Role::kClusterHead) heads[dom].push_back(id);
  }
  for (const auto& [dom, hs] : heads) {
    for (std::size_t i = 0; i < hs.size(); ++i) {
      const auto& a = proto.state_of(hs[i]);
      ASSERT_TRUE(a.owned_universe.contains_all(a.ip_space));
      for (std::size_t j = i + 1; j < hs.size(); ++j) {
        ASSERT_TRUE(a.owned_universe.disjoint_with(
            proto.state_of(hs[j]).owned_universe))
            << "overlap between heads " << hs[i] << "/" << hs[j];
      }
    }
  }
}

class StressSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSeeds, TightPoolHeavyChurn) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  wp.speed = 20.0;
  World world(wp, GetParam());
  QipParams qp;
  qp.pool_size = 128;  // tight: forces borrowing, agenting, reclamation
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  Driver d(world, proto);

  d.join(70);
  world.run_for(3.0);
  for (int wave = 0; wave < 5; ++wave) {
    for (int k = 0; k < 8 && !d.members().empty(); ++k) {
      const NodeId victim =
          d.members()[world.rng().index(d.members().size())];
      if (world.rng().chance(0.5)) {
        d.depart_abrupt(victim);
      } else {
        d.depart_graceful(victim);
      }
    }
    d.join(8);
    world.run_for(6.0);
    check_network_safety(proto, world.topology(), d.members());
  }
  world.run_for(20.0);
  check_network_safety(proto, world.topology(), d.members());
}

TEST_P(StressSeeds, MassHeadFailureThenRegrowth) {
  WorldParams wp;
  World world(wp, GetParam() ^ 0xbeef);
  QipParams qp;
  qp.pool_size = 512;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  Driver d(world, proto);
  d.join(80);
  world.run_for(3.0);

  // Kill every other cluster head at once.
  int parity = 0;
  for (NodeId h : proto.clusters().heads()) {
    if (parity++ % 2 == 0) d.depart_abrupt(h);
  }
  world.run_for(25.0);  // adjustment + reclamation storm
  check_network_safety(proto, world.topology(), d.members());

  // The network keeps configuring newcomers afterwards.  Losing half the
  // heads at once can force merge storms that temporarily deconfigure big
  // swaths, so the bar is service continuity, not full coverage.
  d.join(15);
  world.run_for(25.0);  // rescue scans re-admit storm victims
  check_network_safety(proto, world.topology(), d.members());
  EXPECT_GE(d.configured_fraction(), 0.5);
}

TEST_P(StressSeeds, RepeatedPartitionHealCycles) {
  // Mobility at high speed over a sparse network: components split and heal
  // repeatedly; every intermediate state must stay safe per network.
  WorldParams wp;
  wp.transmission_range = 110.0;  // sparse → frequent partitions
  wp.speed = 40.0;
  World world(wp, GetParam() ^ 0xf00d);
  QipParams qp;
  qp.pool_size = 512;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  Driver d(world, proto);
  d.join(50);
  for (int i = 0; i < 10; ++i) {
    world.run_for(6.0);
    check_network_safety(proto, world.topology(), d.members());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeeds,
                         ::testing::Values(0xA1, 0xB2, 0xC3));

}  // namespace
}  // namespace qip
