// Behavioural tests for the three baseline protocols and stateless DAD.
#include <gtest/gtest.h>

#include <set>

#include "baselines/buddy.hpp"
#include "baselines/ctree.hpp"
#include "baselines/dad.hpp"
#include "baselines/manetconf.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

template <typename Proto>
std::set<IpAddress> unique_addresses(const Proto& proto,
                                     const std::vector<NodeId>& members) {
  std::set<IpAddress> out;
  for (NodeId id : members) {
    const auto addr = proto.address_of(id);
    if (addr) {
      EXPECT_TRUE(out.insert(*addr).second) << "duplicate " << *addr;
    }
  }
  return out;
}

struct BaselineFixture : ::testing::Test {
  WorldParams wp{};
  World world{wp, /*seed=*/303};
  DriverOptions dopt{};

  void SetUp() override {
    dopt.mobility = false;
    dopt.arrival_interval = 1.2;
  }
};

// ---------------------------------------------------------------------------
// MANETconf
// ---------------------------------------------------------------------------

TEST_F(BaselineFixture, ManetConfConfiguresUniquely) {
  ManetConf proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join(30);
  world.run_for(3.0);
  EXPECT_GE(d.configured_fraction(), 0.95);
  unique_addresses(proto, d.members());
}

TEST_F(BaselineFixture, ManetConfUsesLowestFreeAddress) {
  ManetConf proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  const NodeId a = d.join_at({500, 500});
  world.run_for(4.0);
  const NodeId b = d.join_at({600, 500});
  world.run_for(3.0);
  EXPECT_EQ(proto.address_of(a), kPoolBase);
  EXPECT_EQ(proto.address_of(b), kPoolBase.next());
}

TEST_F(BaselineFixture, ManetConfTablesFullyReplicated) {
  ManetConf proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join_at({500, 500});
  world.run_for(4.0);
  d.join_at({600, 500});
  d.join_at({550, 580});
  world.run_for(3.0);
  // Every configured node knows every allocation.
  for (NodeId id : d.members()) {
    EXPECT_EQ(proto.table_size(id), 3u) << "node " << id;
  }
}

TEST_F(BaselineFixture, ManetConfFloodsArePricey) {
  ManetConf proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join(25);
  world.run_for(3.0);
  // Each configuration floods the network twice (query + commit) plus all
  // unicast replies: overhead must be super-linear in n.
  const auto hops = world.stats().of(Traffic::kConfiguration).hops;
  EXPECT_GT(hops, 25u * 20u);
}

TEST_F(BaselineFixture, ManetConfGracefulReleaseShrinksTables) {
  ManetConf proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  const NodeId a = d.join_at({500, 500});
  world.run_for(4.0);
  const NodeId b = d.join_at({600, 500});
  world.run_for(3.0);
  const IpAddress freed = *proto.address_of(b);
  d.depart_graceful(b);
  world.run_for(2.0);
  EXPECT_EQ(proto.table_size(a), 1u);
  // The freed address is reassigned to the next joiner.
  const NodeId c = d.join_at({580, 520});
  world.run_for(3.0);
  EXPECT_EQ(proto.address_of(c), freed);
}

// ---------------------------------------------------------------------------
// Buddy (Mohsin–Prakash)
// ---------------------------------------------------------------------------

TEST_F(BaselineFixture, BuddyConfiguresCheaplyAndUniquely) {
  BuddyProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join(30);
  world.run_for(2.0);
  EXPECT_GE(d.configured_fraction(), 0.95);
  unique_addresses(proto, d.members());
  // Blocks are pairwise disjoint.
  for (NodeId i : d.members()) {
    for (NodeId j : d.members()) {
      if (i >= j || !proto.configured(i) || !proto.configured(j)) continue;
      EXPECT_TRUE(proto.block_of(i).disjoint_with(proto.block_of(j)));
    }
  }
}

TEST_F(BaselineFixture, BuddySplitHalvesBlocks) {
  BuddyProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  const NodeId a = d.join_at({500, 500});
  world.run_for(3.0);
  const std::uint64_t before = proto.block_of(a).size();
  d.join_at({600, 500});
  world.run_for(2.0);
  EXPECT_NEAR(static_cast<double>(proto.block_of(a).size()),
              static_cast<double>(before) / 2.0, 1.0);
}

TEST_F(BaselineFixture, BuddySyncCostsGlobalFloods) {
  BuddyParams bp;
  bp.sync_interval = 1.0;
  BuddyProtocol proto(world.transport(), world.rng(), bp);
  proto.start_sync();
  Driver d(world, proto, dopt);
  d.join(15);
  const auto before = world.stats().of(Traffic::kMaintenance).hops;
  world.run_for(5.0);
  const auto after = world.stats().of(Traffic::kMaintenance).hops;
  // ~5 sync rounds x 15 nodes flooding a 15-node component.
  EXPECT_GT(after - before, 200u);
}

TEST_F(BaselineFixture, BuddyGracefulReturnMergesBlocks) {
  BuddyProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  const NodeId a = d.join_at({500, 500});
  world.run_for(3.0);
  const NodeId b = d.join_at({600, 500});
  world.run_for(2.0);
  const std::uint64_t total_before =
      proto.block_of(a).size() + proto.block_of(b).size() + 1;  // + b's ip
  d.depart_graceful(b);
  world.run_for(2.0);
  EXPECT_EQ(proto.block_of(a).size(), total_before);
}

TEST_F(BaselineFixture, BuddySyncReclaimsVanishedBuddy) {
  BuddyParams bp;
  bp.sync_interval = 1.0;
  BuddyProtocol proto(world.transport(), world.rng(), bp);
  proto.start_sync();
  Driver d(world, proto, dopt);
  const NodeId a = d.join_at({500, 500});
  world.run_for(3.0);
  const NodeId b = d.join_at({600, 500});
  world.run_for(2.0);
  d.depart_abrupt(b);
  const auto recl_before = world.stats().of(Traffic::kReclamation).hops;
  world.run_for(3.0);
  EXPECT_GT(world.stats().of(Traffic::kReclamation).hops, recl_before)
      << "the buddy announces the loss";
  (void)a;
}

// ---------------------------------------------------------------------------
// C-tree (Sheu et al.)
// ---------------------------------------------------------------------------

TEST_F(BaselineFixture, CTreeConfiguresUniquely) {
  CTreeProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join(30);
  world.run_for(2.0);
  EXPECT_GE(d.configured_fraction(), 0.9);
  unique_addresses(proto, d.members());
}

TEST_F(BaselineFixture, CTreeFirstNodeIsRoot) {
  CTreeProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  const NodeId a = d.join_at({500, 500});
  world.run_for(4.0);
  EXPECT_EQ(proto.root(), a);
  EXPECT_TRUE(proto.is_coordinator(a));
}

TEST_F(BaselineFixture, CTreePeriodicUpdatesReachRoot) {
  CTreeProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join_at({100, 500});
  world.run_for(4.0);
  d.join_at({240, 500});
  d.join_at({380, 500});
  d.join_at({520, 500});  // becomes a second coordinator
  world.run_for(2.0);
  const auto before = world.stats().of(Traffic::kMaintenance).hops;
  proto.update_tick();
  world.run_for(1.0);
  EXPECT_GT(world.stats().of(Traffic::kMaintenance).hops, before);
}

TEST_F(BaselineFixture, CTreeRootLossLosesInformation) {
  CTreeProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  const NodeId root = d.join_at({500, 500});
  world.run_for(4.0);
  d.join_at({600, 500});
  world.run_for(2.0);
  proto.update_tick();
  world.run_for(1.0);
  std::set<NodeId> dead{root};
  EXPECT_GT(proto.info_loss_if_dead(dead), 0u)
      << "allocations tracked only by the root die with it";
}

TEST_F(BaselineFixture, CTreeNonRootCoordinatorSurvivesViaRootSnapshot) {
  CTreeProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join_at({100, 500});
  world.run_for(4.0);
  d.join_at({240, 500});
  d.join_at({380, 500});
  const NodeId coord = d.join_at({520, 500});
  world.run_for(2.0);
  ASSERT_TRUE(proto.is_coordinator(coord));
  proto.update_tick();
  world.run_for(1.0);
  std::set<NodeId> dead{coord};
  EXPECT_EQ(proto.info_loss_if_dead(dead), 0u)
      << "the root snapshot preserves the coordinator's allocations";
}

// ---------------------------------------------------------------------------
// DAD (Perkins)
// ---------------------------------------------------------------------------

TEST_F(BaselineFixture, DadConfiguresUniquely) {
  dopt.arrival_interval = 2.0;  // three AREQ floods take 1.5 s
  DadProtocol proto(world.transport(), world.rng());
  Driver d(world, proto, dopt);
  d.join(20);
  world.run_for(5.0);
  EXPECT_GE(d.configured_fraction(), 0.95);
  unique_addresses(proto, d.members());
}

TEST_F(BaselineFixture, DadDefendsAddressOnConflict) {
  DadParams dp;
  dp.pool_size = 1;  // every pick collides
  DadProtocol proto(world.transport(), world.rng(), dp);
  dopt.arrival_interval = 2.0;
  Driver d(world, proto, dopt);
  const NodeId a = d.join_at({500, 500});
  world.run_for(3.0);
  ASSERT_TRUE(proto.configured(a));
  const NodeId b = d.join_at({600, 500});
  world.run_for(20.0);
  // b keeps colliding with a's single address and must end unconfigured.
  EXPECT_FALSE(proto.configured(b));
  const ConfigRecord* rec = proto.config_record(b);
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->success);
}

TEST_F(BaselineFixture, DadFloodsDominateOverhead) {
  DadProtocol proto(world.transport(), world.rng());
  dopt.arrival_interval = 2.0;
  Driver d(world, proto, dopt);
  d.join(15);
  world.run_for(3.0);
  // Three floods per configuration.
  EXPECT_GT(world.stats().of(Traffic::kConfiguration).hops, 15u * 3u);
}

}  // namespace
}  // namespace qip
