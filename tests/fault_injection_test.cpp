// Fault-injection suite: the paper's protocols under lossy delivery.
//
// The paper assumes "reliable delivery of messages within transmission
// range" (§IV-B); these tests remove that assumption with a FaultPlan and
// check three things.  First, survival: QIP, MANETconf and buddy complete a
// bringup under 0/5/20 % per-delivery loss without hanging, and the
// always-on uniqueness auditor stays clean throughout.  Second, the
// ablation: the ReliableChannel is what keeps QIP's quorum RPCs effective
// under loss — turning it off visibly degrades configuration while
// uniqueness still holds.  Third, determinism: a run is a pure function of
// (world seed, fault seed), and a null plan is byte-identical to never
// installing an injector at all.
#include <gtest/gtest.h>

#include <map>

#include "baselines/buddy.hpp"
#include "baselines/manetconf.hpp"
#include "core/qip_engine.hpp"
#include "fault/fault_plan.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"

namespace qip {
namespace {

/// One deterministic bringup-and-churn run; returns stats for comparisons.
struct RunResult {
  double configured = 0.0;
  std::uint64_t protocol_hops = 0;
  std::uint64_t total_hops = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks = 0;
  std::uint64_t dropped_in_flight = 0;
  std::map<NodeId, IpAddress> addresses;
};

class FaultSweep : public ::testing::TestWithParam<double> {};

TEST_P(FaultSweep, QipCompletesUnderLoss) {
  const double drop = GetParam();
  World world({}, /*seed=*/777);
  QipParams qp;
  qp.heal_on_conflict_evidence = true;  // active repair under loss
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  if (drop > 0.0) {
    FaultPlan plan;
    plan.drop = drop;
    world.enable_faults(plan);
  }
  Driver d(world, proto);

  d.join(40);
  world.run_for(5.0);
  d.depart_abrupt(d.members()[3]);
  d.depart_graceful(d.members()[10]);
  world.run_for(10.0);

  // Loss slows configuration but must not wedge it: even at 20 % the
  // retransmit machinery gets the overwhelming majority through.  The
  // auditor ran every 0.5 s for free and threw on any violation.
  EXPECT_GE(d.configured_fraction(), drop > 0.0 ? 0.9 : 1.0);
  if (drop > 0.0) {
    EXPECT_GT(world.faults()->stats().dropped, 0u);
    EXPECT_GT(proto.channel().retransmissions(), 0u);
  }
}

TEST_P(FaultSweep, ManetconfCompletesUnderLoss) {
  const double drop = GetParam();
  World world({}, /*seed=*/778);
  ManetConf proto(world.transport(), world.rng());
  if (drop > 0.0) {
    FaultPlan plan;
    plan.drop = drop;
    world.enable_faults(plan);
  }
  Driver d(world, proto);

  d.join(30);
  world.run_for(10.0);
  // MANETconf's all-node agreement has no retransmit machinery, so loss
  // visibly degrades it — the run must still terminate cleanly (no hang,
  // auditor quiet) with at least the initiator-free early joiners up.
  EXPECT_GE(d.configured_fraction(), drop > 0.0 ? 0.1 : 0.8);
  if (drop > 0.0) {
    EXPECT_GT(world.faults()->stats().dropped, 0u);
  }
}

TEST_P(FaultSweep, BuddyCompletesUnderLoss) {
  const double drop = GetParam();
  World world({}, /*seed=*/779);
  BuddyProtocol proto(world.transport(), world.rng());
  proto.start_sync();
  if (drop > 0.0) {
    FaultPlan plan;
    plan.drop = drop;
    world.enable_faults(plan);
  }
  Driver d(world, proto);

  d.join(30);
  world.run_for(10.0);
  // Buddy halves blocks peer-to-peer (one unicast handshake), so it rides
  // out loss better than flooding agreement, just not perfectly.
  EXPECT_GE(d.configured_fraction(), drop > 0.0 ? 0.7 : 0.8);
}

INSTANTIATE_TEST_SUITE_P(Loss, FaultSweep, ::testing::Values(0.0, 0.05, 0.20));

RunResult qip_lossy_run(bool reliable, std::uint64_t world_seed = 4242,
                        bool install_null_injector = false,
                        double drop = 0.2) {
  World world({}, world_seed);
  QipParams qp;
  qp.reliable_rpcs = reliable;
  qp.heal_on_conflict_evidence = drop > 0.0;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();
  FaultPlan plan;
  plan.drop = drop;
  if (drop > 0.0 || install_null_injector) world.enable_faults(plan);
  Driver d(world, proto);

  d.join(35);
  world.run_for(8.0);

  RunResult r;
  r.configured = d.configured_fraction();
  r.protocol_hops = world.stats().protocol_hops();
  r.total_hops = world.stats().total_hops();
  r.retransmissions = world.stats().retransmissions();
  r.acks = world.stats().acks();
  r.dropped_in_flight = world.stats().dropped_in_flight();
  r.addresses = proto.configured_addresses();
  return r;
}

TEST(ReliabilityAblation, ChannelPaysForItselfUnderLoss) {
  const RunResult with = qip_lossy_run(/*reliable=*/true);
  const RunResult without = qip_lossy_run(/*reliable=*/false);

  // With the channel: retransmissions and acks happen, are charged to
  // MessageStats, and configuration succeeds despite 20 % loss.
  EXPECT_GT(with.retransmissions, 0u);
  EXPECT_GT(with.acks, 0u);
  EXPECT_GE(with.configured, 0.9);

  // Without it: no channel traffic, and lost quorum RPCs visibly degrade
  // the run — fewer nodes configure (stalled transactions wait for coarse
  // protocol timers).  Uniqueness held either way: the Driver's auditor
  // checked both runs throughout.
  EXPECT_EQ(without.retransmissions, 0u);
  EXPECT_EQ(without.acks, 0u);
  EXPECT_LT(without.configured, with.configured);
}

TEST(FaultDeterminism, SameSeedsSameRun) {
  const RunResult a = qip_lossy_run(true);
  const RunResult b = qip_lossy_run(true);
  EXPECT_EQ(a.protocol_hops, b.protocol_hops);
  EXPECT_EQ(a.total_hops, b.total_hops);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.dropped_in_flight, b.dropped_in_flight);
  EXPECT_EQ(a.addresses, b.addresses);
}

TEST(FaultDeterminism, NullPlanIsByteIdenticalToNoInjector) {
  const RunResult bare =
      qip_lossy_run(true, 4242, /*install_null_injector=*/false, /*drop=*/0.0);
  const RunResult null_plan =
      qip_lossy_run(true, 4242, /*install_null_injector=*/true, /*drop=*/0.0);
  EXPECT_EQ(bare.total_hops, null_plan.total_hops);
  EXPECT_EQ(bare.addresses, null_plan.addresses);
  // The reliable model never engages the channel (pass-through rule).
  EXPECT_EQ(bare.retransmissions, 0u);
  EXPECT_EQ(null_plan.retransmissions, 0u);
}

TEST(FaultStress, QipSurvivesLossCrashesAndOutages) {
  WorldParams wp;
  wp.transmission_range = 150.0;
  World world(wp, /*seed=*/909);
  QipParams qp;
  qp.pool_size = 256;
  qp.heal_on_conflict_evidence = true;
  QipEngine proto(world.transport(), world.rng(), qp);
  proto.start_hello();

  FaultPlan plan;
  plan.drop = 0.2;
  plan.duplicate = 0.05;
  plan.max_jitter = 0.01;
  // Crash/recover schedules: three radios go dark mid-run, two return.
  plan.node_outages = {{.node = 2, .from = 6.0, .until = 12.0},
                       {.node = 9, .from = 8.0, .until = 15.0},
                       {.node = 14, .from = 10.0, .until = 1e18}};
  plan.link_outages = {{.a = 0, .b = 1, .from = 4.0, .until = 20.0}};
  FaultInjector& inj = world.enable_faults(plan);
  Driver d(world, proto);

  d.join(45);
  world.run_for(6.0);
  for (int wave = 0; wave < 3; ++wave) {
    for (int k = 0; k < 5 && !d.members().empty(); ++k) {
      const NodeId victim = d.members()[world.rng().index(d.members().size())];
      if (world.rng().chance(0.5)) {
        d.depart_abrupt(victim);
      } else {
        d.depart_graceful(victim);
      }
    }
    d.join(4);
    world.run_for(4.0);
  }
  world.run_for(10.0);

  // The run completed: every fault class actually fired, the auditor (on
  // the whole time) saw zero violations, and the network still functions —
  // most surviving nodes hold addresses.
  EXPECT_GT(inj.stats().dropped, 0u);
  EXPECT_GT(inj.stats().duplicated, 0u);
  EXPECT_GT(inj.stats().blackouts + inj.stats().sends_blocked, 0u);
  std::uint32_t ok = 0;
  for (NodeId id : d.members()) ok += proto.configured(id) ? 1 : 0;
  EXPECT_GE(static_cast<double>(ok) / d.members().size(), 0.8);
}

// ---------------------------------------------------------------------------
// Plan validation: a malformed plan must die at construction with a clear
// message, not silently misbehave mid-run (a negative drop never drops, an
// inverted window never fires, overlapping windows double-judge deliveries).
// ---------------------------------------------------------------------------

TEST(FaultPlanValidation, WellFormedPlansPass) {
  FaultPlan plan;
  EXPECT_NO_THROW(plan.validate());  // null plan is trivially valid

  plan.drop = 0.2;
  plan.duplicate = 1.0;
  plan.max_jitter = 0.05;
  plan.node_outages = {{.node = 3, .from = 1.0, .until = 2.0},
                       {.node = 3, .from = 2.0, .until = 3.0},  // abuts: fine
                       {.node = 4, .from = 1.5, .until = 2.5}};
  plan.link_outages = {{.a = 0, .b = 1, .from = 0.0, .until = 5.0},
                       {.a = 1, .b = 2, .from = 2.0, .until = 4.0}};
  EXPECT_NO_THROW(plan.validate());
  EXPECT_NO_THROW(FaultInjector{plan});
}

TEST(FaultPlanValidation, RejectsOutOfRangeProbabilities) {
  FaultPlan plan;
  plan.drop = 1.5;
  EXPECT_THROW(plan.validate(), InvariantViolation);
  plan.drop = -0.1;
  EXPECT_THROW(plan.validate(), InvariantViolation);
  plan.drop = 0.0;
  plan.duplicate = 2.0;
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(FaultPlanValidation, RejectsNegativeJitter) {
  FaultPlan plan;
  plan.max_jitter = -0.01;
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(FaultPlanValidation, RejectsOutageWithoutANode) {
  FaultPlan plan;
  plan.node_outages = {{.from = 0.0, .until = 1.0}};  // node left at kNoNode
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(FaultPlanValidation, RejectsInvertedOrNegativeWindows) {
  FaultPlan plan;
  plan.node_outages = {{.node = 1, .from = 5.0, .until = 2.0}};
  EXPECT_THROW(plan.validate(), InvariantViolation);
  plan.node_outages = {{.node = 1, .from = -1.0, .until = 2.0}};
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(FaultPlanValidation, RejectsOverlappingNodeWindows) {
  FaultPlan plan;
  plan.node_outages = {{.node = 7, .from = 0.0, .until = 10.0},
                       {.node = 7, .from = 5.0, .until = 15.0}};
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(FaultPlanValidation, RejectsDegenerateLinks) {
  FaultPlan plan;
  plan.link_outages = {{.a = 3, .b = 3, .from = 0.0, .until = 1.0}};
  EXPECT_THROW(plan.validate(), InvariantViolation);
  plan.link_outages = {{.a = 3, .from = 0.0, .until = 1.0}};  // b missing
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(FaultPlanValidation, RejectsOverlappingLinkWindowsEitherDirection) {
  FaultPlan plan;
  // Same physical link written with swapped endpoints: canonicalization
  // must still catch the overlap.
  plan.link_outages = {{.a = 1, .b = 2, .from = 0.0, .until = 10.0},
                       {.a = 2, .b = 1, .from = 5.0, .until = 15.0}};
  EXPECT_THROW(plan.validate(), InvariantViolation);
}

TEST(FaultPlanValidation, InjectorConstructionValidates) {
  FaultPlan plan;
  plan.drop = 7.0;
  // The injector front-loads validation: a bad plan fails before a single
  // event runs, whether built directly or installed through a World.
  EXPECT_THROW(FaultInjector{plan}, InvariantViolation);
  World world({}, /*seed=*/1);
  EXPECT_THROW(world.enable_faults(plan), InvariantViolation);
}

}  // namespace
}  // namespace qip
