# Runs a deterministic figure bench and byte-compares its stdout against a
# committed golden file.  Invoked by ctest (see tools/CMakeLists.txt) as
#
#   cmake -DBENCH=<path-to-exe> -DGOLDEN=<path-to-golden> -P check_golden.cmake
#
# Any drift — including topology-cache behavior changes that would alter BFS
# or component ordering — fails the test with a pointer to the actual output.
if(NOT DEFINED BENCH OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "check_golden.cmake needs -DBENCH=... and -DGOLDEN=...")
endif()

execute_process(
  COMMAND "${BENCH}"
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited with status ${rc}")
endif()

file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  set(dump "${CMAKE_CURRENT_BINARY_DIR}/golden_actual.txt")
  file(WRITE "${dump}" "${actual}")
  message(FATAL_ERROR
      "output of ${BENCH} differs from golden file ${GOLDEN}\n"
      "actual output written to ${dump}\n"
      "If the change is intentional, regenerate the golden file by copying "
      "the actual output over it.")
endif()
