# Byte-compares a figure bench's stdout under two quorum backends.
# Invoked by ctest (see tools/CMakeLists.txt) as
#
#   cmake -DBENCH=<exe> -DQUORUM_A=<backend|default> -DQUORUM_B=<backend>
#         -P check_quorum_invariance.cmake
#
# Two identities hold by construction (docs/QUORUM.md), and this gate pins
# both — same pattern as the scheduler gate:
#
#   * default vs dynamic_linear: QIP_QUORUM=dynamic_linear names the default
#     explicitly, so the policy machinery must be dormant — byte-identical.
#     (majority vs default would be a REAL behavioral comparison: the even-
#     group discount commits rounds one vote earlier, so those outputs
#     legitimately differ.  That delta is what ablation_quorum_backend
#     measures; it must never appear here.)
#   * majority vs slices: the engine derives flat-majority slices from QDSet
#     membership, which is count-equivalent to strict majority — the two
#     backends must drive every bench through identical message flows.
#
# QUORUM_A=default unsets QIP_QUORUM instead of setting it.  QIP_ROUNDS=1
# keeps the double run cheap; any divergence at one round would only
# compound at more.
if(NOT DEFINED BENCH OR NOT DEFINED QUORUM_A OR NOT DEFINED QUORUM_B)
  message(FATAL_ERROR "check_quorum_invariance.cmake needs -DBENCH=... "
      "-DQUORUM_A=... and -DQUORUM_B=...")
endif()

set(ENV{QIP_ROUNDS} 1)

if(QUORUM_A STREQUAL "default")
  unset(ENV{QIP_QUORUM})
else()
  set(ENV{QIP_QUORUM} "${QUORUM_A}")
endif()
execute_process(
  COMMAND "${BENCH}"
  OUTPUT_VARIABLE out_a
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "${BENCH} (QIP_QUORUM=${QUORUM_A}) exited with status ${rc}")
endif()

set(ENV{QIP_QUORUM} "${QUORUM_B}")
execute_process(
  COMMAND "${BENCH}"
  OUTPUT_VARIABLE out_b
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "${BENCH} (QIP_QUORUM=${QUORUM_B}) exited with status ${rc}")
endif()

if(NOT out_a STREQUAL out_b)
  set(dump_a "${CMAKE_CURRENT_BINARY_DIR}/quorum_invariance_${QUORUM_A}.txt")
  set(dump_b "${CMAKE_CURRENT_BINARY_DIR}/quorum_invariance_${QUORUM_B}.txt")
  file(WRITE "${dump_a}" "${out_a}")
  file(WRITE "${dump_b}" "${out_b}")
  message(FATAL_ERROR
      "${BENCH} output changes between QIP_QUORUM=${QUORUM_A} and "
      "${QUORUM_B} — a backend identity broke.\n"
      "${QUORUM_A}: ${dump_a}\n${QUORUM_B}: ${dump_b}")
endif()
