# Byte-compares a figure bench's stdout at QIP_JOBS=1 vs QIP_JOBS=4.
# Invoked by ctest (see tools/CMakeLists.txt) as
#
#   cmake -DBENCH=<exe> -P check_jobs_invariance.cmake
#
# The parallel-runner contract (docs/PARALLELISM.md): every replication cell
# runs on its own SimContext with an order-independent derived seed, and
# cells merge strictly in (x, round) order — so the worker count is pure
# mechanism and must never show up in the results.  The benches deliberately
# never print the jobs value, making the outputs directly comparable.
# QIP_ROUNDS=2 gives the runner at least two cells per x to interleave.
if(NOT DEFINED BENCH)
  message(FATAL_ERROR "check_jobs_invariance.cmake needs -DBENCH=...")
endif()

set(ENV{QIP_ROUNDS} 2)
# Optional -DQUORUM=<backend>: run the whole comparison under a non-default
# quorum backend (the slices arm of the fig12 gate).
if(DEFINED QUORUM)
  set(ENV{QIP_QUORUM} "${QUORUM}")
endif()

set(ENV{QIP_JOBS} 1)
execute_process(
  COMMAND "${BENCH}"
  OUTPUT_VARIABLE sequential
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} (QIP_JOBS=1) exited with status ${rc}")
endif()

set(ENV{QIP_JOBS} 4)
execute_process(
  COMMAND "${BENCH}"
  OUTPUT_VARIABLE parallel
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} (QIP_JOBS=4) exited with status ${rc}")
endif()

if(NOT parallel STREQUAL sequential)
  set(dump_a "${CMAKE_CURRENT_BINARY_DIR}/jobs_invariance_j1.txt")
  set(dump_b "${CMAKE_CURRENT_BINARY_DIR}/jobs_invariance_j4.txt")
  file(WRITE "${dump_a}" "${sequential}")
  file(WRITE "${dump_b}" "${parallel}")
  message(FATAL_ERROR
      "${BENCH} output changes with QIP_JOBS=4 — the parallel runner "
      "perturbed the results.\nQIP_JOBS=1: ${dump_a}\nQIP_JOBS=4: ${dump_b}")
endif()
