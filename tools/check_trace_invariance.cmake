# Byte-compares a figure bench's stdout with tracing off and on.  Invoked by
# ctest (see tools/CMakeLists.txt) as
#
#   cmake -DBENCH=<exe> -DTRACE_FILE=<tmp path> -P check_trace_invariance.cmake
#
# The observability contract (docs/OBSERVABILITY.md): the TraceRecorder draws
# no randomness and schedules nothing, so enabling it via QIP_TRACE_FILE must
# leave every protocol outcome — and therefore every figure — byte-identical.
# QIP_ROUNDS=1 keeps the double run cheap; any divergence at one round would
# only compound at more.
if(NOT DEFINED BENCH OR NOT DEFINED TRACE_FILE)
  message(FATAL_ERROR
      "check_trace_invariance.cmake needs -DBENCH=... and -DTRACE_FILE=...")
endif()

set(ENV{QIP_ROUNDS} 1)
# Optional -DQUORUM=<backend>: run the whole comparison under a non-default
# quorum backend (the slices arm of the fig12 gate).
if(DEFINED QUORUM)
  set(ENV{QIP_QUORUM} "${QUORUM}")
endif()

set(ENV{QIP_TRACE_FILE} "")
execute_process(
  COMMAND "${BENCH}"
  OUTPUT_VARIABLE untraced
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} (untraced) exited with status ${rc}")
endif()

set(ENV{QIP_TRACE_FILE} "${TRACE_FILE}")
execute_process(
  COMMAND "${BENCH}"
  OUTPUT_VARIABLE traced
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} (traced) exited with status ${rc}")
endif()

# The run must actually have recorded something, or the comparison is vacuous.
if(NOT EXISTS "${TRACE_FILE}")
  message(FATAL_ERROR
      "QIP_TRACE_FILE was set but ${BENCH} wrote no trace to ${TRACE_FILE}")
endif()
file(REMOVE "${TRACE_FILE}")

if(NOT traced STREQUAL untraced)
  set(dump_a "${CMAKE_CURRENT_BINARY_DIR}/trace_invariance_untraced.txt")
  set(dump_b "${CMAKE_CURRENT_BINARY_DIR}/trace_invariance_traced.txt")
  file(WRITE "${dump_a}" "${untraced}")
  file(WRITE "${dump_b}" "${traced}")
  message(FATAL_ERROR
      "${BENCH} output changes when tracing is enabled — the recorder "
      "perturbed the run.\nuntraced: ${dump_a}\ntraced:   ${dump_b}")
endif()
