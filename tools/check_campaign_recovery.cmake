# The campaign failure-recovery gate (docs/CAMPAIGN.md).
# Invoked by ctest (see tools/CMakeLists.txt) as
#
#   cmake -DCAMPAIGN=<qip-campaign exe> -DWORK_DIR=<scratch dir> \
#         -P check_campaign_recovery.cmake
#
# Pins the graceful-degradation half of ROADMAP item 5: injected worker
# crashes and hangs are retried with backoff and surfaced in the journal,
# and a cell that exhausts its retry budget is *marked*, never fatal — the
# campaign still completes and reports every other cell.
if(NOT DEFINED CAMPAIGN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
      "check_campaign_recovery.cmake needs -DCAMPAIGN=... and -DWORK_DIR=...")
endif()

set(grid --protocols qip --nodes 6 --seeds 2 --duration 1 --jobs 2 --quiet)

# --- part 1: crash + hang both recover within the retry budget -------------
file(REMOVE_RECURSE "${WORK_DIR}/recovers")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          QIP_CAMPAIGN_INJECT=crash:0@0,hang:1@0
          QIP_CAMPAIGN_DEADLINE_MS=2000
          QIP_CAMPAIGN_BACKOFF_MS=10
          "${CAMPAIGN}" ${grid} --retries 2 --out "${WORK_DIR}/recovers"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE report
  ERROR_VARIABLE stderr
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "campaign with one crash and one hang injected did not recover "
      "(exit ${rc}):\n${stderr}")
endif()
if(report MATCHES "FAILED")
  message(FATAL_ERROR
      "recovered campaign still reports FAILED cells:\n${report}")
endif()
file(READ "${WORK_DIR}/recovers/journal.txt" journal)
if(NOT journal MATCHES "fail 0 0 crash \\(injected\\)")
  message(FATAL_ERROR
      "journal lacks the injected-crash failure record:\n${journal}")
endif()
if(NOT journal MATCHES "fail 1 0 deadline")
  message(FATAL_ERROR
      "journal lacks the deadline record for the hung worker — the "
      "watchdog never fired:\n${journal}")
endif()
if(NOT journal MATCHES "done 0 1 " OR NOT journal MATCHES "done 1 1 ")
  message(FATAL_ERROR
      "journal lacks the attempt-1 recoveries:\n${journal}")
endif()

# --- part 2: exhaustion is marked, not fatal -------------------------------
file(REMOVE_RECURSE "${WORK_DIR}/exhausts")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
          QIP_CAMPAIGN_INJECT=crash:0@0,crash:0@1
          QIP_CAMPAIGN_BACKOFF_MS=10
          "${CAMPAIGN}" ${grid} --retries 1 --out "${WORK_DIR}/exhausts"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE report
  ERROR_VARIABLE stderr
)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
      "campaign with an unrecoverable cell should exit 1 (marked, not "
      "fatal), got ${rc}:\n${stderr}")
endif()
if(NOT report MATCHES "exhausted cells")
  message(FATAL_ERROR
      "report does not surface the exhausted cell:\n${report}")
endif()
if(NOT report MATCHES "done")
  message(FATAL_ERROR
      "the healthy cell did not complete — exhaustion took the campaign "
      "down with it:\n${report}")
endif()
if(NOT EXISTS "${WORK_DIR}/exhausts/BENCH_campaign.json")
  message(FATAL_ERROR "no BENCH_campaign.json after graceful degradation")
endif()
file(READ "${WORK_DIR}/exhausts/journal.txt" journal)
if(NOT journal MATCHES "exhausted 0 2")
  message(FATAL_ERROR
      "journal lacks the exhausted record for cell 0:\n${journal}")
endif()
message(STATUS
    "campaign recovery: crash retried, hang deadline-killed and retried, "
    "exhaustion marked without aborting — OK")
