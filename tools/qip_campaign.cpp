// qip-campaign — fault-tolerant parameter-grid campaign runner.
//
//   qip-campaign [--protocols a,b,...] [--nodes N,N,...] [--ranges M,M,...]
//                [--speed M/S] [--duration SECS] [--churn N] [--abrupt R]
//                [--seeds R] [--base-seed S]
//                [--out DIR] [--resume] [--jobs N] [--retries N]
//                [--deadline-ms N] [--backoff-ms N] [--quiet]
//
// Expands the (protocol × nodes × range × seed) grid into independent cells
// and fans them across worker processes, journaling every state change to
// DIR/journal.txt so a killed campaign picks up with --resume, re-running
// only incomplete cells.  Writes DIR/report.txt, DIR/BENCH_campaign.json and
// one result artifact per cell under DIR/cells/; failed attempts leave
// cell_<idx>.attempt<k>.log post-mortems there.  The report is a pure
// function of the cell results, so an interrupted-then-resumed campaign
// reproduces it byte for byte (tools/check_resume_invariance.cmake).
//
// Environment: QIP_CAMPAIGN_JOBS, QIP_CAMPAIGN_RETRIES,
// QIP_CAMPAIGN_DEADLINE_MS, QIP_CAMPAIGN_BACKOFF_MS overlay the defaults
// (flags beat env); QIP_CAMPAIGN_INJECT injects deterministic faults (test
// hook; see campaign/inject.hpp).  All parse strictly: malformed → exit 2.
//
// Exit status: 0 every cell done; 1 some cells exhausted their retry budget
// (the report marks them); 2 usage or setup error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "harness/env.hpp"

using namespace qip;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--protocols qip,manetconf,...] [--nodes N,N,...]\n"
      "          [--ranges M,M,...] [--speed M/S] [--duration SECS]\n"
      "          [--churn N] [--abrupt RATIO] [--seeds R] [--base-seed S]\n"
      "          [--out DIR] [--resume] [--jobs N] [--retries N]\n"
      "          [--deadline-ms N] [--backoff-ms N] [--quiet]\n",
      argv0);
  std::exit(2);
}

std::vector<std::string> split_list(const char* what, const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (item.empty()) {
      std::fprintf(stderr, "%s: empty list element in '%s'\n", what,
                   text.c_str());
      std::exit(2);
    }
    out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

double parse_double(const char* what, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty()) {
    std::fprintf(stderr, "%s: '%s' is not a number\n", what, text.c_str());
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignSpec spec;
  CampaignOptions options = campaign_options_from_env();
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--protocols") {
      spec.protocols = split_list("--protocols", value());
    } else if (arg == "--nodes") {
      spec.nodes.clear();
      for (const std::string& n : split_list("--nodes", value())) {
        spec.nodes.push_back(parse_positive_u32("--nodes", n.c_str()));
      }
    } else if (arg == "--ranges") {
      spec.ranges.clear();
      for (const std::string& r : split_list("--ranges", value())) {
        spec.ranges.push_back(parse_double("--ranges", r));
      }
    } else if (arg == "--speed") {
      spec.speed = parse_double("--speed", value());
    } else if (arg == "--duration") {
      spec.duration = parse_double("--duration", value());
    } else if (arg == "--churn") {
      spec.churn = parse_u32("--churn", value());
    } else if (arg == "--abrupt") {
      spec.abrupt = parse_double("--abrupt", value());
    } else if (arg == "--seeds") {
      spec.seeds = parse_positive_u32("--seeds", value());
    } else if (arg == "--base-seed") {
      spec.base_seed = parse_u64("--base-seed", value());
    } else if (arg == "--out") {
      options.out_dir = value();
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--jobs") {
      options.jobs = parse_positive_u32("--jobs", value());
    } else if (arg == "--retries") {
      options.retries = parse_u32("--retries", value());
    } else if (arg == "--deadline-ms") {
      options.deadline_ms = parse_u32("--deadline-ms", value());
    } else if (arg == "--backoff-ms") {
      options.backoff_ms = parse_u32("--backoff-ms", value());
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }

  std::string err;
  if (!spec.validate(&err)) {
    std::fprintf(stderr, "qip-campaign: %s\n", err.c_str());
    return 2;
  }
  if (!quiet) {
    std::fprintf(stderr,
                 "qip-campaign: %zu cells, %u jobs, %u retries, %u ms "
                 "deadline%s → %s\n",
                 spec.cell_count(), options.jobs, options.retries,
                 options.deadline_ms, options.resume ? " (resume)" : "",
                 options.out_dir.c_str());
  }

  CampaignRunner runner(spec, options, inject_plan_from_env());
  CampaignOutcome outcome;
  if (!runner.run(&outcome, &err)) {
    std::fprintf(stderr, "qip-campaign: %s\n", err.c_str());
    return 2;
  }
  if (!write_campaign_artifacts(spec, outcome, options.out_dir, &err)) {
    std::fprintf(stderr, "qip-campaign: %s\n", err.c_str());
    return 2;
  }
  const std::string report = render_campaign_report(spec, outcome);
  std::fputs(report.c_str(), stdout);
  if (!quiet) {
    std::fprintf(stderr, "qip-campaign: wrote %s/report.txt and "
                 "%s/BENCH_campaign.json\n",
                 options.out_dir.c_str(), options.out_dir.c_str());
  }
  return outcome.complete() ? 0 : 1;
}
