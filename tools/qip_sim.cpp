// qip-sim — command-line scenario runner for every protocol in the library.
//
//   qip-sim [--protocol qip|manetconf|buddy|ctree|dad|weakdad|pdad|boleng]
//           [--nodes N] [--range M] [--speed M/S] [--seed S]
//           [--duration SECS] [--churn N] [--abrupt RATIO]
//           [--pool N] [--csv FILE] [--trace FILE] [--quiet]
//           [--rounds R] [--jobs N] [--quorum BACKEND]
//
// Joins N nodes sequentially, lets them roam for the duration, applies the
// requested churn (departures + replacement arrivals), and prints a summary
// plus (optionally) a per-node CSV of configuration records.  With
// --rounds R > 1 the whole scenario replicates R times with per-round seeds
// and the summary reports per-round and mean results; --jobs N (or
// QIP_JOBS) fans the rounds across worker threads — deterministically, so
// the report is byte-identical for every jobs value.  With --trace
// the whole run is recorded as a structured trace (.json loads in
// chrome://tracing / Perfetto; any other extension gets JSONL) — inspect it
// with `qip-trace summary <file>`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "baselines/boleng.hpp"
#include "baselines/buddy.hpp"
#include "baselines/ctree.hpp"
#include "baselines/dad.hpp"
#include "baselines/manetconf.hpp"
#include "baselines/pdad.hpp"
#include "baselines/weak_dad.hpp"
#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/env.hpp"
#include "harness/parallel.hpp"
#include "harness/seed.hpp"
#include "harness/world.hpp"
#include "sim/sim_context.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_recorder.hpp"
#include "obs/trace_session.hpp"
#include "util/csv.hpp"

using namespace qip;

namespace {

struct Options {
  std::string protocol = "qip";
  std::uint32_t nodes = 100;
  double range = 150.0;
  double speed = 20.0;
  std::uint64_t seed = 1;
  double duration = 30.0;
  std::uint32_t churn = 0;
  double abrupt = 0.2;
  std::uint64_t pool = 1024;
  std::string csv_path;
  bool quiet = false;
  std::uint32_t rounds = 1;
  std::uint32_t jobs = 1;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--protocol qip|manetconf|buddy|ctree|dad|weakdad|pdad|"
      "boleng]\n"
      "          [--nodes N] [--range M] [--speed M/S] [--seed S]\n"
      "          [--duration SECS] [--churn N] [--abrupt RATIO]\n"
      "          [--pool N] [--csv FILE] [--trace FILE] [--quiet]\n"
      "          [--rounds R] [--jobs N]\n"
      "          [--quorum majority|dynamic_linear|slices]\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  // Seed override order: --seed beats QIP_SEED beats the default.  The
  // banner (or --quiet runs' CSV consumers) sees the effective value.
  opt.seed = resolve_seed(opt.seed, argc, argv, /*announce=*/false);
  opt.jobs = jobs_from_env(1);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--protocol") {
      opt.protocol = value();
    } else if (arg == "--nodes") {
      opt.nodes = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--range") {
      opt.range = std::strtod(value(), nullptr);
    } else if (arg == "--speed") {
      opt.speed = std::strtod(value(), nullptr);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--duration") {
      opt.duration = std::strtod(value(), nullptr);
    } else if (arg == "--churn") {
      opt.churn = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--abrupt") {
      opt.abrupt = std::strtod(value(), nullptr);
    } else if (arg == "--pool") {
      opt.pool = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--csv") {
      opt.csv_path = value();
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--rounds") {
      opt.rounds = parse_positive_u32("--rounds", value());
    } else if (arg == "--jobs") {
      opt.jobs = parse_positive_u32("--jobs", value());
    } else if (arg == "--quorum") {
      // Routed through QIP_QUORUM so every internally-built QipParams sees
      // it (only the qip protocol consults it; baselines have no quorums).
      const char* name = value();
      if (!parse_quorum_backend(name)) {
        std::fprintf(stderr,
                     "--quorum %s is not a quorum backend (expected "
                     "\"majority\", \"dynamic_linear\" or \"slices\")\n",
                     name);
        std::exit(2);
      }
      setenv("QIP_QUORUM", name, /*overwrite=*/1);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (opt.nodes == 0 || opt.range <= 0 || opt.pool < 4) usage(argv[0]);
  (void)quorum_backend_from_env();  // fail fast on a malformed QIP_QUORUM
  return opt;
}

std::unique_ptr<AutoconfProtocol> make_protocol(const Options& opt,
                                                World& world) {
  if (opt.protocol == "qip") {
    QipParams p;
    p.pool_size = opt.pool;
    auto proto = std::make_unique<QipEngine>(world.transport(), world.rng(), p);
    proto->start_hello();
    return proto;
  }
  if (opt.protocol == "manetconf") {
    ManetConfParams p;
    p.pool_size = opt.pool;
    return std::make_unique<ManetConf>(world.transport(), world.rng(), p);
  }
  if (opt.protocol == "buddy") {
    BuddyParams p;
    p.pool_size = opt.pool;
    auto proto =
        std::make_unique<BuddyProtocol>(world.transport(), world.rng(), p);
    proto->start_sync();
    return proto;
  }
  if (opt.protocol == "ctree") {
    CTreeParams p;
    p.pool_size = opt.pool;
    auto proto =
        std::make_unique<CTreeProtocol>(world.transport(), world.rng(), p);
    proto->start_updates();
    return proto;
  }
  if (opt.protocol == "dad") {
    DadParams p;
    p.pool_size = opt.pool;
    return std::make_unique<DadProtocol>(world.transport(), world.rng(), p);
  }
  if (opt.protocol == "weakdad") {
    WeakDadParams p;
    p.pool_size = opt.pool;
    auto proto =
        std::make_unique<WeakDadProtocol>(world.transport(), world.rng(), p);
    proto->start_updates();
    return proto;
  }
  if (opt.protocol == "pdad") {
    PdadParams p;
    p.pool_size = opt.pool;
    auto proto =
        std::make_unique<PdadProtocol>(world.transport(), world.rng(), p);
    proto->start_routing();
    return proto;
  }
  if (opt.protocol == "boleng") {
    auto proto =
        std::make_unique<BolengProtocol>(world.transport(), world.rng());
    proto->start_beacons();
    return proto;
  }
  std::fprintf(stderr, "unknown protocol: %s\n", opt.protocol.c_str());
  std::exit(2);
}

}  // namespace

namespace {

/// One replication of the scenario on `ctx`, summarized.
struct RoundSummary {
  double configured = 0.0;
  double latency = 0.0;
  std::uint32_t joins = 0;
  std::uint64_t protocol_hops = 0;
};

RoundSummary run_round(const Options& opt, std::uint64_t seed,
                       SimContext& ctx) {
  WorldParams wp;
  wp.transmission_range = opt.range;
  wp.speed = opt.speed;
  World world(wp, seed, ctx);
  auto proto = make_protocol(opt, world);
  Driver driver(world, *proto);
  driver.join(opt.nodes);
  world.run_for(2.0);
  if (opt.churn > 0) {
    for (std::uint32_t i = 0; i < opt.churn && !driver.members().empty();
         ++i) {
      const NodeId victim =
          driver.members()[world.rng().index(driver.members().size())];
      if (world.rng().chance(opt.abrupt)) {
        driver.depart_abrupt(victim);
      } else {
        driver.depart_graceful(victim);
      }
      driver.join_one();
    }
  }
  world.run_for(opt.duration);
  return RoundSummary{driver.configured_fraction(),
                      driver.mean_config_latency(), driver.joined_count(),
                      world.stats().protocol_hops()};
}

/// Replicated mode (--rounds R > 1): per-round seeds from the same
/// derivation the figure suite uses, rounds fanned across --jobs workers,
/// merged in round order — so the report never depends on the jobs value.
int run_replicated(const Options& opt, obs::TraceSession& trace) {
  if (!opt.csv_path.empty()) {
    std::fprintf(stderr, "--csv records a single run; drop --rounds\n");
    return 2;
  }
  if (!opt.quiet) {
    std::printf("qip-sim: %s replication, %u nodes, tr=%.0fm, %.0f m/s, "
                "seed %llu, %u rounds\n",
                opt.protocol.c_str(), opt.nodes, opt.range, opt.speed,
                static_cast<unsigned long long>(opt.seed), opt.rounds);
  }
  std::printf("%-6s %-12s %-14s %s\n", "round", "configured%", "latency_hops",
              "protocol_hops");
  double cfg = 0.0, lat = 0.0;
  std::uint64_t hops = 0;
  run_cells<RoundSummary>(
      process_context(), opt.jobs, opt.rounds,
      [&](std::size_t r, SimContext& ctx) {
        return run_round(opt, derive_cell_seed(opt.seed, 0, r), ctx);
      },
      [&](std::size_t r, RoundSummary&& s) {
        std::printf("%-6zu %-12.1f %-14.2f %llu\n", r, 100.0 * s.configured,
                    s.latency, static_cast<unsigned long long>(s.protocol_hops));
        cfg += s.configured;
        lat += s.latency;
        hops += s.protocol_hops;
      });
  std::printf("mean   %-12.1f %-14.2f %.1f\n", 100.0 * cfg / opt.rounds,
              lat / opt.rounds,
              static_cast<double>(hops) / opt.rounds);
  if (trace.active()) {
    const std::string path = trace.path();
    trace.dump();
    if (!opt.quiet) {
      std::printf("wrote trace to %s (inspect with: qip-trace summary %s)\n",
                  path.c_str(), path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::TraceSession trace(obs::extract_trace_arg(argc, argv));
  const Options opt = parse(argc, argv);
  if (opt.rounds > 1) return run_replicated(opt, trace);

  WorldParams wp;
  wp.transmission_range = opt.range;
  wp.speed = opt.speed;
  World world(wp, opt.seed);
  auto proto = make_protocol(opt, world);
  Driver driver(world, *proto);

  if (!opt.quiet) {
    std::printf("qip-sim: %s, %u nodes, tr=%.0fm, %.0f m/s, seed %llu\n",
                proto->name().c_str(), opt.nodes, opt.range, opt.speed,
                static_cast<unsigned long long>(opt.seed));
  }
  driver.join(opt.nodes);
  world.run_for(2.0);

  if (opt.churn > 0) {
    for (std::uint32_t i = 0; i < opt.churn && !driver.members().empty();
         ++i) {
      const NodeId victim =
          driver.members()[world.rng().index(driver.members().size())];
      if (world.rng().chance(opt.abrupt)) {
        driver.depart_abrupt(victim);
      } else {
        driver.depart_graceful(victim);
      }
      driver.join_one();
    }
  }
  world.run_for(opt.duration);

  // ---- summary ------------------------------------------------------------
  const auto& stats = world.stats();
  std::printf("configured: %.1f%%  mean latency: %.2f hops  joins: %u\n",
              100.0 * driver.configured_fraction(),
              driver.mean_config_latency(), driver.joined_count());
  std::printf("%s", stats.to_string().c_str());
  std::printf("protocol hops total (hello excluded): %llu\n",
              static_cast<unsigned long long>(stats.protocol_hops()));

  if (!opt.csv_path.empty()) {
    std::ofstream out(opt.csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.csv_path.c_str());
      return 1;
    }
    CsvWriter csv(out);
    csv.write_row({"node", "success", "address", "latency_hops", "attempts",
                   "requested_at", "completed_at"});
    for (NodeId id = 0; id < driver.joined_count(); ++id) {
      const ConfigRecord* rec = proto->config_record(id);
      if (!rec) continue;
      csv.write_row({std::to_string(id), rec->success ? "1" : "0",
                     rec->address.to_string(),
                     std::to_string(rec->latency_hops),
                     std::to_string(rec->attempts),
                     std::to_string(rec->requested_at),
                     std::to_string(rec->completed_at)});
    }
    if (!opt.quiet) {
      std::printf("wrote per-node records to %s\n", opt.csv_path.c_str());
    }
  }

  if (trace.active()) {
    const std::string path = trace.path();
    trace.dump();
    if (!opt.quiet) {
      std::printf("wrote trace to %s (inspect with: qip-trace summary %s)\n",
                  path.c_str(), path.c_str());
    }
  }
  return 0;
}
