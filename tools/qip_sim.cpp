// qip-sim — command-line scenario runner for every protocol in the library.
//
//   qip-sim [--protocol qip|manetconf|buddy|ctree|dad|weakdad|pdad|boleng]
//           [--nodes N] [--range M] [--speed M/S] [--seed S]
//           [--duration SECS] [--churn N] [--abrupt RATIO]
//           [--pool N] [--csv FILE] [--trace FILE] [--quiet]
//
// Joins N nodes sequentially, lets them roam for the duration, applies the
// requested churn (departures + replacement arrivals), and prints a summary
// plus (optionally) a per-node CSV of configuration records.  With --trace
// the whole run is recorded as a structured trace (.json loads in
// chrome://tracing / Perfetto; any other extension gets JSONL) — inspect it
// with `qip-trace summary <file>`.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "baselines/boleng.hpp"
#include "baselines/buddy.hpp"
#include "baselines/ctree.hpp"
#include "baselines/dad.hpp"
#include "baselines/manetconf.hpp"
#include "baselines/pdad.hpp"
#include "baselines/weak_dad.hpp"
#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/seed.hpp"
#include "harness/world.hpp"
#include "obs/trace_io.hpp"
#include "obs/trace_recorder.hpp"
#include "obs/trace_session.hpp"
#include "util/csv.hpp"

using namespace qip;

namespace {

struct Options {
  std::string protocol = "qip";
  std::uint32_t nodes = 100;
  double range = 150.0;
  double speed = 20.0;
  std::uint64_t seed = 1;
  double duration = 30.0;
  std::uint32_t churn = 0;
  double abrupt = 0.2;
  std::uint64_t pool = 1024;
  std::string csv_path;
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--protocol qip|manetconf|buddy|ctree|dad|weakdad|pdad|"
      "boleng]\n"
      "          [--nodes N] [--range M] [--speed M/S] [--seed S]\n"
      "          [--duration SECS] [--churn N] [--abrupt RATIO]\n"
      "          [--pool N] [--csv FILE] [--trace FILE] [--quiet]\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  // Seed override order: --seed beats QIP_SEED beats the default.  The
  // banner (or --quiet runs' CSV consumers) sees the effective value.
  opt.seed = resolve_seed(opt.seed, argc, argv, /*announce=*/false);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--protocol") {
      opt.protocol = value();
    } else if (arg == "--nodes") {
      opt.nodes = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--range") {
      opt.range = std::strtod(value(), nullptr);
    } else if (arg == "--speed") {
      opt.speed = std::strtod(value(), nullptr);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--duration") {
      opt.duration = std::strtod(value(), nullptr);
    } else if (arg == "--churn") {
      opt.churn = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--abrupt") {
      opt.abrupt = std::strtod(value(), nullptr);
    } else if (arg == "--pool") {
      opt.pool = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--csv") {
      opt.csv_path = value();
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (opt.nodes == 0 || opt.range <= 0 || opt.pool < 4) usage(argv[0]);
  return opt;
}

std::unique_ptr<AutoconfProtocol> make_protocol(const Options& opt,
                                                World& world) {
  if (opt.protocol == "qip") {
    QipParams p;
    p.pool_size = opt.pool;
    auto proto = std::make_unique<QipEngine>(world.transport(), world.rng(), p);
    proto->start_hello();
    return proto;
  }
  if (opt.protocol == "manetconf") {
    ManetConfParams p;
    p.pool_size = opt.pool;
    return std::make_unique<ManetConf>(world.transport(), world.rng(), p);
  }
  if (opt.protocol == "buddy") {
    BuddyParams p;
    p.pool_size = opt.pool;
    auto proto =
        std::make_unique<BuddyProtocol>(world.transport(), world.rng(), p);
    proto->start_sync();
    return proto;
  }
  if (opt.protocol == "ctree") {
    CTreeParams p;
    p.pool_size = opt.pool;
    auto proto =
        std::make_unique<CTreeProtocol>(world.transport(), world.rng(), p);
    proto->start_updates();
    return proto;
  }
  if (opt.protocol == "dad") {
    DadParams p;
    p.pool_size = opt.pool;
    return std::make_unique<DadProtocol>(world.transport(), world.rng(), p);
  }
  if (opt.protocol == "weakdad") {
    WeakDadParams p;
    p.pool_size = opt.pool;
    auto proto =
        std::make_unique<WeakDadProtocol>(world.transport(), world.rng(), p);
    proto->start_updates();
    return proto;
  }
  if (opt.protocol == "pdad") {
    PdadParams p;
    p.pool_size = opt.pool;
    auto proto =
        std::make_unique<PdadProtocol>(world.transport(), world.rng(), p);
    proto->start_routing();
    return proto;
  }
  if (opt.protocol == "boleng") {
    auto proto =
        std::make_unique<BolengProtocol>(world.transport(), world.rng());
    proto->start_beacons();
    return proto;
  }
  std::fprintf(stderr, "unknown protocol: %s\n", opt.protocol.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  obs::TraceSession trace(obs::extract_trace_arg(argc, argv));
  const Options opt = parse(argc, argv);

  WorldParams wp;
  wp.transmission_range = opt.range;
  wp.speed = opt.speed;
  World world(wp, opt.seed);
  auto proto = make_protocol(opt, world);
  Driver driver(world, *proto);

  if (!opt.quiet) {
    std::printf("qip-sim: %s, %u nodes, tr=%.0fm, %.0f m/s, seed %llu\n",
                proto->name().c_str(), opt.nodes, opt.range, opt.speed,
                static_cast<unsigned long long>(opt.seed));
  }
  driver.join(opt.nodes);
  world.run_for(2.0);

  if (opt.churn > 0) {
    for (std::uint32_t i = 0; i < opt.churn && !driver.members().empty();
         ++i) {
      const NodeId victim =
          driver.members()[world.rng().index(driver.members().size())];
      if (world.rng().chance(opt.abrupt)) {
        driver.depart_abrupt(victim);
      } else {
        driver.depart_graceful(victim);
      }
      driver.join_one();
    }
  }
  world.run_for(opt.duration);

  // ---- summary ------------------------------------------------------------
  const auto& stats = world.stats();
  std::printf("configured: %.1f%%  mean latency: %.2f hops  joins: %u\n",
              100.0 * driver.configured_fraction(),
              driver.mean_config_latency(), driver.joined_count());
  std::printf("%s", stats.to_string().c_str());
  std::printf("protocol hops total (hello excluded): %llu\n",
              static_cast<unsigned long long>(stats.protocol_hops()));

  if (!opt.csv_path.empty()) {
    std::ofstream out(opt.csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opt.csv_path.c_str());
      return 1;
    }
    CsvWriter csv(out);
    csv.write_row({"node", "success", "address", "latency_hops", "attempts",
                   "requested_at", "completed_at"});
    for (NodeId id = 0; id < driver.joined_count(); ++id) {
      const ConfigRecord* rec = proto->config_record(id);
      if (!rec) continue;
      csv.write_row({std::to_string(id), rec->success ? "1" : "0",
                     rec->address.to_string(),
                     std::to_string(rec->latency_hops),
                     std::to_string(rec->attempts),
                     std::to_string(rec->requested_at),
                     std::to_string(rec->completed_at)});
    }
    if (!opt.quiet) {
      std::printf("wrote per-node records to %s\n", opt.csv_path.c_str());
    }
  }

  if (trace.active()) {
    const std::string path = trace.path();
    trace.dump();
    if (!opt.quiet) {
      std::printf("wrote trace to %s (inspect with: qip-trace summary %s)\n",
                  path.c_str(), path.c_str());
    }
  }
  return 0;
}
