# Byte-compares a figure bench's stdout with QIP_SCHED=heap vs =calendar.
# Invoked by ctest (see tools/CMakeLists.txt) as
#
#   cmake -DBENCH=<exe> -P check_sched_invariance.cmake
#
# The scheduler contract (docs/SIMULATOR.md): both event-queue backends pop
# events in exactly (time, sequence) order, so the backend is pure mechanism
# — swapping it must never show up in any figure.  A divergence here means a
# backend broke the FIFO tie-break or dropped/reordered an event.
# QIP_ROUNDS=1 keeps the double run cheap; any divergence at one round would
# only compound at more.
if(NOT DEFINED BENCH)
  message(FATAL_ERROR "check_sched_invariance.cmake needs -DBENCH=...")
endif()

set(ENV{QIP_ROUNDS} 1)

set(ENV{QIP_SCHED} heap)
execute_process(
  COMMAND "${BENCH}"
  OUTPUT_VARIABLE heap_out
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} (QIP_SCHED=heap) exited with status ${rc}")
endif()

set(ENV{QIP_SCHED} calendar)
execute_process(
  COMMAND "${BENCH}"
  OUTPUT_VARIABLE calendar_out
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "${BENCH} (QIP_SCHED=calendar) exited with status ${rc}")
endif()

if(NOT calendar_out STREQUAL heap_out)
  set(dump_a "${CMAKE_CURRENT_BINARY_DIR}/sched_invariance_heap.txt")
  set(dump_b "${CMAKE_CURRENT_BINARY_DIR}/sched_invariance_calendar.txt")
  file(WRITE "${dump_a}" "${heap_out}")
  file(WRITE "${dump_b}" "${calendar_out}")
  message(FATAL_ERROR
      "${BENCH} output changes with the scheduler backend — an event was "
      "reordered.\nheap:     ${dump_a}\ncalendar: ${dump_b}")
endif()
