// qip-trace — inspect and convert structured traces written by the
// simulator (QIP_TRACE_FILE, qip-sim --trace, the examples).
//
//   qip-trace summary <file> [--no-wall]   per-protocol message mix, span
//                                          latency percentiles, drop and
//                                          retransmission breakdown
//   qip-trace to-chrome <in> <out.json>    rewrite as Chrome trace_event
//                                          JSON (chrome://tracing, Perfetto)
//   qip-trace to-jsonl <in> <out>          rewrite as one event per line
//
// Both converters accept either format on input (autodetected), so a trace
// can round-trip JSONL -> Chrome -> JSONL.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/trace_io.hpp"

using namespace qip;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s summary <file> [--no-wall]\n"
               "       %s to-chrome <in> <out>\n"
               "       %s to-jsonl <in> <out>\n",
               argv0, argv0, argv0);
  std::exit(2);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  // Trim trailing zeros (and a bare trailing dot) for compact output.
  std::string s(buf);
  const auto dot = s.find('.');
  if (dot != std::string::npos) {
    auto last = s.find_last_not_of('0');
    if (last == dot) --last;
    s.erase(last + 1);
  }
  return s;
}

std::string event_json(const obs::ParsedEvent& e) {
  std::string out = "{\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
                    json_escape(e.cat) + "\",\"ph\":\"";
  out += e.ph;
  out += "\",\"ts\":" + format_number(e.ts);
  if (e.ph == 'X') out += ",\"dur\":" + format_number(e.dur);
  out += ",\"pid\":" + std::to_string(e.pid) +
         ",\"tid\":" + std::to_string(e.tid);
  if (e.ph == 'b' || e.ph == 'e') {
    out += ",\"id\":\"" + std::to_string(e.id) + "\"";
  }
  if (e.ph == 'i') out += ",\"s\":\"t\"";
  if (!e.num_args.empty() || !e.str_args.empty()) {
    out += ",\"args\":{";
    bool first = true;
    for (const auto& [k, v] : e.num_args) {
      if (!first) out += ',';
      first = false;
      out += "\"" + json_escape(k) + "\":" + format_number(v);
    }
    for (const auto& [k, v] : e.str_args) {
      if (!first) out += ',';
      first = false;
      out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::optional<std::vector<obs::ParsedEvent>> load(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "qip-trace: cannot read %s\n", path);
    return std::nullopt;
  }
  std::string error;
  auto events = obs::read_trace(in, &error);
  if (!events) {
    std::fprintf(stderr, "qip-trace: %s: %s\n", path, error.c_str());
  }
  return events;
}

int convert(const char* in_path, const char* out_path, bool chrome) {
  const auto events = load(in_path);
  if (!events) return 1;
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "qip-trace: cannot write %s\n", out_path);
    return 1;
  }
  if (chrome) {
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":"
           "{\"name\":\"sim-time\"}},\n";
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":"
           "{\"name\":\"wall-clock\"}}";
    for (const auto& e : *events) out << ",\n" << event_json(e);
    out << "\n]}\n";
  } else {
    for (const auto& e : *events) out << event_json(e) << "\n";
  }
  std::printf("qip-trace: wrote %zu events to %s\n", events->size(), out_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "summary") {
    bool wall = true;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--no-wall") == 0) wall = false;
      else usage(argv[0]);
    }
    const auto events = load(argv[2]);
    if (!events) return 1;
    const obs::TraceSummary s = obs::summarize(*events);
    std::fputs(obs::render_summary(s, wall).c_str(), stdout);
    return 0;
  }
  if (cmd == "to-chrome" || cmd == "to-jsonl") {
    if (argc != 4) usage(argv[0]);
    return convert(argv[2], argv[3], cmd == "to-chrome");
  }
  usage(argv[0]);
}
