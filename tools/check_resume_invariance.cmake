# The campaign resume-invariance gate (docs/CAMPAIGN.md).
# Invoked by ctest (see tools/CMakeLists.txt) as
#
#   cmake -DCAMPAIGN=<qip-campaign exe> -DWORK_DIR=<scratch dir> \
#         -P check_resume_invariance.cmake
#
# Acceptance criterion from ROADMAP item 5: a campaign that is SIGKILLed
# mid-grid and resumed with --resume must produce a consolidated report
# byte-identical to an uninterrupted run.  The kill is deterministic —
# QIP_CAMPAIGN_INJECT=die-after:2 makes the campaign parent raise SIGKILL
# right after journaling its second `done` record — so the gate needs no
# background processes or racy timers.
if(NOT DEFINED CAMPAIGN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
      "check_resume_invariance.cmake needs -DCAMPAIGN=... and -DWORK_DIR=...")
endif()

set(grid
    --protocols qip,dad --nodes 6 --seeds 2 --duration 1 --jobs 2 --quiet)

file(REMOVE_RECURSE "${WORK_DIR}/uninterrupted" "${WORK_DIR}/interrupted")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Reference: the 4-cell grid end to end, no faults.
execute_process(
  COMMAND "${CAMPAIGN}" ${grid} --out "${WORK_DIR}/uninterrupted"
  RESULT_VARIABLE rc
  ERROR_VARIABLE stderr
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "uninterrupted campaign exited with ${rc}:\n${stderr}")
endif()

# Interrupted run: the parent SIGKILLs itself after the second done record.
# It therefore must NOT exit cleanly.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env QIP_CAMPAIGN_INJECT=die-after:2
          "${CAMPAIGN}" ${grid} --out "${WORK_DIR}/interrupted"
  RESULT_VARIABLE rc
)
if(rc EQUAL 0)
  message(FATAL_ERROR
      "die-after:2 campaign exited 0 — the injected mid-grid kill never "
      "fired, so this gate is not testing resume")
endif()
if(NOT EXISTS "${WORK_DIR}/interrupted/journal.txt")
  message(FATAL_ERROR "killed campaign left no journal to resume from")
endif()

# Resume: only the incomplete cells re-run, then the report is rebuilt.
execute_process(
  COMMAND "${CAMPAIGN}" ${grid} --out "${WORK_DIR}/interrupted" --resume
  RESULT_VARIABLE rc
  ERROR_VARIABLE stderr
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--resume exited with ${rc}:\n${stderr}")
endif()

foreach(artifact report.txt BENCH_campaign.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/uninterrupted/${artifact}"
            "${WORK_DIR}/interrupted/${artifact}"
    RESULT_VARIABLE same
  )
  if(NOT same EQUAL 0)
    message(FATAL_ERROR
        "${artifact} differs between the uninterrupted and the "
        "SIGKILLed+resumed campaign — resume is not invariant.\n"
        "  ${WORK_DIR}/uninterrupted/${artifact}\n"
        "  ${WORK_DIR}/interrupted/${artifact}")
  endif()
endforeach()
message(STATUS
    "resume invariance: report.txt and BENCH_campaign.json byte-identical "
    "after SIGKILL at done=2 + --resume — OK")
