# Validates a committed bench-baseline JSON file: it must parse, and it must
# carry the keys downstream tooling reads.  Invoked by ctest (see
# tools/CMakeLists.txt) as
#
#   cmake -DJSON_FILE=<path> -DKIND=adversary|micro -P check_bench_json.cmake
#
# The baselines are snapshots committed at the repo root so result drift is
# reviewable in diffs:
#   * BENCH_adversary.json — the ablation_adversary cell grid; regenerate with
#     QIP_BENCH_JSON=BENCH_adversary.json QIP_ROUNDS=2 bench/ablation_adversary
#   * BENCH_micro.json — a google-benchmark run; regenerate with
#     bench/micro_quorum --benchmark_out=BENCH_micro.json
#                        --benchmark_out_format=json
if(NOT DEFINED JSON_FILE OR NOT DEFINED KIND)
  message(FATAL_ERROR
      "check_bench_json.cmake needs -DJSON_FILE=... and -DKIND=...")
endif()
if(NOT EXISTS "${JSON_FILE}")
  message(FATAL_ERROR "baseline ${JSON_FILE} is missing — regenerate it "
      "(see the header of this script)")
endif()

file(READ "${JSON_FILE}" doc)

# string(JSON ... ERROR_VARIABLE) reports parse problems without aborting, so
# every failure below names the file and the missing piece.
macro(require_key out_var member)
  string(JSON ${out_var} ERROR_VARIABLE err GET "${doc}" ${member})
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing or unreadable key "
        "'${member}': ${err}")
  endif()
endmacro()

if(KIND STREQUAL "adversary")
  require_key(bench "bench")
  if(NOT bench STREQUAL "ablation_adversary")
    message(FATAL_ERROR "${JSON_FILE}: bench = '${bench}', expected "
        "'ablation_adversary'")
  endif()
  require_key(population "population")
  require_key(rounds "rounds")
  string(JSON n_cells ERROR_VARIABLE err LENGTH "${doc}" "cells")
  if(err OR n_cells EQUAL 0)
    message(FATAL_ERROR "${JSON_FILE}: 'cells' is missing or empty: ${err}")
  endif()
  # Every cell must carry the full measurement schema.
  math(EXPR last "${n_cells} - 1")
  foreach(i RANGE ${last})
    foreach(key attack attacker_fraction hardened violations configured_pct
                latency_hops protocol_hops quarantines attack_actions)
      string(JSON v ERROR_VARIABLE err GET "${doc}" "cells" ${i} "${key}")
      if(err)
        message(FATAL_ERROR "${JSON_FILE}: cells[${i}] lacks '${key}': ${err}")
      endif()
    endforeach()
  endforeach()
  message(STATUS "${JSON_FILE}: ${n_cells} cells, population ${population}, "
      "${rounds} rounds — OK")
elseif(KIND STREQUAL "micro")
  # google-benchmark's schema: a context block plus a benchmarks array whose
  # entries each carry a name and timings.
  string(JSON ctx ERROR_VARIABLE err GET "${doc}" "context")
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing 'context': ${err}")
  endif()
  string(JSON n_benchmarks ERROR_VARIABLE err LENGTH "${doc}" "benchmarks")
  if(err OR n_benchmarks EQUAL 0)
    message(FATAL_ERROR
        "${JSON_FILE}: 'benchmarks' is missing or empty: ${err}")
  endif()
  math(EXPR last "${n_benchmarks} - 1")
  foreach(i RANGE ${last})
    foreach(key name real_time cpu_time time_unit)
      string(JSON v ERROR_VARIABLE err GET "${doc}" "benchmarks" ${i} "${key}")
      if(err)
        message(FATAL_ERROR
            "${JSON_FILE}: benchmarks[${i}] lacks '${key}': ${err}")
      endif()
    endforeach()
  endforeach()
  message(STATUS "${JSON_FILE}: ${n_benchmarks} benchmarks — OK")
else()
  message(FATAL_ERROR "unknown KIND '${KIND}' (expected adversary or micro)")
endif()
