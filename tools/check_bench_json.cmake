# Validates a committed bench-baseline JSON file: it must parse, and it must
# carry the keys downstream tooling reads.  Invoked by ctest (see
# tools/CMakeLists.txt) as
#
#   cmake -DJSON_FILE=<path> -DKIND=adversary|micro|event_queue|quorum|campaign \
#         -P check_bench_json.cmake
#
# KIND=event_queue layers the scheduler acceptance gate on top of the micro
# schema: the calendar backend must beat the heap backend by >= 3x on the
# 10^6-pending-event churn case, with zero steady-state allocations on both
# (the bench counts operator new calls inside the timed region).
#
# The baselines are snapshots committed at the repo root so result drift is
# reviewable in diffs:
#   * BENCH_adversary.json — the ablation_adversary cell grid; regenerate with
#     QIP_BENCH_JSON=BENCH_adversary.json QIP_ROUNDS=2 bench/ablation_adversary
#   * BENCH_micro.json — a google-benchmark run; regenerate with
#     bench/micro_quorum --benchmark_out=BENCH_micro.json
#                        --benchmark_out_format=json
#   * BENCH_event_queue.json — regenerate with
#     bench/micro_event_queue --benchmark_out=BENCH_event_queue.json
#                             --benchmark_out_format=json
#   * BENCH_parallel.json — regenerate with
#     QIP_ROUNDS=8 bench/micro_parallel --benchmark_out=BENCH_parallel.json
#                                       --benchmark_out_format=json
#   * BENCH_topology.json — regenerate with
#     bench/micro_topology --benchmark_out=BENCH_topology.json
#                          --benchmark_out_format=json
#   * BENCH_quorum.json — the ablation_quorum_backend checker verdicts and
#     availability grid; regenerate with
#     QIP_BENCH_JSON=BENCH_quorum.json QIP_ROUNDS=2 bench/ablation_quorum_backend
#   * BENCH_obs.json — a google-benchmark run; regenerate with
#     bench/micro_obs --benchmark_out=BENCH_obs.json
#                     --benchmark_out_format=json
#   * BENCH_campaign.json — a qip-campaign reference grid; regenerate with
#     tools/qip-campaign --protocols qip,dad --nodes 6 --seeds 2 --duration 1 \
#         --out /tmp/campaign-baseline --quiet
#     and copy /tmp/campaign-baseline/BENCH_campaign.json to the repo root
#   * BENCH_metro.json — the metropolis "city day" run (docs/SCALE.md);
#     regenerate with
#     QIP_METRO_NODES=100000 QIP_BENCH_JSON=BENCH_metro.json bench/fig_metro
#     Wall-clock and RSS numbers are machine-dependent; the gates below check
#     scale, coverage, and the allocation/topology invariants, not timings.
if(NOT DEFINED JSON_FILE OR NOT DEFINED KIND)
  message(FATAL_ERROR
      "check_bench_json.cmake needs -DJSON_FILE=... and -DKIND=...")
endif()
if(NOT EXISTS "${JSON_FILE}")
  message(FATAL_ERROR "baseline ${JSON_FILE} is missing — regenerate it "
      "(see the header of this script)")
endif()

file(READ "${JSON_FILE}" doc)

# string(JSON ... ERROR_VARIABLE) reports parse problems without aborting, so
# every failure below names the file and the missing piece.
macro(require_key out_var member)
  string(JSON ${out_var} ERROR_VARIABLE err GET "${doc}" ${member})
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing or unreadable key "
        "'${member}': ${err}")
  endif()
endmacro()

if(KIND STREQUAL "adversary")
  require_key(bench "bench")
  if(NOT bench STREQUAL "ablation_adversary")
    message(FATAL_ERROR "${JSON_FILE}: bench = '${bench}', expected "
        "'ablation_adversary'")
  endif()
  require_key(population "population")
  require_key(rounds "rounds")
  string(JSON n_cells ERROR_VARIABLE err LENGTH "${doc}" "cells")
  if(err OR n_cells EQUAL 0)
    message(FATAL_ERROR "${JSON_FILE}: 'cells' is missing or empty: ${err}")
  endif()
  # Every cell must carry the full measurement schema.
  math(EXPR last "${n_cells} - 1")
  foreach(i RANGE ${last})
    foreach(key attack attacker_fraction hardened violations configured_pct
                latency_hops protocol_hops quarantines attack_actions)
      string(JSON v ERROR_VARIABLE err GET "${doc}" "cells" ${i} "${key}")
      if(err)
        message(FATAL_ERROR "${JSON_FILE}: cells[${i}] lacks '${key}': ${err}")
      endif()
    endforeach()
  endforeach()
  message(STATUS "${JSON_FILE}: ${n_cells} cells, population ${population}, "
      "${rounds} rounds — OK")
elseif(KIND STREQUAL "quorum")
  require_key(bench "bench")
  if(NOT bench STREQUAL "ablation_quorum_backend")
    message(FATAL_ERROR "${JSON_FILE}: bench = '${bench}', expected "
        "'ablation_quorum_backend'")
  endif()
  require_key(population "population")
  require_key(rounds "rounds")
  # The checker verdicts: every entry carries the full report, and every 'ok'
  # must be true except the deliberately broken disjoint-clique config.
  string(JSON n_checker ERROR_VARIABLE err LENGTH "${doc}" "checker")
  if(err OR n_checker EQUAL 0)
    message(FATAL_ERROR "${JSON_FILE}: 'checker' is missing or empty: ${err}")
  endif()
  set(saw_refutation FALSE)
  math(EXPR last "${n_checker} - 1")
  foreach(i RANGE ${last})
    foreach(key backend mode universe views shrinks pairs ok)
      string(JSON v ERROR_VARIABLE err GET "${doc}" "checker" ${i} "${key}")
      if(err)
        message(FATAL_ERROR "${JSON_FILE}: checker[${i}] lacks '${key}': "
            "${err}")
      endif()
    endforeach()
    string(JSON backend GET "${doc}" "checker" ${i} "backend")
    string(JSON ok GET "${doc}" "checker" ${i} "ok")
    if(backend STREQUAL "slices(cliques)")
      if(ok)
        message(FATAL_ERROR "${JSON_FILE}: checker[${i}] (${backend}) was "
            "not refuted — the checker lost its teeth")
      endif()
      set(saw_refutation TRUE)
    elseif(NOT ok)
      message(FATAL_ERROR "${JSON_FILE}: checker[${i}] (${backend}) reports "
          "an intersection violation")
    endif()
  endforeach()
  if(NOT saw_refutation)
    message(FATAL_ERROR "${JSON_FILE}: no 'slices(cliques)' refutation row — "
        "the negative control is missing")
  endif()
  # The availability grid.
  string(JSON n_cells ERROR_VARIABLE err LENGTH "${doc}" "cells")
  if(err OR n_cells EQUAL 0)
    message(FATAL_ERROR "${JSON_FILE}: 'cells' is missing or empty: ${err}")
  endif()
  math(EXPR last "${n_cells} - 1")
  foreach(i RANGE ${last})
    foreach(key plan backend rounds configured_pct latency_hops protocol_hops)
      string(JSON v ERROR_VARIABLE err GET "${doc}" "cells" ${i} "${key}")
      if(err)
        message(FATAL_ERROR "${JSON_FILE}: cells[${i}] lacks '${key}': ${err}")
      endif()
    endforeach()
  endforeach()
  message(STATUS "${JSON_FILE}: ${n_checker} checker rows (cliques refuted), "
      "${n_cells} cells — OK")
elseif(KIND STREQUAL "micro" OR KIND STREQUAL "event_queue")
  # google-benchmark's schema: a context block plus a benchmarks array whose
  # entries each carry a name and timings.
  string(JSON ctx ERROR_VARIABLE err GET "${doc}" "context")
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing 'context': ${err}")
  endif()
  string(JSON n_benchmarks ERROR_VARIABLE err LENGTH "${doc}" "benchmarks")
  if(err OR n_benchmarks EQUAL 0)
    message(FATAL_ERROR
        "${JSON_FILE}: 'benchmarks' is missing or empty: ${err}")
  endif()
  math(EXPR last "${n_benchmarks} - 1")
  foreach(i RANGE ${last})
    foreach(key name real_time cpu_time time_unit)
      string(JSON v ERROR_VARIABLE err GET "${doc}" "benchmarks" ${i} "${key}")
      if(err)
        message(FATAL_ERROR
            "${JSON_FILE}: benchmarks[${i}] lacks '${key}': ${err}")
      endif()
    endforeach()
  endforeach()

  if(KIND STREQUAL "event_queue")
    # Scheduler acceptance gate.  Find the two 10^6-pending churn cases and
    # every churn case's allocation counter.
    set(heap_time "")
    set(calendar_time "")
    foreach(i RANGE ${last})
      string(JSON name GET "${doc}" "benchmarks" ${i} "name")
      if(name MATCHES "^BM_Churn_")
        string(JSON allocs ERROR_VARIABLE err GET "${doc}" "benchmarks" ${i}
            "allocs_per_op")
        if(err)
          message(FATAL_ERROR
              "${JSON_FILE}: ${name} lacks the 'allocs_per_op' counter: "
              "${err}")
        endif()
        if(allocs GREATER 0)
          message(FATAL_ERROR "${JSON_FILE}: ${name} allocated "
              "(allocs_per_op = ${allocs}) — steady-state schedule/pop must "
              "be allocation-free")
        endif()
        # Prefix match: a fixed-iteration registration suffixes the name
        # with "/iterations:N".
        if(name MATCHES "^BM_Churn_heap/1000000")
          string(JSON heap_time GET "${doc}" "benchmarks" ${i} "real_time")
        elseif(name MATCHES "^BM_Churn_calendar/1000000")
          string(JSON calendar_time GET "${doc}" "benchmarks" ${i}
              "real_time")
        endif()
      endif()
    endforeach()
    if(heap_time STREQUAL "" OR calendar_time STREQUAL "")
      message(FATAL_ERROR "${JSON_FILE}: missing BM_Churn_heap/1000000 or "
          "BM_Churn_calendar/1000000")
    endif()
    # math(EXPR) is integer-only, so the 3x gate runs on the integer part of
    # each per-iteration time.  The churn benches batch thousands of ops per
    # iteration, so times are >= 10^5 ns and truncation is noise.
    string(REGEX REPLACE "\\..*$" "" heap_int "${heap_time}")
    string(REGEX REPLACE "\\..*$" "" cal_int "${calendar_time}")
    if(NOT heap_int MATCHES "^[0-9]+$" OR NOT cal_int MATCHES "^[0-9]+$"
       OR cal_int EQUAL 0)
      message(FATAL_ERROR "${JSON_FILE}: churn times unparsable "
          "(heap=${heap_time}, calendar=${calendar_time})")
    endif()
    math(EXPR scaled "3 * ${cal_int}")
    if(heap_int LESS ${scaled})
      message(FATAL_ERROR "${JSON_FILE}: heap/calendar churn ratio "
          "${heap_time}/${calendar_time} is below the 3x acceptance gate")
    endif()
    message(STATUS "${JSON_FILE}: churn 10^6 heap=${heap_time} "
        "calendar=${calendar_time} (>=3x, zero allocs) — OK")
  endif()
  message(STATUS "${JSON_FILE}: ${n_benchmarks} benchmarks — OK")
elseif(KIND STREQUAL "campaign")
  require_key(bench "bench")
  if(NOT bench STREQUAL "qip_campaign")
    message(FATAL_ERROR "${JSON_FILE}: bench = '${bench}', expected "
        "'qip_campaign'")
  endif()
  require_key(grid "grid")
  require_key(n_total "total")
  require_key(n_done "done")
  require_key(n_exhausted "exhausted")
  # The committed baseline must be a clean grid: a reference with exhausted
  # cells would bake a broken run into the repo.
  if(NOT n_exhausted EQUAL 0)
    message(FATAL_ERROR "${JSON_FILE}: baseline has ${n_exhausted} exhausted "
        "cells — regenerate from a campaign that completed")
  endif()
  string(JSON n_cells ERROR_VARIABLE err LENGTH "${doc}" "cells")
  if(err OR n_cells EQUAL 0)
    message(FATAL_ERROR "${JSON_FILE}: 'cells' is missing or empty: ${err}")
  endif()
  if(NOT n_cells EQUAL n_total)
    message(FATAL_ERROR "${JSON_FILE}: total=${n_total} but cells has "
        "${n_cells} entries")
  endif()
  math(EXPR last "${n_cells} - 1")
  foreach(i RANGE ${last})
    foreach(key index protocol nodes range seed status attempts configured
                latency_hops protocol_hops joins digest)
      string(JSON v ERROR_VARIABLE err GET "${doc}" "cells" ${i} "${key}")
      if(err)
        message(FATAL_ERROR "${JSON_FILE}: cells[${i}] lacks '${key}': ${err}")
      endif()
    endforeach()
    string(JSON cell_status GET "${doc}" "cells" ${i} "status")
    if(NOT cell_status STREQUAL "done")
      message(FATAL_ERROR "${JSON_FILE}: cells[${i}] status "
          "'${cell_status}' — the baseline must contain only completed "
          "cells")
    endif()
  endforeach()
  message(STATUS "${JSON_FILE}: ${n_cells}/${n_total} cells done — OK")
elseif(KIND STREQUAL "metro")
  require_key(bench "bench")
  if(NOT bench STREQUAL "fig_metro")
    message(FATAL_ERROR "${JSON_FILE}: bench = '${bench}', expected "
        "'fig_metro'")
  endif()
  require_key(nodes "nodes")
  if(nodes LESS 100000)
    message(FATAL_ERROR "${JSON_FILE}: nodes = ${nodes} — the committed "
        "baseline must be the metropolis run (>= 100000)")
  endif()
  # The four city-day phases, in order, each with the full schema.  Timings
  # and RSS are machine-dependent and not gated; scale and coverage are.
  string(JSON n_phases ERROR_VARIABLE err LENGTH "${doc}" "phases")
  if(err OR NOT n_phases EQUAL 4)
    message(FATAL_ERROR "${JSON_FILE}: expected 4 phases, got "
        "'${n_phases}': ${err}")
  endif()
  set(expected_phases flash_crowd drift departure plateau)
  math(EXPR last "${n_phases} - 1")
  foreach(i RANGE ${last})
    foreach(key name wall_s peak_rss_mib events allocs allocs_per_event
                configured)
      string(JSON v ERROR_VARIABLE err GET "${doc}" "phases" ${i} "${key}")
      if(err)
        message(FATAL_ERROR "${JSON_FILE}: phases[${i}] lacks '${key}': "
            "${err}")
      endif()
    endforeach()
    string(JSON pname GET "${doc}" "phases" ${i} "name")
    list(GET expected_phases ${i} expected)
    if(NOT pname STREQUAL expected)
      message(FATAL_ERROR "${JSON_FILE}: phases[${i}] is '${pname}', "
          "expected '${expected}'")
    endif()
  endforeach()
  # The flash crowd must actually form a network: >= 95% configured.
  string(JSON crowd_configured GET "${doc}" "phases" 0 "configured")
  math(EXPR threshold "${nodes} * 95 / 100")
  if(crowd_configured LESS ${threshold})
    message(FATAL_ERROR "${JSON_FILE}: only ${crowd_configured}/${nodes} "
        "configured after the flash crowd (< 95%)")
  endif()
  # The quiescent plateau must stay within the allocation budget.  The hard
  # zero-alloc gates live on the scheduler/transport micro counters
  # (BENCH_event_queue.json); here the whole engine — maintenance scans and
  # all — must average below 20 operator-new calls per simulator event.
  string(JSON plateau_allocs GET "${doc}" "phases" 3 "allocs_per_event")
  string(REGEX REPLACE "\\..*$" "" plateau_int "${plateau_allocs}")
  if(NOT plateau_int MATCHES "^[0-9]+$")
    message(FATAL_ERROR "${JSON_FILE}: plateau allocs_per_event "
        "'${plateau_allocs}' unparsable")
  endif()
  if(plateau_int GREATER_EQUAL 20)
    message(FATAL_ERROR "${JSON_FILE}: plateau allocs_per_event = "
        "${plateau_allocs} — the steady state busted the allocation budget")
  endif()
  # The incremental connectivity path must carry the run: mobility and churn
  # patch the CSR in place instead of rebuilding it.
  string(JSON patches ERROR_VARIABLE err GET "${doc}" "topo"
      "incremental_patches")
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing topo.incremental_patches: "
        "${err}")
  endif()
  string(JSON rebuilds GET "${doc}" "topo" "full_rebuilds")
  math(EXPR rebuild_budget "${rebuilds} * 100")
  if(patches EQUAL 0 OR patches LESS ${rebuild_budget})
    message(FATAL_ERROR "${JSON_FILE}: ${patches} incremental patches vs "
        "${rebuilds} full rebuilds — the incremental path is not carrying "
        "the run")
  endif()
  # The capture arena must be recycling blocks, not carving forever.
  string(JSON reused ERROR_VARIABLE err GET "${doc}" "arena" "blocks_reused")
  if(err)
    message(FATAL_ERROR "${JSON_FILE}: missing arena.blocks_reused: ${err}")
  endif()
  if(reused EQUAL 0)
    message(FATAL_ERROR "${JSON_FILE}: arena reused no blocks — the "
        "free-list recycling is dead")
  endif()
  message(STATUS "${JSON_FILE}: n=${nodes}, ${crowd_configured} configured, "
      "plateau allocs/event ${plateau_allocs}, ${patches} patches / "
      "${rebuilds} rebuilds — OK")
else()
  message(FATAL_ERROR
      "unknown KIND '${KIND}' (expected adversary, micro, event_queue, "
      "quorum, campaign or metro)")
endif()
