#include "mobility/waypoint.hpp"

#include "util/assert.hpp"

namespace qip {

MobilityManager::MobilityManager(Simulator& sim, Topology& topology, Rng& rng,
                                 SimTime tick)
    : sim_(sim), topology_(topology), rng_(rng), tick_(tick) {
  QIP_ASSERT(tick > 0.0);
}

void MobilityManager::add(NodeId id, double speed) {
  QIP_ASSERT_MSG(topology_.has_node(id), "node " << id << " not in topology");
  QIP_ASSERT(speed >= 0.0);
  State s;
  s.speed = speed;
  s.target = topology_.area().sample(rng_);
  nodes_[id] = s;
}

void MobilityManager::remove(NodeId id) { nodes_.erase(id); }

void MobilityManager::step() {
  for (auto& [id, state] : nodes_) {
    if (state.speed <= 0.0) continue;
    const Point pos = topology_.position(id);
    const double dist = state.speed * tick_;
    Point next = advance(pos, state.target, dist);
    if (next == state.target) {
      // Destination reached within this tick: pick the next waypoint.  The
      // leftover travel distance within the tick is forfeited, matching the
      // common implementation of the model.
      state.target = topology_.area().sample(rng_);
    }
    topology_.move_node(id, topology_.area().clamp(next));
  }
  if (on_tick_) on_tick_();
}

void MobilityManager::schedule_next() {
  pending_ = sim_.after(tick_, [this] {
    if (!running_) return;
    step();
    schedule_next();
  });
}

void MobilityManager::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void MobilityManager::stop() {
  running_ = false;
  pending_.cancel();
}

}  // namespace qip
