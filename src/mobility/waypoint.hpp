// Random-waypoint mobility (§VI-A).
//
// Each managed node moves in a straight line toward a uniformly random
// destination at its configured speed; on arrival it immediately picks a new
// destination (the paper uses no pause time and a single speed, 20 m/s,
// varied only for Figure 11).  The manager advances all nodes on a fixed
// tick through the simulator and updates the shared topology, then invokes
// an observer hook so protocols can react to movement (location updates).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "net/node_id.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace qip {

class MobilityManager {
 public:
  /// `tick` is the movement timestep in simulated seconds.
  MobilityManager(Simulator& sim, Topology& topology, Rng& rng,
                  SimTime tick = 1.0);
  ~MobilityManager() { stop(); }
  MobilityManager(const MobilityManager&) = delete;
  MobilityManager& operator=(const MobilityManager&) = delete;

  /// Starts moving `id` (already present in the topology) at `speed` m/s.
  void add(NodeId id, double speed);

  /// Stops managing `id` (e.g. the node departed).  Safe if not managed.
  void remove(NodeId id);

  bool manages(NodeId id) const { return nodes_.count(id) != 0; }
  std::size_t managed_count() const { return nodes_.size(); }

  /// Observer invoked after every tick once all nodes have moved.
  void set_on_tick(std::function<void()> fn) { on_tick_ = std::move(fn); }

  /// Begins periodic ticking (idempotent).
  void start();
  /// Cancels the pending tick.
  void stop();

  /// Advances one tick worth of movement immediately (used by tests).
  void step();

 private:
  struct State {
    Point target;
    double speed = 0.0;
  };

  void schedule_next();

  Simulator& sim_;
  Topology& topology_;
  Rng& rng_;
  SimTime tick_;
  // std::map: ticks iterate in id order, keeping runs deterministic.
  std::map<NodeId, State> nodes_;
  std::function<void()> on_tick_;
  EventHandle pending_;
  bool running_ = false;
};

}  // namespace qip
