// Trace file reading and summarization — the analysis half of the
// observability layer, shared by the `qip-trace` CLI and the examples.
//
// read_trace() accepts both formats the recorder writes (JSONL: one Chrome
// trace_event object per line; Chrome JSON: {"traceEvents":[...]}) via a
// small self-contained JSON parser, so a trace can round-trip through either
// representation and external traces with the same shape load too.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace_recorder.hpp"

namespace qip::obs {

/// One event as read back from a trace file (strings owned, args split by
/// type).  `ts`/`dur` are microseconds, as in the file.
struct ParsedEvent {
  std::string name;
  std::string cat;
  char ph = 'i';  ///< 'i' instant, 'b'/'e' span, 'C' counter, 'X' wall
  double ts = 0.0;
  double dur = 0.0;
  std::uint64_t id = 0;
  std::uint32_t tid = 0;
  std::uint32_t pid = 1;
  std::map<std::string, double> num_args;
  std::map<std::string, std::string> str_args;
};

/// Parses a trace stream (JSONL or Chrome JSON, autodetected).  Metadata
/// events (ph "M") are skipped.  Returns nullopt on malformed input and
/// stores a message in `error` when given.
std::optional<std::vector<ParsedEvent>> read_trace(std::istream& in,
                                                   std::string* error = nullptr);

/// In-memory bridge: converts live recorder entries into the parsed form,
/// so summaries compute identically from a file or a running recorder.
std::vector<ParsedEvent> to_parsed(const std::vector<Event>& events);

// ---------------------------------------------------------------------------

/// Aggregates the per-run reporting the paper's evaluation axes ask for:
/// message mix, span latency percentiles, drop/retransmission breakdown.
struct TraceSummary {
  struct MessageRow {
    std::string name;  ///< event name (e.g. "unicast", "QUORUM_CLT")
    std::string cat;
    std::uint64_t count = 0;
    std::uint64_t hops = 0;  ///< summed "hops" args where present
  };
  struct SpanRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t unmatched = 0;  ///< begins with no end (ring wrap, abort)
    // Sim-time durations in milliseconds.
    double p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
  };
  struct WallRow {
    std::string name;
    std::uint64_t count = 0;
    // Wall-clock microseconds.
    double total = 0.0, mean = 0.0, max = 0.0;
  };

  std::uint64_t total_events = 0;
  double sim_span_s = 0.0;  ///< last sim timestamp seen
  std::vector<MessageRow> messages;  ///< sorted by count, descending
  std::vector<SpanRow> spans;        ///< sorted by name
  std::vector<WallRow> wall;         ///< sorted by total, descending
  std::map<std::string, std::uint64_t> drops;  ///< reason -> count
  std::uint64_t retransmissions = 0;
  std::uint64_t acks = 0;
  std::uint64_t give_ups = 0;
  std::uint64_t duplicates = 0;
};

TraceSummary summarize(const std::vector<ParsedEvent>& events);

/// Renders the summary as the aligned tables `qip-trace summary` prints.
/// `include_wall` drops the (nondeterministic) wall-clock section so
/// deterministic outputs (protocol_faceoff) can embed the summary.
std::string render_summary(const TraceSummary& s, bool include_wall = true);

}  // namespace qip::obs
