// Wall-clock profiling sections.
//
// A ProfileScope brackets a hot path (topology-cache rebuild, flood fan-out)
// with real-clock timestamps: when tracing is enabled the section lands on
// the trace's wall-clock track (pid 2) as a Chrome "X" event AND feeds a
// `profile_us{site=...}` histogram in the global MetricsRegistry.  When
// tracing is disabled the constructor is a single branch — no clock reads,
// no lookups — so instrumented hot paths cost nothing in production runs
// (bench/micro_obs.cpp keeps this honest).
//
// Wall-clock sections never influence the simulation (they only *read* the
// real clock), so traced runs stay byte-identical to untraced ones.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"

namespace qip::obs {

class ProfileScope {
 public:
  /// `site` must be a string literal (it names the trace event and the
  /// histogram label).  The recorder and registry are resolved once, here,
  /// and held for the scope's whole lifetime — a scope can never straddle
  /// two contexts, even if the active context changes while it is open.
  ProfileScope(const char* site, TraceRecorder& recorder,
               MetricsRegistry& metrics)
      : recorder_(recorder), metrics_(metrics) {
    if (!recorder_.enabled()) return;
    site_ = site;
    start_us_ = recorder_.wall_now_us();
  }

  /// Process-context convenience for call sites without a SimContext.
  explicit ProfileScope(const char* site)
      : ProfileScope(site, process_recorder(), process_metrics()) {}

  ~ProfileScope() {
    if (site_ == nullptr) return;
    const double dur = recorder_.wall_now_us() - start_us_;
    recorder_.complete_wall(site_, "profile", start_us_, dur);
    // Interned by the site literal's address: no label vector, key string,
    // bounds vector, or map walk after the first observation per site.
    metrics_.profile_histogram(site_).observe(dur);
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  TraceRecorder& recorder_;
  MetricsRegistry& metrics_;
  const char* site_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace qip::obs
