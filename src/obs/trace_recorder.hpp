// Structured event tracing for the simulator.
//
// The TraceRecorder captures what a run *did* — spans (quorum transactions,
// reclamation), instant events (every transmission, drop, retransmission,
// vote), counters (event-queue depth) and wall-clock profile sections — into
// a fixed-capacity ring buffer of POD entries.  Design constraints:
//
//   * Branch-cheap when disabled: every call site guards with
//     `obs::tracing_on()`, a single inline bool read, so a run that never
//     enables tracing pays one predictable branch per potential event and
//     allocates nothing.
//   * Allocation-free when enabled: an Event is a fixed-size struct whose
//     names, categories and string args are string *literals* (the recorder
//     stores the pointers, never copies).  The ring is allocated once, on
//     enable.
//   * Deterministic: recording draws no randomness and never perturbs the
//     simulation; enabling tracing must leave every protocol outcome
//     byte-identical (tools/check_trace_invariance.cmake enforces this for
//     all figure benches).
//
// Two clocks share one trace: sim-time events carry the virtual clock
// (exported on pid 1), wall-clock profile sections carry real microseconds
// since enable() (exported on pid 2), so a Perfetto view shows protocol
// behavior and hardware cost side by side.
//
// Levers: QIP_TRACE_FILE=<path> enables tracing at startup and dumps at
// process exit (extension .json → Chrome trace_event, else JSONL);
// QIP_TRACE_BUF=<events> sizes the ring.  See docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace qip::obs {

/// One typed key/value attached to an event.  Keys and string values MUST
/// be string literals (or otherwise outlive the recorder) — the recorder
/// keeps the pointer.
struct Arg {
  enum class Kind : std::uint8_t { kNone, kInt, kDouble, kStr };

  constexpr Arg() : key(nullptr), kind(Kind::kNone), i(0) {}
  constexpr Arg(const char* k, std::int64_t v)
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr Arg(const char* k, std::uint64_t v)
      : key(k), kind(Kind::kInt), i(static_cast<std::int64_t>(v)) {}
  constexpr Arg(const char* k, std::uint32_t v)
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr Arg(const char* k, std::int32_t v)
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr Arg(const char* k, double v) : key(k), kind(Kind::kDouble), d(v) {}
  constexpr Arg(const char* k, const char* v)
      : key(k), kind(Kind::kStr), s(v) {}

  const char* key;
  Kind kind;
  union {
    std::int64_t i;
    double d;
    const char* s;
  };
};

enum class Phase : std::uint8_t {
  kInstant,   ///< point event at sim time
  kBegin,     ///< async span open (id pairs it with its end)
  kEnd,       ///< async span close
  kCounter,   ///< sampled value (args[0] holds it)
  kComplete,  ///< wall-clock section: ts/dur are microseconds since enable
};

/// Fixed-size trace entry.  ~200 bytes; the ring's memory is capacity × this.
struct Event {
  static constexpr std::size_t kMaxArgs = 6;

  const char* name = nullptr;  ///< string literal
  const char* cat = nullptr;   ///< string literal
  double ts = 0.0;             ///< sim seconds (kComplete: wall µs)
  double dur = 0.0;            ///< kComplete only: wall µs
  std::uint64_t id = 0;        ///< span id (kBegin/kEnd), else 0
  std::uint32_t tid = 0;       ///< track: usually the acting NodeId
  Phase phase = Phase::kInstant;
  std::uint8_t argc = 0;
  Arg args[kMaxArgs];
};

class TraceRecorder {
 public:
  /// A fresh, disabled recorder with the default capacity.  Each SimContext
  /// owns one; the process-wide recorder (process_recorder()) additionally
  /// honors QIP_TRACE_FILE / QIP_TRACE_BUF.
  TraceRecorder() = default;

  bool enabled() const { return enabled_; }
  /// Allocates the ring (if needed) and starts recording.  The wall-clock
  /// origin for profile sections is (re)anchored here.
  void enable();
  void disable() { enabled_ = false; }
  /// Drops all recorded events; keeps the ring allocation and enabled state.
  void clear();

  /// Ring capacity in events (default 1<<18; QIP_TRACE_BUF overrides).
  /// Takes effect on the next enable()/clear().
  void set_capacity(std::size_t events);
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  /// Events overwritten after the ring wrapped (oldest-first eviction).
  std::uint64_t overwritten() const { return overwritten_; }

  // -- Recording (call only behind tracing_on()) ----------------------------
  std::uint64_t begin_span(double t, const char* name, const char* cat,
                           std::uint32_t tid,
                           std::initializer_list<Arg> args = {});
  void end_span(double t, std::uint64_t id, const char* name, const char* cat,
                std::uint32_t tid, std::initializer_list<Arg> args = {});
  void instant(double t, const char* name, const char* cat, std::uint32_t tid,
               std::initializer_list<Arg> args = {});
  void counter(double t, const char* name, const char* cat, double value);
  /// Wall-clock section; `start_us`/`dur_us` relative to wall_now_us().
  void complete_wall(const char* name, const char* cat, double start_us,
                     double dur_us);

  /// Microseconds of real time since enable().
  double wall_now_us() const;

  /// Recorded events, oldest first (unwraps the ring).
  std::vector<Event> events() const;

  /// Number of span ids this recorder has handed out.
  std::uint64_t spans_allocated() const { return next_span_ - 1; }

  /// Appends every event of `other` (oldest first) to this ring, remapping
  /// span ids past the ids already allocated here so spans from different
  /// recorders never collide.  Merge order is the caller's responsibility;
  /// the ParallelRunner absorbs per-cell recorders in (x, round) order, which
  /// makes the merged stream — ids included — identical to a sequential run.
  void merge_from(const TraceRecorder& other);

  // -- Export ---------------------------------------------------------------
  /// One Chrome trace_event JSON object per line.
  void dump_jsonl(std::ostream& os) const;
  /// Chrome/Perfetto-loadable JSON ({"traceEvents":[...]}).
  void dump_chrome(std::ostream& os) const;
  /// Dispatch by extension: ".json" → Chrome, anything else → JSONL.
  /// Returns false when the file cannot be written.
  bool dump_file(const std::string& path) const;

 private:
  Event& push();
  void init_from_env();

  bool enabled_ = false;
  std::size_t capacity_ = 1u << 18;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  ///< next write slot once the ring is full
  std::size_t size_ = 0;
  std::uint64_t overwritten_ = 0;
  std::uint64_t next_span_ = 1;
  std::chrono::steady_clock::time_point wall_origin_;
  std::string env_dump_path_;  ///< QIP_TRACE_FILE target, dumped at exit

  friend void dump_env_trace();
  friend TraceRecorder& process_recorder();
};

/// The process-wide recorder: what tools and examples trace into by default,
/// and what the default process context aliases.  First access reads
/// QIP_TRACE_FILE / QIP_TRACE_BUF and registers the exit dump.  This
/// accessor is the compatibility shim for code that predates per-run
/// contexts; context-aware code reads its SimContext's recorder instead.
TraceRecorder& process_recorder();

/// The one branch a process-context instrumentation site pays when tracing
/// is off.  Sites with a SimContext in reach use ctx.tracing_on() instead.
inline bool tracing_on() { return process_recorder().enabled(); }

}  // namespace qip::obs
