// Labeled metrics registry: counters, gauges and histograms keyed by
// (name, label set), in the style of a Prometheus client.
//
// MessageStats stays the hot-path tally (flat array increments — the
// transport's per-message cost budget allows nothing slower); the registry
// subsumes it at snapshot time via MessageStats::export_to(), which turns
// the per-Traffic counters into `qip_messages_total{traffic=...}` series,
// and adds what MessageStats cannot express: wall-clock profile histograms
// (ProfileScope), quorum-operation latency, event-queue depth.
//
// Handles returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime: series are never removed, reset_values() only zeroes
// them — so instrumented code may cache the reference and skip the name
// lookup.  Naming scheme (docs/OBSERVABILITY.md): snake_case, `_total`
// suffix for monotone counters, base units (seconds, hops, events).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qip::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(double v = 1.0) { value_ += v; }
  /// Snapshot export (MessageStats::export_to): overwrite with the source's
  /// cumulative value.
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-boundary histogram: observations land in the first bucket whose
/// upper bound is >= the value (last bucket is +inf).  Quantiles are
/// estimated by linear interpolation within the winning bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  void reset();

  /// Folds another histogram's observations into this one.  The bounds must
  /// match (series merged across SimContexts are created from the same
  /// instrumentation site, so they always do).
  void merge_from(const Histogram& other);

 private:
  std::vector<double> bounds_;           ///< ascending upper bounds
  std::vector<std::uint64_t> counts_;    ///< bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential bucket bounds for latencies in seconds: 1 µs … ~131 s.
std::vector<double> latency_buckets_s();
/// Exponential bucket bounds for wall-clock durations in microseconds.
std::vector<double> duration_buckets_us();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  /// `bounds` is consulted only when the series is created.
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       std::vector<double> bounds = latency_buckets_s());

  /// Zeroes every series, keeping all handles valid (scenario reuse:
  /// protocol_faceoff resets between runs).
  void reset_values();

  std::size_t series_count() const { return series_.size(); }

  /// Text exposition, one `name{labels} value` line per series, sorted by
  /// key; histograms expand to _count/_sum/_p50/_p99/_max lines.
  std::string render_text() const;

  /// Folds every series of `other` into this registry: counters and gauges
  /// add their values, histograms merge bucket counts.  Series missing here
  /// are created.  The ParallelRunner absorbs per-cell registries through
  /// this in (x, round) order, so the merged totals are deterministic.
  void merge_from(const MetricsRegistry& other);

 private:
  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& at(std::string_view name, const Labels& labels);

  std::map<std::string, Series> series_;
};

/// The process-wide registry: what tools and examples export by default, and
/// what the default process context aliases.  This accessor is the
/// compatibility shim for code that predates per-run contexts.
MetricsRegistry& process_metrics();

}  // namespace qip::obs
