// Labeled metrics registry: counters, gauges and histograms keyed by
// (name, label set), in the style of a Prometheus client.
//
// MessageStats stays the hot-path tally (flat array increments — the
// transport's per-message cost budget allows nothing slower); the registry
// subsumes it at snapshot time via MessageStats::export_to(), which turns
// the per-Traffic counters into `qip_messages_total{traffic=...}` series,
// and adds what MessageStats cannot express: wall-clock profile histograms
// (ProfileScope), quorum-operation latency, event-queue depth.
//
// Handles returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime: series are never removed, reset_values() only zeroes
// them — so instrumented code may cache the reference and skip the name
// lookup.  Naming scheme (docs/OBSERVABILITY.md): snake_case, `_total`
// suffix for monotone counters, base units (seconds, hops, events).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/flat_hash.hpp"

namespace qip::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(double v = 1.0) { value_ += v; }
  /// Snapshot export (MessageStats::export_to): overwrite with the source's
  /// cumulative value.
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-boundary histogram: observations land in the first bucket whose
/// upper bound is >= the value (last bucket is +inf).  Quantiles are
/// estimated by linear interpolation within the winning bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Opt-in streaming percentile mode: attaches a reservoir (see
  /// StreamingReservoir below) that quantile() prefers over bucket
  /// interpolation.  Off by default so existing exposition is unchanged.
  void enable_reservoir(std::size_t capacity = 512);
  bool reservoir_enabled() const { return reservoir_ != nullptr; }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  void reset();

  /// Folds another histogram's observations into this one.  The bounds must
  /// match (series merged across SimContexts are created from the same
  /// instrumentation site, so they always do).
  void merge_from(const Histogram& other);

 private:
  std::vector<double> bounds_;           ///< ascending upper bounds
  std::vector<std::uint64_t> counts_;    ///< bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::unique_ptr<class StreamingReservoir> reservoir_;  ///< null = bucket mode
};

/// Exponential bucket bounds for latencies in seconds: 1 µs … ~131 s.
std::vector<double> latency_buckets_s();
/// Exponential bucket bounds for wall-clock durations in microseconds.
std::vector<double> duration_buckets_us();

/// Fixed-size uniform sample of a stream (Vitter's algorithm R) for
/// percentile estimates that do not depend on bucket boundaries.  Bucketed
/// histograms answer quantiles by interpolating inside the winning bucket —
/// fine at microsecond granularity, coarse for long-tailed metro-scale
/// series where one bucket spans a 2x range.  The reservoir keeps `k`
/// observations chosen uniformly from the whole stream in O(1) per observe
/// and O(k log k) per quantile query (snapshot time only).
///
/// Replacement uses a self-seeded xorshift generator, NOT the simulation
/// RNG: sampling draws must never perturb protocol randomness, and a fixed
/// seed keeps reports reproducible run-to-run.
class StreamingReservoir {
 public:
  explicit StreamingReservoir(std::size_t capacity = 512)
      : capacity_(capacity) {
    sample_.reserve(capacity);
  }

  void observe(double v) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(v);
      return;
    }
    // Keep with probability k/seen: classic algorithm R.
    const std::uint64_t j = next_rand() % seen_;
    if (j < capacity_) sample_[static_cast<std::size_t>(j)] = v;
  }

  /// Quantile over the current sample (exact for streams <= capacity).
  double quantile(double q) const;

  std::uint64_t seen() const { return seen_; }
  std::size_t sample_size() const { return sample_.size(); }

  void reset() {
    sample_.clear();
    seen_ = 0;
    state_ = kSeed;
  }

  /// Folds another reservoir's sample in, re-weighting by streams seen.
  void merge_from(const StreamingReservoir& other);

 private:
  static constexpr std::uint64_t kSeed = 0x9e3779b97f4a7c15ULL;

  std::uint64_t next_rand() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  std::size_t capacity_;
  std::vector<double> sample_;
  std::uint64_t seen_ = 0;
  std::uint64_t state_ = kSeed;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  /// `bounds` is consulted only when the series is created.
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       std::vector<double> bounds = latency_buckets_s());

  /// Interned handle for a `profile_us{site=...}` histogram, keyed by the
  /// site literal's ADDRESS: after the first call per site the hot path is
  /// one flat-hash probe — no label vector, no key string, no std::map walk
  /// (those only happen on the miss, and map_lookups() counts them so
  /// bench/micro_obs can pin the steady state at zero).  Two literals with
  /// equal text but different addresses intern to the same series.
  Histogram& profile_histogram(const char* site);

  /// Slow-path (string-keyed std::map) lookups performed so far.  Interned
  /// accessors only bump this on a cache miss; counter()/gauge()/histogram()
  /// bump it every call.
  std::uint64_t map_lookups() const { return map_lookups_; }

  /// Zeroes every series, keeping all handles valid (scenario reuse:
  /// protocol_faceoff resets between runs).
  void reset_values();

  std::size_t series_count() const { return series_.size(); }

  /// Text exposition, one `name{labels} value` line per series, sorted by
  /// key; histograms expand to _count/_sum/_p50/_p99/_max lines.
  std::string render_text() const;

  /// Folds every series of `other` into this registry: counters and gauges
  /// add their values, histograms merge bucket counts.  Series missing here
  /// are created.  The ParallelRunner absorbs per-cell registries through
  /// this in (x, round) order, so the merged totals are deterministic.
  void merge_from(const MetricsRegistry& other);

 private:
  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& at(std::string_view name, const Labels& labels);

  std::map<std::string, Series> series_;
  /// site-literal address -> interned profile series (see profile_histogram).
  FlatHashMap<std::uintptr_t, Histogram*> profile_cache_;
  std::uint64_t map_lookups_ = 0;
};

/// The process-wide registry: what tools and examples export by default, and
/// what the default process context aliases.  This accessor is the
/// compatibility shim for code that predates per-run contexts.
MetricsRegistry& process_metrics();

}  // namespace qip::obs
