// RAII wrapper that scopes tracing to one run and dumps it to a file —
// the glue between the recorder and the CLIs (`qip-sim --trace out.json`,
// the examples, protocol_faceoff's per-protocol traces).
#pragma once

#include <string>

namespace qip::obs {

class TraceRecorder;

/// Strips a `--trace <file>` pair from argv (if present) and returns the
/// file path, or "" when the flag is absent.  Mutates argc/argv so the
/// caller's own argument parsing never sees the flag.
std::string extract_trace_arg(int& argc, char** argv);

/// While alive (and constructed with a non-empty path): tracing is enabled
/// and the ring is clear.  Destruction dumps the recorded events to the path
/// (.json → Chrome trace_event, else JSONL) and disables tracing again.
/// A default-constructed or empty-path session is inert.
class TraceSession {
 public:
  TraceSession() = default;
  /// Scopes tracing on `recorder` (default: the process recorder, which is
  /// what the CLIs and examples trace into).
  explicit TraceSession(std::string path, TraceRecorder* recorder = nullptr);
  ~TraceSession();

  TraceSession(TraceSession&& other) noexcept;
  TraceSession& operator=(TraceSession&& other) noexcept;
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Dumps immediately (used before printing a summary of the same run);
  /// the destructor then becomes a no-op.
  bool dump();

 private:
  TraceRecorder& recorder() const;

  std::string path_;
  TraceRecorder* recorder_ = nullptr;  ///< null: the process recorder
  bool was_enabled_ = false;  ///< restore state for nested/env-driven tracing
};

}  // namespace qip::obs
