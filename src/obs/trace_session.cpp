#include "obs/trace_session.hpp"

#include <cstring>

#include "obs/trace_recorder.hpp"
#include "util/logging.hpp"

namespace qip::obs {

std::string extract_trace_arg(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      std::string path = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return path;
    }
  }
  return "";
}

TraceRecorder& TraceSession::recorder() const {
  return recorder_ ? *recorder_ : process_recorder();
}

TraceSession::TraceSession(std::string path, TraceRecorder* recorder)
    : path_(std::move(path)), recorder_(recorder) {
  if (path_.empty()) return;
  TraceRecorder& r = this->recorder();
  was_enabled_ = r.enabled();
  r.enable();
  r.clear();
}

bool TraceSession::dump() {
  if (path_.empty()) return true;
  TraceRecorder& r = recorder();
  const bool ok = r.dump_file(path_);
  if (ok) {
    if (r.overwritten() > 0) {
      QIP_INFO << "trace: wrote " << r.size() << " events to " << path_
               << " (ring wrapped, " << r.overwritten() << " oldest dropped)";
    } else {
      QIP_INFO << "trace: wrote " << r.size() << " events to " << path_;
    }
  } else {
    QIP_WARN << "trace: could not write " << path_;
  }
  if (!was_enabled_) r.disable();
  path_.clear();
  return ok;
}

TraceSession::~TraceSession() { dump(); }

TraceSession::TraceSession(TraceSession&& other) noexcept
    : path_(std::move(other.path_)),
      recorder_(other.recorder_),
      was_enabled_(other.was_enabled_) {
  other.path_.clear();
}

TraceSession& TraceSession::operator=(TraceSession&& other) noexcept {
  if (this != &other) {
    dump();
    path_ = std::move(other.path_);
    recorder_ = other.recorder_;
    was_enabled_ = other.was_enabled_;
    other.path_.clear();
  }
  return *this;
}

}  // namespace qip::obs
