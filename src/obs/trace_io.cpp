#include "obs/trace_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "util/table.hpp"

namespace qip::obs {

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough for trace files (objects, arrays,
// strings, numbers, booleans, null).  Self-contained so the tool stack has
// no external dependency.
// ---------------------------------------------------------------------------

namespace {

struct Json {
  enum class Type { kNull, kBool, kNum, kStr, kArr, kObj };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::size_t pos() const { return pos_; }
  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }
  const std::string& error() const { return error_; }

 private:
  std::optional<Json> fail(const char* what) {
    if (error_.empty()) {
      error_ = what;
      error_ += " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    skip_ws();
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("bad \\u escape");
              return std::nullopt;
            }
            const unsigned code = static_cast<unsigned>(
                std::strtoul(std::string(text_.substr(pos_, 4)).c_str(),
                             nullptr, 16));
            pos_ += 4;
            // Trace content is ASCII; encode BMP code points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_string_value() {
    auto s = parse_string();
    if (!s) return std::nullopt;
    Json j;
    j.type = Json::Type::kStr;
    j.str = std::move(*s);
    return j;
  }

  std::optional<Json> parse_number() {
    skip_ws();
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return fail("expected number");
    pos_ += static_cast<std::size_t>(end - start);
    Json j;
    j.type = Json::Type::kNum;
    j.num = v;
    return j;
  }

  std::optional<Json> parse_bool() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      Json j;
      j.type = Json::Type::kBool;
      j.b = true;
      return j;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      Json j;
      j.type = Json::Type::kBool;
      return j;
    }
    return fail("expected bool");
  }

  std::optional<Json> parse_null() {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Json{};
    }
    return fail("expected null");
  }

  std::optional<Json> parse_array() {
    consume('[');
    Json j;
    j.type = Json::Type::kArr;
    if (consume(']')) return j;
    while (true) {
      auto v = parse_value();
      if (!v) return std::nullopt;
      j.arr.push_back(std::move(*v));
      if (consume(']')) return j;
      if (!consume(',')) return fail("expected , or ] in array");
    }
  }

  std::optional<Json> parse_object() {
    consume('{');
    Json j;
    j.type = Json::Type::kObj;
    if (consume('}')) return j;
    while (true) {
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) return fail("expected : in object");
      auto v = parse_value();
      if (!v) return std::nullopt;
      j.obj.emplace_back(std::move(*key), std::move(*v));
      if (consume('}')) return j;
      if (!consume(',')) return fail("expected , or } in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::optional<ParsedEvent> event_from_json(const Json& j) {
  if (j.type != Json::Type::kObj) return std::nullopt;
  ParsedEvent e;
  if (const Json* ph = j.find("ph"); ph && !ph->str.empty()) {
    e.ph = ph->str[0];
  }
  if (e.ph == 'M') return std::nullopt;  // metadata (process names)
  if (const Json* v = j.find("name")) e.name = v->str;
  if (const Json* v = j.find("cat")) e.cat = v->str;
  if (const Json* v = j.find("ts")) e.ts = v->num;
  if (const Json* v = j.find("dur")) e.dur = v->num;
  if (const Json* v = j.find("id")) {
    e.id = v->type == Json::Type::kNum
               ? static_cast<std::uint64_t>(v->num)
               : std::strtoull(v->str.c_str(), nullptr, 10);
  }
  if (const Json* v = j.find("tid")) e.tid = static_cast<std::uint32_t>(v->num);
  if (const Json* v = j.find("pid")) e.pid = static_cast<std::uint32_t>(v->num);
  if (const Json* args = j.find("args"); args && args->type == Json::Type::kObj) {
    for (const auto& [k, v] : args->obj) {
      if (v.type == Json::Type::kNum) {
        e.num_args[k] = v.num;
      } else if (v.type == Json::Type::kStr) {
        e.str_args[k] = v.str;
      }
    }
  }
  return e;
}

}  // namespace

std::optional<std::vector<ParsedEvent>> read_trace(std::istream& in,
                                                   std::string* error) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::vector<ParsedEvent> out;
  // Try the whole stream as one JSON document first (Chrome format).  A
  // JSONL file fails this because a second value follows the first line.
  {
    JsonParser p(text);
    auto doc = p.parse_value();
    if (doc && p.at_end()) {
      const Json* events = doc->find("traceEvents");
      if (doc->type == Json::Type::kObj && events == nullptr) {
        if (error) *error = "JSON object has no traceEvents array";
        return std::nullopt;
      }
      const Json& arr = events ? *events : *doc;
      if (arr.type != Json::Type::kArr) {
        if (error) *error = "traceEvents is not an array";
        return std::nullopt;
      }
      for (const Json& j : arr.arr) {
        if (auto e = event_from_json(j)) out.push_back(std::move(*e));
      }
      return out;
    }
  }

  // JSONL: one object per line (blank lines tolerated).
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    JsonParser p(line);
    auto j = p.parse_value();
    if (!j || !p.at_end()) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": " +
                 (j ? "trailing garbage" : p.error());
      }
      return std::nullopt;
    }
    if (auto e = event_from_json(*j)) out.push_back(std::move(*e));
  }
  return out;
}

std::vector<ParsedEvent> to_parsed(const std::vector<Event>& events) {
  std::vector<ParsedEvent> out;
  out.reserve(events.size());
  for (const Event& e : events) {
    ParsedEvent p;
    p.name = e.name ? e.name : "";
    p.cat = e.cat ? e.cat : "";
    p.id = e.id;
    p.tid = e.tid;
    switch (e.phase) {
      case Phase::kInstant: p.ph = 'i'; break;
      case Phase::kBegin: p.ph = 'b'; break;
      case Phase::kEnd: p.ph = 'e'; break;
      case Phase::kCounter: p.ph = 'C'; break;
      case Phase::kComplete: p.ph = 'X'; break;
    }
    const bool wall = e.phase == Phase::kComplete;
    p.pid = wall ? 2 : 1;
    p.ts = wall ? e.ts : e.ts * 1e6;
    p.dur = e.dur;
    for (std::uint8_t i = 0; i < e.argc; ++i) {
      const Arg& a = e.args[i];
      switch (a.kind) {
        case Arg::Kind::kInt: p.num_args[a.key] = static_cast<double>(a.i); break;
        case Arg::Kind::kDouble: p.num_args[a.key] = a.d; break;
        case Arg::Kind::kStr: p.str_args[a.key] = a.s; break;
        case Arg::Kind::kNone: break;
      }
    }
    out.push_back(std::move(p));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

namespace {

double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

}  // namespace

TraceSummary summarize(const std::vector<ParsedEvent>& events) {
  TraceSummary s;
  s.total_events = events.size();

  struct MixKey {
    std::string name, cat;
    bool operator<(const MixKey& o) const {
      return name != o.name ? name < o.name : cat < o.cat;
    }
  };
  std::map<MixKey, TraceSummary::MessageRow> mix;
  std::unordered_map<std::uint64_t, std::pair<std::string, double>> open_spans;
  std::map<std::string, std::vector<double>> span_durations;  // sim µs
  std::map<std::string, std::uint64_t> span_unmatched;
  std::map<std::string, TraceSummary::WallRow> wall;

  for (const ParsedEvent& e : events) {
    if (e.pid == 1) s.sim_span_s = std::max(s.sim_span_s, e.ts / 1e6);

    if (e.ph == 'i') {
      if (e.cat == "net" || e.cat == "qip" || e.cat == "dad") {
        // Message mix: transport sends carry a traffic label; protocol-level
        // events group by their message name.
        auto t = e.str_args.find("traffic");
        MixKey key{e.name, t != e.str_args.end() ? t->second : e.cat};
        auto& row = mix[key];
        row.name = key.name;
        row.cat = key.cat;
        // Aggregate events (hello beacons) carry a "count" arg covering many
        // messages; ordinary events count as one each.
        auto c = e.num_args.find("count");
        row.count +=
            c != e.num_args.end() ? static_cast<std::uint64_t>(c->second) : 1;
        if (auto h = e.num_args.find("hops"); h != e.num_args.end()) {
          row.hops += static_cast<std::uint64_t>(h->second);
        }
      } else if (e.cat == "net.drop") {
        if (e.name == "dup") {
          ++s.duplicates;
        } else {
          auto r = e.str_args.find("reason");
          ++s.drops[r != e.str_args.end() ? r->second : "?"];
        }
      } else if (e.cat == "rpc") {
        if (e.name == "retransmit") ++s.retransmissions;
        else if (e.name == "ack") ++s.acks;
        else if (e.name == "give_up") ++s.give_ups;
        else if (e.name == "dup_suppressed") ++s.duplicates;
      }
    } else if (e.ph == 'b') {
      // A reopened id (should not happen) counts the lost begin as unmatched.
      auto [it, fresh] = open_spans.try_emplace(e.id, e.name, e.ts);
      if (!fresh) {
        ++span_unmatched[it->second.first];
        it->second = {e.name, e.ts};
      }
    } else if (e.ph == 'e') {
      auto it = open_spans.find(e.id);
      if (it == open_spans.end()) {
        ++span_unmatched[e.name];
      } else {
        span_durations[it->second.first].push_back(e.ts - it->second.second);
        open_spans.erase(it);
      }
    } else if (e.ph == 'X') {
      auto& row = wall[e.name];
      row.name = e.name;
      ++row.count;
      row.total += e.dur;
      row.max = std::max(row.max, e.dur);
    }
  }
  for (const auto& [id, open] : open_spans) ++span_unmatched[open.first];

  for (auto& [key, row] : mix) s.messages.push_back(std::move(row));
  std::sort(s.messages.begin(), s.messages.end(),
            [](const auto& a, const auto& b) {
              return a.count != b.count ? a.count > b.count
                                        : (a.name != b.name ? a.name < b.name
                                                            : a.cat < b.cat);
            });

  std::map<std::string, TraceSummary::SpanRow> spans;
  for (auto& [name, durs] : span_durations) {
    std::sort(durs.begin(), durs.end());
    auto& row = spans[name];
    row.name = name;
    row.count = durs.size();
    row.p50 = exact_quantile(durs, 0.50) / 1e3;
    row.p90 = exact_quantile(durs, 0.90) / 1e3;
    row.p99 = exact_quantile(durs, 0.99) / 1e3;
    row.max = durs.back() / 1e3;
  }
  for (const auto& [name, n] : span_unmatched) {
    auto& row = spans[name];
    row.name = name;
    row.unmatched = n;
  }
  for (auto& [name, row] : spans) s.spans.push_back(std::move(row));

  for (auto& [name, row] : wall) {
    row.mean = row.count ? row.total / static_cast<double>(row.count) : 0.0;
    s.wall.push_back(std::move(row));
  }
  std::sort(s.wall.begin(), s.wall.end(), [](const auto& a, const auto& b) {
    return a.total != b.total ? a.total > b.total : a.name < b.name;
  });
  return s;
}

std::string render_summary(const TraceSummary& s, bool include_wall) {
  std::ostringstream os;
  os << "trace: " << s.total_events << " events over "
     << format_double(s.sim_span_s, 3) << " s of sim time\n";

  if (!s.messages.empty()) {
    os << "\nmessage mix:\n";
    TextTable t({"message", "category", "count", "hops"});
    for (const auto& m : s.messages) {
      t.add_row({m.name, m.cat, std::to_string(m.count),
                 std::to_string(m.hops)});
    }
    os << t.render();
  }

  if (!s.spans.empty()) {
    os << "\nspans (sim-time):\n";
    TextTable t({"span", "count", "p50 ms", "p90 ms", "p99 ms", "max ms",
                 "open"});
    for (const auto& sp : s.spans) {
      t.add_row({sp.name, std::to_string(sp.count), format_double(sp.p50, 2),
                 format_double(sp.p90, 2), format_double(sp.p99, 2),
                 format_double(sp.max, 2), std::to_string(sp.unmatched)});
    }
    os << t.render();
  }

  const bool any_rel = s.retransmissions || s.acks || s.give_ups ||
                       s.duplicates || !s.drops.empty();
  if (any_rel) {
    os << "\ndrops and reliability:\n";
    TextTable t({"event", "count"});
    for (const auto& [reason, n] : s.drops) {
      t.add_row({"drop: " + reason, std::to_string(n)});
    }
    if (s.retransmissions)
      t.add_row({"retransmission", std::to_string(s.retransmissions)});
    if (s.acks) t.add_row({"ack", std::to_string(s.acks)});
    if (s.give_ups) t.add_row({"rpc give-up", std::to_string(s.give_ups)});
    if (s.duplicates)
      t.add_row({"duplicate delivery", std::to_string(s.duplicates)});
    os << t.render();
  }

  if (include_wall && !s.wall.empty()) {
    os << "\nwall-clock profile:\n";
    TextTable t({"site", "count", "total us", "mean us", "max us"});
    for (const auto& w : s.wall) {
      t.add_row({w.name, std::to_string(w.count), format_double(w.total, 1),
                 format_double(w.mean, 2), format_double(w.max, 1)});
    }
    os << t.render();
  }
  return os.str();
}

}  // namespace qip::obs
