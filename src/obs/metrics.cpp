#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace qip::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  QIP_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must ascend");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  if (reservoir_) reservoir_->observe(v);
}

void Histogram::enable_reservoir(std::size_t capacity) {
  if (!reservoir_) reservoir_ = std::make_unique<StreamingReservoir>(capacity);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (reservoir_ && reservoir_->sample_size() > 0) {
    return reservoir_->quantile(q);
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const std::uint64_t next = seen + counts_[b];
    if (static_cast<double>(next) >= target) {
      const double lo = b == 0 ? (bounds_.empty() ? min_ : std::min(min_, bounds_[0]))
                               : bounds_[b - 1];
      const double hi = b < bounds_.size() ? bounds_[b] : max_;
      if (counts_[b] == 1 || hi <= lo) return std::min(hi, max_);
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(counts_[b]);
      return std::min(lo + frac * (hi - lo), max_);
    }
    seen = next;
  }
  return max_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
  if (reservoir_) reservoir_->reset();
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  QIP_ASSERT_MSG(bounds_ == other.bounds_,
                 "merging histograms with different bounds");
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (reservoir_ && other.reservoir_) {
    reservoir_->merge_from(*other.reservoir_);
  }
}

double StreamingReservoir::quantile(double q) const {
  if (sample_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> s = sample_;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(s.size() - 1) + 0.5);
  std::nth_element(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(idx),
                   s.end());
  return s[idx];
}

void StreamingReservoir::merge_from(const StreamingReservoir& other) {
  // Feed the other sample through observe(): each retained value stands for
  // other.seen_/sample_size streams-worth of weight; replaying preserves
  // expected uniformity well enough for report percentiles while keeping
  // the merge deterministic (ParallelRunner merges in fixed order).
  const std::uint64_t seen_before = other.seen_;
  for (double v : other.sample_) observe(v);
  seen_ += seen_before - other.sample_.size();
}

std::vector<double> latency_buckets_s() {
  std::vector<double> b;
  for (double v = 1e-6; v < 200.0; v *= 2.0) b.push_back(v);
  return b;
}

std::vector<double> duration_buckets_us() {
  std::vector<double> b;
  for (double v = 0.25; v < 2e7; v *= 2.0) b.push_back(v);
  return b;
}

MetricsRegistry& process_metrics() {
  static MetricsRegistry registry;
  return registry;
}

namespace {
std::string series_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += '=';
    key += v;
  }
  key += '}';
  return key;
}
}  // namespace

MetricsRegistry::Series& MetricsRegistry::at(std::string_view name,
                                             const Labels& labels) {
  ++map_lookups_;
  return series_[series_key(name, labels)];
}

Histogram& MetricsRegistry::profile_histogram(const char* site) {
  const auto key = reinterpret_cast<std::uintptr_t>(site);
  if (Histogram** cached = profile_cache_.find(key)) return **cached;
  Histogram& h =
      histogram("profile_us", {{"site", site}}, duration_buckets_us());
  profile_cache_.emplace(key, &h);
  return h;
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  Series& s = at(name, labels);
  QIP_ASSERT_MSG(!s.gauge && !s.histogram, "series type mismatch: " << name);
  if (!s.counter) s.counter = std::make_unique<Counter>();
  return *s.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  Series& s = at(name, labels);
  QIP_ASSERT_MSG(!s.counter && !s.histogram, "series type mismatch: " << name);
  if (!s.gauge) s.gauge = std::make_unique<Gauge>();
  return *s.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const Labels& labels,
                                      std::vector<double> bounds) {
  Series& s = at(name, labels);
  QIP_ASSERT_MSG(!s.counter && !s.gauge, "series type mismatch: " << name);
  if (!s.histogram) s.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *s.histogram;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, s] : other.series_) {
    Series& mine = series_[key];
    if (s.counter) {
      QIP_ASSERT_MSG(!mine.gauge && !mine.histogram,
                     "series type mismatch: " << key);
      if (!mine.counter) mine.counter = std::make_unique<Counter>();
      mine.counter->inc(s.counter->value());
    } else if (s.gauge) {
      QIP_ASSERT_MSG(!mine.counter && !mine.histogram,
                     "series type mismatch: " << key);
      if (!mine.gauge) mine.gauge = std::make_unique<Gauge>();
      mine.gauge->add(s.gauge->value());
    } else if (s.histogram) {
      QIP_ASSERT_MSG(!mine.counter && !mine.gauge,
                     "series type mismatch: " << key);
      if (!mine.histogram) {
        mine.histogram = std::make_unique<Histogram>(s.histogram->bounds());
      }
      mine.histogram->merge_from(*s.histogram);
    }
  }
}

void MetricsRegistry::reset_values() {
  for (auto& [key, s] : series_) {
    if (s.counter) s.counter->reset();
    if (s.gauge) s.gauge->reset();
    if (s.histogram) s.histogram->reset();
  }
}

namespace {
std::string format_value(double v) {
  char buf[48];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}
}  // namespace

std::string MetricsRegistry::render_text() const {
  std::ostringstream os;
  for (const auto& [key, s] : series_) {  // std::map: sorted by key
    if (s.counter) {
      os << key << ' ' << format_value(s.counter->value()) << '\n';
    } else if (s.gauge) {
      os << key << ' ' << format_value(s.gauge->value()) << '\n';
    } else if (s.histogram) {
      const Histogram& h = *s.histogram;
      os << key << "_count " << h.count() << '\n';
      os << key << "_sum " << format_value(h.sum()) << '\n';
      if (h.count() > 0) {
        os << key << "_p50 " << format_value(h.quantile(0.5)) << '\n';
        os << key << "_p99 " << format_value(h.quantile(0.99)) << '\n';
        os << key << "_max " << format_value(h.max()) << '\n';
      }
    }
  }
  return os.str();
}

}  // namespace qip::obs
