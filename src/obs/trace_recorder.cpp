#include "obs/trace_recorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

namespace qip::obs {

namespace {

/// Escapes a string into a JSON string literal (no surrounding quotes).
/// Names are C string literals so this is almost always a pass-through.
void json_escape(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void json_number(std::ostream& os, double v) {
  char buf[32];
  // %.3f keeps microsecond timestamps exact to the nanosecond and the
  // output byte-stable across runs of the same simulation.
  std::snprintf(buf, sizeof buf, "%.3f", v);
  os << buf;
}

void write_args(std::ostream& os, const Event& e) {
  os << "\"args\":{";
  for (std::uint8_t i = 0; i < e.argc; ++i) {
    if (i) os << ',';
    const Arg& a = e.args[i];
    os << '"';
    json_escape(os, a.key);
    os << "\":";
    switch (a.kind) {
      case Arg::Kind::kInt: os << a.i; break;
      case Arg::Kind::kDouble: json_number(os, a.d); break;
      case Arg::Kind::kStr:
        os << '"';
        json_escape(os, a.s);
        os << '"';
        break;
      case Arg::Kind::kNone: os << "null"; break;
    }
  }
  os << '}';
}

void write_event(std::ostream& os, const Event& e) {
  os << "{\"name\":\"";
  json_escape(os, e.name);
  os << "\",\"cat\":\"";
  json_escape(os, e.cat);
  os << "\",\"ph\":\"";
  const bool wall = e.phase == Phase::kComplete;
  switch (e.phase) {
    case Phase::kInstant: os << 'i'; break;
    case Phase::kBegin: os << 'b'; break;
    case Phase::kEnd: os << 'e'; break;
    case Phase::kCounter: os << 'C'; break;
    case Phase::kComplete: os << 'X'; break;
  }
  os << "\",\"ts\":";
  // Sim-time events export the virtual clock in microseconds on pid 1;
  // wall-clock sections are already in microseconds and live on pid 2.
  json_number(os, wall ? e.ts : e.ts * 1e6);
  if (wall) {
    os << ",\"dur\":";
    json_number(os, e.dur);
  }
  if (e.phase == Phase::kBegin || e.phase == Phase::kEnd) {
    os << ",\"id\":" << e.id;
  }
  if (e.phase == Phase::kInstant) os << ",\"s\":\"t\"";
  os << ",\"pid\":" << (wall ? 2 : 1) << ",\"tid\":" << e.tid;
  if (e.argc > 0) {
    os << ',';
    write_args(os, e);
  }
  os << '}';
}

}  // namespace

void dump_env_trace() {
  TraceRecorder& r = process_recorder();
  if (!r.env_dump_path_.empty()) r.dump_file(r.env_dump_path_);
}

void TraceRecorder::init_from_env() {
  if (const char* buf = std::getenv("QIP_TRACE_BUF")) {
    const unsigned long long n = std::strtoull(buf, nullptr, 10);
    if (n > 0) capacity_ = static_cast<std::size_t>(n);
  }
  if (const char* path = std::getenv("QIP_TRACE_FILE")) {
    if (*path != '\0') {
      env_dump_path_ = path;
      enable();
    }
  }
}

TraceRecorder& process_recorder() {
  static TraceRecorder recorder;
  // The env-driven exit dump must be registered AFTER the static's
  // construction completes: atexit handlers and static destructors unwind in
  // reverse order, so registering from the constructor (before the
  // destructor itself is registered) would run the dump against an
  // already-destroyed ring.  Env config is deferred here for the same
  // reason — and because only the process recorder honors the env levers;
  // per-context recorders inherit their config from their parent context.
  static const bool env_configured = [] {
    recorder.init_from_env();
    if (!recorder.env_dump_path_.empty()) std::atexit(dump_env_trace);
    return true;
  }();
  (void)env_configured;
  return recorder;
}

void TraceRecorder::enable() {
  if (ring_.size() != capacity_) {
    ring_.assign(capacity_, Event{});
    head_ = 0;
    size_ = 0;
    overwritten_ = 0;
  }
  wall_origin_ = std::chrono::steady_clock::now();
  enabled_ = true;
}

void TraceRecorder::clear() {
  if (ring_.size() != capacity_) ring_.assign(capacity_, Event{});
  head_ = 0;
  size_ = 0;
  overwritten_ = 0;
  wall_origin_ = std::chrono::steady_clock::now();
}

void TraceRecorder::set_capacity(std::size_t events) {
  if (events == 0) events = 1;
  capacity_ = events;
}

Event& TraceRecorder::push() {
  if (size_ < ring_.size()) {
    return ring_[size_++];
  }
  // Ring full: overwrite the oldest entry.
  Event& slot = ring_[head_];
  head_ = (head_ + 1) % ring_.size();
  ++overwritten_;
  return slot;
}

namespace {
void fill_args(Event& e, std::initializer_list<Arg> args) {
  e.argc = 0;
  for (const Arg& a : args) {
    if (e.argc == Event::kMaxArgs) break;
    e.args[e.argc++] = a;
  }
}
}  // namespace

std::uint64_t TraceRecorder::begin_span(double t, const char* name,
                                        const char* cat, std::uint32_t tid,
                                        std::initializer_list<Arg> args) {
  const std::uint64_t id = next_span_++;
  Event& e = push();
  e = Event{};
  e.name = name;
  e.cat = cat;
  e.ts = t;
  e.id = id;
  e.tid = tid;
  e.phase = Phase::kBegin;
  fill_args(e, args);
  return id;
}

void TraceRecorder::end_span(double t, std::uint64_t id, const char* name,
                             const char* cat, std::uint32_t tid,
                             std::initializer_list<Arg> args) {
  Event& e = push();
  e = Event{};
  e.name = name;
  e.cat = cat;
  e.ts = t;
  e.id = id;
  e.tid = tid;
  e.phase = Phase::kEnd;
  fill_args(e, args);
}

void TraceRecorder::instant(double t, const char* name, const char* cat,
                            std::uint32_t tid,
                            std::initializer_list<Arg> args) {
  Event& e = push();
  e = Event{};
  e.name = name;
  e.cat = cat;
  e.ts = t;
  e.tid = tid;
  e.phase = Phase::kInstant;
  fill_args(e, args);
}

void TraceRecorder::counter(double t, const char* name, const char* cat,
                            double value) {
  Event& e = push();
  e = Event{};
  e.name = name;
  e.cat = cat;
  e.ts = t;
  e.phase = Phase::kCounter;
  e.argc = 1;
  e.args[0] = Arg{"value", value};
}

void TraceRecorder::complete_wall(const char* name, const char* cat,
                                  double start_us, double dur_us) {
  Event& e = push();
  e = Event{};
  e.name = name;
  e.cat = cat;
  e.ts = start_us;
  e.dur = dur_us;
  e.phase = Phase::kComplete;
  fill_args(e, {});
}

void TraceRecorder::merge_from(const TraceRecorder& other) {
  if (other.size_ == 0) return;
  if (ring_.size() != capacity_) ring_.assign(capacity_, Event{});
  // Span ids allocated by `other` restart at 1; shifting them past the ids
  // already allocated here keeps begin/end pairing intact and collision-free.
  const std::uint64_t id_base = spans_allocated();
  for (Event e : other.events()) {
    if ((e.phase == Phase::kBegin || e.phase == Phase::kEnd) && e.id != 0) {
      e.id += id_base;
    }
    push() = e;
  }
  next_span_ += other.spans_allocated();
}

double TraceRecorder::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - wall_origin_)
      .count();
}

std::vector<Event> TraceRecorder::events() const {
  std::vector<Event> out;
  out.reserve(size_);
  if (size_ < ring_.size()) {
    out.assign(ring_.begin(), ring_.begin() + static_cast<long>(size_));
    return out;
  }
  // Full ring: oldest entry sits at head_.
  out.insert(out.end(), ring_.begin() + static_cast<long>(head_), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<long>(head_));
  return out;
}

void TraceRecorder::dump_jsonl(std::ostream& os) const {
  for (const Event& e : events()) {
    write_event(os, e);
    os << '\n';
  }
}

void TraceRecorder::dump_chrome(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Name the two clock domains so the viewer labels the tracks.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":"
        "{\"name\":\"sim-time\"}},\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"args\":"
        "{\"name\":\"wall-clock\"}}";
  for (const Event& e : events()) {
    os << ",\n";
    write_event(os, e);
  }
  os << "\n]}\n";
}

bool TraceRecorder::dump_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  const bool chrome =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (chrome) {
    dump_chrome(out);
  } else {
    dump_jsonl(out);
  }
  return static_cast<bool>(out);
}

}  // namespace qip::obs
