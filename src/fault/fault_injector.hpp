// Deterministic interpreter of a FaultPlan.
//
// The Transport consults the injector at two points: when a node transmits
// (a crashed radio cannot send) and per scheduled delivery (drop,
// duplicate, jitter, link/receiver outage).  All randomness lives in the
// injector's private RNG, seeded from the plan, so the protocol's own RNG
// stream is untouched and a run with a null plan is byte-identical to a run
// with no injector at all — judge() short-circuits before drawing anything.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "util/rng.hpp"

namespace qip {

/// What the injector did, for tests and post-run reports.
struct FaultStats {
  std::uint64_t delivered = 0;    ///< deliveries that survived injection
  std::uint64_t dropped = 0;      ///< lost to the drop probability
  std::uint64_t duplicated = 0;   ///< deliveries cloned once
  std::uint64_t blackouts = 0;    ///< suppressed by a node/link outage
  std::uint64_t sends_blocked = 0;///< transmissions by a crashed radio
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed), active_(!plan_.null()) {
    plan_.validate();
  }

  bool active() const { return active_; }
  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  /// True when `n`'s radio is outside every crash window at `now`.
  bool node_up(NodeId n, SimTime now) const;

  /// True when no link outage covers {a, b} at `now`.
  bool link_up(NodeId a, NodeId b, SimTime now) const;

  /// Called by the transport when a crashed node attempts to transmit.
  void note_blocked_send() { ++stats_.sends_blocked; }

  /// Called by the transport when the receiver's radio is down at delivery
  /// time (judge() can only see the send instant).
  void note_blackout() { ++stats_.blackouts; }

  /// Fate of one delivery from -> to sent at `now`: how many copies arrive
  /// (0 = lost) and the extra latency of each.  Jitter is sampled per copy.
  /// When copies == 0, `drop_reason` names why (string literal: "loss" for
  /// the random drop probability, "outage" for a node/link blackout) so the
  /// trace can break drops down by cause.
  struct Delivery {
    std::uint32_t copies = 1;
    SimTime extra[2] = {0.0, 0.0};
    const char* drop_reason = nullptr;
  };
  Delivery judge(NodeId from, NodeId to, SimTime now);

 private:
  FaultPlan plan_;
  Rng rng_;
  bool active_;
  FaultStats stats_;
};

}  // namespace qip
