// Declarative description of the message-level faults a run injects.
//
// The paper assumes "reliable delivery of messages within transmission
// range" (§IV-B); a FaultPlan removes that assumption so the failure
// machinery (quorum adjustment after T_d, REP_REQ probing, reclamation) is
// exercised against lossy delivery, not only against topology changes.  A
// plan is pure data — the FaultInjector interprets it deterministically
// from its own seed, so enabling faults never perturbs the protocol RNG
// stream and a default-constructed (null) plan leaves every run
// byte-identical to one with no injector attached.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/node_id.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"

namespace qip {

/// Burst outage on one link: every delivery whose endpoints are `a` and `b`
/// (either direction) is dropped while `from <= now < until`.
struct LinkOutage {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  SimTime from = 0.0;
  SimTime until = 0.0;
};

/// Crash/recover window for one node's radio: while down it neither
/// transmits nor hears anything.  Protocol timers keep firing — exactly the
/// point: peers must survive the silence.  `until` = +inf models a crash
/// with no recovery.
struct NodeOutage {
  NodeId node = kNoNode;
  SimTime from = 0.0;
  SimTime until = 0.0;
};

struct FaultPlan {
  /// Per-delivery loss probability in [0, 1].  Applied independently to
  /// each receiver of a broadcast/flood, matching independent radio fades.
  double drop = 0.0;

  /// Per-delivery duplication probability in [0, 1]: the receiver hears the
  /// message twice (second copy gets its own jitter).
  double duplicate = 0.0;

  /// Extra delivery latency, uniform in [0, max_jitter] seconds.
  SimTime max_jitter = 0.0;

  std::vector<LinkOutage> link_outages;
  std::vector<NodeOutage> node_outages;

  /// Seed of the injector's private RNG (decorrelated from the world seed
  /// on purpose: the same scenario can be replayed under many fault draws).
  std::uint64_t seed = 0xfa'0117'0001ULL;

  /// True when the plan injects nothing; a null plan consumes no randomness.
  bool null() const {
    return drop <= 0.0 && duplicate <= 0.0 && max_jitter <= 0.0 &&
           link_outages.empty() && node_outages.empty();
  }

  /// Rejects malformed plans with a clear InvariantViolation instead of the
  /// silent misbehavior they would otherwise cause (a negative drop rate
  /// never drops, an inverted outage window never fires, two overlapping
  /// windows for the same node double-judge every delivery).  Called by the
  /// FaultInjector constructor, so a bad plan fails at construction — before
  /// a single event runs.
  void validate() const {
    auto probability = [](double p, const char* what) {
      QIP_ASSERT_MSG(p >= 0.0 && p <= 1.0,
                     "FaultPlan." << what << " = " << p
                                  << " is not a probability in [0, 1]");
    };
    probability(drop, "drop");
    probability(duplicate, "duplicate");
    QIP_ASSERT_MSG(max_jitter >= 0.0,
                   "FaultPlan.max_jitter = " << max_jitter << " is negative");

    auto window = [](SimTime from, SimTime until, const char* what) {
      QIP_ASSERT_MSG(from >= 0.0,
                     "FaultPlan " << what << " starts at negative time "
                                  << from);
      QIP_ASSERT_MSG(until >= from, "FaultPlan " << what << " window ["
                                                 << from << ", " << until
                                                 << ") ends before it starts");
    };

    std::vector<NodeOutage> nodes = node_outages;
    for (const auto& o : nodes) {
      QIP_ASSERT_MSG(o.node != kNoNode, "FaultPlan node outage without a node");
      window(o.from, o.until, "node outage");
    }
    std::sort(nodes.begin(), nodes.end(), [](const auto& a, const auto& b) {
      return a.node != b.node ? a.node < b.node : a.from < b.from;
    });
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      const auto& prev = nodes[i - 1];
      const auto& cur = nodes[i];
      QIP_ASSERT_MSG(prev.node != cur.node || cur.from >= prev.until,
                     "FaultPlan node " << cur.node
                                       << " has overlapping outage windows ["
                                       << prev.from << ", " << prev.until
                                       << ") and [" << cur.from << ", "
                                       << cur.until << ")");
    }

    std::vector<LinkOutage> links = link_outages;
    for (auto& o : links) {
      QIP_ASSERT_MSG(o.a != kNoNode && o.b != kNoNode,
                     "FaultPlan link outage without both endpoints");
      QIP_ASSERT_MSG(o.a != o.b, "FaultPlan link outage with a == b == "
                                     << o.a);
      window(o.from, o.until, "link outage");
      if (o.b < o.a) std::swap(o.a, o.b);  // canonical endpoint order
    }
    std::sort(links.begin(), links.end(), [](const auto& a, const auto& b) {
      if (a.a != b.a) return a.a < b.a;
      if (a.b != b.b) return a.b < b.b;
      return a.from < b.from;
    });
    for (std::size_t i = 1; i < links.size(); ++i) {
      const auto& prev = links[i - 1];
      const auto& cur = links[i];
      QIP_ASSERT_MSG(
          prev.a != cur.a || prev.b != cur.b || cur.from >= prev.until,
          "FaultPlan link {" << cur.a << ", " << cur.b
                             << "} has overlapping outage windows ["
                             << prev.from << ", " << prev.until << ") and ["
                             << cur.from << ", " << cur.until << ")");
    }
  }
};

}  // namespace qip
