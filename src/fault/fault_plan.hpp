// Declarative description of the message-level faults a run injects.
//
// The paper assumes "reliable delivery of messages within transmission
// range" (§IV-B); a FaultPlan removes that assumption so the failure
// machinery (quorum adjustment after T_d, REP_REQ probing, reclamation) is
// exercised against lossy delivery, not only against topology changes.  A
// plan is pure data — the FaultInjector interprets it deterministically
// from its own seed, so enabling faults never perturbs the protocol RNG
// stream and a default-constructed (null) plan leaves every run
// byte-identical to one with no injector attached.
#pragma once

#include <cstdint>
#include <vector>

#include "net/node_id.hpp"
#include "sim/event_queue.hpp"

namespace qip {

/// Burst outage on one link: every delivery whose endpoints are `a` and `b`
/// (either direction) is dropped while `from <= now < until`.
struct LinkOutage {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  SimTime from = 0.0;
  SimTime until = 0.0;
};

/// Crash/recover window for one node's radio: while down it neither
/// transmits nor hears anything.  Protocol timers keep firing — exactly the
/// point: peers must survive the silence.  `until` = +inf models a crash
/// with no recovery.
struct NodeOutage {
  NodeId node = kNoNode;
  SimTime from = 0.0;
  SimTime until = 0.0;
};

struct FaultPlan {
  /// Per-delivery loss probability in [0, 1].  Applied independently to
  /// each receiver of a broadcast/flood, matching independent radio fades.
  double drop = 0.0;

  /// Per-delivery duplication probability in [0, 1]: the receiver hears the
  /// message twice (second copy gets its own jitter).
  double duplicate = 0.0;

  /// Extra delivery latency, uniform in [0, max_jitter] seconds.
  SimTime max_jitter = 0.0;

  std::vector<LinkOutage> link_outages;
  std::vector<NodeOutage> node_outages;

  /// Seed of the injector's private RNG (decorrelated from the world seed
  /// on purpose: the same scenario can be replayed under many fault draws).
  std::uint64_t seed = 0xfa'0117'0001ULL;

  /// True when the plan injects nothing; a null plan consumes no randomness.
  bool null() const {
    return drop <= 0.0 && duplicate <= 0.0 && max_jitter <= 0.0 &&
           link_outages.empty() && node_outages.empty();
  }
};

}  // namespace qip
