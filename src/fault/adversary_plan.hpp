// Declarative description of the Byzantine behavior a run injects.
//
// The FaultPlan models *honest* faults — crashes, loss, jitter — against
// which the paper's machinery was designed.  An AdversaryPlan models the
// half the paper does not treat: nodes that stay up, stay reachable, and
// deliberately misuse the protocol.  Like a FaultPlan, it is pure data:
// which nodes turn attacker, what attack they run, and during which sim-time
// window.  The engine interprets it (see core/qip_hardening.cpp); an empty
// plan leaves every run byte-identical to one with no adversary attached.
//
// Threat model and attack catalog: docs/ADVERSARY.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "net/node_id.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"

namespace qip {

/// The attack a flipped node runs while its window is open.
enum class AttackKind : std::uint8_t {
  /// Claims an address already held by another node, without running the
  /// quorum protocol — the direct assault on the uniqueness invariant.
  kSquat,
  /// Votes "conflict" on every QUORUM_CLT it receives, stalling honest
  /// configuration transactions and bleeding the allocator's free pool
  /// (failed conflict rounds drop the proposal from the pool).
  kConflictFlood,
  /// Pushes corrupted replica snapshots of spaces it holds copies of:
  /// allocated records flipped to free with inflated timestamps, so honest
  /// holders re-issue addresses that are still in use.
  kReplicaPoison,
  /// Stops serving protocol requests (entry requests, quorum votes, liveness
  /// probes) while continuing to beacon — invisible to hello-timeout
  /// detection, the motivating case for the SWIM detector.
  kSilentDefection,
};

const char* to_string(AttackKind k);

/// One node's attack assignment: `node` runs `kind` while
/// `from <= now < until`.  `until` defaults to +inf (never repents).
struct AttackSpec {
  NodeId node = kNoNode;
  AttackKind kind = AttackKind::kSquat;
  SimTime from = 0.0;
  SimTime until = std::numeric_limits<SimTime>::infinity();
};

struct AdversaryPlan {
  std::vector<AttackSpec> attacks;

  /// True when the plan flips nobody.
  bool null() const { return attacks.empty(); }

  /// Rejects malformed plans at construction (mirrors FaultPlan::validate):
  /// missing node ids, inverted or negative windows, and overlapping windows
  /// for the same (node, kind) pair — which would double-count every attack
  /// action — all throw InvariantViolation with a message naming the entry.
  void validate() const {
    for (const auto& a : attacks) {
      QIP_ASSERT_MSG(a.node != kNoNode, "AdversaryPlan attack without a node");
      QIP_ASSERT_MSG(a.from >= 0.0, "AdversaryPlan attack on node "
                                        << a.node
                                        << " starts at negative time "
                                        << a.from);
      QIP_ASSERT_MSG(a.until >= a.from,
                     "AdversaryPlan attack on node "
                         << a.node << " window [" << a.from << ", " << a.until
                         << ") ends before it starts");
    }
    std::vector<AttackSpec> sorted = attacks;
    std::sort(sorted.begin(), sorted.end(), [](const auto& x, const auto& y) {
      if (x.node != y.node) return x.node < y.node;
      if (x.kind != y.kind) return x.kind < y.kind;
      return x.from < y.from;
    });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      const auto& prev = sorted[i - 1];
      const auto& cur = sorted[i];
      QIP_ASSERT_MSG(prev.node != cur.node || prev.kind != cur.kind ||
                         cur.from >= prev.until,
                     "AdversaryPlan node "
                         << cur.node << " has overlapping "
                         << to_string(cur.kind) << " windows [" << prev.from
                         << ", " << prev.until << ") and [" << cur.from
                         << ", " << cur.until << ")");
    }
  }
};

}  // namespace qip
