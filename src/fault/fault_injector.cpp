#include "fault/fault_injector.hpp"

namespace qip {

bool FaultInjector::node_up(NodeId n, SimTime now) const {
  for (const auto& o : plan_.node_outages) {
    if (o.node == n && now >= o.from && now < o.until) return false;
  }
  return true;
}

bool FaultInjector::link_up(NodeId a, NodeId b, SimTime now) const {
  for (const auto& o : plan_.link_outages) {
    const bool match = (o.a == a && o.b == b) || (o.a == b && o.b == a);
    if (match && now >= o.from && now < o.until) return false;
  }
  return true;
}

FaultInjector::Delivery FaultInjector::judge(NodeId from, NodeId to,
                                             SimTime now) {
  Delivery d;
  if (!active_) {
    ++stats_.delivered;
    return d;  // no RNG draw: a null plan stays byte-identical
  }
  if (!link_up(from, to, now) || !node_up(from, now) || !node_up(to, now)) {
    ++stats_.blackouts;
    d.copies = 0;
    d.drop_reason = "outage";
    return d;
  }
  if (plan_.drop > 0.0 && rng_.chance(plan_.drop)) {
    ++stats_.dropped;
    d.copies = 0;
    d.drop_reason = "loss";
    return d;
  }
  if (plan_.max_jitter > 0.0) d.extra[0] = rng_.uniform(0.0, plan_.max_jitter);
  if (plan_.duplicate > 0.0 && rng_.chance(plan_.duplicate)) {
    ++stats_.duplicated;
    d.copies = 2;
    d.extra[1] =
        plan_.max_jitter > 0.0 ? rng_.uniform(0.0, plan_.max_jitter) : 0.0;
  }
  ++stats_.delivered;
  return d;
}

}  // namespace qip
