// Runtime interpreter of an AdversaryPlan.
//
// The controller answers one question — "is node n running attack k right
// now?" — plus the bookkeeping the engine needs to act each attack exactly
// once where the attack is a discrete event (a squat happens once per
// window, a poison push happens once per hello tick).  It draws no
// randomness and schedules no events of its own: the engine consults it
// from paths that already run (hello ticks, vote handlers), so attaching a
// controller with an empty plan is byte-identical to no controller at all.
//
// Ownership mirrors FaultInjector: a World owns the controller and
// publishes it through its SimContext, where the engine finds it.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "fault/adversary_plan.hpp"

namespace qip {

/// What the adversary did, for tests and post-run reports.
struct AdversaryStats {
  std::uint64_t squats = 0;             ///< addresses claimed without quorum
  std::uint64_t false_conflicts = 0;    ///< bogus conflict votes cast
  std::uint64_t poisoned_snapshots = 0; ///< corrupted replica pushes sent
  std::uint64_t dropped_services = 0;   ///< requests/votes/probes ignored
};

class AdversaryController {
 public:
  explicit AdversaryController(AdversaryPlan plan);

  bool active() const { return active_; }
  const AdversaryPlan& plan() const { return plan_; }

  /// True when `n` is inside an open window of attack `k` at `now`.
  bool is(NodeId n, AttackKind k, SimTime now) const;

  /// True when `n` is inside any open attack window at `now`.
  bool any(NodeId n, SimTime now) const;

  /// Nodes running attack `k` at `now`, sorted ascending.
  std::vector<NodeId> attackers(AttackKind k, SimTime now) const;

  /// One-shot latch per plan entry: returns true the first time it is asked
  /// about an open window of (n, k) and false afterwards.  The engine uses
  /// it to fire discrete attack actions (the squat) exactly once per window.
  bool claim_once(NodeId n, AttackKind k, SimTime now);

  AdversaryStats& stats() { return stats_; }
  const AdversaryStats& stats() const { return stats_; }

 private:
  AdversaryPlan plan_;
  bool active_;
  std::set<std::size_t> fired_;  ///< plan indices already claimed
  AdversaryStats stats_;
};

}  // namespace qip
