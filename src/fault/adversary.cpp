#include "fault/adversary.hpp"

namespace qip {

const char* to_string(AttackKind k) {
  switch (k) {
    case AttackKind::kSquat: return "squat";
    case AttackKind::kConflictFlood: return "conflict_flood";
    case AttackKind::kReplicaPoison: return "replica_poison";
    case AttackKind::kSilentDefection: return "silent_defection";
  }
  return "?";
}

AdversaryController::AdversaryController(AdversaryPlan plan)
    : plan_(std::move(plan)), active_(!plan_.null()) {
  plan_.validate();
}

bool AdversaryController::is(NodeId n, AttackKind k, SimTime now) const {
  if (!active_) return false;
  for (const auto& a : plan_.attacks) {
    if (a.node == n && a.kind == k && now >= a.from && now < a.until)
      return true;
  }
  return false;
}

bool AdversaryController::any(NodeId n, SimTime now) const {
  if (!active_) return false;
  for (const auto& a : plan_.attacks) {
    if (a.node == n && now >= a.from && now < a.until) return true;
  }
  return false;
}

std::vector<NodeId> AdversaryController::attackers(AttackKind k,
                                                   SimTime now) const {
  std::vector<NodeId> out;
  if (!active_) return out;
  for (const auto& a : plan_.attacks) {
    if (a.kind == k && now >= a.from && now < a.until) out.push_back(a.node);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool AdversaryController::claim_once(NodeId n, AttackKind k, SimTime now) {
  if (!active_) return false;
  for (std::size_t i = 0; i < plan_.attacks.size(); ++i) {
    const auto& a = plan_.attacks[i];
    if (a.node != n || a.kind != k || now < a.from || now >= a.until) continue;
    if (fired_.insert(i).second) return true;
  }
  return false;
}

}  // namespace qip
