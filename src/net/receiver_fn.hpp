// Small-buffer copyable callable for message delivery receivers.
//
// Transport used to type its Receiver as std::function<void(NodeId,
// uint32_t)>.  Every unicast built one, every flood recipient copied it, and
// almost every capture (a `this` pointer plus a couple of ids) exceeded
// libstdc++'s inline buffer — one heap allocation per delivery on the
// simulator's hottest path.  ReceiverFn is the copyable sibling of
// sim/event_fn.hpp's EventFn with a 32-byte inline buffer, sized so the
// delivery closure Transport schedules (this + to + hops + ReceiverFn = 56
// bytes) still fits EventFn's 64-byte inline buffer: an inline-capture
// receiver costs ZERO allocations from send to delivery.  Oversized captures
// fall back to the per-thread capture arena (sim/arena.hpp), which recycles
// blocks instead of hitting operator new.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "net/node_id.hpp"
#include "sim/arena.hpp"

namespace qip {

class ReceiverFn {
 public:
  /// Inline capture budget: `this` plus two or three ids covers every
  /// receiver lambda in the engines and baselines.  Pointer alignment (not
  /// max_align_t) keeps sizeof(ReceiverFn) at 40 so Transport's delivery
  /// closure stays within EventFn's inline buffer; over-aligned captures
  /// simply take the arena path.
  static constexpr std::size_t kInlineSize = 32;
  static constexpr std::size_t kInlineAlign = alignof(void*);

  ReceiverFn() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, ReceiverFn> &&
                std::is_invocable_r_v<void, D&, NodeId, std::uint32_t>>>
  ReceiverFn(F&& f) {  // NOLINT(google-explicit-constructor) — drop-in for
                       // std::function at every send call site.
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      void* p = CaptureArena::instance().allocate(sizeof(D));
      set_heap(::new (p) D(std::forward<F>(f)));
      ops_ = heap_ops<D>();
    }
  }

  ReceiverFn(const ReceiverFn& other) { copy_from(other); }

  ReceiverFn& operator=(const ReceiverFn& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }

  ReceiverFn(ReceiverFn&& other) noexcept { move_from(other); }

  ReceiverFn& operator=(ReceiverFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  ~ReceiverFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()(NodeId receiver, std::uint32_t hops) {
    ops_->invoke(target(), receiver, hops);
  }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(target());
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*, NodeId, std::uint32_t);
    /// nullptr for trivially-destructible inline captures.
    void (*destroy)(void*);
    /// Copy-constructs src's callable into dst.  nullptr for
    /// trivially-copyable inline captures — the dominant case — where
    /// copy_from() does a raw buffer copy with no indirect call.
    void (*copy)(ReceiverFn& dst, const ReceiverFn& src);
    /// Move-constructs into dst and destroys the source representation.
    /// nullptr alongside a null copy op (raw buffer copy suffices).
    void (*relocate)(ReceiverFn& dst, ReceiverFn& src);
    /// true when the capture lives in the arena (target() reads a pointer
    /// out of the buffer instead of pointing at it).
    bool heap;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  void* heap_ptr() const {
    void* p;
    __builtin_memcpy(&p, buf_, sizeof(p));
    return p;
  }

  void set_heap(void* p) { __builtin_memcpy(buf_, &p, sizeof(p)); }

  void* target() {
    return ops_ != nullptr && ops_->heap ? heap_ptr()
                                         : static_cast<void*>(buf_);
  }

  void copy_from(const ReceiverFn& other) {
    if (other.ops_ != nullptr) {
      if (other.ops_->copy != nullptr) {
        other.ops_->copy(*this, other);
      } else {
        __builtin_memcpy(buf_, other.buf_, kInlineSize);
        ops_ = other.ops_;
      }
    }
  }

  void move_from(ReceiverFn& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate != nullptr) {
        other.ops_->relocate(*this, other);
      } else {
        __builtin_memcpy(buf_, other.buf_, kInlineSize);
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
  }

  template <typename D>
  static void invoke_as(void* p, NodeId receiver, std::uint32_t hops) {
    (*static_cast<D*>(p))(receiver, hops);
  }

  template <typename D>
  static void destroy_inline(void* p) {
    static_cast<D*>(p)->~D();
  }

  template <typename D>
  static void destroy_heap(void* p) {
    static_cast<D*>(p)->~D();
    CaptureArena::instance().deallocate(p, sizeof(D));
  }

  template <typename D>
  static void copy_inline(ReceiverFn& dst, const ReceiverFn& src) {
    const D* s = static_cast<const D*>(
        static_cast<const void*>(src.buf_));
    ::new (static_cast<void*>(dst.buf_)) D(*s);
    dst.ops_ = src.ops_;
  }

  template <typename D>
  static void copy_heap(ReceiverFn& dst, const ReceiverFn& src) {
    void* p = CaptureArena::instance().allocate(sizeof(D));
    dst.set_heap(::new (p) D(*static_cast<const D*>(src.heap_ptr())));
    dst.ops_ = src.ops_;
  }

  template <typename D>
  static void relocate_inline(ReceiverFn& dst, ReceiverFn& src) {
    D* s = static_cast<D*>(static_cast<void*>(src.buf_));
    ::new (static_cast<void*>(dst.buf_)) D(std::move(*s));
    s->~D();
    dst.ops_ = src.ops_;
    src.ops_ = nullptr;
  }

  static void relocate_heap(ReceiverFn& dst, ReceiverFn& src) {
    __builtin_memcpy(dst.buf_, src.buf_, sizeof(void*));
    dst.ops_ = src.ops_;
    src.ops_ = nullptr;
  }

  template <typename D>
  static constexpr bool trivial_inline() {
    return std::is_trivially_copyable_v<D> &&
           std::is_trivially_destructible_v<D>;
  }

  template <typename D>
  static const Ops* inline_ops() {
    if constexpr (trivial_inline<D>()) {
      static constexpr Ops kOps = {&invoke_as<D>, nullptr, nullptr, nullptr,
                                   false};
      return &kOps;
    } else {
      static constexpr Ops kOps = {&invoke_as<D>, &destroy_inline<D>,
                                   &copy_inline<D>, &relocate_inline<D>,
                                   false};
      return &kOps;
    }
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops kOps = {&invoke_as<D>, &destroy_heap<D>,
                                 &copy_heap<D>, &relocate_heap, true};
    return &kOps;
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize] = {};
  const Ops* ops_ = nullptr;
};

}  // namespace qip
