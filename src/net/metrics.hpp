// Message accounting.
//
// Every figure in the paper's evaluation reports hop counts: "one message
// sent from one node to its one-hop neighbor is considered to be one hop"
// (§VI-B).  The transport records, per traffic category, both the number of
// logical messages and the total hops they traversed; benches read these
// counters to regenerate the figures.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace qip::obs {
class MetricsRegistry;
}

namespace qip {

enum class Traffic : std::size_t {
  kConfiguration = 0,  ///< address request/propose/confirm + quorum collection
  kDeparture = 1,      ///< graceful-leave address return
  kMovement = 2,       ///< location updates (UPDATE_LOC and relatives)
  kReclamation = 3,    ///< ADDR_REC / REC_REP and equivalents
  kMaintenance = 4,    ///< replica refresh, periodic table sync, C-tree updates
  kHello = 5,          ///< periodic beacons (metered but excluded from figures)
  kPartition = 6,      ///< partition/merge handling traffic
  kCount = 7,
};

const char* to_string(Traffic t);

struct TrafficCounter {
  std::uint64_t messages = 0;
  std::uint64_t hops = 0;
};

class MessageStats {
 public:
  void record(Traffic t, std::uint64_t hops, std::uint64_t messages = 1) {
    auto& c = counters_[static_cast<std::size_t>(t)];
    c.messages += messages;
    c.hops += hops;
  }

  const TrafficCounter& of(Traffic t) const {
    return counters_[static_cast<std::size_t>(t)];
  }

  std::uint64_t total_hops() const {
    std::uint64_t sum = 0;
    for (const auto& c : counters_) sum += c.hops;
    return sum;
  }

  /// Hops across all categories except hello beacons (the quantity the
  /// paper's overhead figures plot).
  std::uint64_t protocol_hops() const {
    return total_hops() - of(Traffic::kHello).hops;
  }

  /// Unicast deliveries silently lost because the destination departed (or
  /// its radio crashed) while the message was in flight.  These were charged
  /// at send time like any other transmission; this counter makes the loss
  /// visible instead of invisible.
  void note_dropped_in_flight() { ++dropped_in_flight_; }
  std::uint64_t dropped_in_flight() const { return dropped_in_flight_; }

  /// Retransmissions and acks issued by the ReliableChannel.  Their hops are
  /// already charged to the owning traffic category (overhead figures stay
  /// honest); these counters break out how much of that traffic the channel
  /// itself generated.
  void note_retransmission() { ++retransmissions_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  void note_ack() { ++acks_; }
  std::uint64_t acks() const { return acks_; }

  void reset() {
    counters_ = {};
    dropped_in_flight_ = 0;
    retransmissions_ = 0;
    acks_ = 0;
  }

  std::string to_string() const;

  /// Snapshots every counter into the labeled registry:
  /// `qip_messages_total{traffic=...}` / `qip_hops_total{traffic=...}` plus
  /// `qip_dropped_in_flight_total`, `qip_retransmissions_total`,
  /// `qip_acks_total`.  Counter::set() semantics, so repeated exports
  /// converge instead of double-counting.
  void export_to(obs::MetricsRegistry& registry) const;

 private:
  std::array<TrafficCounter, static_cast<std::size_t>(Traffic::kCount)>
      counters_{};
  std::uint64_t dropped_in_flight_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_ = 0;
};

}  // namespace qip
