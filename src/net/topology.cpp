#include "net/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "harness/env.hpp"

namespace qip {

namespace {

bool cache_enabled_from_env() {
  // QIP_TOPO_CACHE=off|0|false bypasses the cache — the escape hatch for
  // bisecting a suspected cache bug without a rebuild.
  const char* env = std::getenv("QIP_TOPO_CACHE");
  if (!env) return true;
  const std::string_view v(env);
  return !(v == "off" || v == "0" || v == "false");
}

}  // namespace

Topology::Topology(Rect area, double transmission_range)
    : area_(area),
      range_(transmission_range),
      index_(transmission_range),
      cache_enabled_(cache_enabled_from_env()),
      cache_(transmission_range) {
  QIP_ASSERT(transmission_range > 0.0);
  // Strict parse (exit 2 on a typo): a misspelled escape hatch silently
  // running the wrong code path is exactly what strictness prevents.
  cache_.set_incremental_enabled(env_bool("QIP_TOPO_INCR", true));
}

void Topology::add_node(NodeId id, const Point& pos) {
  QIP_ASSERT_MSG(area_.contains(pos), "position outside simulation area");
  index_.insert(id, pos);
  cache_.note_add(id, pos);
}

void Topology::remove_node(NodeId id) {
  index_.remove(id);
  cache_.note_remove(id);
}

void Topology::move_node(NodeId id, const Point& pos) {
  QIP_ASSERT_MSG(area_.contains(pos), "position outside simulation area");
  index_.move(id, pos);
  cache_.note_move(id, pos);
}

std::vector<NodeId> Topology::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(index_.size());
  index_.for_each([&](NodeId id, const Point&) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Topology::neighbors_uncached(NodeId id) const {
  auto out = index_.query(index_.position(id), range_,
                          static_cast<std::int64_t>(id));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Topology::neighbors(NodeId id) const {
  if (cache_enabled_) return cache_.neighbors(index_, id);
  return neighbors_uncached(id);
}

const std::vector<NodeId>& Topology::neighbors_view(NodeId id) const {
  if (cache_enabled_) return cache_.neighbors(index_, id);
  scratch_nbrs_ = neighbors_uncached(id);
  return scratch_nbrs_;
}

bool Topology::covered(const Point& p) const {
  return !index_.query(p, range_).empty();
}

std::vector<std::pair<NodeId, std::uint32_t>> Topology::k_hop_neighbors(
    NodeId id, std::uint32_t k) const {
  return k_hop_view(id, k);
}

const std::vector<std::pair<NodeId, std::uint32_t>>& Topology::k_hop_view(
    NodeId id, std::uint32_t k) const {
  if (cache_enabled_) return cache_.k_hop(index_, id, k);
  scratch_khop_.clear();
  bfs_uncached(id, k, [&](NodeId n, std::uint32_t d) {
    if (d > 0) scratch_khop_.emplace_back(n, d);
  });
  std::sort(scratch_khop_.begin(), scratch_khop_.end());
  return scratch_khop_;
}

std::unordered_map<NodeId, std::uint32_t> Topology::hop_distances_from(
    NodeId from) const {
  QIP_ASSERT(has_node(from));
  std::unordered_map<NodeId, std::uint32_t> dist;
  // Both paths emplace in the same BFS discovery order (the cache's CSR
  // rows are rank-ascending, matching sorted neighbors), so even the
  // returned map's iteration order — observable through protocol
  // tie-breaks like Boleng's informant choice — is identical cached and
  // uncached.
  for_each_reachable(
      from, [&](NodeId n, std::uint32_t d) { dist.emplace(n, d); });
  return dist;
}

std::optional<std::uint32_t> Topology::hop_distance_uncached(NodeId from,
                                                             NodeId to) const {
  if (from == to) return 0;
  // Early-exit BFS.  The target test runs only on freshly discovered nodes:
  // a self-loop or duplicated id from a faulty index can therefore never
  // resurface `to` with an inflated distance (and the adjacency invariant
  // is asserted outright).
  std::unordered_map<NodeId, std::uint32_t> dist;
  dist.emplace(from, 0);
  std::vector<std::pair<NodeId, std::uint32_t>> frontier{{from, 0}};
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const auto [u, d] = frontier[head];
    for (NodeId v : neighbors_uncached(u)) {
      QIP_ASSERT_MSG(v != u, "self-loop in adjacency of node " << u);
      if (!dist.emplace(v, d + 1).second) continue;
      if (v == to) return d + 1;
      frontier.emplace_back(v, d + 1);
    }
  }
  return std::nullopt;
}

std::optional<std::uint32_t> Topology::hop_distance(NodeId from,
                                                    NodeId to) const {
  QIP_ASSERT(has_node(from) && has_node(to));
  if (!cache_enabled_) return hop_distance_uncached(from, to);
  if (from == to) return 0;
  const auto& graph = cache_.csr(index_);
  const auto src = graph.rank_of(from);
  const auto dst = graph.rank_of(to);
  QIP_ASSERT(src.has_value() && dst.has_value());
  return cache_.hop_distance(graph, *src, *dst);
}

std::vector<NodeId> Topology::component_of(NodeId id) const {
  return component_view(id);
}

const std::vector<NodeId>& Topology::component_view(NodeId id) const {
  QIP_ASSERT(has_node(id));
  if (cache_enabled_) {
    const auto& comps = cache_.components(index_);
    const auto rank = cache_.csr(index_).rank_of(id);
    QIP_ASSERT(rank.has_value());
    return comps.groups[comps.group_of[*rank]];
  }
  scratch_comp_.clear();
  bfs_uncached(id, TopologyCache::kUnreached,
               [&](NodeId n, std::uint32_t) { scratch_comp_.push_back(n); });
  std::sort(scratch_comp_.begin(), scratch_comp_.end());
  return scratch_comp_;
}

std::vector<std::vector<NodeId>> Topology::components() const {
  return components_view();
}

const std::vector<std::vector<NodeId>>& Topology::components_view() const {
  if (cache_enabled_) return cache_.components(index_).groups;
  scratch_comps_.clear();
  std::unordered_set<NodeId> seen;
  for (NodeId id : all_nodes()) {
    if (seen.count(id)) continue;
    std::vector<NodeId> comp;
    bfs_uncached(id, TopologyCache::kUnreached,
                 [&](NodeId n, std::uint32_t) { comp.push_back(n); });
    std::sort(comp.begin(), comp.end());
    for (NodeId member : comp) seen.insert(member);
    scratch_comps_.push_back(std::move(comp));
  }
  // all_nodes() is sorted, so components are already ordered by smallest
  // member.
  return scratch_comps_;
}

std::uint32_t Topology::eccentricity(NodeId id) const {
  std::uint32_t ecc = 0;
  for_each_reachable(
      id, [&](NodeId, std::uint32_t d) { ecc = std::max(ecc, d); });
  return ecc;
}

}  // namespace qip
