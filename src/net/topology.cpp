#include "net/topology.hpp"

#include <algorithm>
#include <deque>

#include "util/assert.hpp"

namespace qip {

Topology::Topology(Rect area, double transmission_range)
    : area_(area), range_(transmission_range), index_(transmission_range) {
  QIP_ASSERT(transmission_range > 0.0);
}

void Topology::add_node(NodeId id, const Point& pos) {
  QIP_ASSERT_MSG(area_.contains(pos), "position outside simulation area");
  index_.insert(id, pos);
}

void Topology::remove_node(NodeId id) { index_.remove(id); }

void Topology::move_node(NodeId id, const Point& pos) {
  QIP_ASSERT_MSG(area_.contains(pos), "position outside simulation area");
  index_.move(id, pos);
}

std::vector<NodeId> Topology::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(index_.size());
  index_.for_each([&](NodeId id, const Point&) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Topology::neighbors(NodeId id) const {
  auto out = index_.query(index_.position(id), range_,
                          static_cast<std::int64_t>(id));
  std::sort(out.begin(), out.end());
  return out;
}

bool Topology::covered(const Point& p) const {
  return !index_.query(p, range_).empty();
}

std::vector<std::pair<NodeId, std::uint32_t>> Topology::k_hop_neighbors(
    NodeId id, std::uint32_t k) const {
  std::vector<std::pair<NodeId, std::uint32_t>> out;
  std::unordered_map<NodeId, std::uint32_t> dist;
  dist.emplace(id, 0);
  std::deque<NodeId> frontier{id};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const std::uint32_t d = dist[u];
    if (d == k) continue;
    for (NodeId v : neighbors(u)) {
      if (dist.emplace(v, d + 1).second) {
        out.emplace_back(v, d + 1);
        frontier.push_back(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unordered_map<NodeId, std::uint32_t> Topology::hop_distances_from(
    NodeId from) const {
  QIP_ASSERT(has_node(from));
  std::unordered_map<NodeId, std::uint32_t> dist;
  dist.emplace(from, 0);
  std::deque<NodeId> frontier{from};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const std::uint32_t d = dist[u];
    for (NodeId v : neighbors(u)) {
      if (dist.emplace(v, d + 1).second) frontier.push_back(v);
    }
  }
  return dist;
}

std::optional<std::uint32_t> Topology::hop_distance(NodeId from,
                                                    NodeId to) const {
  QIP_ASSERT(has_node(from) && has_node(to));
  if (from == to) return 0;
  // Early-exit BFS.
  std::unordered_map<NodeId, std::uint32_t> dist;
  dist.emplace(from, 0);
  std::deque<NodeId> frontier{from};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    const std::uint32_t d = dist[u];
    for (NodeId v : neighbors(u)) {
      if (v == to) return d + 1;
      if (dist.emplace(v, d + 1).second) frontier.push_back(v);
    }
  }
  return std::nullopt;
}

std::vector<NodeId> Topology::component_of(NodeId id) const {
  auto dist = hop_distances_from(id);
  std::vector<NodeId> out;
  out.reserve(dist.size());
  for (const auto& [node, d] : dist) out.push_back(node);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<NodeId>> Topology::components() const {
  std::vector<std::vector<NodeId>> out;
  std::unordered_set<NodeId> seen;
  for (NodeId id : all_nodes()) {
    if (seen.count(id)) continue;
    auto comp = component_of(id);
    for (NodeId member : comp) seen.insert(member);
    out.push_back(std::move(comp));
  }
  // all_nodes() is sorted, so components are already ordered by smallest
  // member.
  return out;
}

std::uint32_t Topology::eccentricity(NodeId id) const {
  std::uint32_t ecc = 0;
  for (const auto& [node, d] : hop_distances_from(id)) ecc = std::max(ecc, d);
  return ecc;
}

}  // namespace qip
