#include "net/metrics.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace qip {

const char* to_string(Traffic t) {
  switch (t) {
    case Traffic::kConfiguration:
      return "configuration";
    case Traffic::kDeparture:
      return "departure";
    case Traffic::kMovement:
      return "movement";
    case Traffic::kReclamation:
      return "reclamation";
    case Traffic::kMaintenance:
      return "maintenance";
    case Traffic::kHello:
      return "hello";
    case Traffic::kPartition:
      return "partition";
    case Traffic::kCount:
      break;
  }
  return "?";
}

std::string MessageStats::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < static_cast<std::size_t>(Traffic::kCount); ++i) {
    const auto t = static_cast<Traffic>(i);
    const auto& c = of(t);
    if (c.messages == 0) continue;
    os << qip::to_string(t) << ": " << c.messages << " msgs / " << c.hops
       << " hops\n";
  }
  if (dropped_in_flight_ > 0)
    os << "dropped in flight: " << dropped_in_flight_ << "\n";
  if (retransmissions_ > 0 || acks_ > 0) {
    os << "reliable channel: " << retransmissions_ << " retransmissions / "
       << acks_ << " acks\n";
  }
  return os.str();
}

void MessageStats::export_to(obs::MetricsRegistry& registry) const {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Traffic::kCount); ++i) {
    const auto t = static_cast<Traffic>(i);
    const auto& c = of(t);
    const obs::Labels labels = {{"traffic", qip::to_string(t)}};
    registry.counter("qip_messages_total", labels)
        .set(static_cast<double>(c.messages));
    registry.counter("qip_hops_total", labels).set(static_cast<double>(c.hops));
  }
  registry.counter("qip_dropped_in_flight_total")
      .set(static_cast<double>(dropped_in_flight_));
  registry.counter("qip_retransmissions_total")
      .set(static_cast<double>(retransmissions_));
  registry.counter("qip_acks_total").set(static_cast<double>(acks_));
}

}  // namespace qip
