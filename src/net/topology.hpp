// Wireless connectivity model: unit-disk graph over node positions.
//
// Two nodes are neighbors iff their distance is at most the transmission
// range (the paper's model, §VI-A).  The topology answers the queries the
// protocol and transport need: one-hop neighbors, k-hop neighborhoods, BFS
// hop distances / shortest paths, and connected components (for partition
// experiments).  Positions are indexed in a uniform grid so neighbor lookup
// is O(1) expected.
//
// Graph queries are memoized in an epoch-versioned TopologyCache: mutations
// bump the grid's epoch, derived state (adjacency rows, a flat CSR
// snapshot, components, k-hop sets) is rebuilt lazily, and a move only
// re-queries adjacency near the cells the mover left or entered.  Cached
// and uncached paths return identical results — down to the emplace order
// of the hop-distance map — so the cache is behavior-invariant; set
// QIP_TOPO_CACHE=off (or call set_cache_enabled(false)) to bypass it when
// bisecting (docs/SIMULATOR.md, "Topology cache").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geom/grid_index.hpp"
#include "geom/rect.hpp"
#include "net/node_id.hpp"
#include "net/topology_cache.hpp"
#include "util/assert.hpp"

namespace qip {

class Topology {
 public:
  Topology(Rect area, double transmission_range);

  const Rect& area() const { return area_; }
  double range() const { return range_; }

  void add_node(NodeId id, const Point& pos);
  void remove_node(NodeId id);
  void move_node(NodeId id, const Point& pos);
  bool has_node(NodeId id) const { return index_.contains(id); }
  const Point& position(NodeId id) const { return index_.position(id); }
  std::size_t node_count() const { return index_.size(); }
  std::vector<NodeId> all_nodes() const;

  /// Mutation epoch of the underlying grid (bumped by every add/remove/
  /// move).  Two equal epochs guarantee every query answer is unchanged.
  std::uint64_t epoch() const { return index_.epoch(); }

  /// Cache switch, default on (QIP_TOPO_CACHE=off or =0 in the environment
  /// starts it off).  Toggling at any time is safe: validity is epoch-based
  /// and both paths return identical results.
  bool cache_enabled() const { return cache_enabled_; }
  void set_cache_enabled(bool on) { cache_enabled_ = on; }

  /// Incremental CSR/components maintenance switch, default on
  /// (QIP_TOPO_INCR=off forces full rebuilds — the escape hatch for
  /// bisecting a suspected patch bug; malformed values exit(2),
  /// docs/SCALE.md).  Toggling at any time is safe: both paths produce
  /// identical snapshots.
  bool incremental_enabled() const { return cache_.incremental_enabled(); }
  void set_incremental_enabled(bool on) {
    cache_.set_incremental_enabled(on);
  }

  /// Maintenance counters for the differential tests and fig_metro phase
  /// reports: how often the snapshot was patched vs rebuilt, and how often
  /// a components repair ran vs bailed to a rebuild.
  std::uint64_t csr_full_rebuilds() const { return cache_.full_rebuilds(); }
  std::uint64_t csr_incremental_patches() const {
    return cache_.incremental_patches();
  }
  std::uint64_t component_repairs() const {
    return cache_.component_repairs();
  }
  std::uint64_t component_repair_bailouts() const {
    return cache_.repair_bailouts();
  }

  /// Binds the cache's rebuild ProfileScopes to `ctx` (null: the process
  /// context).  Called by World; behavior-invariant either way.
  void set_context(SimContext* ctx) { cache_.set_context(ctx); }

  /// One-hop neighbors of `id` (distance <= range, excluding `id`), sorted.
  std::vector<NodeId> neighbors(NodeId id) const;

  /// Same, without the copy.  The reference (like every *_view below) is
  /// valid until the next topology mutation; protocol handlers never mutate
  /// the topology, so holding one across a send is fine.
  const std::vector<NodeId>& neighbors_view(NodeId id) const;

  /// True iff at least one node lies within transmission range of `p`.
  bool covered(const Point& p) const;

  /// All nodes within `k` hops of `id`, excluding `id`, paired with their hop
  /// distance (sorted by id for determinism).
  std::vector<std::pair<NodeId, std::uint32_t>> k_hop_neighbors(
      NodeId id, std::uint32_t k) const;

  /// Same, without the copy (memoized per epoch).
  const std::vector<std::pair<NodeId, std::uint32_t>>& k_hop_view(
      NodeId id, std::uint32_t k) const;

  /// BFS hop distance, or nullopt if unreachable.
  std::optional<std::uint32_t> hop_distance(NodeId from, NodeId to) const;

  /// Hop distances from `from` to every reachable node (including itself at
  /// hop 0).
  std::unordered_map<NodeId, std::uint32_t> hop_distances_from(
      NodeId from) const;

  /// Calls `fn(node, hops)` for every node reachable from `from` (including
  /// `from` itself at hop 0) in BFS discovery order, without materializing
  /// a map.  Preferred over hop_distances_from when the caller only folds
  /// over the distances.
  template <typename Fn>
  void for_each_reachable(NodeId from, Fn&& fn) const {
    QIP_ASSERT(has_node(from));
    if (!cache_enabled_) {
      bfs_uncached(from, TopologyCache::kUnreached,
                   [&](NodeId n, std::uint32_t d) { fn(n, d); });
      return;
    }
    const auto& graph = cache_.csr(index_);
    const auto src = graph.rank_of(from);
    QIP_ASSERT(src.has_value());
    cache_.bfs(graph, *src, TopologyCache::kUnreached,
               [&](std::uint32_t r, std::uint32_t d) { fn(graph.ids[r], d); });
  }

  /// Depth-bounded for_each_reachable: visits every node within `max_depth`
  /// hops of `from` (including `from` at hop 0) in BFS discovery order.
  /// The workhorse of expanding-ring searches (ClusterView::nearest_head):
  /// a bounded BFS costs the ring, not the component.
  template <typename Fn>
  void for_each_within(NodeId from, std::uint32_t max_depth, Fn&& fn) const {
    QIP_ASSERT(has_node(from));
    if (!cache_enabled_) {
      bfs_uncached(from, max_depth,
                   [&](NodeId n, std::uint32_t d) { fn(n, d); });
      return;
    }
    const auto& graph = cache_.csr(index_);
    const auto src = graph.rank_of(from);
    QIP_ASSERT(src.has_value());
    cache_.bfs(graph, *src, max_depth,
               [&](std::uint32_t r, std::uint32_t d) { fn(graph.ids[r], d); });
  }

  bool reachable(NodeId from, NodeId to) const {
    return hop_distance(from, to).has_value();
  }

  /// Members of the connected component containing `id` (includes `id`),
  /// sorted by id.
  std::vector<NodeId> component_of(NodeId id) const;

  /// Same, without the copy (the cached partition's group).
  const std::vector<NodeId>& component_view(NodeId id) const;

  /// All connected components, each sorted, ordered by smallest member.
  std::vector<std::vector<NodeId>> components() const;

  /// Same, without the copy (memoized per epoch).
  const std::vector<std::vector<NodeId>>& components_view() const;

  /// Greatest hop distance from `id` to any node in its component.
  std::uint32_t eccentricity(NodeId id) const;

 private:
  /// Uncached reference implementation of the BFS queries: grid query +
  /// sort per visited node.  `fn(node, hops)` runs in discovery order.
  template <typename Fn>
  void bfs_uncached(NodeId from, std::uint32_t max_depth, Fn&& fn) const;

  std::vector<NodeId> neighbors_uncached(NodeId id) const;
  std::optional<std::uint32_t> hop_distance_uncached(NodeId from,
                                                     NodeId to) const;

  Rect area_;
  double range_;
  GridIndex index_;
  bool cache_enabled_;
  // The cache holds no back-reference (methods take the index), keeping
  // Topology movable; mutable because queries are logically const.
  mutable TopologyCache cache_;
  // Return slots for the *_view accessors when the cache is off.
  mutable std::vector<NodeId> scratch_nbrs_;
  mutable std::vector<std::pair<NodeId, std::uint32_t>> scratch_khop_;
  mutable std::vector<NodeId> scratch_comp_;
  mutable std::vector<std::vector<NodeId>> scratch_comps_;
};

template <typename Fn>
void Topology::bfs_uncached(NodeId from, std::uint32_t max_depth,
                            Fn&& fn) const {
  // Discovery distances double as the visited set; the frontier carries
  // each node's distance so the loop never re-reads the map (a plain
  // `dist[u]` would default-insert on a logic slip and mask missing-key
  // bugs).
  std::unordered_map<NodeId, std::uint32_t> dist;
  dist.emplace(from, 0);
  fn(from, 0);
  std::vector<std::pair<NodeId, std::uint32_t>> frontier{{from, 0}};
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const auto [u, d] = frontier[head];
    if (d == max_depth) continue;
    for (NodeId v : neighbors_uncached(u)) {
      QIP_ASSERT_MSG(v != u, "self-loop in adjacency of node " << u);
      if (!dist.emplace(v, d + 1).second) continue;
      fn(v, d + 1);
      frontier.emplace_back(v, d + 1);
    }
  }
}

}  // namespace qip
