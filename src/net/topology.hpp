// Wireless connectivity model: unit-disk graph over node positions.
//
// Two nodes are neighbors iff their distance is at most the transmission
// range (the paper's model, §VI-A).  The topology answers the queries the
// protocol and transport need: one-hop neighbors, k-hop neighborhoods, BFS
// hop distances / shortest paths, and connected components (for partition
// experiments).  Positions are indexed in a uniform grid so neighbor lookup
// is O(1) expected.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "geom/grid_index.hpp"
#include "geom/rect.hpp"
#include "net/node_id.hpp"

namespace qip {

class Topology {
 public:
  Topology(Rect area, double transmission_range);

  const Rect& area() const { return area_; }
  double range() const { return range_; }

  void add_node(NodeId id, const Point& pos);
  void remove_node(NodeId id);
  void move_node(NodeId id, const Point& pos);
  bool has_node(NodeId id) const { return index_.contains(id); }
  const Point& position(NodeId id) const { return index_.position(id); }
  std::size_t node_count() const { return index_.size(); }
  std::vector<NodeId> all_nodes() const;

  /// One-hop neighbors of `id` (distance <= range, excluding `id`).
  std::vector<NodeId> neighbors(NodeId id) const;

  /// True iff at least one node lies within transmission range of `p`.
  bool covered(const Point& p) const;

  /// All nodes within `k` hops of `id`, excluding `id`, paired with their hop
  /// distance (sorted by id for determinism).
  std::vector<std::pair<NodeId, std::uint32_t>> k_hop_neighbors(
      NodeId id, std::uint32_t k) const;

  /// BFS hop distance, or nullopt if unreachable.
  std::optional<std::uint32_t> hop_distance(NodeId from, NodeId to) const;

  /// Hop distances from `from` to every reachable node (including itself at
  /// hop 0).
  std::unordered_map<NodeId, std::uint32_t> hop_distances_from(
      NodeId from) const;

  bool reachable(NodeId from, NodeId to) const {
    return hop_distance(from, to).has_value();
  }

  /// Members of the connected component containing `id` (includes `id`),
  /// sorted by id.
  std::vector<NodeId> component_of(NodeId id) const;

  /// All connected components, each sorted, ordered by smallest member.
  std::vector<std::vector<NodeId>> components() const;

  /// Greatest hop distance from `id` to any node in its component.
  std::uint32_t eccentricity(NodeId id) const;

 private:
  Rect area_;
  double range_;
  GridIndex index_;
};

}  // namespace qip
