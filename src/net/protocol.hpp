// Common interface all autoconfiguration protocols implement.
//
// The experiment harness drives QIP and every baseline through this
// interface: it adds a node to the topology, announces its entry, runs the
// simulator, and later announces graceful departures (protocol messages run)
// or abrupt vanishing (no messages — the node is simply gone, as when a
// battery dies).  Per-node configuration outcomes are recorded here so
// latency figures read uniformly across protocols.
//
// Lifecycle contract (enforced by the harness):
//   1. topology.add_node(id, pos)        — radio appears
//   2. proto.node_entered(id)            — protocol begins configuring
//   3. [mobility ticks; proto.on_mobility_tick() after each]
//   4a. proto.node_departing(id)         — graceful: protocol sends farewells
//       ... settle ...; topology.remove_node(id); proto.node_left(id)
//   4b. topology.remove_node(id); proto.node_vanished(id)   — abrupt
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "addr/ip_address.hpp"
#include "net/node_id.hpp"
#include "net/transport.hpp"
#include "sim/sim_context.hpp"
#include "util/rng.hpp"

namespace qip {

/// Outcome of one node's (latest) configuration attempt.
struct ConfigRecord {
  bool success = false;
  IpAddress address{};
  /// Critical-path hops from the first request transmission until the
  /// requestor held its address (§VI-B's "configuration time").
  std::uint64_t latency_hops = 0;
  /// Quorum-collection / flooding rounds needed (1 = first try).
  std::uint32_t attempts = 0;
  SimTime requested_at = 0.0;
  SimTime completed_at = 0.0;
};

class AutoconfProtocol {
 public:
  AutoconfProtocol(Transport& transport, Rng& rng)
      : transport_(transport), rng_(rng) {}
  virtual ~AutoconfProtocol() = default;
  AutoconfProtocol(const AutoconfProtocol&) = delete;
  AutoconfProtocol& operator=(const AutoconfProtocol&) = delete;

  virtual std::string name() const = 0;

  /// The node is in the topology and wants an address.
  virtual void node_entered(NodeId id) = 0;

  /// Graceful departure begins: the protocol returns addresses / hands off
  /// state.  The node stays in the topology until node_left().
  virtual void node_departing(NodeId id) = 0;

  /// The node has physically left after a graceful departure.
  virtual void node_left(NodeId id) = 0;

  /// Abrupt departure: the node is already out of the topology and said
  /// nothing.  Only the node's own in-memory state is discarded; peers keep
  /// whatever (now possibly stale) state they hold.
  virtual void node_vanished(NodeId id) = 0;

  /// Invoked after each mobility tick (location-update logic hooks here).
  virtual void on_mobility_tick() {}

  /// Partition-domain tag for the uniqueness auditor: at every instant, two
  /// nodes sharing a connected component AND this tag must hold distinct
  /// addresses.  The default (one domain per run) suits protocols without
  /// merge-pending semantics; QIP overrides with its network id, because two
  /// healed-but-not-yet-merged networks legitimately hold conflicting
  /// addresses until the merge procedure resolves them (§V-C).
  virtual std::uint64_t audit_domain(NodeId) const { return 0; }

  /// Whether the uniqueness auditor should enforce duplicate-freedom for
  /// this protocol.  True for allocation schemes that promise unique
  /// addresses at every instant (QIP, buddy, C-tree, strong DAD).  False
  /// for detection/tolerance schemes whose *design* admits duplicates —
  /// WeakDAD routes around them, PDAD flags them after the fact, Boleng
  /// resolves them at the beacon census — and for MANETconf, whose modeled
  /// concurrent-initiator race can assign one candidate twice (the paper's
  /// initiator mutual exclusion is not simulated).  Opted-out protocols
  /// still get the auditor's leak checks.
  virtual bool audit_uniqueness() const { return true; }

  bool configured(NodeId id) const {
    auto it = records_.find(id);
    return it != records_.end() && it->second.success;
  }

  virtual std::optional<IpAddress> address_of(NodeId id) const {
    auto it = records_.find(id);
    if (it == records_.end() || !it->second.success) return std::nullopt;
    return it->second.address;
  }

  const ConfigRecord* config_record(NodeId id) const {
    auto it = records_.find(id);
    return it == records_.end() ? nullptr : &it->second;
  }

  Transport& transport() { return transport_; }
  const Transport& transport() const { return transport_; }

 protected:
  Simulator& sim() { return transport_.sim(); }
  Topology& topology() { return transport_.topology(); }
  const Topology& topology() const { return transport_.topology(); }
  Rng& rng() { return rng_; }

  /// The simulation context this protocol's world runs in: trace events and
  /// metrics land here instead of any process-global.
  SimContext& ctx() const { return transport_.ctx(); }
  /// Shadows the namespace-scope default so QIP_LOG statements inside
  /// protocol code route to the context's logger (see util/logging.hpp).
  Logger& qip_active_logger() const { return ctx().logger(); }

  ConfigRecord& record_for(NodeId id) { return records_[id]; }
  void drop_record(NodeId id) { records_.erase(id); }

 private:
  Transport& transport_;
  Rng& rng_;
  std::unordered_map<NodeId, ConfigRecord> records_;
};

}  // namespace qip
