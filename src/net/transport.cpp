#include "net/transport.hpp"

#include "util/assert.hpp"

namespace qip {

Transport::Transport(Simulator& sim, Topology& topology, MessageStats& stats,
                     SimTime per_hop_delay)
    : sim_(sim),
      topology_(topology),
      stats_(stats),
      per_hop_delay_(per_hop_delay) {
  QIP_ASSERT(per_hop_delay >= 0.0);
}

void Transport::deliver_later(NodeId to, std::uint32_t hops,
                              Receiver on_deliver) {
  QIP_ASSERT(on_deliver != nullptr);
  sim_.after(static_cast<SimTime>(hops) * per_hop_delay_,
             [this, to, hops, fn = std::move(on_deliver)]() {
               // The destination may have departed while the message was in
               // flight; a vanished radio hears nothing.
               if (topology_.has_node(to)) fn(to, hops);
             });
}

std::optional<std::uint32_t> Transport::unicast(NodeId from, NodeId to,
                                                Traffic t,
                                                Receiver on_deliver) {
  // A sender that already left the field cannot transmit (protocol timers
  // can fire in the same instant a node departs).
  if (!topology_.has_node(from) || !topology_.has_node(to))
    return std::nullopt;
  const auto hops = topology_.hop_distance(from, to);
  if (!hops) return std::nullopt;
  stats_.record(t, *hops);
  deliver_later(to, *hops, std::move(on_deliver));
  return hops;
}

std::vector<NodeId> Transport::local_broadcast(NodeId from, Traffic t,
                                               Receiver on_deliver) {
  if (!topology_.has_node(from)) return {};
  auto heard = topology_.neighbors(from);
  stats_.record(t, 1);  // one transmission regardless of audience size
  for (NodeId n : heard) deliver_later(n, 1, on_deliver);
  return heard;
}

std::vector<NodeId> Transport::flood(NodeId from, std::uint32_t radius,
                                     Traffic t, Receiver on_deliver) {
  if (!topology_.has_node(from)) return {};
  QIP_ASSERT(radius >= 1);
  auto in_range = topology_.k_hop_neighbors(from, radius);
  // Transmissions: the sender plus every node that relays (distance < radius).
  std::uint64_t transmissions = 1;
  for (const auto& [node, d] : in_range)
    if (d < radius) ++transmissions;
  stats_.record(t, transmissions, /*messages=*/1);
  std::vector<NodeId> reached;
  reached.reserve(in_range.size());
  for (const auto& [node, d] : in_range) {
    reached.push_back(node);
    deliver_later(node, d, on_deliver);
  }
  return reached;
}

std::vector<NodeId> Transport::flood_component(NodeId from, Traffic t,
                                               Receiver on_deliver) {
  if (!topology_.has_node(from)) return {};
  const std::uint32_t ecc = topology_.eccentricity(from);
  if (ecc == 0) {
    // Isolated sender: one futile transmission.
    stats_.record(t, 1, 1);
    return {};
  }
  return flood(from, ecc, t, std::move(on_deliver));
}

}  // namespace qip
