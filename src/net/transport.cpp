#include "net/transport.hpp"

#include "obs/profile.hpp"
#include "sim/sim_context.hpp"
#include "util/assert.hpp"

namespace qip {

namespace {
// All transport trace events live behind ctx().tracing_on() and draw no
// randomness, so traced runs stay byte-identical to untraced ones.
void trace_drop(obs::TraceRecorder& rec, double now, NodeId to,
                const char* reason) {
  rec.instant(now, "drop", "net.drop", to, {{"reason", reason}});
}
}  // namespace

Transport::Transport(Simulator& sim, Topology& topology, MessageStats& stats,
                     SimTime per_hop_delay)
    : sim_(sim),
      topology_(topology),
      stats_(stats),
      per_hop_delay_(per_hop_delay) {
  QIP_ASSERT(per_hop_delay >= 0.0);
}

bool Transport::can_transmit(NodeId id) const {
  if (!topology_.has_node(id)) return false;
  if (faults_active() && !faults_->node_up(id, sim_.now())) {
    faults_->note_blocked_send();
    if (ctx().tracing_on()) {
      trace_drop(ctx().recorder(), sim_.now(), id, "send_blocked");
    }
    return false;
  }
  return true;
}

void Transport::schedule_delivery(NodeId to, std::uint32_t hops, SimTime extra,
                                  Receiver on_deliver) {
  sim_.post(static_cast<SimTime>(hops) * per_hop_delay_ + extra,
             [this, to, hops, fn = std::move(on_deliver)]() mutable {
               // The destination may have departed while the message was in
               // flight; a vanished radio hears nothing.
               if (!topology_.has_node(to)) {
                 stats_.note_dropped_in_flight();
                 if (ctx().tracing_on())
                   trace_drop(ctx().recorder(), sim_.now(), to,
                              "in_flight_departed");
                 return;
               }
               // Likewise a radio that crashed after the send instant.
               if (faults_active() && !faults_->node_up(to, sim_.now())) {
                 faults_->note_blackout();
                 if (ctx().tracing_on())
                   trace_drop(ctx().recorder(), sim_.now(), to,
                              "in_flight_crash");
                 return;
               }
               if (ctx().tracing_on()) {
                 ctx().recorder().instant(
                     sim_.now(), "deliver", "net.rx", to, {{"hops", hops}});
               }
               fn(to, hops);
             });
}

void Transport::deliver_later(NodeId from, NodeId to, std::uint32_t hops,
                              Receiver on_deliver) {
  QIP_ASSERT(static_cast<bool>(on_deliver));
  if (faults_active()) {
    const auto fate = faults_->judge(from, to, sim_.now());
    if (ctx().tracing_on()) {
      if (fate.copies == 0) {
        trace_drop(ctx().recorder(), sim_.now(), to,
                   fate.drop_reason ? fate.drop_reason : "?");
      } else if (fate.copies > 1) {
        ctx().recorder().instant(sim_.now(), "dup", "net.drop", to);
      }
    }
    for (std::uint32_t c = 0; c < fate.copies; ++c) {
      schedule_delivery(to, hops, fate.extra[c], on_deliver);
    }
    return;
  }
  schedule_delivery(to, hops, 0.0, std::move(on_deliver));
}

std::optional<std::uint32_t> Transport::unicast(NodeId from, NodeId to,
                                                Traffic t,
                                                Receiver on_deliver) {
  // A sender that already left the field cannot transmit (protocol timers
  // can fire in the same instant a node departs); a crashed radio is the
  // same, except the transmission attempt is tallied by the injector.
  if (!can_transmit(from) || !topology_.has_node(to)) return std::nullopt;
  const auto hops = topology_.hop_distance(from, to);
  if (!hops) return std::nullopt;
  stats_.record(t, *hops);
  if (ctx().tracing_on()) {
    ctx().recorder().instant(
        sim_.now(), "unicast", "net", from,
        {{"traffic", to_string(t)}, {"to", to}, {"hops", *hops}});
  }
  deliver_later(from, to, *hops, std::move(on_deliver));
  return hops;
}

const std::vector<NodeId>& Transport::local_broadcast_view(
    NodeId from, Traffic t, Receiver on_deliver) {
  reached_.clear();
  if (!can_transmit(from)) return reached_;
  const auto& heard = topology_.neighbors_view(from);
  reached_.assign(heard.begin(), heard.end());
  stats_.record(t, 1);  // one transmission regardless of audience size
  if (ctx().tracing_on()) {
    ctx().recorder().instant(
        sim_.now(), "bcast", "net", from,
        {{"traffic", to_string(t)},
         {"hops", std::uint32_t{1}},
         {"heard", static_cast<std::uint64_t>(reached_.size())}});
  }
  for (NodeId n : reached_) deliver_later(from, n, 1, on_deliver);
  return reached_;
}

const std::vector<NodeId>& Transport::flood_view(NodeId from,
                                                 std::uint32_t radius,
                                                 Traffic t,
                                                 Receiver on_deliver) {
  reached_.clear();
  if (!can_transmit(from)) return reached_;
  QIP_ASSERT(radius >= 1);
  obs::ProfileScope prof("transport_flood", ctx().recorder(), ctx().metrics());
  const auto& in_range = topology_.k_hop_view(from, radius);
  // Transmissions: the sender plus every node that relays (distance < radius).
  std::uint64_t transmissions = 1;
  for (const auto& [node, d] : in_range)
    if (d < radius) ++transmissions;
  stats_.record(t, transmissions, /*messages=*/1);
  if (ctx().tracing_on()) {
    ctx().recorder().instant(
        sim_.now(), "flood", "net", from,
        {{"traffic", to_string(t)},
         {"radius", radius},
         {"hops", transmissions},
         {"reached", static_cast<std::uint64_t>(in_range.size())}});
  }
  reached_.reserve(in_range.size());
  for (const auto& [node, d] : in_range) {
    reached_.push_back(node);
    deliver_later(from, node, d, on_deliver);
  }
  return reached_;
}

const std::vector<NodeId>& Transport::flood_component_view(
    NodeId from, Traffic t, Receiver on_deliver) {
  reached_.clear();
  if (!can_transmit(from)) return reached_;
  // The cached components partition answers "is the sender alone?" without
  // a BFS; the flood radius then costs one BFS over the same cached
  // adjacency snapshot.
  if (topology_.component_view(from).size() == 1) {
    // Isolated sender: one futile transmission.
    stats_.record(t, 1, 1);
    if (ctx().tracing_on()) {
      ctx().recorder().instant(
          sim_.now(), "flood", "net", from,
          {{"traffic", to_string(t)},
           {"hops", std::uint32_t{1}},
           {"reached", std::uint32_t{0}}});
    }
    return reached_;
  }
  const std::uint32_t ecc = topology_.eccentricity(from);
  return flood_view(from, ecc, t, std::move(on_deliver));
}

}  // namespace qip
