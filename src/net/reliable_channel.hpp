// Ack + retransmit unicast channel over the (possibly lossy) Transport.
//
// The paper's quorum machinery silently assumes its RPCs arrive; once a
// FaultPlan makes the transport lossy, a single lost QUORUM_CFM would stall
// a transaction until a coarse protocol timer fires.  The channel restores
// per-message reliability exactly where a real stack would — under the
// protocol — with the classic loop: sequence number, receiver-side dedup,
// ack, exponential-backoff retransmit, capped retries.
//
// Cost honesty: every retransmission and every ack is a real unicast through
// the metered Transport, charged to the same Traffic category as the
// original message, so overhead figures include what reliability costs.
// MessageStats additionally tallies retransmissions/acks so benches can
// break that share out.
//
// Pass-through rule: when the transport has no active fault plan (the
// paper's reliable model) — or the channel is force-disabled — send() is a
// plain unicast with zero added state, messages, or RNG draws, keeping
// fault-free runs byte-identical to the seed behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "net/transport.hpp"

namespace qip {

struct ReliableParams {
  /// Deadline for the first ack; doubles (× backoff) per retry.  The default
  /// comfortably covers a multi-hop round trip at the default per-hop delay.
  SimTime retry_timeout = 0.08;
  double backoff = 2.0;
  /// Retransmissions after the initial attempt before giving up.
  std::uint32_t max_retries = 5;
};

class ReliableChannel {
 public:
  using Receiver = Transport::Receiver;

  explicit ReliableChannel(Transport& transport, ReliableParams params = {});
  ~ReliableChannel();
  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Force-disable (tests measuring what reliability buys set this false).
  void set_enabled(bool on) { enabled_ = on; }
  /// Reliability engages only when it has something to fix: enabled AND the
  /// transport's fault plan is active.
  bool active() const { return enabled_ && transport_.faults_active(); }

  /// Reliable unicast.  Returns the first attempt's hop count, or nullopt
  /// when `to` is unreachable right now (no retry state is kept then — the
  /// caller sees the same synchronous failure as a raw unicast).  Once the
  /// first copy is on the wire the channel retransmits on ack timeout until
  /// `max_retries` is exhausted, then calls `on_give_up` (if any).
  /// `on_deliver` runs at most once at the receiver (dedup by sequence).
  std::optional<std::uint32_t> send(NodeId from, NodeId to, Traffic traffic,
                                    Receiver on_deliver,
                                    std::function<void()> on_give_up = {});

  // -- Introspection ---------------------------------------------------------
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t acks_received() const { return acks_received_; }
  std::uint64_t gave_up() const { return gave_up_; }
  std::uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }
  std::size_t in_flight() const { return pending_.size(); }
  /// Exhausted-retry give-ups toward one destination — the channel-level
  /// symptom of a peer that accepts routes but never acks.  Hardened
  /// engines read this as corroborating evidence against a suspect.
  std::uint64_t gave_up_to(NodeId to) const {
    const auto it = gave_up_by_dest_.find(to);
    return it == gave_up_by_dest_.end() ? 0 : it->second;
  }

 private:
  struct Pending {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    Traffic traffic{};
    Receiver on_deliver;
    std::function<void()> on_give_up;
    std::uint32_t tries = 0;  ///< attempts already transmitted
    SimTime timeout = 0.0;    ///< next ack deadline
    EventHandle timer;
  };

  void attempt(std::uint64_t seq);
  void arm_timer(std::uint64_t seq);
  void on_data(std::uint64_t seq, std::uint32_t hops);
  void on_ack(std::uint64_t seq);

  Transport& transport_;
  ReliableParams params_;
  bool enabled_ = true;
  std::unordered_map<std::uint64_t, Pending> pending_;
  /// Sequence numbers already delivered to their receiver (dedup).
  std::unordered_set<std::uint64_t> delivered_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t gave_up_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::unordered_map<NodeId, std::uint64_t> gave_up_by_dest_;
};

}  // namespace qip
