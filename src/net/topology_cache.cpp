#include "net/topology_cache.hpp"

#include "obs/profile.hpp"
#include "sim/sim_context.hpp"
#include "util/assert.hpp"

namespace qip {

namespace {

std::pair<NodeId, NodeId> ordered_pair(NodeId a, NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

const std::vector<NodeId>& TopologyCache::neighbors(const GridIndex& index,
                                                    NodeId id) {
  AdjRow& row = adj_[id];
  const Point& pos = index.position(id);
  if (row.epoch == 0 || index.window_version(pos, range_) > row.epoch) {
    index.query_into(pos, range_, static_cast<std::int64_t>(id), row.nbrs);
    std::sort(row.nbrs.begin(), row.nbrs.end());
    // The unit-disk adjacency must be simple: strictly ascending (a
    // duplicated id in the index would corrupt every BFS on top) and never
    // containing the node itself.
    QIP_ASSERT(std::adjacent_find(row.nbrs.begin(), row.nbrs.end()) ==
               row.nbrs.end());
    QIP_ASSERT(!std::binary_search(row.nbrs.begin(), row.nbrs.end(), id));
    row.epoch = index.epoch();
  }
  return row.nbrs;
}

// -- dirty-edge journal ------------------------------------------------------

void TopologyCache::journal_push(JournalEvent ev) {
  if (journal_overflow_) return;
  if (journal_.size() >= kMaxJournal) {
    // Past this point a full rebuild is cheaper than replaying the patch,
    // so stop recording and let csr() take the rebuild path.
    journal_.clear();
    journal_overflow_ = true;
    return;
  }
  journal_.push_back(ev);
}

void TopologyCache::note_add(NodeId id, const Point& pos) {
  if (csr_epoch_ == kNoEpoch) return;  // no snapshot to patch yet
  if (!incremental_) {
    journal_overflow_ = true;
    return;
  }
  journal_push({JournalEvent::kAdd, id, pos});
}

void TopologyCache::note_remove(NodeId id) {
  if (csr_epoch_ == kNoEpoch) return;
  if (!incremental_) {
    journal_overflow_ = true;
    return;
  }
  journal_push({JournalEvent::kRemove, id, Point{0.0, 0.0}});
}

void TopologyCache::note_move(NodeId id, const Point& new_pos) {
  if (csr_epoch_ == kNoEpoch) return;
  if (!incremental_) {
    journal_overflow_ = true;
    return;
  }
  journal_push({JournalEvent::kMove, id, new_pos});
}

void TopologyCache::reset_comp_diffs() {
  added_ids_.clear();
  edge_adds_.clear();
  edge_removes_.clear();
  removal_ids_.clear();
  removal_nbrs_.clear();
  removal_spans_.clear();
}

// -- CSR snapshot ------------------------------------------------------------

const TopologyCache::Csr& TopologyCache::csr(const GridIndex& index) {
  if (csr_epoch_ == index.epoch()) return csr_;
  SimContext& c = ctx_ ? *ctx_ : process_context();
  bool patched = false;
  if (incremental_ && csr_epoch_ != kNoEpoch && !journal_overflow_) {
    obs::ProfileScope prof("topo_csr_patch", c.recorder(), c.metrics());
    patched = try_patch(index);
    if (patched) ++incremental_patches_;
  }
  if (!patched) {
    obs::ProfileScope prof("topo_csr_rebuild", c.recorder(), c.metrics());
    rebuild_csr(index);
  }
  clear_journal();
  csr_epoch_ = index.epoch();
  return csr_;
}

void TopologyCache::rebuild_csr(const GridIndex& index) {
  ++full_rebuilds_;
  auto& ids = csr_.ids;
  ids.clear();
  ids.reserve(index.size());
  index.for_each([&](NodeId id, const Point&) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  const auto n = static_cast<std::uint32_t>(ids.size());
  csr_.live.assign(n, 1);
  csr_.live_count = n;
  // Driver-assigned ids are sequential, so a direct-indexed rank table
  // nearly always beats a per-edge binary search; fall back only once the
  // table itself would be big AND mostly holes (patching requires the
  // table, so the absolute cap keeps long-lived monotone-id churn on the
  // incremental path).
  csr_.rank_tbl.clear();
  const bool dense =
      n != 0 && (ids.back() < 4 * std::size_t{n} + 64 ||
                 std::size_t{ids.back()} < kMaxRankTblId);
  if (dense) {
    csr_.rank_tbl.assign(std::size_t{ids.back()} + 1, kUnreached);
    for (std::uint32_t r = 0; r < n; ++r) csr_.rank_tbl[ids[r]] = r;
  }
  csr_.row_start.resize(n);
  csr_.row_len.resize(n);
  csr_.row_cap.resize(n);
  csr_.pool.clear();
  for (std::uint32_t r = 0; r < n; ++r) {
    const std::vector<NodeId>& fresh = neighbors(index, ids[r]);
    const auto len = static_cast<std::uint32_t>(fresh.size());
    csr_.row_start[r] = static_cast<std::uint32_t>(csr_.pool.size());
    csr_.row_len[r] = len;
    csr_.row_cap[r] = len + kRowSlack;
    csr_.pool.insert(csr_.pool.end(), fresh.begin(), fresh.end());
    csr_.pool.resize(csr_.pool.size() + kRowSlack);
  }
  pool_garbage_ = 0;
  // Slots were renumbered, so the slot-indexed components bookkeeping (and
  // any pending repair diff) is void.
  comps_epoch_ = kNoEpoch;
  comps_base_valid_ = false;
  reset_comp_diffs();
  // Adjacency rows of long-departed nodes would otherwise accumulate across
  // id churn; prune opportunistically once they dominate the table.
  if (adj_.size() > 2 * std::size_t{n} + 64) {
    for (auto it = adj_.begin(); it != adj_.end();) {
      if (std::binary_search(ids.begin(), ids.end(), it->first)) {
        ++it;
      } else {
        it = adj_.erase(it);
      }
    }
  }
}

bool TopologyCache::try_patch(const GridIndex& index) {
  if (journal_.empty()) return false;  // untracked mutation: play it safe
  if (csr_.ids.empty() || csr_.rank_tbl.empty()) return false;
  // Compaction triggers: tombstones slow every dist_ reset, dead pool spans
  // bloat memory; a full rebuild clears both.
  if (csr_.ids.size() - csr_.live_count > csr_.live_count) return false;
  if (pool_garbage_ * 2 > csr_.pool.size() + 1024) return false;

  // ---- read-only scan: candidate seeds, new slots, patch preconditions ----
  //
  // Candidate rows (a provable superset of every changed row): the event
  // nodes themselves, every current node within range of a journaled
  // appearance position, and every member of an event node's pre-patch row.
  // Proof sketch for a changed pair (x, y): at least one endpoint — say y —
  // is an event node.  If x gained y, y now sits at its last journaled
  // position, whose disk query finds x (x stationary, else x is an event
  // node itself).  If x lost y, either y's pre-patch row recorded x, or y
  // was never snapshotted — then x gained y at some journaled position p
  // and, being stationary since, still sits inside p's disk query.
  candidates_.clear();
  ev_ids_.clear();
  new_ids_.clear();
  for (const JournalEvent& ev : journal_) {
    ev_ids_.push_back(ev.id);
    if (ev.kind != JournalEvent::kRemove) {
      index.query_into(ev.pos, range_, -1, cand_buf_);
      candidates_.insert(candidates_.end(), cand_buf_.begin(), cand_buf_.end());
    }
  }
  std::sort(ev_ids_.begin(), ev_ids_.end());
  ev_ids_.erase(std::unique(ev_ids_.begin(), ev_ids_.end()), ev_ids_.end());
  for (NodeId id : ev_ids_) {
    const std::uint32_t slot = csr_.slot_of(id);
    const bool present = index.contains(id);
    if (slot != kUnreached) {
      candidates_.insert(candidates_.end(), csr_.row_begin(slot),
                         csr_.row_end(slot));
      if (present) candidates_.push_back(id);
    } else if (present) {
      if (csr_.slot_any(id) != kUnreached) return false;  // resurrected id
      new_ids_.push_back(id);  // ev_ids_ sorted => new_ids_ sorted
      candidates_.push_back(id);
    }
  }
  if (!new_ids_.empty()) {
    // Appending keeps the slot-order-by-id invariant only for strictly
    // larger ids, and the direct-index rank table must stay affordable
    // (ids are driver-assigned and sequential, so in practice it is).
    if (new_ids_.front() <= csr_.ids.back()) return false;
    const std::size_t total = csr_.ids.size() + new_ids_.size();
    if (std::size_t{new_ids_.back()} >= 4 * total + 64 &&
        std::size_t{new_ids_.back()} >= kMaxRankTblId) {
      return false;
    }
  }
  std::sort(candidates_.begin(), candidates_.end());
  candidates_.erase(std::unique(candidates_.begin(), candidates_.end()),
                    candidates_.end());
  // No candidate-count bail: candidates are deduped so there are at most n
  // of them, and recomputing a row costs the same here as in a rebuild —
  // but a patch preserves the components-repair base, a rebuild does not.

  // ---- mutation: tombstone removals (capturing former rows) --------------
  for (NodeId id : ev_ids_) {
    if (index.contains(id)) continue;
    const std::uint32_t slot = csr_.slot_of(id);
    if (slot == kUnreached) continue;  // added and removed within the journal
    if (comps_base_valid_) {
      removal_ids_.push_back(id);
      const auto b = static_cast<std::uint32_t>(removal_nbrs_.size());
      removal_nbrs_.insert(removal_nbrs_.end(), csr_.row_begin(slot),
                           csr_.row_end(slot));
      removal_spans_.emplace_back(
          b, static_cast<std::uint32_t>(removal_nbrs_.size()));
    }
    pool_garbage_ += csr_.row_cap[slot];
    csr_.live[slot] = 0;
    csr_.row_len[slot] = 0;
    csr_.row_cap[slot] = 0;
    csr_.rank_tbl[id] = kUnreached;
    --csr_.live_count;
  }

  // ---- mutation: append slots for new nodes ------------------------------
  for (NodeId id : new_ids_) {
    const auto slot = static_cast<std::uint32_t>(csr_.ids.size());
    csr_.ids.push_back(id);
    csr_.live.push_back(1);
    csr_.row_start.push_back(static_cast<std::uint32_t>(csr_.pool.size()));
    csr_.row_len.push_back(0);
    csr_.row_cap.push_back(0);
    if (std::size_t{id} >= csr_.rank_tbl.size()) {
      csr_.rank_tbl.resize(std::size_t{id} + 1, kUnreached);
    }
    csr_.rank_tbl[id] = slot;
    ++csr_.live_count;
  }

  // ---- mutation: recompute candidate rows, collecting edge diffs ---------
  for (NodeId cand : candidates_) {
    if (!index.contains(cand)) continue;  // handled as a removal above
    const std::uint32_t slot = csr_.slot_of(cand);
    QIP_ASSERT(slot != kUnreached);
    const std::vector<NodeId>& fresh = neighbors(index, cand);
    const NodeId* ob = csr_.row_begin(slot);
    const NodeId* oe = csr_.row_end(slot);
    if (fresh.size() == static_cast<std::size_t>(oe - ob) &&
        std::equal(fresh.begin(), fresh.end(), ob)) {
      continue;
    }
    if (comps_base_valid_) {
      // Two-pointer diff; every changed edge shows up in both endpoints'
      // rows, so the repair pass dedups the pairs.
      auto fi = fresh.begin();
      const NodeId* oi = ob;
      while (fi != fresh.end() || oi != oe) {
        if (oi == oe || (fi != fresh.end() && *fi < *oi)) {
          edge_adds_.push_back(ordered_pair(cand, *fi));
          ++fi;
        } else if (fi == fresh.end() || *oi < *fi) {
          edge_removes_.push_back(ordered_pair(cand, *oi));
          ++oi;
        } else {
          ++fi;
          ++oi;
        }
      }
    }
    patch_row(slot, fresh);
  }

  if (comps_base_valid_) {
    added_ids_.insert(added_ids_.end(), new_ids_.begin(), new_ids_.end());
    if (edge_adds_.size() + edge_removes_.size() > kMaxPendingEdges ||
        removal_ids_.size() > kMaxPendingRemovals) {
      comps_base_valid_ = false;
      reset_comp_diffs();
    }
  }
  return true;
}

void TopologyCache::patch_row(std::uint32_t slot,
                              const std::vector<NodeId>& fresh) {
  const auto len = static_cast<std::uint32_t>(fresh.size());
  if (len <= csr_.row_cap[slot]) {
    std::copy(fresh.begin(), fresh.end(),
              csr_.pool.begin() + csr_.row_start[slot]);
    csr_.row_len[slot] = len;
    return;
  }
  pool_garbage_ += csr_.row_cap[slot];
  csr_.row_start[slot] = static_cast<std::uint32_t>(csr_.pool.size());
  csr_.row_len[slot] = len;
  csr_.row_cap[slot] = len + kRowSlack;
  csr_.pool.insert(csr_.pool.end(), fresh.begin(), fresh.end());
  csr_.pool.resize(csr_.pool.size() + kRowSlack);
}

// -- components --------------------------------------------------------------

const TopologyCache::Components& TopologyCache::components(
    const GridIndex& index) {
  if (comps_epoch_ == index.epoch()) return comps_;
  SimContext& c = ctx_ ? *ctx_ : process_context();
  csr(index);  // patch or rebuild first; may void comps_base_valid_
  if (comps_base_valid_ && comps_epoch_ != kNoEpoch) {
    obs::ProfileScope prof("topo_components_repair", c.recorder(),
                           c.metrics());
    if (repair_components()) {
      ++component_repairs_;
      reset_comp_diffs();
      comps_epoch_ = index.epoch();
      return comps_;
    }
    // comps_ is half-mutated garbage now; the rebuild below overwrites it.
    ++repair_bailouts_;
    comps_base_valid_ = false;
  }
  obs::ProfileScope prof("topo_components_rebuild", c.recorder(), c.metrics());
  rebuild_components();
  comps_base_valid_ = true;
  reset_comp_diffs();
  comps_epoch_ = index.epoch();
  return comps_;
}

void TopologyCache::rebuild_components() {
  const auto n = static_cast<std::uint32_t>(csr_.ids.size());
  comps_.groups.clear();
  comps_.group_of.assign(n, kUnreached);
  for (std::uint32_t r = 0; r < n; ++r) {
    if (!csr_.live[r] || comps_.group_of[r] != kUnreached) continue;
    const auto group = static_cast<std::uint32_t>(comps_.groups.size());
    queue_.clear();
    queue_.push_back(r);
    comps_.group_of[r] = group;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const std::uint32_t u = queue_[head];
      for (const NodeId* p = csr_.row_begin(u); p != csr_.row_end(u); ++p) {
        const std::uint32_t v = csr_.slot_of(*p);
        if (comps_.group_of[v] != kUnreached) continue;
        comps_.group_of[v] = group;
        queue_.push_back(v);
      }
    }
    // Slots ascend with ids, so sorting slots sorts the members; the outer
    // scan ascends too, ordering groups by smallest member — both exactly
    // as the uncached path produces them.
    std::sort(queue_.begin(), queue_.end());
    std::vector<NodeId> members;
    members.reserve(queue_.size());
    for (std::uint32_t m : queue_) members.push_back(csr_.ids[m]);
    comps_.groups.push_back(std::move(members));
  }
}

bool TopologyCache::repair_components() {
  std::size_t work = 0;
  comps_.group_of.resize(csr_.ids.size(), kUnreached);

  // (a) Batch-erase removed members.  Former members of a group can only
  // raise its smallest member, so a filtered group either keeps its
  // position or moves right (erase + re-insert).  Descending order keeps
  // unprocessed group indices stable across those erases.
  if (!removal_ids_.empty()) {
    scratch_pairs_.clear();
    for (NodeId id : removal_ids_) {
      const std::uint32_t slot = csr_.slot_any(id);
      QIP_ASSERT(slot != kUnreached);
      const std::uint32_t g = comps_.group_of[slot];
      if (g >= comps_.groups.size()) continue;  // was never in the base
      scratch_pairs_.emplace_back(g, id);
    }
    std::sort(scratch_pairs_.begin(), scratch_pairs_.end());
    for (std::size_t hi = scratch_pairs_.size(); hi > 0;) {
      const std::size_t lo_group = scratch_pairs_[hi - 1].first;
      std::size_t lo = hi;
      while (lo > 0 && scratch_pairs_[lo - 1].first == lo_group) --lo;
      auto& members = comps_.groups[lo_group];
      const NodeId old_front = members.front();
      auto out = members.begin();
      std::size_t next = lo;
      for (auto in = members.begin(); in != members.end(); ++in) {
        if (next < hi && *in == scratch_pairs_[next].second) {
          ++next;
          continue;
        }
        *out++ = *in;
      }
      QIP_ASSERT(next == hi);
      members.erase(out, members.end());
      work += members.size() + (hi - lo);
      if (members.empty()) {
        if (!erase_group(lo_group, &work)) return false;
      } else if (members.front() != old_front &&
                 lo_group + 1 < comps_.groups.size() &&
                 comps_.groups[lo_group + 1].front() < members.front()) {
        std::vector<NodeId> moved;
        moved.swap(members);
        if (!erase_group(lo_group, &work)) return false;
        if (!insert_group(std::move(moved), &work)) return false;
      }
      hi = lo;
    }
  }

  // (b) Singletons for nodes added since the base.  Their ids exceed every
  // base id (patch precondition), so appending keeps the group order.
  for (NodeId id : added_ids_) {
    const std::uint32_t slot = csr_.slot_of(id);
    if (slot == kUnreached) continue;  // added then removed again
    comps_.group_of[slot] = static_cast<std::uint32_t>(comps_.groups.size());
    comps_.groups.push_back({id});
    ++work;
  }

  // (c) Merges.  Groups are ordered by smallest member, so the absorber is
  // simply the smaller group index and its position never changes.
  std::sort(edge_adds_.begin(), edge_adds_.end());
  edge_adds_.erase(std::unique(edge_adds_.begin(), edge_adds_.end()),
                   edge_adds_.end());
  for (const auto& [u, v] : edge_adds_) {
    const std::uint32_t su = csr_.slot_of(u);
    const std::uint32_t sv = csr_.slot_of(v);
    if (su == kUnreached || sv == kUnreached) continue;  // endpoint gone
    const std::uint32_t gu = comps_.group_of[su];
    const std::uint32_t gv = comps_.group_of[sv];
    if (gu == gv) continue;
    const std::uint32_t ga = std::min(gu, gv);
    const std::uint32_t gb = std::max(gu, gv);
    auto& absorber = comps_.groups[ga];
    auto& absorbed = comps_.groups[gb];
    work += absorbed.size();
    for (NodeId m : absorbed) comps_.group_of[csr_.slot_of(m)] = ga;
    if (absorbed.front() > absorber.back()) {
      // The common flash-crowd shape: a fresh high-id singleton joins an
      // established group — a plain append keeps the members sorted.
      absorber.insert(absorber.end(), absorbed.begin(), absorbed.end());
    } else {
      scratch_merge_.clear();
      scratch_merge_.reserve(absorber.size() + absorbed.size());
      std::merge(absorber.begin(), absorber.end(), absorbed.begin(),
                 absorbed.end(), std::back_inserter(scratch_merge_));
      absorber.swap(scratch_merge_);
      work += absorber.size();
    }
    if (!erase_group(gb, &work)) return false;
    if (work > kRepairWorkBudget) return false;
  }

  // (d) Splits.  After (a)-(c) every true component lies inside one group
  // (edges present in the base or added since are all reflected), so the
  // groups form a coarsening; the bounded searches below refine it.  The
  // suspects are the live endpoints of removed edges plus the live former
  // neighbors of removed nodes.  Every genuinely split-off fragment
  // contains a suspect: walk an old-graph path out of the fragment — its
  // first hop either was removed directly (edge record) or led into a
  // since-removed node (former-neighbor record).  Connectivity is
  // transitive across records (two suspects may have been bridged by a
  // third, since-departed node), so the suspects are resolved collectively:
  // a group is intact iff all of its suspects are mutually connected.
  targets_.clear();
  for (const auto& [u, v] : edge_removes_) {
    if (csr_.slot_of(u) != kUnreached) targets_.push_back(u);
    if (csr_.slot_of(v) != kUnreached) targets_.push_back(v);
  }
  for (const auto& [b, e] : removal_spans_) {
    for (std::uint32_t j = b; j < e; ++j) {
      const NodeId nbr = removal_nbrs_[j];
      if (csr_.slot_of(nbr) != kUnreached) targets_.push_back(nbr);
    }
  }
  if (targets_.size() >= 2 && !resolve_targets(&work)) return false;
  return true;
}

bool TopologyCache::resolve_targets(std::size_t* work) {
  std::sort(targets_.begin(), targets_.end());
  targets_.erase(std::unique(targets_.begin(), targets_.end()),
                 targets_.end());
  // In-place "targets_ \= drop" for two sorted vectors.
  const auto prune = [this](const std::vector<NodeId>& drop) {
    auto out = targets_.begin();
    auto di = drop.begin();
    for (auto in = targets_.begin(); in != targets_.end(); ++in) {
      while (di != drop.end() && *di < *in) ++di;
      if (di != drop.end() && *di == *in) continue;
      *out++ = *in;
    }
    targets_.erase(out, targets_.end());
  };
  while (targets_.size() >= 2) {
    const NodeId t0 = targets_.front();
    const std::uint32_t g0 = comps_.group_of[csr_.slot_of(t0)];
    // Targets in other groups were separated by an earlier verified split,
    // so only same-group peers still pose a connectivity question.
    peers_.clear();
    for (std::size_t i = 1; i < targets_.size(); ++i) {
      if (comps_.group_of[csr_.slot_of(targets_[i])] == g0) {
        peers_.push_back(targets_[i]);
      }
    }
    if (peers_.empty()) {
      targets_.erase(targets_.begin());
      continue;
    }
    const ReachOutcome out = bounded_reach(t0);
    if (out == ReachOutcome::kBudget) return false;
    *work += scratch_reach_.size();
    if (out == ReachOutcome::kAllFound) {
      // t0 reaches every same-group peer: all mutually connected, resolved.
      targets_.erase(targets_.begin());
      prune(peers_);
      continue;
    }
    // Frontier exhausted: scratch_reach_ is t0's complete component.  Any
    // target inside it now lives in a fully verified group.
    if (!apply_split(g0, work)) return false;
    prune(scratch_reach_);
    if (*work > kRepairWorkBudget) return false;
  }
  return true;
}

bool TopologyCache::apply_split(std::uint32_t g, std::size_t* work) {
  auto& members = comps_.groups[g];
  // scratch_reach_ is a true component and groups coarsen the true
  // partition, so reach ⊆ members; equal sizes means the group was intact.
  QIP_ASSERT(scratch_reach_.size() <= members.size());
  if (scratch_reach_.size() == members.size()) return true;
  std::vector<NodeId> part(scratch_reach_.begin(), scratch_reach_.end());
  std::vector<NodeId> rest;
  rest.reserve(members.size() - part.size());
  std::set_difference(members.begin(), members.end(), part.begin(),
                      part.end(), std::back_inserter(rest));
  *work += members.size();
  if (!erase_group(g, work)) return false;
  if (!insert_group(std::move(part), work)) return false;
  return insert_group(std::move(rest), work);
}

bool TopologyCache::insert_group(std::vector<NodeId> group,
                                 std::size_t* work) {
  const NodeId front = group.front();
  const auto it = std::lower_bound(
      comps_.groups.begin(), comps_.groups.end(), front,
      [](const std::vector<NodeId>& g, NodeId f) { return g.front() < f; });
  const auto pos = static_cast<std::size_t>(it - comps_.groups.begin());
  comps_.groups.insert(it, std::move(group));
  for (std::size_t j = pos; j < comps_.groups.size(); ++j) {
    for (NodeId m : comps_.groups[j]) {
      comps_.group_of[csr_.slot_of(m)] = static_cast<std::uint32_t>(j);
    }
    *work += comps_.groups[j].size();
  }
  return *work <= kRepairWorkBudget;
}

bool TopologyCache::erase_group(std::size_t g, std::size_t* work) {
  comps_.groups.erase(comps_.groups.begin() + static_cast<std::ptrdiff_t>(g));
  for (std::size_t j = g; j < comps_.groups.size(); ++j) {
    for (NodeId m : comps_.groups[j]) {
      comps_.group_of[csr_.slot_of(m)] = static_cast<std::uint32_t>(j);
    }
    *work += comps_.groups[j].size();
  }
  return *work <= kRepairWorkBudget;
}

TopologyCache::ReachOutcome TopologyCache::bounded_reach(NodeId from) {
  if (stamp_.size() < csr_.ids.size()) stamp_.resize(csr_.ids.size(), 0);
  const std::uint64_t token = ++stamp_token_;
  scratch_reach_.clear();
  bqueue_.clear();
  const std::uint32_t s0 = csr_.slot_of(from);
  stamp_[s0] = token;
  bqueue_.push_back(s0);
  scratch_reach_.push_back(from);
  std::size_t found = 0;
  for (std::size_t head = 0; head < bqueue_.size(); ++head) {
    const std::uint32_t u = bqueue_[head];
    for (const NodeId* p = csr_.row_begin(u); p != csr_.row_end(u); ++p) {
      const std::uint32_t v = csr_.slot_of(*p);
      if (stamp_[v] == token) continue;
      stamp_[v] = token;
      scratch_reach_.push_back(*p);
      if (std::binary_search(peers_.begin(), peers_.end(), *p)) {
        if (++found == peers_.size()) return ReachOutcome::kAllFound;
      }
      if (scratch_reach_.size() > kSplitVisitBudget) {
        return ReachOutcome::kBudget;
      }
      bqueue_.push_back(v);
    }
  }
  std::sort(scratch_reach_.begin(), scratch_reach_.end());
  return ReachOutcome::kExhausted;
}

// -- k-hop -------------------------------------------------------------------

const std::vector<std::pair<NodeId, std::uint32_t>>& TopologyCache::k_hop(
    const GridIndex& index, NodeId id, std::uint32_t k) {
  const std::uint64_t key = (static_cast<std::uint64_t>(id) << 32) | k;
  if (khop_.size() >= kMaxKHopEntries && khop_.find(key) == khop_.end()) {
    khop_.clear();
  }
  KHopEntry& entry = khop_[key];
  if (entry.epoch == index.epoch()) return entry.result;
  entry.result.clear();
  if (csr_epoch_ == index.epoch()) {
    // A current snapshot exists (some unbounded query built it this epoch):
    // ride its dense arrays.
    const auto src = csr_.rank_of(id);
    QIP_ASSERT(src.has_value());
    bfs(csr_, *src, k, [&](std::uint32_t r, std::uint32_t d) {
      if (d > 0) entry.result.emplace_back(csr_.ids[r], d);
    });
  } else {
    // Bounded queries stay local: BFS over the memoized adjacency rows so a
    // 2-/3-hop question never pays for a whole-graph snapshot rebuild.  The
    // visited set is an id-indexed stamp table (ids are driver-dense), so
    // the steady-state re-query allocates nothing.
    bool fast = std::size_t{id} < kIdStampLimit;
    if (fast) {
      const std::uint64_t token = ++id_stamp_token_;
      if (id_stamp_.size() <= id) id_stamp_.resize(std::size_t{id} + 1, 0);
      id_stamp_[id] = token;
      khop_frontier_.clear();
      khop_frontier_.emplace_back(id, 0u);
      for (std::size_t head = 0; fast && head < khop_frontier_.size();
           ++head) {
        const auto [u, d] = khop_frontier_[head];
        if (d == k) continue;
        for (NodeId v : neighbors(index, u)) {
          if (std::size_t{v} >= kIdStampLimit) {
            fast = false;
            break;
          }
          if (id_stamp_.size() <= v) {
            id_stamp_.resize(
                std::max(std::size_t{v} + 1, id_stamp_.size() * 2), 0);
          }
          if (id_stamp_[v] == token) continue;
          id_stamp_[v] = token;
          entry.result.emplace_back(v, d + 1);
          khop_frontier_.emplace_back(v, d + 1);
        }
      }
      if (!fast) entry.result.clear();
    }
    if (!fast) {
      std::unordered_map<NodeId, std::uint32_t> dist{{id, 0}};
      std::vector<std::pair<NodeId, std::uint32_t>> frontier{{id, 0}};
      for (std::size_t head = 0; head < frontier.size(); ++head) {
        const auto [u, d] = frontier[head];
        if (d == k) continue;
        for (NodeId v : neighbors(index, u)) {
          if (!dist.emplace(v, d + 1).second) continue;
          entry.result.emplace_back(v, d + 1);
          frontier.emplace_back(v, d + 1);
        }
      }
    }
  }
  std::sort(entry.result.begin(), entry.result.end());
  entry.epoch = index.epoch();
  return entry.result;
}

std::optional<std::uint32_t> TopologyCache::hop_distance(const Csr& graph,
                                                         std::uint32_t src,
                                                         std::uint32_t dst) {
  if (src == dst) return 0;
  dist_.assign(graph.ids.size(), kUnreached);
  queue_.clear();
  dist_[src] = 0;
  queue_.push_back(src);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const std::uint32_t u = queue_[head];
    const std::uint32_t d = dist_[u];
    for (const NodeId* p = graph.row_begin(u); p != graph.row_end(u); ++p) {
      const std::uint32_t v = graph.slot_of(*p);
      if (dist_[v] != kUnreached) continue;
      dist_[v] = d + 1;
      if (v == dst) return d + 1;
      queue_.push_back(v);
    }
  }
  return std::nullopt;
}

}  // namespace qip
