#include "net/topology_cache.hpp"

#include "obs/profile.hpp"
#include "sim/sim_context.hpp"
#include "util/assert.hpp"

namespace qip {

const std::vector<NodeId>& TopologyCache::neighbors(const GridIndex& index,
                                                    NodeId id) {
  AdjRow& row = adj_[id];
  const Point& pos = index.position(id);
  if (row.epoch == 0 || index.window_version(pos, range_) > row.epoch) {
    index.query_into(pos, range_, static_cast<std::int64_t>(id), row.nbrs);
    std::sort(row.nbrs.begin(), row.nbrs.end());
    // The unit-disk adjacency must be simple: strictly ascending (a
    // duplicated id in the index would corrupt every BFS on top) and never
    // containing the node itself.
    QIP_ASSERT(std::adjacent_find(row.nbrs.begin(), row.nbrs.end()) ==
               row.nbrs.end());
    QIP_ASSERT(!std::binary_search(row.nbrs.begin(), row.nbrs.end(), id));
    row.epoch = index.epoch();
  }
  return row.nbrs;
}

const TopologyCache::Csr& TopologyCache::csr(const GridIndex& index) {
  if (csr_epoch_ == index.epoch()) return csr_;
  SimContext& c = ctx_ ? *ctx_ : process_context();
  obs::ProfileScope prof("topo_csr_rebuild", c.recorder(), c.metrics());
  auto& ids = csr_.ids;
  ids.clear();
  ids.reserve(index.size());
  index.for_each([&](NodeId id, const Point&) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  csr_.offsets.clear();
  csr_.offsets.reserve(ids.size() + 1);
  csr_.offsets.push_back(0);
  csr_.adj.clear();
  // Driver-assigned ids are sequential, so a direct-indexed rank table
  // nearly always beats a per-edge binary search; fall back for sparse ids.
  const bool dense = !ids.empty() && ids.back() < 4 * ids.size() + 64;
  if (dense) {
    rank_table_.assign(ids.back() + 1, kUnreached);
    for (std::uint32_t r = 0; r < ids.size(); ++r) rank_table_[ids[r]] = r;
  }
  for (NodeId id : ids) {
    for (NodeId v : neighbors(index, id)) {
      if (dense) {
        csr_.adj.push_back(rank_table_[v]);
      } else {
        const auto rank = csr_.rank_of(v);
        QIP_ASSERT(rank.has_value());
        csr_.adj.push_back(*rank);
      }
    }
    csr_.offsets.push_back(static_cast<std::uint32_t>(csr_.adj.size()));
  }
  // Adjacency rows of long-departed nodes would otherwise accumulate across
  // id churn; prune opportunistically once they dominate the table.
  if (adj_.size() > 2 * ids.size() + 64) {
    for (auto it = adj_.begin(); it != adj_.end();) {
      if (std::binary_search(ids.begin(), ids.end(), it->first)) {
        ++it;
      } else {
        it = adj_.erase(it);
      }
    }
  }
  csr_epoch_ = index.epoch();
  return csr_;
}

const TopologyCache::Components& TopologyCache::components(
    const GridIndex& index) {
  if (comps_epoch_ == index.epoch()) return comps_;
  SimContext& c = ctx_ ? *ctx_ : process_context();
  obs::ProfileScope prof("topo_components_rebuild", c.recorder(), c.metrics());
  const Csr& graph = csr(index);
  const auto n = static_cast<std::uint32_t>(graph.ids.size());
  comps_.groups.clear();
  comps_.group_of.assign(n, kUnreached);
  for (std::uint32_t r = 0; r < n; ++r) {
    if (comps_.group_of[r] != kUnreached) continue;
    const auto group = static_cast<std::uint32_t>(comps_.groups.size());
    queue_.clear();
    queue_.push_back(r);
    comps_.group_of[r] = group;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const std::uint32_t u = queue_[head];
      for (std::uint32_t i = graph.offsets[u]; i < graph.offsets[u + 1]; ++i) {
        const std::uint32_t v = graph.adj[i];
        if (comps_.group_of[v] != kUnreached) continue;
        comps_.group_of[v] = group;
        queue_.push_back(v);
      }
    }
    // Ranks ascend with ids, so sorting ranks sorts the members; the outer
    // scan ascends too, ordering groups by smallest member — both exactly
    // as the uncached path produces them.
    std::sort(queue_.begin(), queue_.end());
    std::vector<NodeId> members;
    members.reserve(queue_.size());
    for (std::uint32_t m : queue_) members.push_back(graph.ids[m]);
    comps_.groups.push_back(std::move(members));
  }
  comps_epoch_ = index.epoch();
  return comps_;
}

const std::vector<std::pair<NodeId, std::uint32_t>>& TopologyCache::k_hop(
    const GridIndex& index, NodeId id, std::uint32_t k) {
  if (khop_epoch_ != index.epoch()) {
    khop_.clear();
    khop_epoch_ = index.epoch();
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(id) << 32) | k;
  if (auto it = khop_.find(key); it != khop_.end()) return it->second;
  std::vector<std::pair<NodeId, std::uint32_t>> out;
  if (csr_epoch_ == index.epoch()) {
    // A current snapshot exists (some unbounded query built it this epoch):
    // ride its dense arrays.
    const Csr& graph = csr_;
    const auto src = graph.rank_of(id);
    QIP_ASSERT(src.has_value());
    bfs(graph, *src, k, [&](std::uint32_t r, std::uint32_t d) {
      if (d > 0) out.emplace_back(graph.ids[r], d);
    });
  } else {
    // Bounded queries stay local: BFS over the memoized adjacency rows so a
    // 2-/3-hop question never pays for a whole-graph snapshot rebuild.
    std::unordered_map<NodeId, std::uint32_t> dist{{id, 0}};
    std::vector<std::pair<NodeId, std::uint32_t>> frontier{{id, 0}};
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const auto [u, d] = frontier[head];
      if (d == k) continue;
      for (NodeId v : neighbors(index, u)) {
        if (!dist.emplace(v, d + 1).second) continue;
        out.emplace_back(v, d + 1);
        frontier.emplace_back(v, d + 1);
      }
    }
  }
  std::sort(out.begin(), out.end());
  if (khop_.size() >= kMaxKHopEntries) khop_.clear();
  return khop_.emplace(key, std::move(out)).first->second;
}

std::optional<std::uint32_t> TopologyCache::hop_distance(const Csr& graph,
                                                         std::uint32_t src,
                                                         std::uint32_t dst) {
  if (src == dst) return 0;
  dist_.assign(graph.ids.size(), kUnreached);
  queue_.clear();
  dist_[src] = 0;
  queue_.push_back(src);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const std::uint32_t u = queue_[head];
    const std::uint32_t d = dist_[u];
    for (std::uint32_t i = graph.offsets[u]; i < graph.offsets[u + 1]; ++i) {
      const std::uint32_t v = graph.adj[i];
      if (dist_[v] != kUnreached) continue;
      dist_[v] = d + 1;
      if (v == dst) return d + 1;
      queue_.push_back(v);
    }
  }
  return std::nullopt;
}

}  // namespace qip
