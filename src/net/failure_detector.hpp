// Pluggable failure detection for replica-group liveness.
//
// The paper's quorum maintenance (§V-B) assumes a head "detects" an
// uncontactable member through missed hellos and shrinks the quorum set.
// The engine's built-in check is an oracle — it consults the topology
// directly — which is exactly right under the paper's crash-only model but
// blind to Byzantine silence: an attacker that keeps beaconing while
// dropping every service message looks perfectly alive to it.
//
// A FailureDetector closes that gap.  The protocol feeds each observer's
// watch-list into observe() once per maintenance tick and consults
// suspects() before trusting a peer.  Two implementations ship:
//
//   * HelloTimeoutDetector — the baseline the paper implies: a peer not
//     heard from within `timeout` is suspected.  Equivalent to the oracle
//     on fault-free runs (tests/failure_detector_test.cpp asserts this);
//     cannot catch a silent defector, because defectors still beacon.
//   * SwimDetector — SWIM-style probing (ping, then ping-req through k
//     proxies, then a confirmed miss).  Detects dropped *service*, not
//     dropped *beacons*: a defector that answers hellos but ignores pings
//     accumulates misses and is suspected within a few probe rounds.
//
// Both are deterministic: no randomness, round-robin target choice over the
// sorted watch-list, proxies picked in sorted order.  A detector must
// outlive every simulator event it schedules (in practice: the World).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "net/node_id.hpp"
#include "sim/event_queue.hpp"

namespace qip {

class Simulator;
class Transport;

class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  /// Identifier for traces, bench tables and test output.
  virtual const char* name() const = 0;

  /// One maintenance tick for `observer`: `peers` is its current watch-list
  /// (replica-group members it expects to be alive).  Called with the list
  /// the protocol's own beacon exchange vouches for; implementations may
  /// passively stamp it or actively probe it.
  virtual void observe(NodeId observer, const std::vector<NodeId>& peers) = 0;

  /// Whether `observer` currently suspects `peer` of being dead (or of
  /// having silently stopped serving).
  virtual bool suspects(NodeId observer, NodeId peer) const = 0;

  /// Drops only what `observer` holds against `peer`.  The protocol calls
  /// this while its own (crash-level) evidence says the peer is unreachable:
  /// probe silence accumulated across an outage is uninterpretable, and
  /// keeping it would condemn an honest peer the moment it drifts back into
  /// range on stale misses.
  virtual void clear(NodeId observer, NodeId peer) = 0;

  /// Drops all state about `peer` — it departed, or was evicted and must be
  /// re-evaluated from scratch if it ever returns.
  virtual void forget(NodeId peer) = 0;
};

/// Baseline: suspect a peer not heard from within `timeout` seconds.  The
/// protocol reports "heard" peers through the `heard` predicate (installed
/// by the engine; defaults to nobody-heard) so the detector itself stays
/// free of topology knowledge.
class HelloTimeoutDetector : public FailureDetector {
 public:
  using HeardFn = std::function<bool(NodeId observer, NodeId peer)>;

  explicit HelloTimeoutDetector(Simulator& sim, SimTime timeout = 3.0);

  /// Installs the beacon evidence source: returns true when `observer` can
  /// currently hear `peer`'s hellos.  The engine wires this to its own
  /// beacon model (alive + in-topology + reachable).
  void set_heard(HeardFn fn) { heard_ = std::move(fn); }

  const char* name() const override { return "hello_timeout"; }
  void observe(NodeId observer, const std::vector<NodeId>& peers) override;
  bool suspects(NodeId observer, NodeId peer) const override;
  void clear(NodeId observer, NodeId peer) override;
  void forget(NodeId peer) override;

 private:
  Simulator& sim_;
  SimTime timeout_;
  HeardFn heard_;
  /// (observer, peer) -> last time peer's beacon was heard (first observe
  /// stamps unconditionally: a fresh watch entry gets a full grace period).
  std::map<std::pair<NodeId, NodeId>, SimTime> last_heard_;
};

/// SWIM-style probing detector (see SNIPPETS.md, snippet 3): each observe()
/// tick the observer pings one watch-list member round-robin; on a missed
/// ack it asks up to `proxies` other members to ping indirectly; a probe
/// with no direct or indirect ack is a confirmed miss, and `confirm_misses`
/// consecutive misses make the target suspected.  Any successful ack clears
/// the tally.  Probe traffic is charged as Traffic::kMaintenance.
class SwimDetector : public FailureDetector {
 public:
  struct Params {
    SimTime ack_timeout = 0.5;      ///< direct ping ack deadline (s)
    SimTime indirect_timeout = 1.0; ///< ping-req round deadline (s)
    std::size_t proxies = 2;        ///< k members asked to ping indirectly
    std::uint32_t confirm_misses = 2;
  };

  using RespondsFn = std::function<bool(NodeId target)>;

  // Two overloads rather than a defaulted Params argument: GCC rejects a
  // nested struct's member initializers inside its enclosing class's
  // default arguments (PR 88165).
  explicit SwimDetector(Transport& transport);
  SwimDetector(Transport& transport, Params params);

  /// Installs the service predicate: does `target` currently answer probe
  /// pings?  The engine wires this to serves_probes() — true for honest
  /// live nodes, false for crashed radios and silent defectors.
  void set_responder(RespondsFn fn) { responds_ = std::move(fn); }

  const Params& params() const { return params_; }

  const char* name() const override { return "swim"; }
  void observe(NodeId observer, const std::vector<NodeId>& peers) override;
  bool suspects(NodeId observer, NodeId peer) const override;
  void clear(NodeId observer, NodeId peer) override;
  void forget(NodeId peer) override;

  /// Confirmed misses currently on record for (observer, peer) — exposed
  /// for tests asserting detection latency.
  std::uint32_t misses(NodeId observer, NodeId peer) const;

 private:
  struct Probe {
    NodeId observer = kNoNode;
    NodeId target = kNoNode;
    std::vector<NodeId> proxies;  ///< candidates for the indirect round
    bool acked = false;
    bool indirect_started = false;
    EventHandle direct_timer;
    EventHandle indirect_timer;
  };

  void start_indirect(std::uint64_t probe_id);
  void finish(std::uint64_t probe_id, bool acked);
  void ack(std::uint64_t probe_id);

  Transport& transport_;
  Params params_;
  RespondsFn responds_;
  std::map<std::uint64_t, Probe> probes_;          ///< in-flight, by id
  std::map<NodeId, std::uint64_t> inflight_;       ///< observer -> probe id
  std::map<NodeId, NodeId> cursor_;                ///< observer -> last target
  std::map<std::pair<NodeId, NodeId>, std::uint32_t> misses_;
  std::uint64_t next_probe_ = 1;
};

}  // namespace qip
