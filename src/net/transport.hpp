// Metered message transport over the unit-disk topology.
//
// The paper assumes "reliable delivery of messages within transmission
// range" (§IV-B) and measures everything in hops.  The transport therefore
// models a message as: route computed on the current topology at send time,
// delivered after hops × per-hop delay, hop count charged to the sender's
// traffic category.  Unreachable destinations are reported synchronously
// (routing fails) and charged nothing; protocol-level timers handle the
// resulting silence, exactly as in the paper's quorum-adjustment logic.
//
// Flooding model: in a scoped flood every node up to radius-1 hops
// retransmits once, so the charged cost is the number of transmissions
// (1 + |nodes within radius-1 hops|), and a node at distance d receives the
// message after d hop-delays.  A network-wide flood is the same with radius
// = component eccentricity.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault_injector.hpp"
#include "net/metrics.hpp"
#include "net/node_id.hpp"
#include "net/receiver_fn.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace qip {

// Fault model (docs/FAULTS.md): when a FaultInjector with an active plan is
// attached, transmissions by a crashed radio are suppressed (unicast reports
// the destination unreachable, broadcasts reach nobody) and every scheduled
// delivery is independently judged — dropped, delayed, or duplicated.
// Transmission costs are still charged at send time: a lost message was
// transmitted, so its hops stay in MessageStats, matching how a real trace
// would meter it.  With no injector (or a null plan) every path below is
// bit-identical to the paper's reliable model.
class Transport {
 public:
  /// Called at the receiver; `hops` is the distance the message travelled.
  /// A small-buffer callable (net/receiver_fn.hpp): inline captures ride the
  /// scheduler's inline buffer too, so a delivery allocates nothing.
  using Receiver = ReceiverFn;

  Transport(Simulator& sim, Topology& topology, MessageStats& stats,
            SimTime per_hop_delay = 0.002);

  SimTime per_hop_delay() const { return per_hop_delay_; }
  MessageStats& stats() { return stats_; }
  const MessageStats& stats() const { return stats_; }
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  /// The simulation context observability flows through (the simulator's).
  SimContext& ctx() const { return sim_.ctx(); }
  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

  /// Attaches (or detaches, with nullptr) a fault injector.  Not owned.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }
  FaultInjector* faults() { return faults_; }
  const FaultInjector* faults() const { return faults_; }
  /// True when an injector with a non-null plan is attached.
  bool faults_active() const { return faults_ && faults_->active(); }

  /// Sends along the current shortest path.  Returns the hop count, or
  /// nullopt when `to` is unreachable (nothing is charged or scheduled).
  /// Delivery is skipped if the destination has left the network meanwhile.
  std::optional<std::uint32_t> unicast(NodeId from, NodeId to, Traffic t,
                                       Receiver on_deliver);

  /// Single transmission heard by all current one-hop neighbors.  Returns
  /// the neighbors reached.  Cost: 1 transmission.
  std::vector<NodeId> local_broadcast(NodeId from, Traffic t,
                                      Receiver on_deliver) {
    return local_broadcast_view(from, t, std::move(on_deliver));
  }

  /// Scoped flood to every node within `radius` hops.  Returns the nodes
  /// reached (excluding the sender).  Cost: 1 + |nodes within radius-1 hops|
  /// transmissions.
  std::vector<NodeId> flood(NodeId from, std::uint32_t radius, Traffic t,
                            Receiver on_deliver) {
    return flood_view(from, radius, t, std::move(on_deliver));
  }

  /// Network-wide flood (the MANETconf configuration primitive): reaches the
  /// whole connected component of `from`; every member transmits once.
  std::vector<NodeId> flood_component(NodeId from, Traffic t,
                                      Receiver on_deliver) {
    return flood_component_view(from, t, std::move(on_deliver));
  }

  // Zero-copy variants for callers that only inspect the reached set (or
  // ignore it): the returned reference aliases a member scratch vector that
  // the NEXT broadcast/flood call overwrites.  Deliveries are scheduled, not
  // run inline, so the view is stable until the caller issues another
  // transmission — do not flood again while iterating it (docs/SCALE.md).
  const std::vector<NodeId>& local_broadcast_view(NodeId from, Traffic t,
                                                  Receiver on_deliver);
  const std::vector<NodeId>& flood_view(NodeId from, std::uint32_t radius,
                                        Traffic t, Receiver on_deliver);
  const std::vector<NodeId>& flood_component_view(NodeId from, Traffic t,
                                                  Receiver on_deliver);

  /// Hop distance on the current topology (charging nothing).
  std::optional<std::uint32_t> hops_between(NodeId a, NodeId b) const {
    return topology_.hop_distance(a, b);
  }

  /// Pure query: is `id`'s radio outside every crash window right now?
  /// Unlike can_transmit() this tallies nothing, so protocols may poll it
  /// (e.g. to park an entry flow while the radio is down) without skewing
  /// the injector's blocked-send statistics.
  bool radio_up(NodeId id) const {
    return !faults_active() || faults_->node_up(id, sim_.now());
  }

 private:
  /// True when `id` can transmit right now (in the topology and, under an
  /// active fault plan, outside its crash windows).
  bool can_transmit(NodeId id) const;

  void deliver_later(NodeId from, NodeId to, std::uint32_t hops,
                     Receiver on_deliver);
  void schedule_delivery(NodeId to, std::uint32_t hops, SimTime extra,
                         Receiver on_deliver);

  Simulator& sim_;
  Topology& topology_;
  MessageStats& stats_;
  SimTime per_hop_delay_;
  FaultInjector* faults_ = nullptr;
  /// Reached-set scratch backing the *_view variants (reused per call).
  std::vector<NodeId> reached_;
};

}  // namespace qip
