#include "net/failure_detector.hpp"

#include <algorithm>

#include "net/transport.hpp"
#include "sim/simulator.hpp"

namespace qip {

// ---------------------------------------------------------------- hello ----

HelloTimeoutDetector::HelloTimeoutDetector(Simulator& sim, SimTime timeout)
    : sim_(sim), timeout_(timeout) {}

void HelloTimeoutDetector::observe(NodeId observer,
                                   const std::vector<NodeId>& peers) {
  const SimTime now = sim_.now();
  for (NodeId peer : peers) {
    if (peer == observer) continue;
    const auto key = std::make_pair(observer, peer);
    auto it = last_heard_.find(key);
    if (it == last_heard_.end()) {
      last_heard_.emplace(key, now);  // fresh entry: full grace period
      continue;
    }
    if (heard_ && heard_(observer, peer)) it->second = now;
  }
}

bool HelloTimeoutDetector::suspects(NodeId observer, NodeId peer) const {
  const auto it = last_heard_.find(std::make_pair(observer, peer));
  if (it == last_heard_.end()) return false;
  return sim_.now() - it->second > timeout_;
}

void HelloTimeoutDetector::clear(NodeId observer, NodeId peer) {
  // Re-observed later, the pair re-stamps fresh and gets a full grace.
  last_heard_.erase(std::make_pair(observer, peer));
}

void HelloTimeoutDetector::forget(NodeId peer) {
  for (auto it = last_heard_.begin(); it != last_heard_.end();) {
    if (it->first.first == peer || it->first.second == peer)
      it = last_heard_.erase(it);
    else
      ++it;
  }
}

// ----------------------------------------------------------------- swim ----

SwimDetector::SwimDetector(Transport& transport)
    : SwimDetector(transport, Params{}) {}

SwimDetector::SwimDetector(Transport& transport, Params params)
    : transport_(transport), params_(params) {}

void SwimDetector::observe(NodeId observer, const std::vector<NodeId>& peers) {
  if (inflight_.count(observer)) return;  // one probe in flight per observer

  std::vector<NodeId> watch(peers.begin(), peers.end());
  std::sort(watch.begin(), watch.end());
  watch.erase(std::unique(watch.begin(), watch.end()), watch.end());
  watch.erase(std::remove(watch.begin(), watch.end(), observer), watch.end());
  if (watch.empty()) return;

  // Round-robin: the first member strictly after the previous target.
  NodeId last = kNoNode;
  if (const auto c = cursor_.find(observer); c != cursor_.end())
    last = c->second;
  auto pick = std::upper_bound(watch.begin(), watch.end(), last);
  if (pick == watch.end()) pick = watch.begin();
  const NodeId target = *pick;
  cursor_[observer] = target;

  const std::uint64_t id = next_probe_++;
  Probe& probe = probes_[id];
  probe.observer = observer;
  probe.target = target;
  for (NodeId n : watch) {
    if (n == target) continue;
    if (probe.proxies.size() >= params_.proxies) break;
    probe.proxies.push_back(n);
  }
  inflight_[observer] = id;

  // Direct ping: delivered to the target, which acks iff it still serves
  // probes.  An unreachable target charges nothing and simply stays silent.
  transport_.unicast(observer, target, Traffic::kMaintenance,
                     [this, id](NodeId tgt, std::uint32_t) {
                       const auto it = probes_.find(id);
                       if (it == probes_.end()) return;
                       if (!responds_ || !responds_(tgt)) return;
                       transport_.unicast(tgt, it->second.observer,
                                          Traffic::kMaintenance,
                                          [this, id](NodeId, std::uint32_t) {
                                            ack(id);
                                          });
                     });
  probe.direct_timer = transport_.sim().after(
      params_.ack_timeout, [this, id] { start_indirect(id); });
}

void SwimDetector::start_indirect(std::uint64_t probe_id) {
  const auto it = probes_.find(probe_id);
  if (it == probes_.end()) return;
  Probe& probe = it->second;
  probe.indirect_started = true;
  if (probe.proxies.empty()) {
    finish(probe_id, false);
    return;
  }
  // Ping-req: ask each proxy to ping the target; a serving target acks the
  // proxy, which relays the ack home.  Any one relay suffices.
  for (NodeId proxy : probe.proxies) {
    transport_.unicast(
        probe.observer, proxy, Traffic::kMaintenance,
        [this, probe_id](NodeId via, std::uint32_t) {
          const auto pit = probes_.find(probe_id);
          if (pit == probes_.end()) return;
          if (!responds_ || !responds_(via)) return;
          const NodeId target = pit->second.target;
          transport_.unicast(
              via, target, Traffic::kMaintenance,
              [this, probe_id, via](NodeId tgt, std::uint32_t) {
                const auto qit = probes_.find(probe_id);
                if (qit == probes_.end()) return;
                if (!responds_ || !responds_(tgt)) return;
                const NodeId home = qit->second.observer;
                transport_.unicast(
                    tgt, via, Traffic::kMaintenance,
                    [this, probe_id, home](NodeId relay, std::uint32_t) {
                      if (!probes_.count(probe_id)) return;
                      transport_.unicast(relay, home, Traffic::kMaintenance,
                                         [this, probe_id](NodeId,
                                                          std::uint32_t) {
                                           ack(probe_id);
                                         });
                    });
              });
        });
  }
  probe.indirect_timer = transport_.sim().after(
      params_.indirect_timeout, [this, probe_id] { finish(probe_id, false); });
}

void SwimDetector::ack(std::uint64_t probe_id) { finish(probe_id, true); }

void SwimDetector::finish(std::uint64_t probe_id, bool acked) {
  const auto it = probes_.find(probe_id);
  if (it == probes_.end()) return;
  Probe probe = std::move(it->second);
  probe.direct_timer.cancel();
  probe.indirect_timer.cancel();
  probes_.erase(it);
  const auto inf = inflight_.find(probe.observer);
  if (inf != inflight_.end() && inf->second == probe_id) inflight_.erase(inf);

  const auto key = std::make_pair(probe.observer, probe.target);
  if (acked)
    misses_.erase(key);
  else
    ++misses_[key];
}

bool SwimDetector::suspects(NodeId observer, NodeId peer) const {
  const auto it = misses_.find(std::make_pair(observer, peer));
  return it != misses_.end() && it->second >= params_.confirm_misses;
}

std::uint32_t SwimDetector::misses(NodeId observer, NodeId peer) const {
  const auto it = misses_.find(std::make_pair(observer, peer));
  return it == misses_.end() ? 0 : it->second;
}

void SwimDetector::clear(NodeId observer, NodeId peer) {
  // The in-flight probe (if any) is left to finish; a single re-added miss
  // stays below confirm_misses, so no stale suspicion survives.
  misses_.erase(std::make_pair(observer, peer));
}

void SwimDetector::forget(NodeId peer) {
  for (auto it = probes_.begin(); it != probes_.end();) {
    if (it->second.observer == peer || it->second.target == peer) {
      it->second.direct_timer.cancel();
      it->second.indirect_timer.cancel();
      const auto inf = inflight_.find(it->second.observer);
      if (inf != inflight_.end() && inf->second == it->first)
        inflight_.erase(inf);
      it = probes_.erase(it);
    } else {
      ++it;
    }
  }
  cursor_.erase(peer);
  for (auto it = misses_.begin(); it != misses_.end();) {
    if (it->first.first == peer || it->first.second == peer)
      it = misses_.erase(it);
    else
      ++it;
  }
}

}  // namespace qip
