// Epoch-versioned memoization layer for Topology's graph queries, with an
// O(changed-edges) incremental maintenance path.
//
// Every mutation of the underlying GridIndex bumps a monotone epoch and
// stamps the touched grid cells (GridIndex::epoch / window_version).  The
// cache keys three tiers of derived state off those stamps:
//
//   * per-node sorted adjacency rows — revalidated individually against the
//     3×3 cell window around the node, so one move only invalidates rows
//     whose window overlaps the cells the mover left or entered;
//   * one flat CSR-style snapshot of the whole graph (slot-dense ids, row
//     spans into a neighbor pool) — BFS then runs on plain arrays with zero
//     hashing;
//   * the components partition and bounded k-hop result sets.
//
// Through PR 9 the CSR snapshot and the components partition were rebuilt
// from scratch on first use after *any* mutation: one node moving one meter
// invalidated the whole O(n+E) structure.  At the paper's n≈400 that was
// fine; at metropolis scale (n≥100k, docs/SCALE.md) a per-event rebuild
// dominates everything.  The incremental path fixes this:
//
//   * Topology journals every add/remove/move into the cache (a dirty-edge
//     journal: the id plus the position where it appeared);
//   * csr() applies the journal to the existing snapshot instead of
//     rebuilding: only rows near a journaled position are recomputed
//     (grid queries around the recorded positions plus the event nodes'
//     pre-patch rows are a provable superset of the changed rows), and a
//     rewritten row lands in place when it fits its span's capacity, else
//     at the pool tail;
//   * the memoized components partition is *repaired* from the edge diffs
//     the patch collected: insertions union groups, deletions run a
//     bounded local search (budgeted early-exit BFS) to decide
//     connected/split, falling back to a full rebuild when any budget is
//     exhausted — correctness never depends on the repair succeeding.
//
// Discovery-order invariant (load-bearing — the golden/trace/jobs/sched/
// quorum gates byte-compare bench output): rows store neighbor *ids*
// ascending and slots ascend by id (patches append only strictly larger
// ids; anything else forces a full rebuild, which re-sorts), so BFS
// discovery order is identical to the uncached sorted-neighbor BFS whether
// the snapshot was patched or rebuilt.  The escape hatches:
// QIP_TOPO_INCR=off forces full rebuilds (pre-PR-10 behavior),
// QIP_TOPO_CACHE=off bypasses the cache entirely (docs/SIMULATOR.md).
//
// The class stores no reference to the GridIndex (callers pass it in), so
// an owning Topology stays trivially movable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geom/grid_index.hpp"
#include "geom/point.hpp"
#include "net/node_id.hpp"

namespace qip {

class SimContext;

class TopologyCache {
 public:
  /// Sentinel for "not reached" / "no depth bound" / "no slot".
  static constexpr std::uint32_t kUnreached =
      std::numeric_limits<std::uint32_t>::max();

  explicit TopologyCache(double range) : range_(range) {}

  /// Context whose recorder/metrics the rebuild ProfileScopes feed; null
  /// (the default) falls back to the process context.  Set by the owning
  /// Topology when a World binds it to a SimContext.
  void set_context(SimContext* ctx) { ctx_ = ctx; }

  /// Incremental maintenance switch (QIP_TOPO_INCR).  Off = every mutation
  /// invalidates the snapshot wholesale and csr() rebuilds from scratch.
  /// Toggling at any time is safe: both paths produce identical snapshots.
  bool incremental_enabled() const { return incremental_; }
  void set_incremental_enabled(bool on) {
    incremental_ = on;
    if (!on) clear_journal();
  }

  /// Flat adjacency snapshot.  Slots ascend strictly by id; removed nodes
  /// leave tombstoned slots (live[slot] == 0) until the next full rebuild
  /// compacts them.  Rows store neighbor *ids* (not slots), ascending, so
  /// patching one row never invalidates another and tombstoning never
  /// renumbers anything.
  struct Csr {
    std::vector<NodeId> ids;               ///< slot -> id, strictly ascending
    std::vector<std::uint8_t> live;        ///< slot liveness (0 = tombstone)
    std::vector<std::uint32_t> row_start;  ///< slot -> offset into pool
    std::vector<std::uint32_t> row_len;    ///< slot -> live neighbor count
    std::vector<std::uint32_t> row_cap;    ///< slot -> span capacity in pool
    std::vector<NodeId> pool;              ///< neighbor ids, ascending per row
    /// id -> slot for dense id ranges (kUnreached = absent); empty when the
    /// id range is too sparse, in which case slot_of binary-searches.
    std::vector<std::uint32_t> rank_tbl;
    std::size_t live_count = 0;

    /// Slot ("rank") of live node `id`, or nullopt.
    std::optional<std::uint32_t> rank_of(NodeId id) const {
      const std::uint32_t s = slot_of(id);
      return s == kUnreached ? std::nullopt : std::optional(s);
    }

    /// kUnreached when `id` has no live slot.
    std::uint32_t slot_of(NodeId id) const {
      if (!rank_tbl.empty()) {
        return id < rank_tbl.size() ? rank_tbl[id] : kUnreached;
      }
      const std::uint32_t s = slot_any(id);
      return (s != kUnreached && live[s]) ? s : kUnreached;
    }

    /// Slot of `id` including tombstones (kUnreached if never snapshotted).
    std::uint32_t slot_any(NodeId id) const {
      const auto it = std::lower_bound(ids.begin(), ids.end(), id);
      if (it == ids.end() || *it != id) return kUnreached;
      return static_cast<std::uint32_t>(it - ids.begin());
    }

    const NodeId* row_begin(std::uint32_t slot) const {
      return pool.data() + row_start[slot];
    }
    const NodeId* row_end(std::uint32_t slot) const {
      return pool.data() + row_start[slot] + row_len[slot];
    }
  };

  struct Components {
    /// Each group sorted ascending; groups ordered by smallest member.
    std::vector<std::vector<NodeId>> groups;
    /// slot -> index into `groups` (stale for tombstoned slots).
    std::vector<std::uint32_t> group_of;
  };

  // -- dirty-edge journal (called by Topology on every index mutation) -----
  void note_add(NodeId id, const Point& pos);
  void note_remove(NodeId id);
  void note_move(NodeId id, const Point& new_pos);

  /// Sorted one-hop neighbors of `id` (excluding `id`).  The reference stays
  /// valid until the row is recomputed, which only happens after an index
  /// mutation near the node.
  const std::vector<NodeId>& neighbors(const GridIndex& index, NodeId id);

  /// The CSR snapshot for the index's current epoch: patched from the
  /// journal when possible, rebuilt from scratch otherwise.
  const Csr& csr(const GridIndex& index);

  /// The components partition for the current epoch (repaired or rebuilt).
  const Components& components(const GridIndex& index);

  /// Memoized k-hop neighborhood of `id` — (node, hops) pairs sorted by id,
  /// excluding `id` itself.  Entries are revalidated per epoch in place, so
  /// the per-tick re-query of a stable (id, k) pair reuses its buffers and
  /// allocates nothing in steady state.
  const std::vector<std::pair<NodeId, std::uint32_t>>& k_hop(
      const GridIndex& index, NodeId id, std::uint32_t k);

  /// BFS from slot `src`, bounded at `max_depth` hops (kUnreached = none),
  /// calling `fn(slot, depth)` for the source (depth 0) and then for every
  /// discovered node in discovery order.  Rows are id-ascending and slots
  /// ascend with ids, so the order equals the uncached sorted-neighbor BFS.
  template <typename Fn>
  void bfs(const Csr& graph, std::uint32_t src, std::uint32_t max_depth,
           Fn&& fn) {
    dist_.assign(graph.ids.size(), kUnreached);
    queue_.clear();
    dist_[src] = 0;
    fn(src, 0u);
    queue_.push_back(src);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const std::uint32_t u = queue_[head];
      const std::uint32_t d = dist_[u];
      if (d == max_depth) continue;
      for (const NodeId* p = graph.row_begin(u); p != graph.row_end(u); ++p) {
        const std::uint32_t v = graph.slot_of(*p);
        if (dist_[v] != kUnreached) continue;
        dist_[v] = d + 1;
        fn(v, d + 1);
        queue_.push_back(v);
      }
    }
  }

  /// Early-exit BFS distance between two slots (the value a full BFS would
  /// assign), or nullopt when disconnected.
  std::optional<std::uint32_t> hop_distance(const Csr& graph,
                                            std::uint32_t src,
                                            std::uint32_t dst);

  // -- introspection (differential tests, fig_metro phase reports) ---------
  std::uint64_t full_rebuilds() const { return full_rebuilds_; }
  std::uint64_t incremental_patches() const { return incremental_patches_; }
  std::uint64_t component_repairs() const { return component_repairs_; }
  std::uint64_t repair_bailouts() const { return repair_bailouts_; }

 private:
  struct AdjRow {
    std::vector<NodeId> nbrs;
    std::uint64_t epoch = 0;  ///< 0 = never computed (index epochs start at 1)
  };

  struct JournalEvent {
    enum Kind : std::uint8_t { kAdd, kRemove, kMove };
    Kind kind;
    NodeId id;
    Point pos;  ///< add: position; move: new position; remove: unused
  };

  struct KHopEntry {
    std::uint64_t epoch = kNoEpoch;
    std::vector<std::pair<NodeId, std::uint32_t>> result;
  };

  enum class ReachOutcome { kAllFound, kExhausted, kBudget };

  /// Bound on memoized k-hop sets; past it the table restarts.  Generous:
  /// one entry per (node, radius) pair actually queried.
  static constexpr std::size_t kMaxKHopEntries = 4096;
  static constexpr std::uint64_t kNoEpoch =
      std::numeric_limits<std::uint64_t>::max();
  /// Journal length past which a full rebuild is assumed cheaper.
  static constexpr std::size_t kMaxJournal = 8192;
  /// Spare pool entries per row so small degree growth patches in place.
  static constexpr std::uint32_t kRowSlack = 2;
  /// Visit budget for one bounded connectivity search during component
  /// repair; exhausting it falls back to a full components rebuild.  Sized
  /// so "did this removal disconnect anything locally?" stays cheap while a
  /// genuine large bisection (rare, and O(n) to express anyway) rebuilds.
  static constexpr std::size_t kSplitVisitBudget = 512;
  /// Total bookkeeping budget (group renumbering, member splices) for one
  /// repair pass; past it a full rebuild is cheaper than the repair.
  static constexpr std::size_t kRepairWorkBudget = std::size_t{1} << 20;
  /// Caps on the edge/removal diffs accumulated between components()
  /// queries; past them the pending repair is abandoned.
  static constexpr std::size_t kMaxPendingEdges = std::size_t{1} << 16;
  static constexpr std::size_t kMaxPendingRemovals = std::size_t{1} << 14;
  /// Largest id the O(1) stamp table for the local (CSR-less) k-hop BFS
  /// will grow to; bigger ids take the hash-map fallback.
  static constexpr std::size_t kIdStampLimit = std::size_t{1} << 22;
  /// Below this id the direct-indexed rank table is always built (16 MiB
  /// worst case), even when sparse: patching requires the table, and ids
  /// grow monotonically under churn, so a pure density rule would
  /// eventually disable the incremental path for good.
  static constexpr std::size_t kMaxRankTblId = std::size_t{1} << 22;

  void clear_journal() {
    journal_.clear();
    journal_overflow_ = false;
  }
  void journal_push(JournalEvent ev);
  /// Drops the accumulated components diff (edge events, removal records,
  /// pending singletons).
  void reset_comp_diffs();

  void rebuild_csr(const GridIndex& index);
  /// Applies the journal to the existing snapshot.  Returns false (leaving
  /// the snapshot untouched) when a patch precondition fails — the caller
  /// then rebuilds from scratch.
  bool try_patch(const GridIndex& index);
  void patch_row(std::uint32_t slot, const std::vector<NodeId>& fresh);

  void rebuild_components();
  /// Repairs comps_ from the accumulated diffs.  Returns false when a
  /// budget was exhausted; comps_ is then half-mutated garbage and the
  /// caller must rebuild.
  bool repair_components();
  /// Resolves the pairwise-connectivity questions in targets_ (splitting
  /// groups as needed); false on budget exhaustion.
  bool resolve_targets(std::size_t* work);
  /// Splits the sorted id set scratch_reach_ out of group `g`; false on
  /// budget exhaustion.
  bool apply_split(std::uint32_t g, std::size_t* work);
  /// Inserts `group` (sorted members) keeping groups ordered by smallest
  /// member; false on budget exhaustion.
  bool insert_group(std::vector<NodeId> group, std::size_t* work);
  /// Erases group `g`, renumbering group_of for the tail; false on budget.
  bool erase_group(std::size_t g, std::size_t* work);
  /// Bounded BFS over the current snapshot from `from`, early-exiting once
  /// every member of peers_ (sorted) is seen.  On kExhausted,
  /// scratch_reach_ holds `from`'s complete component, sorted.
  ReachOutcome bounded_reach(NodeId from);

  double range_;
  SimContext* ctx_ = nullptr;
  bool incremental_ = true;
  std::unordered_map<NodeId, AdjRow> adj_;

  Csr csr_;
  std::uint64_t csr_epoch_ = kNoEpoch;
  std::size_t pool_garbage_ = 0;  ///< dead pool capacity awaiting compaction

  Components comps_;
  std::uint64_t comps_epoch_ = kNoEpoch;
  /// True when comps_ matches some past snapshot and the diff accumulators
  /// below hold the complete delta from it to the current snapshot.
  bool comps_base_valid_ = false;

  std::vector<JournalEvent> journal_;
  bool journal_overflow_ = false;

  // Components diff accumulators (valid while comps_base_valid_).
  std::vector<NodeId> added_ids_;
  std::vector<std::pair<NodeId, NodeId>> edge_adds_;
  std::vector<std::pair<NodeId, NodeId>> edge_removes_;
  std::vector<NodeId> removal_ids_;
  std::vector<NodeId> removal_nbrs_;  ///< former neighbors, flattened
  std::vector<std::pair<std::uint32_t, std::uint32_t>> removal_spans_;

  std::unordered_map<std::uint64_t, KHopEntry> khop_;

  std::uint64_t full_rebuilds_ = 0;
  std::uint64_t incremental_patches_ = 0;
  std::uint64_t component_repairs_ = 0;
  std::uint64_t repair_bailouts_ = 0;

  // Scratch buffers reused across queries/patches (held at high-water
  // capacity so the steady state allocates nothing).
  std::vector<std::uint32_t> dist_;
  std::vector<std::uint32_t> queue_;
  std::vector<NodeId> cand_buf_;
  std::vector<NodeId> candidates_;
  std::vector<NodeId> ev_ids_;
  std::vector<NodeId> new_ids_;
  std::vector<std::pair<std::uint32_t, NodeId>> scratch_pairs_;
  std::vector<NodeId> targets_;
  std::vector<NodeId> peers_;
  std::vector<NodeId> scratch_reach_;
  std::vector<NodeId> scratch_merge_;
  std::vector<std::uint32_t> bqueue_;
  std::vector<std::uint64_t> stamp_;  ///< slot-indexed visit stamps
  std::uint64_t stamp_token_ = 0;
  std::vector<std::uint64_t> id_stamp_;  ///< id-indexed (local k-hop BFS)
  std::uint64_t id_stamp_token_ = 0;
  std::vector<std::pair<NodeId, std::uint32_t>> khop_frontier_;
};

}  // namespace qip
