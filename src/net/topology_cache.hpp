// Epoch-versioned memoization layer for Topology's graph queries.
//
// Every mutation of the underlying GridIndex bumps a monotone epoch and
// stamps the touched grid cells (GridIndex::epoch / window_version).  The
// cache keys three tiers of derived state off those stamps:
//
//   * per-node sorted adjacency rows — revalidated individually against the
//     3×3 cell window around the node, so one move only invalidates rows
//     whose window overlaps the cells the mover left or entered;
//   * one flat CSR-style snapshot of the whole graph per epoch (rank-dense
//     ids, offsets, neighbor ranks), built by reusing every adjacency row
//     that survived — BFS then runs on plain arrays with zero hashing;
//   * the components partition and bounded k-hop result sets, valid for
//     exactly one epoch.
//
// Everything is rebuilt lazily on first use after a mutation; a burst of n
// moves followed by a query costs one rebuild, not n.  CSR rows are
// rank-ascending, so BFS discovery order is identical to the uncached
// sorted-neighbor BFS — cached and uncached results match element for
// element (docs/SIMULATOR.md, "Topology cache").
//
// The class stores no reference to the GridIndex (callers pass it in), so
// an owning Topology stays trivially movable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geom/grid_index.hpp"
#include "net/node_id.hpp"

namespace qip {

class SimContext;

class TopologyCache {
 public:
  /// Sentinel for "not reached" / "no depth bound".
  static constexpr std::uint32_t kUnreached =
      std::numeric_limits<std::uint32_t>::max();

  explicit TopologyCache(double range) : range_(range) {}

  /// Context whose recorder/metrics the rebuild ProfileScopes feed; null
  /// (the default) falls back to the process context.  Set by the owning
  /// Topology when a World binds it to a SimContext.
  void set_context(SimContext* ctx) { ctx_ = ctx; }

  /// Flat adjacency snapshot of the whole graph at one epoch.
  struct Csr {
    std::vector<NodeId> ids;             ///< sorted ascending; rank = index
    std::vector<std::uint32_t> offsets;  ///< ids.size()+1 row starts into adj
    std::vector<std::uint32_t> adj;      ///< neighbor ranks, ascending per row

    /// Rank of `id`, or nullopt if not in the snapshot.
    std::optional<std::uint32_t> rank_of(NodeId id) const {
      const auto it = std::lower_bound(ids.begin(), ids.end(), id);
      if (it == ids.end() || *it != id) return std::nullopt;
      return static_cast<std::uint32_t>(it - ids.begin());
    }
  };

  struct Components {
    /// Each group sorted ascending; groups ordered by smallest member.
    std::vector<std::vector<NodeId>> groups;
    /// rank -> index into `groups`.
    std::vector<std::uint32_t> group_of;
  };

  /// Sorted one-hop neighbors of `id` (excluding `id`).  The reference stays
  /// valid until the row is recomputed, which only happens after an index
  /// mutation near the node.
  const std::vector<NodeId>& neighbors(const GridIndex& index, NodeId id);

  /// The CSR snapshot for the index's current epoch (rebuilt lazily).
  const Csr& csr(const GridIndex& index);

  /// The components partition for the current epoch.
  const Components& components(const GridIndex& index);

  /// Memoized k-hop neighborhood of `id` — (node, hops) pairs sorted by id,
  /// excluding `id` itself.  Entries live for one epoch, bounded in number.
  const std::vector<std::pair<NodeId, std::uint32_t>>& k_hop(
      const GridIndex& index, NodeId id, std::uint32_t k);

  /// BFS from rank `src`, bounded at `max_depth` hops (kUnreached = none),
  /// calling `fn(rank, depth)` for the source (depth 0) and then for every
  /// discovered node in discovery order.  Rows are rank-ascending, so the
  /// order equals the uncached sorted-neighbor BFS exactly.
  template <typename Fn>
  void bfs(const Csr& graph, std::uint32_t src, std::uint32_t max_depth,
           Fn&& fn) {
    dist_.assign(graph.ids.size(), kUnreached);
    queue_.clear();
    dist_[src] = 0;
    fn(static_cast<std::uint32_t>(src), 0u);
    queue_.push_back(src);
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const std::uint32_t u = queue_[head];
      const std::uint32_t d = dist_[u];
      if (d == max_depth) continue;
      for (std::uint32_t i = graph.offsets[u]; i < graph.offsets[u + 1]; ++i) {
        const std::uint32_t v = graph.adj[i];
        if (dist_[v] != kUnreached) continue;
        dist_[v] = d + 1;
        fn(v, d + 1);
        queue_.push_back(v);
      }
    }
  }

  /// Early-exit BFS distance between two ranks (the value a full BFS would
  /// assign), or nullopt when disconnected.
  std::optional<std::uint32_t> hop_distance(const Csr& graph,
                                            std::uint32_t src,
                                            std::uint32_t dst);

 private:
  struct AdjRow {
    std::vector<NodeId> nbrs;
    std::uint64_t epoch = 0;  ///< 0 = never computed (index epochs start at 1)
  };

  /// Bound on memoized k-hop sets; past it the table restarts.  Generous:
  /// one entry per (node, radius) pair actually queried within one epoch.
  static constexpr std::size_t kMaxKHopEntries = 4096;
  static constexpr std::uint64_t kNoEpoch =
      std::numeric_limits<std::uint64_t>::max();

  double range_;
  SimContext* ctx_ = nullptr;
  std::unordered_map<NodeId, AdjRow> adj_;
  Csr csr_;
  std::uint64_t csr_epoch_ = kNoEpoch;
  Components comps_;
  std::uint64_t comps_epoch_ = kNoEpoch;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<NodeId, std::uint32_t>>>
      khop_;
  std::uint64_t khop_epoch_ = kNoEpoch;
  // BFS / rebuild scratch, reused across queries to avoid per-call
  // allocation.
  std::vector<std::uint32_t> dist_;
  std::vector<std::uint32_t> queue_;
  std::vector<std::uint32_t> rank_table_;
};

}  // namespace qip
