#include "net/reliable_channel.hpp"

#include "sim/sim_context.hpp"
#include "util/assert.hpp"

namespace qip {

ReliableChannel::ReliableChannel(Transport& transport, ReliableParams params)
    : transport_(transport), params_(params) {
  QIP_ASSERT(params_.retry_timeout > 0.0);
  QIP_ASSERT(params_.backoff >= 1.0);
}

ReliableChannel::~ReliableChannel() {
  for (auto& [seq, p] : pending_) p.timer.cancel();
}

std::optional<std::uint32_t> ReliableChannel::send(
    NodeId from, NodeId to, Traffic traffic, Receiver on_deliver,
    std::function<void()> on_give_up) {
  if (!active()) {
    // Paper model (or force-disabled): a plain metered unicast, no acks, no
    // sequence numbers, no state — byte-identical to the seed behavior.
    return transport_.unicast(from, to, traffic, std::move(on_deliver));
  }

  const std::uint64_t seq = next_seq_++;
  Pending p;
  p.from = from;
  p.to = to;
  p.traffic = traffic;
  p.on_deliver = std::move(on_deliver);
  p.on_give_up = std::move(on_give_up);
  p.timeout = params_.retry_timeout;
  auto [it, fresh] = pending_.emplace(seq, std::move(p));
  QIP_ASSERT(fresh);

  // First attempt: a synchronous routing failure is reported to the caller
  // exactly like a raw unicast (and nothing is retried) so the protocol's
  // own unreachable-destination fallbacks keep working unchanged.
  auto& entry = it->second;
  entry.tries = 1;
  const auto hops = transport_.unicast(
      from, to, traffic,
      [this, seq](NodeId, std::uint32_t h) { on_data(seq, h); });
  if (!hops) {
    pending_.erase(it);
    return std::nullopt;
  }
  arm_timer(seq);
  return hops;
}

void ReliableChannel::arm_timer(std::uint64_t seq) {
  auto it = pending_.find(seq);
  QIP_ASSERT(it != pending_.end());
  auto& p = it->second;
  p.timer = transport_.sim().after(p.timeout, [this, seq] {
    auto pit = pending_.find(seq);
    if (pit == pending_.end()) return;  // acked meanwhile
    if (pit->second.tries > params_.max_retries) {
      ++gave_up_;
      ++gave_up_by_dest_[pit->second.to];
      if (transport_.ctx().tracing_on()) {
        transport_.ctx().recorder().instant(
            transport_.sim().now(), "give_up", "rpc", pit->second.from,
            {{"to", pit->second.to}, {"tries", pit->second.tries}});
      }
      auto fail = std::move(pit->second.on_give_up);
      pending_.erase(pit);
      if (fail) fail();
      return;
    }
    attempt(seq);
  });
}

void ReliableChannel::attempt(std::uint64_t seq) {
  auto it = pending_.find(seq);
  QIP_ASSERT(it != pending_.end());
  auto& p = it->second;
  ++p.tries;
  p.timeout *= params_.backoff;
  ++retransmissions_;
  // A retransmission that fails to route (destination unreachable right
  // now) still burns a retry and re-arms: the outage may be transient, and
  // the retry cap bounds the wait either way.  MessageStats only counts the
  // attempts that actually routed — its breakout must stay reconcilable
  // with the per-Traffic message counts, which are charged at send time.
  const auto hops = transport_.unicast(
      p.from, p.to, p.traffic,
      [this, seq](NodeId, std::uint32_t h) { on_data(seq, h); });
  if (hops) {
    transport_.stats().note_retransmission();
    if (transport_.ctx().tracing_on()) {
      transport_.ctx().recorder().instant(
          transport_.sim().now(), "retransmit", "rpc", p.from,
          {{"to", p.to}, {"try", p.tries}, {"hops", *hops}});
    }
  }
  arm_timer(seq);
}

void ReliableChannel::on_data(std::uint64_t seq, std::uint32_t hops) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) {
    // The sender already gave up (or was acked and this is a duplicate copy
    // of a retransmission): late data is dropped, mirroring an aborted RPC.
    if (delivered_.count(seq)) {
      ++duplicates_suppressed_;
      if (transport_.ctx().tracing_on()) {
        transport_.ctx().recorder().instant(transport_.sim().now(),
                                               "dup_suppressed", "rpc", 0);
      }
    }
    return;
  }
  // Copy out before any callback: delivering can re-enter send() and rehash
  // pending_, invalidating the iterator.
  const NodeId from = it->second.from;
  const NodeId to = it->second.to;
  const Traffic traffic = it->second.traffic;
  Receiver deliver = it->second.on_deliver;
  // Ack every copy (the previous ack may have been the loss), then deliver
  // to the application at most once.  As with retransmissions, the ack only
  // lands in MessageStats when it actually routed (and was thus charged).
  const auto ack_hops = transport_.unicast(
      to, from, traffic, [this, seq](NodeId, std::uint32_t) { on_ack(seq); });
  if (ack_hops) {
    transport_.stats().note_ack();
    if (transport_.ctx().tracing_on()) {
      transport_.ctx().recorder().instant(transport_.sim().now(), "ack",
                                             "rpc", to, {{"to", from}});
    }
  }
  if (delivered_.insert(seq).second) {
    deliver(to, hops);
  } else {
    ++duplicates_suppressed_;
    if (transport_.ctx().tracing_on()) {
      transport_.ctx().recorder().instant(transport_.sim().now(),
                                             "dup_suppressed", "rpc", to);
    }
  }
}

void ReliableChannel::on_ack(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // duplicate ack
  ++acks_received_;
  it->second.timer.cancel();
  pending_.erase(it);
}

}  // namespace qip
