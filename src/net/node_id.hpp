// Simulator-level node identity.
//
// A NodeId names a physical device for the lifetime of a simulation run; it
// is distinct from the IP address the protocol assigns (which can change,
// e.g. after a network merge).  Ids are never reused within one run.
#pragma once

#include <cstdint>
#include <limits>

namespace qip {

using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

}  // namespace qip
