#include "quorum/intersection_checker.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "util/assert.hpp"

namespace qip {

namespace {

std::string set_to_string(const std::vector<std::uint32_t>& s) {
  std::ostringstream out;
  out << '{';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out << ',';
    out << s[i];
  }
  out << '}';
  return out.str();
}

std::vector<std::uint32_t> mask_to_set(std::uint32_t mask, std::uint32_t n) {
  std::vector<std::uint32_t> s;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (mask & (1u << i)) s.push_back(i);
  }
  return s;
}

bool sorted_disjoint(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return false;
    }
  }
  return true;
}

/// Per-view invariant 1: write-write and read-write intersection on the
/// materialized systems.  Appends the first violation to `report`.
void check_view(const QuorumPolicy& policy,
                const std::vector<std::uint32_t>& view,
                IntersectionReport& report) {
  // Lowest id plays distinguished, as in QipEngine::start_quorum_round.
  const std::optional<std::uint32_t> distinguished = view.front();
  const QuorumSystem writes = policy.materialize(view, distinguished);
  const QuorumSystem reads = policy.read_system(view, distinguished);
  for (std::size_t i = 0; i < writes.quorums().size(); ++i) {
    for (std::size_t j = i + 1; j < writes.quorums().size(); ++j) {
      ++report.pairs;
      if (sorted_disjoint(writes.quorums()[i], writes.quorums()[j])) {
        report.ok = false;
        report.violation = "disjoint write quorums " +
                           set_to_string(writes.quorums()[i]) + " and " +
                           set_to_string(writes.quorums()[j]) + " at view " +
                           set_to_string(view) + " under " + policy.name();
        return;
      }
    }
  }
  for (const auto& r : reads.quorums()) {
    for (const auto& w : writes.quorums()) {
      ++report.pairs;
      if (sorted_disjoint(r, w)) {
        report.ok = false;
        report.violation = "read quorum " + set_to_string(r) +
                           " misses write quorum " + set_to_string(w) +
                           " at view " + set_to_string(view) + " under " +
                           policy.name();
        return;
      }
    }
  }
}

/// splitmix64 — tiny, deterministic across standard libraries (unlike
/// std::uniform_int_distribution, whose mapping is implementation-defined).
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform-enough draw in [0, bound) for bound << 2^32.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }
};

}  // namespace

IntersectionReport check_intersection_exhaustive(
    const QuorumPolicy& policy, std::uint32_t universe_size) {
  QIP_ASSERT_MSG(universe_size >= 1 && universe_size <= 7,
                 "exhaustive checker wants a universe in [1, 7], got "
                     << universe_size);
  IntersectionReport report;

  // BFS over view bitmasks, starting from the full universe.  A shrink
  // G → G\{m} is legal iff the survivors G\{m} still cover a write quorum
  // of G (invariant 2) — the engine's shrink_quorum gate in set form.
  const std::uint32_t full = (1u << universe_size) - 1;
  std::deque<std::uint32_t> frontier{full};
  std::unordered_set<std::uint32_t> seen{full};
  while (!frontier.empty() && report.ok) {
    const std::uint32_t mask = frontier.front();
    frontier.pop_front();
    const std::vector<std::uint32_t> view = mask_to_set(mask, universe_size);
    ++report.views;
    check_view(policy, view, report);
    if (!report.ok) break;
    if (view.size() == 1) continue;
    for (std::uint32_t m : view) {
      const std::uint32_t next = mask & ~(1u << m);
      const std::vector<std::uint32_t> survivors =
          mask_to_set(next, universe_size);
      if (!policy.is_quorum(view, survivors, view.front())) continue;
      ++report.shrinks;
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return report;
}

IntersectionReport check_intersection_random(const QuorumPolicy& policy,
                                             std::uint32_t universe_size,
                                             std::uint64_t seed,
                                             std::uint32_t trials) {
  QIP_ASSERT_MSG(universe_size >= 2 && universe_size <= 32,
                 "random checker wants a universe in [2, 32], got "
                     << universe_size);
  IntersectionReport report;
  SplitMix64 rng{seed};
  for (std::uint32_t trial = 0; trial < trials && report.ok; ++trial) {
    std::vector<std::uint32_t> view(universe_size);
    for (std::uint32_t i = 0; i < universe_size; ++i) view[i] = i;
    // One random shrink chain; at each view, a handful of random disjoint
    // splits (A, B) of the view, asserting they are never both quorums.
    while (report.ok) {
      ++report.views;
      const std::uint32_t distinguished = view.front();
      for (int split = 0; split < 8; ++split) {
        std::vector<std::uint32_t> a, b;
        for (std::uint32_t member : view) {
          (rng.next() & 1 ? a : b).push_back(member);
        }
        if (a.empty() || b.empty()) continue;
        ++report.pairs;
        if (policy.is_quorum(view, a, distinguished) &&
            policy.is_quorum(view, b, distinguished)) {
          report.ok = false;
          report.violation = "disjoint sets " + set_to_string(a) + " and " +
                             set_to_string(b) +
                             " are both quorums at view " +
                             set_to_string(view) + " under " + policy.name();
          break;
        }
      }
      if (!report.ok || view.size() == 1) break;
      // Try one random departure; stop the chain when it is not quorate.
      const std::size_t victim = rng.below(view.size());
      std::vector<std::uint32_t> survivors = view;
      survivors.erase(survivors.begin() + victim);
      if (!policy.is_quorum(view, survivors, view.front())) break;
      ++report.shrinks;
      view = std::move(survivors);
    }
  }
  return report;
}

IntersectionReport check_slice_config(
    const SliceConfig& config, const std::vector<std::uint32_t>& universe) {
  const std::uint32_t n = static_cast<std::uint32_t>(universe.size());
  QIP_ASSERT_MSG(n >= 1 && n <= QuorumSystem::kMaxSliceUniverse,
                 "slice-config checker universe of "
                     << n << " exceeds the cap of "
                     << QuorumSystem::kMaxSliceUniverse);
  std::vector<std::uint32_t> sorted = universe;
  std::sort(sorted.begin(), sorted.end());
  IntersectionReport report;
  // Two disjoint quorums exist iff some split (S, U\S) has a quorum on each
  // side; max_quorum_within finds the side's largest quorum or ∅.
  const std::uint32_t full = (1u << n) - 1;
  for (std::uint32_t mask = 1; mask < full; ++mask) {
    // Walk each unordered split once.
    if (!(mask & 1u)) continue;
    ++report.pairs;
    std::vector<std::uint32_t> side_a, side_b;
    for (std::uint32_t i = 0; i < n; ++i) {
      (mask & (1u << i) ? side_a : side_b).push_back(sorted[i]);
    }
    const std::vector<std::uint32_t> qa = config.max_quorum_within(side_a);
    if (qa.empty()) continue;
    const std::vector<std::uint32_t> qb = config.max_quorum_within(side_b);
    if (qb.empty()) continue;
    report.ok = false;
    report.violation = "slice config admits disjoint quorums " +
                       set_to_string(qa) + " and " + set_to_string(qb);
    return report;
  }
  return report;
}

}  // namespace qip
