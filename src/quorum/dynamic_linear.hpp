// Dynamic linear voting (Jajodia & Mutchler, VLDB'87) as used in §II-D.
//
// Under plain majority voting a subset containing exactly half the voters is
// never a quorum.  Dynamic linear voting designates a *distinguished node*
// (here: the cluster head whose IPSpace owns the address under vote) and
// accepts an exactly-half subset iff it contains the distinguished node.
// This strictly increases availability without breaking intersection: two
// half-sets both claiming quorum would both need the one distinguished node.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace qip {

/// Decides whether `responders` (a subset of a replica group of size
/// `group_size`) constitutes a quorum.
///
/// `distinguished` is the id of the distinguished voter, if the caller uses
/// dynamic linear voting; std::nullopt falls back to strict majority.
bool is_quorum(std::uint32_t group_size,
               const std::vector<std::uint32_t>& responders,
               std::optional<std::uint32_t> distinguished = std::nullopt);

/// Number of confirmations required from a group of `group_size` voters when
/// the caller already knows whether the distinguished voter is among the
/// confirmed set.  With `has_distinguished`, an even group needs only
/// group_size/2 votes; otherwise ⌊group_size/2⌋+1.
std::uint32_t quorum_threshold(std::uint32_t group_size, bool has_distinguished);

}  // namespace qip
