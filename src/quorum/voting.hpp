// Quorum-voting arithmetic (§II-C).
//
// A replica group of v voters supports consistent reads/writes when the
// write quorum w and read quorum r satisfy
//     w > v/2    and    r + w > v.
// We use the minimal such quorums: w = ⌊v/2⌋ + 1 and r = v − w + 1.  Every
// read then intersects every write, and two writes intersect each other, so
// at most one allocator can commit a given address — the paper's uniqueness
// argument.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

namespace qip {

/// Quorum sizes for a replica group of `total_votes` voters.
struct QuorumSpec {
  std::uint32_t total_votes = 0;
  std::uint32_t write_quorum = 0;
  std::uint32_t read_quorum = 0;

  /// Minimal read/write quorums for `v` voters (v >= 1).
  static QuorumSpec minimal(std::uint32_t v);

  /// The two safety conditions from §II-C.
  bool valid() const {
    return total_votes > 0 && write_quorum * 2 > total_votes &&
           read_quorum + write_quorum > total_votes &&
           write_quorum <= total_votes && read_quorum <= total_votes &&
           read_quorum >= 1;
  }
};

/// Tallies confirmations for one quorum-collection round.
///
/// The allocator itself always holds one vote (it stores a copy of every
/// block it arbitrates), so callers construct the counter with the allocator
/// vote pre-counted when appropriate.
class VoteCounter {
 public:
  VoteCounter(std::uint32_t needed, std::uint32_t outstanding)
      : needed_(needed), outstanding_(outstanding) {}

  /// Records one confirmation carrying the responder's record timestamp.
  void confirm(std::uint64_t timestamp);
  /// Records an explicit rejection or timeout.
  void deny();

  std::uint32_t confirmations() const { return confirmations_; }
  std::uint32_t denials() const { return denials_; }
  std::uint32_t outstanding() const { return outstanding_; }
  std::uint32_t needed() const { return needed_; }

  /// Latest timestamp observed among confirmations (0 if none).
  std::uint64_t latest_timestamp() const { return latest_timestamp_; }

  bool reached() const { return confirmations_ >= needed_; }
  /// True once success has become impossible (too many denials).
  bool failed() const {
    return confirmations_ + outstanding_ < needed_;
  }
  /// All responses in (success or failure decided).
  bool settled() const { return reached() || failed() || outstanding_ == 0; }

 private:
  std::uint32_t needed_;
  std::uint32_t outstanding_;
  std::uint32_t confirmations_ = 0;
  std::uint32_t denials_ = 0;
  std::uint64_t latest_timestamp_ = 0;
};

}  // namespace qip
