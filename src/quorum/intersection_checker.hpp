// Property-based quorum-intersection checker.
//
// The paper's uniqueness argument (§II-C/§II-D) needs one invariant: no two
// disjoint subsets of a replica group can both act, at any point in the
// group's lifetime — including mid-adjustment, while a T_d shrink window is
// open and some members still operate on the pre-shrink view.
//
// Naive "check adjacent views against each other" is the wrong property and
// would reject dynamic linear voting outright: with G = {1,2,3,4}, the half
// {1,2} holds a quorum of G (it has the distinguished node 1) while {3,4}
// holds a majority of the post-shrink view G' = {2,3,4} — disjoint sets,
// both quorate, yet the protocol is safe.  Safety comes from the shrink
// itself being a quorate operation of G: the commit quorum intersects every
// quorum of G (so the shrink is ordered against {1,2}'s action), and {3,4}
// acts on G' strictly after the shrink — virtual-synchrony ordering, not
// set intersection across views.
//
// So the checkable invariant is:
//   1. per-view intersection — at every reachable view G, the write quorums
//      pairwise intersect and every read quorum meets every write quorum;
//   2. shrink legality — a view transition G → G\{m} only happens when
//      G\{m} still covers a write quorum of G (the survivors can commit it).
// The checker walks every view reachable from the starting QDSet through
// legal shrinks and asserts both, exhaustively for small universes and by
// seeded-random sampling for larger ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "quorum/quorum_policy.hpp"
#include "quorum/slices.hpp"

namespace qip {

struct IntersectionReport {
  std::uint64_t views = 0;    ///< distinct reachable views examined
  std::uint64_t shrinks = 0;  ///< legal shrink transitions verified quorate
  std::uint64_t pairs = 0;    ///< quorum/split pairs tested for intersection
  bool ok = true;
  std::string violation;  ///< first failure, human-readable ("" when ok)
};

/// Exhaustive check over the universe {0, …, universe_size−1}: enumerates
/// every view reachable through legal shrinks (BFS over subsets), and at
/// each view materializes the policy's explicit read/write systems and
/// verifies write-write and read-write intersection.  The distinguished
/// node at each view is its lowest id, matching QipEngine::start_quorum_round.
/// universe_size is bounded by the materialization caps — keep it <= 7 so
/// the subset walk stays instant.
IntersectionReport check_intersection_exhaustive(const QuorumPolicy& policy,
                                                 std::uint32_t universe_size);

/// Seeded-random check for universes too large to enumerate: runs `trials`
/// random shrink chains from the full universe, and at every view along each
/// chain tests random disjoint splits (A, B) for double-quorum via the
/// policy's set-form is_quorum.  Deterministic for a given seed (own
/// splitmix64 stream, no std::uniform_int_distribution variance).
IntersectionReport check_intersection_random(const QuorumPolicy& policy,
                                             std::uint32_t universe_size,
                                             std::uint64_t seed,
                                             std::uint32_t trials);

/// Static check of one federated configuration: searches all 2^(n−1) splits
/// of `universe` for a pair of disjoint quorums (via max_quorum_within on
/// both halves).  A well-formed flat-majority config passes; a config with
/// disjoint trust cliques is refuted with the offending pair named in
/// `violation`.
IntersectionReport check_slice_config(const SliceConfig& config,
                                      const std::vector<std::uint32_t>& universe);

}  // namespace qip
