#include "quorum/dynamic_linear.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qip {

std::uint32_t quorum_threshold(std::uint32_t group_size,
                               bool has_distinguished) {
  QIP_ASSERT(group_size >= 1);
  const std::uint32_t strict_majority = group_size / 2 + 1;
  if (!has_distinguished) return strict_majority;
  if (group_size % 2 == 0) return group_size / 2;
  return strict_majority;
}

bool is_quorum(std::uint32_t group_size,
               const std::vector<std::uint32_t>& responders,
               std::optional<std::uint32_t> distinguished) {
  QIP_ASSERT(group_size >= 1);
  QIP_ASSERT_MSG(responders.size() <= group_size,
                 "more responders than voters");
  const auto n = static_cast<std::uint32_t>(responders.size());
  if (2 * n > group_size) return true;  // strict majority
  if (2 * n == group_size && distinguished.has_value()) {
    return std::find(responders.begin(), responders.end(), *distinguished) !=
           responders.end();
  }
  return false;
}

}  // namespace qip
