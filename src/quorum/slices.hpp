// Federated quorum slices with v-blocking sets (SCP style, §II-C analogue).
//
// The counting rules (voting.hpp, dynamic_linear.hpp) are *symmetric*: every
// copy weighs the same and only cardinality matters.  A federated system —
// stellar-core's LocalNode idiom — instead lets every node declare its own
// quorum *slice*: a k-of-n condition over the peers it trusts.  A set of
// nodes is then a quorum iff it is non-empty and every member's slice is
// satisfied *within the set*; a set B is v-blocking for a node iff B
// intersects every way of satisfying that node's slice (so the node can
// never assemble a slice that avoids B).
//
// QIP's replica groups are QDSets — each head's slice is derived from its
// QDSet membership (the flat_majority shape below); custom shapes exist for
// the intersection checker and the Byzantine-lite experiments, where
// deliberately-broken declarations (disjoint trust cliques) must be
// refutable, not silently accepted.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace qip {

/// One node's slice declaration, flattened to a single threshold level
/// (stellar-core's SCPQuorumSet without nested inner sets): any `threshold`
/// members of `validators` satisfy the node.  Nodes conventionally list
/// themselves among their own validators (flat_majority does).
struct QuorumSlice {
  std::uint32_t threshold = 0;
  std::vector<std::uint32_t> validators;  ///< sorted, unique

  /// Rejects malformed declarations (threshold 0 or above the validator
  /// count, unsorted/duplicate validators) with an InvariantViolation —
  /// same fail-at-construction idiom as FaultPlan::validate().
  void validate() const;
};

/// Per-node slice declarations over one universe.  stellar-core's LocalNode
/// holds only its own declaration; quorum evaluation and the intersection
/// checker need everybody's, so this maps node id -> declaration.
class SliceConfig {
 public:
  /// The federated form of the paper's majority rule: every node trusts a
  /// strict majority of the whole universe, itself included.  This is the
  /// shape the `slices` QuorumPolicy backend derives from a QDSet replica
  /// group, and it is provably equivalent to plain majority counting.
  static SliceConfig flat_majority(const std::vector<std::uint32_t>& universe);

  /// Installs (or replaces) `node`'s declaration.  Validates the slice.
  void set(std::uint32_t node, QuorumSlice slice);

  /// The declaration of `node`, or nullptr if it never declared one.
  const QuorumSlice* find(std::uint32_t node) const;

  /// All declarations, ordered by node id.
  const std::map<std::uint32_t, QuorumSlice>& slices() const {
    return slices_;
  }

  /// stellar LocalNode::isQuorumSlice — does `set` (sorted) satisfy
  /// `slice`, i.e. contain at least `threshold` of its validators?
  static bool satisfies_slice(const QuorumSlice& slice,
                              const std::vector<std::uint32_t>& set);

  /// stellar LocalNode::isVBlocking — does `set` (sorted) intersect every
  /// `threshold`-subset of `slice.validators`?  Equivalently: fewer than
  /// `threshold` validators survive outside `set`, so the slice cannot be
  /// satisfied while avoiding `set`.
  static bool is_v_blocking(const QuorumSlice& slice,
                            const std::vector<std::uint32_t>& set);

  /// Convenience lookup form: is `set` (sorted) v-blocking for `node`'s
  /// declaration in this config?  A node with no declaration has no slices,
  /// so nothing blocks it vacuously (false) — callers treat undeclared
  /// nodes as unsatisfiable instead (see is_quorum).
  bool v_blocks(std::uint32_t node, const std::vector<std::uint32_t>& set) const;

  /// Quorum test (stellar LocalNode::isQuorum): `set` (sorted) is non-empty
  /// and every member's declared slice is satisfied within `set`.  A member
  /// without a declaration can never be satisfied, so any set containing
  /// one is not a quorum.
  bool is_quorum(const std::vector<std::uint32_t>& set) const;

  /// Greatest quorum contained in `candidate` (possibly empty): the
  /// fixpoint prune of stellar-core's QuorumSetUtils — repeatedly drop
  /// members whose slice is unsatisfied within the survivors.  The result
  /// is the union of all quorums inside `candidate`.
  std::vector<std::uint32_t> max_quorum_within(
      std::vector<std::uint32_t> candidate) const;

 private:
  std::map<std::uint32_t, QuorumSlice> slices_;
};

}  // namespace qip
