#include "quorum/slices.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qip {

namespace {

/// |a ∩ b| for two sorted vectors, without materializing the overlap.
std::size_t intersection_size(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  std::size_t n = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

}  // namespace

void QuorumSlice::validate() const {
  QIP_ASSERT_MSG(!validators.empty(), "QuorumSlice with no validators");
  QIP_ASSERT_MSG(threshold >= 1,
                 "QuorumSlice threshold 0 — a slice nobody needs to satisfy "
                 "makes every set a quorum");
  QIP_ASSERT_MSG(threshold <= validators.size(),
                 "QuorumSlice threshold " << threshold << " exceeds its "
                                          << validators.size()
                                          << " validators — unsatisfiable");
  QIP_ASSERT_MSG(std::is_sorted(validators.begin(), validators.end()),
                 "QuorumSlice validators are not sorted");
  QIP_ASSERT_MSG(std::adjacent_find(validators.begin(), validators.end()) ==
                     validators.end(),
                 "QuorumSlice has duplicate validators");
}

SliceConfig SliceConfig::flat_majority(
    const std::vector<std::uint32_t>& universe) {
  std::vector<std::uint32_t> sorted = universe;
  std::sort(sorted.begin(), sorted.end());
  QIP_ASSERT_MSG(!sorted.empty(), "flat_majority over an empty universe");
  QuorumSlice slice;
  slice.threshold = static_cast<std::uint32_t>(sorted.size() / 2 + 1);
  slice.validators = sorted;
  SliceConfig cfg;
  for (std::uint32_t node : sorted) cfg.set(node, slice);
  return cfg;
}

void SliceConfig::set(std::uint32_t node, QuorumSlice slice) {
  slice.validate();
  slices_[node] = std::move(slice);
}

const QuorumSlice* SliceConfig::find(std::uint32_t node) const {
  auto it = slices_.find(node);
  return it == slices_.end() ? nullptr : &it->second;
}

bool SliceConfig::satisfies_slice(const QuorumSlice& slice,
                                  const std::vector<std::uint32_t>& set) {
  return intersection_size(slice.validators, set) >= slice.threshold;
}

bool SliceConfig::is_v_blocking(const QuorumSlice& slice,
                                const std::vector<std::uint32_t>& set) {
  // `set` blocks iff too few validators survive outside it to reach the
  // threshold.  (stellar LocalNode::isVBlockingInternal, flat case.)
  const std::size_t surviving =
      slice.validators.size() - intersection_size(slice.validators, set);
  return surviving < slice.threshold;
}

bool SliceConfig::v_blocks(std::uint32_t node,
                           const std::vector<std::uint32_t>& set) const {
  const QuorumSlice* slice = find(node);
  return slice != nullptr && is_v_blocking(*slice, set);
}

bool SliceConfig::is_quorum(const std::vector<std::uint32_t>& set) const {
  if (set.empty()) return false;
  for (std::uint32_t node : set) {
    const QuorumSlice* slice = find(node);
    if (slice == nullptr || !satisfies_slice(*slice, set)) return false;
  }
  return true;
}

std::vector<std::uint32_t> SliceConfig::max_quorum_within(
    std::vector<std::uint32_t> candidate) const {
  std::sort(candidate.begin(), candidate.end());
  // Fixpoint prune: a member whose slice is unsatisfied can belong to no
  // quorum inside `candidate`, so dropping it loses nothing; repeat until
  // the survivors all stand (then they are a quorum) or nobody is left.
  bool changed = true;
  while (changed && !candidate.empty()) {
    changed = false;
    std::vector<std::uint32_t> kept;
    kept.reserve(candidate.size());
    for (std::uint32_t node : candidate) {
      const QuorumSlice* slice = find(node);
      if (slice != nullptr && satisfies_slice(*slice, candidate)) {
        kept.push_back(node);
      } else {
        changed = true;
      }
    }
    candidate = std::move(kept);
  }
  return candidate;
}

}  // namespace qip
