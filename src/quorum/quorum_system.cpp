#include "quorum/quorum_system.hpp"

#include <algorithm>
#include <bit>

#include "quorum/slices.hpp"
#include "util/assert.hpp"

namespace qip {

namespace {

/// Sorts `universe` and rejects empty/duplicated/oversized ones with the
/// rich-message idiom of FaultPlan::validate(): the failure names the limit
/// and the number that broke it.
std::vector<std::uint32_t> checked_universe(std::vector<std::uint32_t> universe,
                                            std::size_t cap,
                                            const char* builder) {
  QIP_ASSERT_MSG(!universe.empty(),
                 "QuorumSystem::" << builder << " over an empty universe");
  QIP_ASSERT_MSG(universe.size() <= cap,
                 "QuorumSystem::" << builder << " universe of "
                                  << universe.size()
                                  << " exceeds the enumeration cap of " << cap
                                  << " — explicit systems are for per-head "
                                     "QDSets, not whole populations");
  std::sort(universe.begin(), universe.end());
  QIP_ASSERT_MSG(
      std::adjacent_find(universe.begin(), universe.end()) == universe.end(),
      "QuorumSystem::" << builder << " universe has a duplicate element");
  return universe;
}

/// Emits all size-k subsets of `universe` into `out`.
void enumerate_subsets(const std::vector<std::uint32_t>& universe,
                       std::size_t k, std::vector<QuorumSet>& out) {
  const std::size_t n = universe.size();
  QIP_ASSERT(k <= n);
  QuorumSet current;
  current.reserve(k);
  // Iterative combination enumeration via index vector.
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    current.clear();
    for (std::size_t i : idx) current.push_back(universe[i]);
    out.push_back(current);
    // Advance to next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;
  }
}

}  // namespace

QuorumSystem QuorumSystem::majority(std::vector<std::uint32_t> universe) {
  QuorumSystem qs;
  qs.universe_ = checked_universe(std::move(universe), kMaxUniverse,
                                  "majority");
  const std::size_t k = qs.universe_.size() / 2 + 1;
  enumerate_subsets(qs.universe_, k, qs.quorums_);
  return qs;
}

QuorumSystem QuorumSystem::fixed_size(std::vector<std::uint32_t> universe,
                                      std::size_t k) {
  QuorumSystem qs;
  qs.universe_ = checked_universe(std::move(universe), kMaxUniverse,
                                  "fixed_size");
  QIP_ASSERT_MSG(k >= 1 && k <= qs.universe_.size(),
                 "QuorumSystem::fixed_size k = " << k
                                                 << " outside [1, "
                                                 << qs.universe_.size()
                                                 << "]");
  enumerate_subsets(qs.universe_, k, qs.quorums_);
  return qs;
}

QuorumSystem QuorumSystem::from_slices(const SliceConfig& config,
                                       std::vector<std::uint32_t> universe) {
  QuorumSystem qs;
  qs.universe_ = checked_universe(std::move(universe), kMaxSliceUniverse,
                                  "from_slices");
  const std::size_t n = qs.universe_.size();

  // Compile each member's declaration to a validator bitmask over the
  // universe; validators outside the universe can never join a subset, so
  // dropping them changes nothing.
  std::vector<std::uint32_t> masks(n, 0);
  std::vector<std::uint32_t> thresholds(n, 0);
  std::vector<bool> declared(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const QuorumSlice* slice = config.find(qs.universe_[i]);
    if (slice == nullptr) continue;  // member of no quorum at all
    declared[i] = true;
    thresholds[i] = slice->threshold;
    for (std::uint32_t v : slice->validators) {
      const auto it =
          std::lower_bound(qs.universe_.begin(), qs.universe_.end(), v);
      if (it != qs.universe_.end() && *it == v) {
        masks[i] |= 1u << (it - qs.universe_.begin());
      }
    }
  }

  const auto is_quorum_mask = [&](std::uint32_t s) {
    if (s == 0) return false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(s & (1u << i))) continue;
      if (!declared[i]) return false;
      if (std::popcount(masks[i] & s) <
          static_cast<int>(thresholds[i]))
        return false;
    }
    return true;
  };

  // Walk subsets in increasing cardinality and keep the minimal quorums:
  // a candidate is minimal iff no already-kept (hence smaller) quorum sits
  // strictly inside it — every quorum contains a minimal one, so the test
  // against kept masks is exact.
  std::vector<std::uint32_t> by_popcount(std::size_t{1} << n);
  for (std::uint32_t s = 0; s < by_popcount.size(); ++s) by_popcount[s] = s;
  std::stable_sort(by_popcount.begin(), by_popcount.end(),
                   [](std::uint32_t a, std::uint32_t b) {
                     return std::popcount(a) < std::popcount(b);
                   });
  std::vector<std::uint32_t> minimal_masks;
  for (std::uint32_t s : by_popcount) {
    if (!is_quorum_mask(s)) continue;
    bool dominated = false;
    for (std::uint32_t m : minimal_masks) {
      if ((m & s) == m) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    minimal_masks.push_back(s);
    QuorumSet q;
    for (std::size_t i = 0; i < n; ++i) {
      if (s & (1u << i)) q.push_back(qs.universe_[i]);
    }
    qs.quorums_.push_back(std::move(q));
  }
  return qs;
}

QuorumSystem QuorumSystem::dynamic_linear(std::vector<std::uint32_t> universe,
                                          std::uint32_t distinguished) {
  QuorumSystem qs = majority(std::move(universe));
  QIP_ASSERT_MSG(std::binary_search(qs.universe_.begin(), qs.universe_.end(),
                                    distinguished),
                 "distinguished node not in universe");
  const std::size_t n = qs.universe_.size();
  if (n % 2 == 0) {
    // Exactly-half subsets containing the distinguished node replace the
    // majority sets that extend them; we simply add them (the system remains
    // intersecting, and covers_quorum naturally prefers the smaller sets).
    std::vector<QuorumSet> halves;
    enumerate_subsets(qs.universe_, n / 2, halves);
    for (auto& h : halves) {
      if (std::binary_search(h.begin(), h.end(), distinguished))
        qs.quorums_.push_back(std::move(h));
    }
  }
  return qs;
}

bool QuorumSystem::pairwise_intersecting() const {
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    for (std::size_t j = i + 1; j < quorums_.size(); ++j) {
      std::vector<std::uint32_t> overlap;
      std::set_intersection(quorums_[i].begin(), quorums_[i].end(),
                            quorums_[j].begin(), quorums_[j].end(),
                            std::back_inserter(overlap));
      if (overlap.empty()) return false;
    }
  }
  return true;
}

bool QuorumSystem::covers_quorum(const QuorumSet& subset) const {
  QuorumSet sorted = subset;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& q : quorums_) {
    if (std::includes(sorted.begin(), sorted.end(), q.begin(), q.end()))
      return true;
  }
  return false;
}

std::size_t QuorumSystem::min_quorum_size() const {
  QIP_ASSERT(!quorums_.empty());
  std::size_t best = quorums_.front().size();
  for (const auto& q : quorums_) best = std::min(best, q.size());
  return best;
}

}  // namespace qip
