#include "quorum/quorum_system.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qip {

namespace {

constexpr std::size_t kMaxUniverse = 20;  // 2^20 subsets worst case

/// Emits all size-k subsets of `universe` into `out`.
void enumerate_subsets(const std::vector<std::uint32_t>& universe,
                       std::size_t k, std::vector<QuorumSet>& out) {
  const std::size_t n = universe.size();
  QIP_ASSERT(k <= n);
  QuorumSet current;
  current.reserve(k);
  // Iterative combination enumeration via index vector.
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    current.clear();
    for (std::size_t i : idx) current.push_back(universe[i]);
    out.push_back(current);
    // Advance to next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;
  }
}

}  // namespace

QuorumSystem QuorumSystem::majority(std::vector<std::uint32_t> universe) {
  QIP_ASSERT(!universe.empty());
  QIP_ASSERT_MSG(universe.size() <= kMaxUniverse, "universe too large");
  std::sort(universe.begin(), universe.end());
  QIP_ASSERT_MSG(
      std::adjacent_find(universe.begin(), universe.end()) == universe.end(),
      "duplicate universe element");
  QuorumSystem qs;
  qs.universe_ = std::move(universe);
  const std::size_t k = qs.universe_.size() / 2 + 1;
  enumerate_subsets(qs.universe_, k, qs.quorums_);
  return qs;
}

QuorumSystem QuorumSystem::dynamic_linear(std::vector<std::uint32_t> universe,
                                          std::uint32_t distinguished) {
  QuorumSystem qs = majority(std::move(universe));
  QIP_ASSERT_MSG(std::binary_search(qs.universe_.begin(), qs.universe_.end(),
                                    distinguished),
                 "distinguished node not in universe");
  const std::size_t n = qs.universe_.size();
  if (n % 2 == 0) {
    // Exactly-half subsets containing the distinguished node replace the
    // majority sets that extend them; we simply add them (the system remains
    // intersecting, and covers_quorum naturally prefers the smaller sets).
    std::vector<QuorumSet> halves;
    enumerate_subsets(qs.universe_, n / 2, halves);
    for (auto& h : halves) {
      if (std::binary_search(h.begin(), h.end(), distinguished))
        qs.quorums_.push_back(std::move(h));
    }
  }
  return qs;
}

bool QuorumSystem::pairwise_intersecting() const {
  for (std::size_t i = 0; i < quorums_.size(); ++i) {
    for (std::size_t j = i + 1; j < quorums_.size(); ++j) {
      std::vector<std::uint32_t> overlap;
      std::set_intersection(quorums_[i].begin(), quorums_[i].end(),
                            quorums_[j].begin(), quorums_[j].end(),
                            std::back_inserter(overlap));
      if (overlap.empty()) return false;
    }
  }
  return true;
}

bool QuorumSystem::covers_quorum(const QuorumSet& subset) const {
  QuorumSet sorted = subset;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& q : quorums_) {
    if (std::includes(sorted.begin(), sorted.end(), q.begin(), q.end()))
      return true;
  }
  return false;
}

std::size_t QuorumSystem::min_quorum_size() const {
  QIP_ASSERT(!quorums_.empty());
  std::size_t best = quorums_.front().size();
  for (const auto& q : quorums_) best = std::min(best, q.size());
  return best;
}

}  // namespace qip
