// Pluggable quorum backends (ROADMAP item 3).
//
// The engine's quorum-critical paths — vote tallying in qip_engine.cpp, the
// quorate checks guarding shrink/reclamation in qip_maintenance.cpp — used to
// hardcode the two counting rules of §II-C/§II-D.  QuorumPolicy lifts that
// decision into an interface with three registered backends:
//
//   majority        strict majority counting: w = ⌊n/2⌋+1 always.
//   dynamic_linear  Jajodia–Mutchler dynamic linear voting (the default and
//                   the paper's §II-D rule): an exactly-half subset of an
//                   even group is a quorum iff it holds the distinguished
//                   node (dynamic_linear.hpp).
//   slices          federated quorum slices with v-blocking sets
//                   (slices.hpp, stellar-core LocalNode style).  The engine
//                   derives every member's slice from QDSet membership as
//                   flat_majority, which makes this backend count-equivalent
//                   to `majority` on the engine's symmetric replica groups —
//                   the asymmetric power only surfaces through custom
//                   SliceConfigs (intersection checker, Byzantine-lite
//                   experiments).
//
// Backends are selected per-run through QipParams::quorum, which defaults to
// quorum_backend_from_env() so the QIP_QUORUM env var (and the figure
// benches' --quorum flag) reaches every internally-constructed QipParams.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "quorum/quorum_system.hpp"
#include "quorum/slices.hpp"

namespace qip {

enum class QuorumBackend : std::uint8_t {
  kMajority = 0,
  kDynamicLinear = 1,
  kSlices = 2,
};

/// "majority", "dynamic_linear" or "slices" — the exact spellings
/// parse_quorum_backend accepts.
const char* to_string(QuorumBackend backend);

/// Strict parse of a backend name; nullopt on anything else (including
/// nullptr and "").  Case-sensitive on purpose: the env/flag surface is
/// exact-match like QIP_SCHED.
std::optional<QuorumBackend> parse_quorum_backend(const char* text);

/// Reads QIP_QUORUM.  Unset/empty selects kDynamicLinear (the paper's rule
/// and the byte-identity baseline); a malformed value is a usage error and
/// exits 2, same contract as scheduler_kind_from_env().
QuorumBackend quorum_backend_from_env();

/// One quorum backend.  Stateless and shared — obtain instances through
/// quorum_policy(), never construct or own one.
class QuorumPolicy {
 public:
  virtual ~QuorumPolicy() = default;

  QuorumBackend kind() const { return kind_; }
  const char* name() const { return to_string(kind_); }

  /// Confirmations required from a replica group of `group_size` voters when
  /// the caller already knows whether the distinguished voter is on board.
  /// This is the counting form the engine's hot paths use: the group is
  /// symmetric (every QDSet member weighs the same), so cardinality plus the
  /// distinguished bit decides everything for all three backends.
  virtual std::uint32_t threshold(std::uint32_t group_size,
                                  bool has_distinguished) const = 0;

  /// threshold() phrased as a predicate: do `confirms` confirmations commit?
  bool satisfied(std::uint32_t group_size, std::uint32_t confirms,
                 bool has_distinguished) const {
    return confirms >= threshold(group_size, has_distinguished);
  }

  /// Set-form quorum test over an explicit universe.  `subset` need not be
  /// sorted; `distinguished` only matters to dynamic_linear (nullopt falls
  /// back to strict majority there, mirroring is_quorum()'s contract).
  virtual bool is_quorum(const std::vector<std::uint32_t>& universe,
                         const std::vector<std::uint32_t>& subset,
                         std::optional<std::uint32_t> distinguished) const = 0;

  /// Explicit write-quorum system over a small universe (Definition 1 view)
  /// — the object the intersection checker and the property tests consume.
  /// Respects QuorumSystem's enumeration caps (throws above them).
  virtual QuorumSystem materialize(
      std::vector<std::uint32_t> universe,
      std::optional<std::uint32_t> distinguished) const = 0;

  /// Explicit read-quorum system.  Default: reads use the write quorums
  /// (r = w), trivially intersecting since the write system does.  The
  /// majority backend overrides this with the paper's minimal reads
  /// (r = n − w + 1, so r + w = n + 1 > n).
  virtual QuorumSystem read_system(
      std::vector<std::uint32_t> universe,
      std::optional<std::uint32_t> distinguished) const;

 protected:
  explicit QuorumPolicy(QuorumBackend kind) : kind_(kind) {}

 private:
  QuorumBackend kind_;
};

/// The registered singleton for `backend`.  Valid for the program's
/// lifetime; policies are stateless, so one instance serves every engine.
const QuorumPolicy& quorum_policy(QuorumBackend backend);

}  // namespace qip
