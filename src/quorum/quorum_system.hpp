// Explicit quorum systems over small universes (Definition 1, §II-C).
//
// The protocol itself only needs the counting rules in voting.hpp /
// dynamic_linear.hpp, but the explicit set-system view is what the paper's
// Definition 1 and Figure 1 describe, and it is the natural object to
// property-test (pairwise intersection, minimality).  Universes here are the
// QDSets of individual cluster heads, i.e. a handful of elements, so the
// exponential enumeration is fine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qip {

class SliceConfig;

using QuorumSet = std::vector<std::uint32_t>;  // sorted member ids

class QuorumSystem {
 public:
  /// Enumeration caps.  Builders throw InvariantViolation on universes
  /// above them instead of silently grinding through 2^n subsets: the
  /// counting builders walk C(n, n/2) combinations (kMaxUniverse = 20 tops
  /// out near 2·10^5 quorums), while from_slices() tests every one of the
  /// 2^n subsets against every member's slice, so it caps earlier.
  static constexpr std::size_t kMaxUniverse = 20;
  static constexpr std::size_t kMaxSliceUniverse = 16;

  /// Builds the majority quorum system over `universe`: all minimal subsets
  /// of size ⌊n/2⌋+1.  Throws above kMaxUniverse.
  static QuorumSystem majority(std::vector<std::uint32_t> universe);

  /// Builds the dynamic-linear system: minimal majorities plus, for even n,
  /// the exactly-half subsets containing `distinguished`.  Throws above
  /// kMaxUniverse.
  static QuorumSystem dynamic_linear(std::vector<std::uint32_t> universe,
                                     std::uint32_t distinguished);

  /// All subsets of size exactly `k` (1 <= k <= n).  The majority backend's
  /// read system (r = n − w + 1); only pairwise-intersecting when 2k > n,
  /// which read-vs-write intersection does not require.  Throws above
  /// kMaxUniverse.
  static QuorumSystem fixed_size(std::vector<std::uint32_t> universe,
                                 std::size_t k);

  /// Materializes the federated system induced by `config` over `universe`:
  /// the minimal sets S ⊆ universe with SliceConfig::is_quorum(S).  Throws
  /// above kMaxSliceUniverse.  May legitimately contain zero quorums (a
  /// member with an unsatisfiable declaration) — unlike the counting
  /// builders, which always produce at least one.
  static QuorumSystem from_slices(const SliceConfig& config,
                                  std::vector<std::uint32_t> universe);

  const std::vector<std::uint32_t>& universe() const { return universe_; }
  const std::vector<QuorumSet>& quorums() const { return quorums_; }

  /// Definition 1: every pair of quorums intersects.
  bool pairwise_intersecting() const;

  /// True if `subset` (sorted or not) contains some quorum.
  bool covers_quorum(const QuorumSet& subset) const;

  /// Smallest quorum cardinality.
  std::size_t min_quorum_size() const;

 private:
  std::vector<std::uint32_t> universe_;
  std::vector<QuorumSet> quorums_;
};

}  // namespace qip
