// Explicit quorum systems over small universes (Definition 1, §II-C).
//
// The protocol itself only needs the counting rules in voting.hpp /
// dynamic_linear.hpp, but the explicit set-system view is what the paper's
// Definition 1 and Figure 1 describe, and it is the natural object to
// property-test (pairwise intersection, minimality).  Universes here are the
// QDSets of individual cluster heads, i.e. a handful of elements, so the
// exponential enumeration is fine.
#pragma once

#include <cstdint>
#include <vector>

namespace qip {

using QuorumSet = std::vector<std::uint32_t>;  // sorted member ids

class QuorumSystem {
 public:
  /// Builds the majority quorum system over `universe`: all minimal subsets
  /// of size ⌊n/2⌋+1.  Universe size is capped (enumeration is exponential).
  static QuorumSystem majority(std::vector<std::uint32_t> universe);

  /// Builds the dynamic-linear system: minimal majorities plus, for even n,
  /// the exactly-half subsets containing `distinguished`.
  static QuorumSystem dynamic_linear(std::vector<std::uint32_t> universe,
                                     std::uint32_t distinguished);

  const std::vector<std::uint32_t>& universe() const { return universe_; }
  const std::vector<QuorumSet>& quorums() const { return quorums_; }

  /// Definition 1: every pair of quorums intersects.
  bool pairwise_intersecting() const;

  /// True if `subset` (sorted or not) contains some quorum.
  bool covers_quorum(const QuorumSet& subset) const;

  /// Smallest quorum cardinality.
  std::size_t min_quorum_size() const;

 private:
  std::vector<std::uint32_t> universe_;
  std::vector<QuorumSet> quorums_;
};

}  // namespace qip
