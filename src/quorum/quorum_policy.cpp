#include "quorum/quorum_policy.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "quorum/dynamic_linear.hpp"
#include "util/assert.hpp"

namespace qip {

const char* to_string(QuorumBackend backend) {
  switch (backend) {
    case QuorumBackend::kMajority:
      return "majority";
    case QuorumBackend::kDynamicLinear:
      return "dynamic_linear";
    case QuorumBackend::kSlices:
      return "slices";
  }
  QIP_ASSERT_MSG(false, "unknown QuorumBackend "
                            << static_cast<unsigned>(backend));
  return "?";
}

std::optional<QuorumBackend> parse_quorum_backend(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  if (std::strcmp(text, "majority") == 0) return QuorumBackend::kMajority;
  if (std::strcmp(text, "dynamic_linear") == 0)
    return QuorumBackend::kDynamicLinear;
  if (std::strcmp(text, "slices") == 0) return QuorumBackend::kSlices;
  return std::nullopt;
}

QuorumBackend quorum_backend_from_env() {
  const char* env = std::getenv("QIP_QUORUM");
  if (env == nullptr || *env == '\0') return QuorumBackend::kDynamicLinear;
  if (std::optional<QuorumBackend> parsed = parse_quorum_backend(env)) {
    return *parsed;
  }
  std::fprintf(stderr,
               "QIP_QUORUM=%s is not a quorum backend "
               "(expected \"majority\", \"dynamic_linear\" or \"slices\")\n",
               env);
  std::exit(2);
}

QuorumSystem QuorumPolicy::read_system(
    std::vector<std::uint32_t> universe,
    std::optional<std::uint32_t> distinguished) const {
  return materialize(std::move(universe), distinguished);
}

namespace {

/// Sorted copy of `subset`, asserted to be a duplicate-free subset of the
/// (sorted) universe — catches callers that mix up group ids.
std::vector<std::uint32_t> sorted_subset_of(
    const std::vector<std::uint32_t>& universe,
    const std::vector<std::uint32_t>& subset) {
  std::vector<std::uint32_t> sorted = subset;
  std::sort(sorted.begin(), sorted.end());
  QIP_ASSERT_MSG(
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
      "quorum subset has duplicate members");
  QIP_ASSERT_MSG(
      std::includes(universe.begin(), universe.end(), sorted.begin(),
                    sorted.end()),
      "quorum subset contains an id outside its universe");
  return sorted;
}

std::vector<std::uint32_t> sorted_universe(
    std::vector<std::uint32_t> universe) {
  std::sort(universe.begin(), universe.end());
  return universe;
}

class MajorityPolicy final : public QuorumPolicy {
 public:
  MajorityPolicy() : QuorumPolicy(QuorumBackend::kMajority) {}

  std::uint32_t threshold(std::uint32_t group_size,
                          bool /*has_distinguished*/) const override {
    QIP_ASSERT(group_size >= 1);
    return group_size / 2 + 1;
  }

  bool is_quorum(const std::vector<std::uint32_t>& universe,
                 const std::vector<std::uint32_t>& subset,
                 std::optional<std::uint32_t> /*distinguished*/)
      const override {
    const std::vector<std::uint32_t> u = sorted_universe(universe);
    const std::vector<std::uint32_t> s = sorted_subset_of(u, subset);
    return s.size() >= threshold(static_cast<std::uint32_t>(u.size()), false);
  }

  QuorumSystem materialize(
      std::vector<std::uint32_t> universe,
      std::optional<std::uint32_t> /*distinguished*/) const override {
    return QuorumSystem::majority(std::move(universe));
  }

  QuorumSystem read_system(
      std::vector<std::uint32_t> universe,
      std::optional<std::uint32_t> /*distinguished*/) const override {
    // Minimal reads from §II-C: r = n − w + 1, so r + w = n + 1 > n and
    // every read meets every write.
    const std::uint32_t n = static_cast<std::uint32_t>(universe.size());
    QIP_ASSERT(n >= 1);
    const std::uint32_t w = n / 2 + 1;
    return QuorumSystem::fixed_size(std::move(universe), n - w + 1);
  }
};

class DynamicLinearPolicy final : public QuorumPolicy {
 public:
  DynamicLinearPolicy() : QuorumPolicy(QuorumBackend::kDynamicLinear) {}

  std::uint32_t threshold(std::uint32_t group_size,
                          bool has_distinguished) const override {
    return quorum_threshold(group_size, has_distinguished);
  }

  bool is_quorum(const std::vector<std::uint32_t>& universe,
                 const std::vector<std::uint32_t>& subset,
                 std::optional<std::uint32_t> distinguished) const override {
    const std::vector<std::uint32_t> u = sorted_universe(universe);
    const std::vector<std::uint32_t> s = sorted_subset_of(u, subset);
    return qip::is_quorum(static_cast<std::uint32_t>(u.size()), s,
                          distinguished);
  }

  QuorumSystem materialize(
      std::vector<std::uint32_t> universe,
      std::optional<std::uint32_t> distinguished) const override {
    // distinguished = ∅ degenerates to strict majority — exactly the
    // counting fallback in qip::is_quorum().
    if (!distinguished.has_value())
      return QuorumSystem::majority(std::move(universe));
    return QuorumSystem::dynamic_linear(std::move(universe), *distinguished);
  }
};

class SlicesPolicy final : public QuorumPolicy {
 public:
  SlicesPolicy() : QuorumPolicy(QuorumBackend::kSlices) {}

  std::uint32_t threshold(std::uint32_t group_size,
                          bool /*has_distinguished*/) const override {
    // The engine derives flat-majority slices from QDSet membership: every
    // member trusts ⌊n/2⌋+1 of the whole group.  Any subset of that size
    // satisfies every member's slice, and no smaller subset satisfies
    // anyone's, so the counting form collapses to the majority threshold.
    QIP_ASSERT(group_size >= 1);
    return group_size / 2 + 1;
  }

  bool is_quorum(const std::vector<std::uint32_t>& universe,
                 const std::vector<std::uint32_t>& subset,
                 std::optional<std::uint32_t> /*distinguished*/)
      const override {
    const std::vector<std::uint32_t> u = sorted_universe(universe);
    const std::vector<std::uint32_t> s = sorted_subset_of(u, subset);
    return SliceConfig::flat_majority(u).is_quorum(s);
  }

  QuorumSystem materialize(
      std::vector<std::uint32_t> universe,
      std::optional<std::uint32_t> /*distinguished*/) const override {
    std::vector<std::uint32_t> u = sorted_universe(std::move(universe));
    return QuorumSystem::from_slices(SliceConfig::flat_majority(u), u);
  }
};

}  // namespace

const QuorumPolicy& quorum_policy(QuorumBackend backend) {
  static const MajorityPolicy majority;
  static const DynamicLinearPolicy dynamic_linear;
  static const SlicesPolicy slices;
  switch (backend) {
    case QuorumBackend::kMajority:
      return majority;
    case QuorumBackend::kDynamicLinear:
      return dynamic_linear;
    case QuorumBackend::kSlices:
      return slices;
  }
  QIP_ASSERT_MSG(false, "unknown QuorumBackend "
                            << static_cast<unsigned>(backend));
  return dynamic_linear;
}

}  // namespace qip
