#include "quorum/voting.hpp"

namespace qip {

QuorumSpec QuorumSpec::minimal(std::uint32_t v) {
  QIP_ASSERT(v >= 1);
  QuorumSpec spec;
  spec.total_votes = v;
  spec.write_quorum = v / 2 + 1;
  spec.read_quorum = v - spec.write_quorum + 1;
  QIP_ASSERT(spec.valid());
  return spec;
}

void VoteCounter::confirm(std::uint64_t timestamp) {
  QIP_ASSERT_MSG(outstanding_ > 0, "confirmation after all responses counted");
  --outstanding_;
  ++confirmations_;
  if (timestamp > latest_timestamp_) latest_timestamp_ = timestamp;
}

void VoteCounter::deny() {
  QIP_ASSERT_MSG(outstanding_ > 0, "denial after all responses counted");
  --outstanding_;
  ++denials_;
}

}  // namespace qip
