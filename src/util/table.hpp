// ASCII table / series rendering for the figure-reproduction benches.
//
// Every bench binary prints the same rows/series the paper plots, as an
// aligned text table plus an optional gnuplot-style series block, so the
// paper's figures can be regenerated without any plotting dependency.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qip {

/// A rectangular table with a header row; columns are auto-sized.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats each double with the given precision.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with a separator under the header, e.g.
  ///   nn    QIP    MANETconf
  ///   ----  -----  ---------
  ///   50    4.12   9.87
  std::string render() const;
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One plotted line of a figure: y values over the shared x axis.
struct Series {
  std::string name;
  std::vector<double> y;
};

/// Renders a figure as a table of x vs. one column per series, prefixed with
/// the figure title, matching the layout used in EXPERIMENTS.md.
std::string render_figure(const std::string& title, const std::string& x_name,
                          const std::vector<double>& x,
                          const std::vector<Series>& series,
                          int precision = 2);

/// Formats a double with fixed precision (helper shared by benches).
std::string format_double(double v, int precision = 2);

}  // namespace qip
