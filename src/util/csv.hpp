// CSV emission for experiment results (machine-readable companion to the
// ASCII tables).  Quoting follows RFC 4180: fields containing comma, quote or
// newline are quoted and embedded quotes doubled.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qip {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& cells);
  void write_row(const std::string& label, const std::vector<double>& values);

  static std::string escape(const std::string& field);

 private:
  std::ostream* out_;
};

}  // namespace qip
