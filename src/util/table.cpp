#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace qip {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  QIP_ASSERT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  QIP_ASSERT_MSG(row.size() == header_.size(),
                 "row has " << row.size() << " cells, header has "
                            << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(width[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule.push_back(std::string(width[c], '-'));
  emit(rule);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& out) const { out << render(); }

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string render_figure(const std::string& title, const std::string& x_name,
                          const std::vector<double>& x,
                          const std::vector<Series>& series, int precision) {
  for (const auto& s : series)
    QIP_ASSERT_MSG(s.y.size() == x.size(),
                   "series '" << s.name << "' has " << s.y.size()
                              << " points for " << x.size() << " x values");
  std::vector<std::string> header{x_name};
  for (const auto& s : series) header.push_back(s.name);
  TextTable table(std::move(header));
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<std::string> row{format_double(x[i], 0)};
    for (const auto& s : series)
      row.push_back(format_double(s.y[i], precision));
    table.add_row(std::move(row));
  }
  std::ostringstream os;
  os << "== " << title << " ==\n" << table.render();
  return os.str();
}

}  // namespace qip
