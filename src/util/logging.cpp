#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qip {

namespace {

// QIP_LOG_SIMTIME=1 opts log lines into sim-time timestamps.  Read once:
// the switch is a run-level decision, like QIP_TRACE_FILE.
bool simtime_requested() {
  static const bool on = [] {
    const char* v = std::getenv("QIP_LOG_SIMTIME");
    return v != nullptr && std::strcmp(v, "1") == 0;
  }();
  return on;
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& process_logger() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (level >= LogLevel::kWarn && level < LogLevel::kOff) ++warnings_;
  if (!enabled(level)) return;
  std::ostream& out = sink_ ? *sink_ : std::cerr;
  out << '[' << to_string(level);
  if (time_fn_ != nullptr && simtime_requested()) {
    char ts[32];
    std::snprintf(ts, sizeof ts, " t=%.3f", time_fn_(time_owner_));
    out << ts;
  }
  out << "] " << message << '\n';
}

void Logger::write_raw(const std::string& text) {
  if (text.empty()) return;
  std::ostream& out = sink_ ? *sink_ : std::cerr;
  out << text;
}

}  // namespace qip
