#include "util/logging.hpp"

namespace qip {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (level >= LogLevel::kWarn && level < LogLevel::kOff) ++warnings_;
  if (!enabled(level)) return;
  std::ostream& out = sink_ ? *sink_ : std::cerr;
  out << '[' << to_string(level) << "] " << message << '\n';
}

}  // namespace qip
