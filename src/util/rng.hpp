// Deterministic pseudo-random number generation for reproducible simulation.
//
// The engine is xoshiro256** seeded through SplitMix64, the combination
// recommended by its authors.  Every experiment round derives its own child
// RNG from (master seed, round index) so that runs are bitwise reproducible
// regardless of execution order, and adding a round never perturbs earlier
// rounds.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace qip {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.
/// Passes BigCrush as a standalone generator; here it is only a seeder.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the std uniform_random_bit_generator concept so it can be used
/// with <random> distributions where convenient, though the convenience
/// members below avoid unspecified std::distribution behaviour across
/// standard library versions (we want byte-identical runs everywhere).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9c5fb1d69b3c6c1fULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
    // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
    // zero outputs from any seed, but keep the guard for clarity.
    QIP_ASSERT(s_[0] || s_[1] || s_[2] || s_[3]);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Uses Lemire's multiply-shift rejection
  /// method: unbiased and far faster than modulo reduction.
  std::uint64_t below(std::uint64_t bound) {
    QIP_ASSERT(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    QIP_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    QIP_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniformly chosen index into a container of the given size.
  std::size_t index(std::size_t size) {
    QIP_ASSERT(size > 0);
    return static_cast<std::size_t>(below(size));
  }

  /// Uniformly chosen element (by reference) from a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    QIP_ASSERT(!v.empty());
    return v[index(v.size())];
  }

  /// Fisher–Yates shuffle, deterministic under this engine.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Raw engine state, for simulation snapshots (campaign/snapshot.hpp):
  /// a saved stream restores mid-sequence, bit-exactly.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    QIP_ASSERT(s[0] || s[1] || s[2] || s[3]);
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

  /// Derives an independent child generator; (seed, stream) pairs that differ
  /// in either component yield decorrelated streams.
  Rng fork(std::uint64_t stream) {
    SplitMix64 sm(next() ^ (0x632be59bd9b4e019ULL * (stream + 1)));
    Rng child(sm.next());
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Derives the canonical per-round RNG for an experiment: independent of the
/// order rounds execute in and stable across platforms.
inline Rng round_rng(std::uint64_t master_seed, std::uint64_t round) {
  SplitMix64 sm(master_seed ^ (0xd1342543de82ef95ULL * (round + 1)));
  sm.next();
  return Rng(sm.next());
}

}  // namespace qip
