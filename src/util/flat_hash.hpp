// Open-addressing hash map with contiguous storage.
//
// A drop-in replacement for the std::unordered_map uses on hot paths: one
// flat slot array (linear probing, power-of-two capacity, tombstone
// deletion), so lookups touch one cache line in the common case and the
// map performs zero per-node allocations.  Iteration order is the probe
// order — unspecified, like unordered_map — so callers that expose order
// must sort (AllocationTable::known_addresses does exactly that).
//
// Requirements: K and V default-constructible and copy/move-assignable,
// std::hash<K> specialized.  The default-constructed K is a valid key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace qip {

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatHashMap {
 public:
  /// Pointer to the value for `key`, or nullptr.
  V* find(const K& key) {
    const std::size_t s = locate(key);
    return s == kNpos ? nullptr : &slots_[s].value;
  }
  const V* find(const K& key) const {
    const std::size_t s = locate(key);
    return s == kNpos ? nullptr : &slots_[s].value;
  }

  bool contains(const K& key) const { return locate(key) != kNpos; }

  /// Value for `key`, default-constructed on first access.
  V& operator[](const K& key) {
    reserve_one();
    const std::size_t mask = slots_.size() - 1;
    std::size_t s = mix(key) & mask;
    std::size_t first_tomb = kNpos;
    while (true) {
      Slot& slot = slots_[s];
      if (slot.state == State::kFull && slot.key == key) return slot.value;
      if (slot.state == State::kTomb && first_tomb == kNpos) first_tomb = s;
      if (slot.state == State::kEmpty) {
        const std::size_t dst = first_tomb != kNpos ? first_tomb : s;
        Slot& out = slots_[dst];
        if (out.state == State::kTomb) --tombs_;
        out.state = State::kFull;
        out.key = key;
        out.value = V{};
        ++size_;
        return out.value;
      }
      s = (s + 1) & mask;
    }
  }

  /// Inserts (key, value) if absent.  Returns (value slot, inserted).
  std::pair<V*, bool> emplace(const K& key, V value) {
    if (V* existing = find(key)) return {existing, false};
    V& v = (*this)[key];
    v = std::move(value);
    return {&v, true};
  }

  bool erase(const K& key) {
    const std::size_t s = locate(key);
    if (s == kNpos) return false;
    slots_[s].state = State::kTomb;
    slots_[s].value = V{};  // release payload resources promptly
    --size_;
    ++tombs_;
    return true;
  }

  void clear() {
    slots_.clear();
    size_ = 0;
    tombs_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// fn(key, value) for every entry, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.state == State::kFull) fn(s.key, s.value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.state == State::kFull) fn(s.key, s.value);
    }
  }

 private:
  enum class State : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };
  struct Slot {
    K key{};
    V value{};
    State state = State::kEmpty;
  };
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  static std::size_t mix(const K& key) {
    // Fibonacci scramble: std::hash of an integral key is often the
    // identity, which clusters sequential keys under power-of-two masking.
    return Hash{}(key)*std::size_t{0x9e3779b97f4a7c15u};
  }

  std::size_t locate(const K& key) const {
    if (slots_.empty()) return kNpos;
    const std::size_t mask = slots_.size() - 1;
    std::size_t s = mix(key) & mask;
    while (true) {
      const Slot& slot = slots_[s];
      if (slot.state == State::kEmpty) return kNpos;
      if (slot.state == State::kFull && slot.key == key) return s;
      s = (s + 1) & mask;
    }
  }

  void reserve_one() {
    // Keep occupancy (live + tombstones) under 7/8 so probes stay short.
    if (slots_.empty()) {
      slots_.resize(16);
      return;
    }
    if ((size_ + tombs_ + 1) * 8 < slots_.size() * 7) return;
    // Grow when live entries dominate, else rehash in place to purge tombs.
    const std::size_t cap =
        size_ * 4 >= slots_.size() ? slots_.size() * 2 : slots_.size();
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(cap);
    size_ = 0;
    tombs_ = 0;
    for (Slot& s : old) {
      if (s.state == State::kFull) {
        (*this)[s.key] = std::move(s.value);
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombs_ = 0;
};

}  // namespace qip
