#include "util/csv.hpp"

#include <ostream>
#include <sstream>

namespace qip {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_row(const std::string& label,
                          const std::vector<double>& values) {
  *out_ << escape(label);
  std::ostringstream os;
  for (double v : values) {
    os.str("");
    os << v;
    *out_ << ',' << os.str();
  }
  *out_ << '\n';
}

}  // namespace qip
