#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace qip {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void Histogram::add(std::int64_t value, std::uint64_t weight) {
  counts_[value] += weight;
  total_ += weight;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (const auto& [value, count] : counts_)
    acc += static_cast<double>(value) * static_cast<double>(count);
  return acc / static_cast<double>(total_);
}

std::int64_t Histogram::min() const {
  QIP_ASSERT(!empty());
  return counts_.begin()->first;
}

std::int64_t Histogram::max() const {
  QIP_ASSERT(!empty());
  return counts_.rbegin()->first;
}

std::int64_t Histogram::quantile(double q) const {
  QIP_ASSERT(!empty());
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank definition: the smallest value whose cumulative weight
  // reaches rank = ceil(q * total), with rank clamped to >= 1 so q = 0 is
  // the minimum by construction (ceil(0) = 0 would otherwise only return
  // the minimum by accident of the `seen >= rank` comparison) and q = 1 is
  // the maximum.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (const auto& [value, count] : counts_) {
    seen += count;
    if (seen >= rank) return value;
  }
  return counts_.rbegin()->first;
}

Summary summarize(const RunningStats& stats) {
  Summary s;
  s.mean = stats.mean();
  s.ci95 = stats.ci95();
  s.min = stats.min();
  s.max = stats.max();
  s.rounds = stats.count();
  return s;
}

std::string format_summary(const Summary& s) {
  char buf[64];
  if (s.ci95 > 0.0) {
    std::snprintf(buf, sizeof buf, "%.2f ±%.2f", s.mean, s.ci95);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", s.mean);
  }
  return buf;
}

}  // namespace qip
