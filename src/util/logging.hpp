// Minimal leveled logger.
//
// The simulator is single-threaded by design (discrete-event), so the logger
// performs no locking.  Protocol modules log through QIP_LOG(level) which
// formats lazily: when the level is filtered out the stream expression is
// never evaluated.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace qip {

enum class LogLevel : int {
  kTrace = 0,  ///< per-message protocol traces
  kDebug = 1,  ///< per-operation summaries
  kInfo = 2,   ///< scenario milestones
  kWarn = 3,   ///< recoverable anomalies (e.g. failed quorum)
  kError = 4,  ///< unrecoverable protocol errors
  kOff = 5,
};

const char* to_string(LogLevel level);

/// Global logger configuration. Sinks default to stderr.
class Logger {
 public:
  static Logger& instance();

  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  /// Redirects output (tests capture logs this way); pass nullptr to restore
  /// stderr.
  void set_sink(std::ostream* sink) { sink_ = sink; }

  /// Installs a simulated-clock source so log lines can carry sim-time
  /// timestamps (`[WARN t=12.345] ...`).  Timestamps only appear when the
  /// environment sets QIP_LOG_SIMTIME=1, so default output is unchanged.
  /// `owner` scopes the registration: clear_time_source() from a stale owner
  /// (an outer World destructing after an inner one registered) is a no-op.
  using TimeFn = double (*)(const void* owner);
  void set_time_source(const void* owner, TimeFn fn) {
    time_owner_ = owner;
    time_fn_ = fn;
  }
  void clear_time_source(const void* owner) {
    if (time_owner_ != owner) return;
    time_owner_ = nullptr;
    time_fn_ = nullptr;
  }

  bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& message);

  /// Number of messages emitted at >= warn since construction; tests use this
  /// to assert that clean scenarios stay clean.
  std::uint64_t warning_count() const { return warnings_; }
  void reset_counters() { warnings_ = 0; }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ = nullptr;
  std::uint64_t warnings_ = 0;
  const void* time_owner_ = nullptr;
  TimeFn time_fn_ = nullptr;
};

namespace detail {
/// Accumulates one log statement and flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace qip

#define QIP_LOG(level)                                  \
  if (!::qip::Logger::instance().enabled(level)) {      \
  } else                                                \
    ::qip::detail::LogLine(level)

#define QIP_TRACE QIP_LOG(::qip::LogLevel::kTrace)
#define QIP_DEBUG QIP_LOG(::qip::LogLevel::kDebug)
#define QIP_INFO QIP_LOG(::qip::LogLevel::kInfo)
#define QIP_WARN QIP_LOG(::qip::LogLevel::kWarn)
#define QIP_ERROR QIP_LOG(::qip::LogLevel::kError)
