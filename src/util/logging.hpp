// Minimal leveled logger.
//
// Each SimContext owns (or aliases) one Logger, so a logger instance is only
// ever driven from one thread at a time and performs no locking.  Protocol
// modules log through QIP_LOG(level) which formats lazily: when the level is
// filtered out the stream expression is never evaluated.
//
// QIP_LOG resolves its target by calling `qip_active_logger()` unqualified:
// the namespace-scope default returns the process-wide logger, and classes
// that carry a SimContext shadow it with a member function returning the
// context's logger — so the same macro text routes to the injected logger
// inside context-aware code and to the process logger everywhere else.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace qip {

enum class LogLevel : int {
  kTrace = 0,  ///< per-message protocol traces
  kDebug = 1,  ///< per-operation summaries
  kInfo = 2,   ///< scenario milestones
  kWarn = 3,   ///< recoverable anomalies (e.g. failed quorum)
  kError = 4,  ///< unrecoverable protocol errors
  kOff = 5,
};

const char* to_string(LogLevel level);

/// Logger configuration. Sinks default to stderr.
class Logger {
 public:
  Logger() = default;

  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  /// Redirects output (tests capture logs this way); pass nullptr to restore
  /// stderr.
  void set_sink(std::ostream* sink) { sink_ = sink; }
  std::ostream* sink() const { return sink_; }

  /// Installs a simulated-clock source so log lines can carry sim-time
  /// timestamps (`[WARN t=12.345] ...`).  Timestamps only appear when the
  /// environment sets QIP_LOG_SIMTIME=1, so default output is unchanged.
  /// `owner` scopes the registration: clear_time_source() from a stale owner
  /// (an outer World destructing after an inner one registered) is a no-op.
  using TimeFn = double (*)(const void* owner);
  void set_time_source(const void* owner, TimeFn fn) {
    time_owner_ = owner;
    time_fn_ = fn;
  }
  void clear_time_source(const void* owner) {
    if (time_owner_ != owner) return;
    time_owner_ = nullptr;
    time_fn_ = nullptr;
  }

  bool enabled(LogLevel level) const { return level >= level_; }

  void write(LogLevel level, const std::string& message);

  /// Writes already-formatted text verbatim to the sink (no prefix, no
  /// trailing newline added).  SimContext::absorb flushes a replica's
  /// buffered lines through this, preserving their exact bytes.
  void write_raw(const std::string& text);

  /// Number of messages emitted at >= warn since construction; tests use this
  /// to assert that clean scenarios stay clean.
  std::uint64_t warning_count() const { return warnings_; }
  void add_warnings(std::uint64_t n) { warnings_ += n; }
  void reset_counters() { warnings_ = 0; }

 private:
  LogLevel level_ = LogLevel::kWarn;
  std::ostream* sink_ = nullptr;
  std::uint64_t warnings_ = 0;
  const void* time_owner_ = nullptr;
  TimeFn time_fn_ = nullptr;
};

/// The process-wide logger: what QIP_LOG uses outside any SimContext, and
/// what the default process context aliases.  This accessor (and the
/// process context built on it) is the compatibility shim for code that
/// predates per-run contexts.
Logger& process_logger();

/// Default log target for QIP_LOG call sites with no enclosing context.
/// Classes holding a SimContext shadow this with a member function.
inline Logger& qip_active_logger() { return process_logger(); }

namespace detail {
/// Accumulates one log statement and flushes to its logger on destruction.
class LogLine {
 public:
  LogLine(Logger& logger, LogLevel level) : logger_(logger), level_(level) {}
  ~LogLine() { logger_.write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Logger& logger_;
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace qip

#define QIP_LOG(level)                          \
  if (!qip_active_logger().enabled(level)) {    \
  } else                                        \
    ::qip::detail::LogLine(qip_active_logger(), level)

#define QIP_TRACE QIP_LOG(::qip::LogLevel::kTrace)
#define QIP_DEBUG QIP_LOG(::qip::LogLevel::kDebug)
#define QIP_INFO QIP_LOG(::qip::LogLevel::kInfo)
#define QIP_WARN QIP_LOG(::qip::LogLevel::kWarn)
#define QIP_ERROR QIP_LOG(::qip::LogLevel::kError)
