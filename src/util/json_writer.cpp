#include "util/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/assert.hpp"

namespace qip {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double d) {
  // JSON has no NaN/Inf; benches should never produce them, and silently
  // emitting "null" would hide the bug downstream.
  QIP_ASSERT_MSG(std::isfinite(d), "non-finite double in JSON output");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", d);
  out += buf;
}

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  QIP_ASSERT_MSG(is_object(), "JsonValue::set on a non-object");
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  QIP_ASSERT_MSG(is_array(), "JsonValue::push on a non-array");
  elements_.push_back(std::move(value));
  return *this;
}

void JsonValue::emit(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Kind::kDouble:
      append_double(out, double_);
      break;
    case Kind::kString:
      append_escaped(out, string_);
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent(out, depth + 1);
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.emit(out, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        indent(out, depth + 1);
        elements_[i].emit(out, depth + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += ']';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  emit(out, 0);
  out += '\n';
  return out;
}

bool JsonValue::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << dump();
  return static_cast<bool>(f);
}

}  // namespace qip
