// Streaming statistics used by the experiment harness.
//
// RunningStats uses Welford's algorithm so multi-thousand-round sweeps stay
// numerically stable; Histogram tracks integer-valued hop counts; Summary is
// the value type figures report (mean ± 95% CI over rounds).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qip {

/// Welford single-pass mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95() const { return 1.96 * sem(); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact histogram over integer observations (hop counts, quorum sizes).
class Histogram {
 public:
  void add(std::int64_t value, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }
  double mean() const;
  std::int64_t min() const;
  std::int64_t max() const;
  /// Value at quantile q in [0,1] by the nearest-rank definition: the
  /// smallest value whose cumulative weight reaches max(1, ceil(q*total)).
  /// q=0 is exactly min(), q=1 exactly max(), q=0.5 the (upper) median.
  std::int64_t quantile(double q) const;
  const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return counts_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Final statistic reported for one data point of a figure.
struct Summary {
  double mean = 0.0;
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t rounds = 0;
};

Summary summarize(const RunningStats& stats);

/// Formats "12.34 ±0.56" with sensible precision for tables.
std::string format_summary(const Summary& s);

}  // namespace qip
