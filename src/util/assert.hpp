// Lightweight always-on assertion macros.
//
// Simulation correctness depends on internal invariants (quorum intersection,
// address-block disjointness, event ordering).  These checks are cheap
// relative to the simulation work, so they stay enabled in release builds;
// QIP_DCHECK compiles away outside debug builds for hot-path checks.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace qip {

/// Thrown when an invariant check fails.  Tests assert on this type so that
/// deliberately-broken preconditions are observable without aborting.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace qip

/// Always-on invariant check.  Throws qip::InvariantViolation on failure.
#define QIP_ASSERT(expr)                                                   \
  do {                                                                     \
    if (!(expr)) ::qip::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Always-on invariant check with a context message (streamed).
#define QIP_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream qip_assert_os;                               \
      qip_assert_os << msg;                                           \
      ::qip::detail::assert_fail(#expr, __FILE__, __LINE__,           \
                                 qip_assert_os.str());                \
    }                                                                 \
  } while (0)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define QIP_DCHECK(expr) QIP_ASSERT(expr)
#else
#define QIP_DCHECK(expr) \
  do {                   \
  } while (0)
#endif
