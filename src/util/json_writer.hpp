// Minimal JSON emitter for machine-readable bench artifacts.
//
// Benches print human tables; CI and the plotting scripts want stable JSON
// (BENCH_*.json at the repo root).  This is a writer only — no parsing, no
// dependency — with insertion-ordered objects so emitted files diff cleanly
// run over run.  Values cover exactly what bench reports need: objects,
// arrays, strings, integers, doubles and booleans.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace qip {

class JsonValue {
 public:
  /// Scalar constructors.
  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  JsonValue(std::uint64_t u) : JsonValue(static_cast<std::int64_t>(u)) {}
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(unsigned u) : JsonValue(static_cast<std::int64_t>(u)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  /// Object member (insertion order preserved; duplicate keys appended
  /// verbatim — callers own key uniqueness).  Returns *this for chaining.
  JsonValue& set(std::string key, JsonValue value);

  /// Array element.  Returns *this for chaining.
  JsonValue& push(JsonValue value);

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Serializes with two-space indentation and a trailing newline at the
  /// top level (the form `git diff` and CMake's string(JSON) both like).
  std::string dump() const;

  /// Writes dump() to `path` atomically enough for bench use (truncate +
  /// write).  Returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  void emit(std::string& out, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, JsonValue>> members_;  ///< object
  std::vector<JsonValue> elements_;                         ///< array
};

}  // namespace qip
