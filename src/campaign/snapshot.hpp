// Simulation snapshots: durable checkpoints of a cell at a phase boundary.
//
// This is the first SimContext/World serialization pass (ROADMAP item 5).
// A snapshot file carries, behind a versioned header:
//   * the full cell spec (scenario, parameters, seed),
//   * the phase boundary it was taken at,
//   * the simulation clock, executed-event count and live-event count,
//   * the raw xoshiro256** state of both RNG streams (the world's and the
//     context's), and
//   * the state_digest() over every piece of observable simulation state.
//
// Restore strategy (v1): the event queue holds arbitrary closures, which no
// byte format can capture, so restore re-materializes the state by
// *deterministic replay* — rebuild the cell from its spec and re-run phases
// 0..k-1 — then verifies, field by field, that the replayed clock, event
// counts, RNG streams and state digest equal the saved ones (the RNG
// streams are additionally restored via Rng::set_state, making the restore
// independent of how the replay reached them).  Any mismatch is a hard
// error: a snapshot never silently resumes into a different simulation.
// Continuing a restored runner is therefore byte-identical to never having
// stopped — the property tests/campaign_test.cpp pins for QIP and a
// baseline engine under both QIP_SCHED backends.
//
// The versioned header is the forward path: a future v2 can add direct
// state decoding (no replay) without breaking v1 readers, which must reject
// versions they do not understand.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "campaign/scenario.hpp"

namespace qip {

inline constexpr char kSnapshotMagic[] = "QIPSNAP";
inline constexpr std::uint32_t kSnapshotVersion = 1;

struct Snapshot {
  CellSpec spec;
  std::size_t phase = 0;  ///< phases completed when the snapshot was taken
  double now = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t live = 0;
  std::array<std::uint64_t, 4> world_rng{};
  std::array<std::uint64_t, 4> ctx_rng{};
  std::uint64_t digest = 0;
};

/// Captures `runner` at its current phase boundary.  Writes tmp + rename so
/// a crash mid-write never leaves a half snapshot.  Returns false (with a
/// message in *err) on I/O failure.
bool save_snapshot(CellRunner& runner, const std::string& path,
                   std::string* err = nullptr);

/// Parses and validates a snapshot file.  Rejects bad magic, unsupported
/// versions and malformed fields with a diagnostic in *err.
std::optional<Snapshot> load_snapshot(const std::string& path,
                                      std::string* err = nullptr);

/// Re-materializes the simulation the snapshot describes (see file comment)
/// and verifies every saved field against the replayed state.  Returns null
/// with a diagnostic in *err on any divergence — the caller decides whether
/// to fall back to a fresh run.
std::unique_ptr<CellRunner> restore_snapshot(const Snapshot& snap,
                                             std::string* err = nullptr);

}  // namespace qip
