// Declarative parameter-grid campaigns: what to run, not how to run it.
//
// A campaign is a (scenario × parameter × seed) grid — the shape of every
// figure in the paper's evaluation and of ROADMAP item 5's "thousands of
// runs per invocation".  A CampaignSpec names the axes; expand() flattens
// them into an ordered list of fully self-contained CellSpecs, each one an
// independent simulation identified by (protocol, nodes, range, seed).  The
// order is part of the contract: cell index i always means the same
// simulation, across processes, resumes and releases — the campaign journal
// (campaign/journal.hpp) and the resume-invariance gate both depend on it.
//
// Per-cell seeds come from derive_cell_seed(base, point, round) — the exact
// formula the figure suite has always used (harness/parallel.hpp) — so a
// campaign cell replicates a figure cell bit-for-bit given the same
// parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qip {

/// One cell of the grid: a fully self-contained simulation description.
/// canonical() renders it as a stable single-line string (doubles printed
/// round-trippably) used in journals, snapshots and digests.
struct CellSpec {
  std::string protocol = "qip";
  std::uint32_t nodes = 25;
  double range = 150.0;        ///< transmission range, metres
  double speed = 20.0;         ///< random-waypoint speed, m/s
  double duration = 2.0;       ///< post-bringup roam time, seconds
  std::uint32_t churn = 0;     ///< departure+replacement events
  double abrupt = 0.2;         ///< fraction of departures that are abrupt
  std::uint64_t seed = 0;

  std::string canonical() const;
  /// Inverse of canonical(); returns false (and leaves *out unspecified) on
  /// any malformed or missing field.
  static bool parse(const std::string& text, CellSpec* out);

  bool operator==(const CellSpec& other) const = default;
};

/// The grid: protocols × nodes × ranges × seeds, with shared scenario knobs.
struct CampaignSpec {
  std::vector<std::string> protocols = {"qip"};
  std::vector<std::uint32_t> nodes = {25};
  std::vector<double> ranges = {150.0};
  double speed = 20.0;
  double duration = 2.0;
  std::uint32_t churn = 0;
  double abrupt = 0.2;
  std::uint32_t seeds = 1;  ///< replication rounds per grid point
  std::uint64_t base_seed = 0x1cdc52007ULL;  // ICDCS'07

  /// Flattens the grid in (protocol, nodes, range, round) order — the cell
  /// index every other campaign component keys on.
  std::vector<CellSpec> expand() const;

  /// Total cell count without materializing the expansion.
  std::size_t cell_count() const {
    return protocols.size() * nodes.size() * ranges.size() * seeds;
  }

  std::string canonical() const;
  /// FNV-1a over canonical(): the journal header pins this so --resume can
  /// refuse to graft a different grid onto an old journal.
  std::uint64_t digest() const;

  /// Rejects empty axes, unknown protocol names and nonsense parameters;
  /// returns false and stores a message in *err.
  bool validate(std::string* err) const;
};

/// FNV-1a 64-bit — the digest used for specs, results and journal integrity.
std::uint64_t fnv1a64(const void* data, std::size_t len,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);
std::uint64_t fnv1a64(const std::string& s);

/// Protocol names run_cell understands (the qip-sim set).
bool known_protocol(const std::string& name);

}  // namespace qip
