#include "campaign/runner.hpp"

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "harness/env.hpp"

namespace qip {

namespace {

using Clock = std::chrono::steady_clock;

bool fail(std::string* err, const std::string& why) {
  if (err) *err = why;
  return false;
}

bool ensure_dir(const std::string& path, std::string* err) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return true;
  return fail(err, "mkdir " + path + ": " + std::strerror(errno));
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Human-stable description of how an attempt died.  Deterministic (no
/// timing, no pids): the strings land in the journal and, for exhausted
/// cells, in the byte-compared report.
std::string reason_for(int status, bool deadline_killed) {
  if (deadline_killed) return "deadline";
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == kCellExitInjectedCrash) return "crash (injected)";
    if (code == kCellExitException) return "exception (see cell log)";
    if (code == kCellExitArtifactError) return "artifact write failed";
    return "exit " + std::to_string(code);
  }
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "unknown wait status";
}

}  // namespace

CampaignOptions campaign_options_from_env(CampaignOptions defaults) {
  CampaignOptions o = defaults;
  o.jobs = env_positive_u32("QIP_CAMPAIGN_JOBS", o.jobs);
  o.retries = env_u32("QIP_CAMPAIGN_RETRIES", o.retries);
  o.deadline_ms = env_u32("QIP_CAMPAIGN_DEADLINE_MS", o.deadline_ms);
  o.backoff_ms = env_u32("QIP_CAMPAIGN_BACKOFF_MS", o.backoff_ms);
  return o;
}

CampaignRunner::CampaignRunner(CampaignSpec spec, CampaignOptions options,
                               InjectPlan inject)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      inject_(std::move(inject)) {
  journal_path_ = options_.out_dir + "/journal.txt";
  cells_dir_ = options_.out_dir + "/cells";
}

std::string CampaignRunner::result_path(std::size_t idx) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/cell_%zu.txt", idx);
  return cells_dir_ + buf;
}

std::string CampaignRunner::log_path(std::size_t idx,
                                     std::uint32_t attempt) const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "/cell_%zu.attempt%u.log", idx, attempt);
  return cells_dir_ + buf;
}

void CampaignRunner::run_cell_child(std::size_t idx, std::uint32_t attempt) {
  const CellSpec& spec = cells_[idx];
  if (inject_.matches(InjectKind::kHang, idx, attempt)) {
    for (;;) ::pause();  // the parent's deadline watchdog reaps us
  }
  if (inject_.matches(InjectKind::kCrash, idx, attempt)) {
    ::_exit(kCellExitInjectedCrash);
  }
  // The phase-digest trail doubles as the failure trace: if a later phase
  // throws, the log shows exactly how far the cell got and with what state.
  std::string trail = "spec " + spec.canonical() + "\n";
  trail += "attempt " + std::to_string(attempt) + "\n";
  try {
    CellRunner runner(spec);
    while (runner.phases_run() < runner.phase_count()) {
      runner.run_phase();
      char line[64];
      std::snprintf(line, sizeof(line), "phase %zu digest %016" PRIx64 "\n",
                    runner.phases_run(), runner.state_digest());
      trail += line;
    }
    const std::string artifact = runner.result().render(spec);
    const std::string path = result_path(idx);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream f(tmp, std::ios::trunc | std::ios::binary);
      if (!f) ::_exit(kCellExitArtifactError);
      f << artifact;
      if (!f.flush()) ::_exit(kCellExitArtifactError);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      ::_exit(kCellExitArtifactError);
    }
    ::_exit(0);
  } catch (const std::exception& e) {
    trail += std::string("error ") + e.what() + "\n";
  } catch (...) {
    trail += "error unknown exception\n";
  }
  std::ofstream log(log_path(idx, attempt), std::ios::trunc);
  log << trail;
  log.flush();
  ::_exit(kCellExitException);
}

struct CampaignRunner::Pending {
  std::size_t idx = 0;
  std::uint32_t attempt = 0;  ///< next attempt number (this run)
  Clock::time_point eligible_at;  ///< backoff gate
};

bool CampaignRunner::run(CampaignOutcome* out, std::string* err) {
  std::string verr;
  if (!spec_.validate(&verr)) return fail(err, "invalid campaign: " + verr);
  cells_ = spec_.expand();
  if (!ensure_dir(options_.out_dir, err)) return false;
  if (!ensure_dir(cells_dir_, err)) return false;

  std::vector<CellProgress> progress;
  if (options_.resume) {
    if (!journal_.open_resume(journal_path_, spec_, &progress, err)) {
      return false;
    }
  } else {
    if (!journal_.open_fresh(journal_path_, spec_, err)) return false;
    progress.assign(cells_.size(), CellProgress{});
  }

  // Work queue: incomplete cells in index order.  Scheduling order does not
  // affect the report (see file comment in runner.hpp), only wall-clock.
  std::vector<Pending> queue;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (progress[i].status != CellStatus::kDone) {
      Pending p;
      p.idx = i;
      p.eligible_at = Clock::now();
      queue.push_back(p);
    }
  }

  struct Worker {
    pid_t pid = -1;
    std::size_t idx = 0;
    std::uint32_t attempt = 0;
    Clock::time_point deadline;
  };
  std::vector<Worker> running;

  auto handle_failure = [&](std::size_t idx, std::uint32_t attempt,
                            const std::string& reason) {
    journal_.record_fail(idx, attempt, reason);
    ++progress[idx].fails;
    progress[idx].last_reason = reason;
    if (attempt >= options_.retries) {
      journal_.record_exhausted(idx, attempt + 1);
      progress[idx].status = CellStatus::kExhausted;
      return;
    }
    Pending p;
    p.idx = idx;
    p.attempt = attempt + 1;
    p.eligible_at =
        Clock::now() + std::chrono::milliseconds(
                           static_cast<std::uint64_t>(options_.backoff_ms)
                           << attempt);
    queue.push_back(p);
  };

  while (!queue.empty() || !running.empty()) {
    // Launch as many eligible cells as free worker slots allow.
    for (std::size_t qi = 0;
         qi < queue.size() && running.size() < options_.jobs;) {
      if (queue[qi].eligible_at > Clock::now()) {
        ++qi;
        continue;
      }
      const Pending p = queue[qi];
      queue.erase(queue.begin() + qi);
      journal_.record_start(p.idx, p.attempt);
      const pid_t pid = ::fork();
      if (pid == 0) {
        journal_.close();  // the child must never append
        run_cell_child(p.idx, p.attempt);
      }
      if (pid < 0) return fail(err, std::string("fork: ") + strerror(errno));
      Worker w;
      w.pid = pid;
      w.idx = p.idx;
      w.attempt = p.attempt;
      w.deadline =
          Clock::now() + std::chrono::milliseconds(options_.deadline_ms);
      running.push_back(w);
    }

    // Reap finished workers and enforce deadlines.
    bool reaped = false;
    for (std::size_t wi = 0; wi < running.size();) {
      Worker& w = running[wi];
      int status = 0;
      pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      bool deadline_killed = false;
      if (r == 0 && Clock::now() > w.deadline) {
        ::kill(w.pid, SIGKILL);
        r = ::waitpid(w.pid, &status, 0);  // SIGKILL cannot be ignored
        deadline_killed = true;
      }
      if (r == 0) {
        ++wi;
        continue;
      }
      reaped = true;
      if (r < 0) return fail(err, std::string("waitpid: ") + strerror(errno));
      if (!deadline_killed && WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        std::string text;
        CellSpec parsed;
        CellResult result;
        if (!read_file(result_path(w.idx), &text) ||
            !CellResult::parse(text, &parsed, &result) ||
            !(parsed == cells_[w.idx])) {
          // Exit 0 with no valid artifact is a worker bug, not a cell
          // failure; treat it as a failed attempt so it retries.
          handle_failure(w.idx, w.attempt, "artifact missing or corrupt");
        } else {
          journal_.record_done(w.idx, w.attempt, result.state_digest);
          progress[w.idx].status = CellStatus::kDone;
          progress[w.idx].result_digest = result.state_digest;
          ++done_records_;
          if (done_records_ >= inject_.die_after) {
            // Deterministic mid-grid power cut (see inject.hpp).  The done
            // record is already fsync'd, so resume sees a consistent truth.
            ::raise(SIGKILL);
          }
        }
      } else {
        handle_failure(w.idx, w.attempt, reason_for(status, deadline_killed));
      }
      running.erase(running.begin() + wi);
    }
    if (!reaped && !running.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    } else if (running.empty() && !queue.empty()) {
      // Everything left is backing off; nap until the earliest gate.
      auto earliest = queue.front().eligible_at;
      for (const Pending& p : queue) earliest = std::min(earliest, p.eligible_at);
      const auto now = Clock::now();
      if (earliest > now) std::this_thread::sleep_for(
          std::min<Clock::duration>(earliest - now,
                                    std::chrono::milliseconds(50)));
    }
  }
  journal_.close();

  // Assemble the outcome: journal state + parsed result artifacts.
  out->cells.clear();
  out->cells.reserve(cells_.size());
  out->done = out->exhausted = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    CellOutcome c;
    c.spec = cells_[i];
    c.status = progress[i].status;
    c.fails = progress[i].fails;
    c.last_reason = progress[i].last_reason;
    if (c.status == CellStatus::kDone) {
      std::string text;
      CellSpec parsed;
      if (!read_file(result_path(i), &text) ||
          !CellResult::parse(text, &parsed, &c.result) ||
          !(parsed == cells_[i])) {
        return fail(err, "journal marks cell " + std::to_string(i) +
                    " done but its result artifact is missing or corrupt (" +
                    result_path(i) + ")");
      }
      ++out->done;
    } else {
      ++out->exhausted;
    }
    out->cells.push_back(std::move(c));
  }
  return true;
}

}  // namespace qip
