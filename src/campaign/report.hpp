// Consolidated campaign reporting: the human table (report.txt) and the
// machine baseline (BENCH_campaign.json).
//
// Both artifacts are pure functions of the campaign outcome — no wall-clock
// timestamps, no host names, no scheduling order — which is what makes the
// resume-invariance gate possible: an interrupted-then-resumed campaign must
// reproduce them byte for byte.
#pragma once

#include <string>

#include "campaign/runner.hpp"
#include "util/json_writer.hpp"

namespace qip {

/// The fixed-width results table plus, when cells exhausted their retry
/// budget, a failure appendix naming each with its last recorded reason.
std::string render_campaign_report(const CampaignSpec& spec,
                                   const CampaignOutcome& outcome);

/// bench="qip_campaign" JSON: grid metadata plus one entry per cell
/// (check_bench_json.cmake KIND=campaign validates the schema).
JsonValue render_campaign_json(const CampaignSpec& spec,
                               const CampaignOutcome& outcome);

/// Writes report.txt and BENCH_campaign.json into `out_dir`.
bool write_campaign_artifacts(const CampaignSpec& spec,
                              const CampaignOutcome& outcome,
                              const std::string& out_dir, std::string* err);

}  // namespace qip
