// Deterministic fault injection for campaign robustness tests.
//
// `QIP_CAMPAIGN_INJECT` holds a comma-separated plan; each term is one of
//
//   crash:<cell>@<attempt>   worker for cell <cell> calls _exit(70) on
//                            attempt <attempt> (attempts count from 0)
//   hang:<cell>@<attempt>    worker sleeps forever instead of running the
//                            cell, so the deadline watchdog must kill it
//   die-after:<n>            the campaign *parent* raises SIGKILL after
//                            journaling its <n>-th `done` record — a
//                            deterministic mid-grid power cut, which is
//                            exactly what the resume-invariance ctest gate
//                            needs (no racy external kill)
//
// The plan is parsed strictly: any malformed term is a usage error (exit 2),
// matching the repo-wide env convention in harness/env.hpp.  Injection is a
// test hook, not a user feature; it exists so the retry, watchdog and resume
// paths are pinned by deterministic gates rather than trusted on faith.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qip {

enum class InjectKind { kCrash, kHang };

struct InjectPoint {
  InjectKind kind = InjectKind::kCrash;
  std::size_t cell = 0;
  std::uint32_t attempt = 0;
};

struct InjectPlan {
  std::vector<InjectPoint> points;
  /// SIGKILL the campaign parent after this many `done` records (SIZE_MAX =
  /// never).
  std::size_t die_after = SIZE_MAX;

  /// True if `cell`'s attempt number `attempt` should suffer `kind`.
  bool matches(InjectKind kind, std::size_t cell, std::uint32_t attempt) const;

  /// Strict parser; returns false with a diagnostic in *err on any
  /// malformed term.  An empty string parses to the empty plan.
  static bool parse(const std::string& text, InjectPlan* out,
                    std::string* err);
};

/// Reads QIP_CAMPAIGN_INJECT; malformed plans die with exit 2 (env.hpp
/// convention).  Unset or empty means no injection.
InjectPlan inject_plan_from_env();

}  // namespace qip
