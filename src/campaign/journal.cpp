#include "campaign/journal.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace qip {

namespace {

bool fail(std::string* err, const std::string& why) {
  if (err) *err = why;
  return false;
}

std::string header_line(const CampaignSpec& spec) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "campaign v1 digest=%016" PRIx64 " cells=%zu",
                spec.digest(), spec.cell_count());
  return buf;
}

}  // namespace

CampaignJournal::~CampaignJournal() { close(); }

void CampaignJournal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void CampaignJournal::append(const std::string& line) {
  QIP_ASSERT_MSG(file_ != nullptr, "journal not open");
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
  // Durability: the runner only acts on journaled facts, so the fact must
  // hit the disk before the action.  Campaign grids are coarse enough that
  // one fsync per record is noise next to the cells themselves.
  std::fflush(file_);
  ::fsync(::fileno(file_));
}

bool CampaignJournal::open_fresh(const std::string& path,
                                 const CampaignSpec& spec, std::string* err) {
  if (std::FILE* existing = std::fopen(path.c_str(), "r")) {
    std::fclose(existing);
    return fail(err, path + " already exists — pass --resume to continue "
                "that campaign, or point --out at a fresh directory");
  }
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) return fail(err, "cannot create " + path);
  append(header_line(spec));
  return true;
}

bool CampaignJournal::open_resume(const std::string& path,
                                  const CampaignSpec& spec,
                                  std::vector<CellProgress>* progress,
                                  std::string* err) {
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return fail(err, "cannot open " + path + " — nothing to resume");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    contents = buf.str();
  }
  // A torn final line (no '\n') is the half-written record of the fatal
  // signal: drop it.
  const auto last_nl = contents.rfind('\n');
  if (last_nl == std::string::npos) {
    return fail(err, path + ": no complete records");
  }
  contents.resize(last_nl + 1);

  const std::size_t n = spec.cell_count();
  progress->assign(n, CellProgress{});
  std::istringstream in(contents);
  std::string line;
  if (!std::getline(in, line)) return fail(err, path + ": empty journal");
  if (line != header_line(spec)) {
    return fail(err, path + ": journal header does not match this campaign "
                "spec (different grid or cell count) — refusing to resume.\n"
                "  journal: " + line + "\n  spec:    " + header_line(spec));
  }
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream rec(line);
    std::string kind;
    std::uint64_t idx = 0;
    if (!(rec >> kind >> idx) || idx >= n) {
      return fail(err, path + ":" + std::to_string(lineno) +
                  ": malformed record '" + line + "'");
    }
    CellProgress& cell = (*progress)[idx];
    if (kind == "start") {
      // Informational only; see resume semantics in the header comment.
    } else if (kind == "done") {
      std::uint64_t attempt = 0;
      std::string digest;
      if (!(rec >> attempt >> digest)) {
        return fail(err, path + ":" + std::to_string(lineno) +
                    ": malformed done record");
      }
      cell.status = CellStatus::kDone;
      cell.result_digest = std::strtoull(digest.c_str(), nullptr, 16);
    } else if (kind == "fail") {
      std::uint64_t attempt = 0;
      if (!(rec >> attempt)) {
        return fail(err, path + ":" + std::to_string(lineno) +
                    ": malformed fail record");
      }
      std::string reason;
      std::getline(rec, reason);
      if (!reason.empty() && reason.front() == ' ') reason.erase(0, 1);
      ++cell.fails;
      cell.last_reason = reason;
    } else if (kind == "exhausted") {
      // Re-armed on resume: stays pending, fail count carries over.
      cell.status = CellStatus::kPending;
    } else {
      return fail(err, path + ":" + std::to_string(lineno) +
                  ": unknown record kind '" + kind + "'");
    }
  }
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) return fail(err, "cannot reopen " + path);
  return true;
}

void CampaignJournal::record_start(std::size_t idx, std::uint32_t attempt) {
  append("start " + std::to_string(idx) + " " + std::to_string(attempt));
}

void CampaignJournal::record_done(std::size_t idx, std::uint32_t attempt,
                                  std::uint64_t result_digest) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "done %zu %u %016" PRIx64, idx, attempt,
                result_digest);
  append(buf);
}

void CampaignJournal::record_fail(std::size_t idx, std::uint32_t attempt,
                                  const std::string& reason) {
  append("fail " + std::to_string(idx) + " " + std::to_string(attempt) + " " +
         reason);
}

void CampaignJournal::record_exhausted(std::size_t idx,
                                       std::uint32_t attempts) {
  append("exhausted " + std::to_string(idx) + " " + std::to_string(attempts));
}

}  // namespace qip
