#include "campaign/scenario.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "baselines/boleng.hpp"
#include "baselines/buddy.hpp"
#include "baselines/ctree.hpp"
#include "baselines/dad.hpp"
#include "baselines/manetconf.hpp"
#include "baselines/pdad.hpp"
#include "baselines/weak_dad.hpp"
#include "core/qip_engine.hpp"

namespace qip {

namespace {

constexpr std::uint64_t kPoolSize = 1024;

std::unique_ptr<AutoconfProtocol> make_protocol(const std::string& name,
                                                World& world) {
  if (name == "qip") {
    QipParams p;
    p.pool_size = kPoolSize;
    auto proto =
        std::make_unique<QipEngine>(world.transport(), world.rng(), p);
    proto->start_hello();
    return proto;
  }
  if (name == "manetconf") {
    ManetConfParams p;
    p.pool_size = kPoolSize;
    return std::make_unique<ManetConf>(world.transport(), world.rng(), p);
  }
  if (name == "buddy") {
    BuddyParams p;
    p.pool_size = kPoolSize;
    auto proto =
        std::make_unique<BuddyProtocol>(world.transport(), world.rng(), p);
    proto->start_sync();
    return proto;
  }
  if (name == "ctree") {
    CTreeParams p;
    p.pool_size = kPoolSize;
    auto proto =
        std::make_unique<CTreeProtocol>(world.transport(), world.rng(), p);
    proto->start_updates();
    return proto;
  }
  if (name == "dad") {
    DadParams p;
    p.pool_size = kPoolSize;
    return std::make_unique<DadProtocol>(world.transport(), world.rng(), p);
  }
  if (name == "weakdad") {
    WeakDadParams p;
    p.pool_size = kPoolSize;
    auto proto =
        std::make_unique<WeakDadProtocol>(world.transport(), world.rng(), p);
    proto->start_updates();
    return proto;
  }
  if (name == "pdad") {
    PdadParams p;
    p.pool_size = kPoolSize;
    auto proto =
        std::make_unique<PdadProtocol>(world.transport(), world.rng(), p);
    proto->start_routing();
    return proto;
  }
  if (name == "boleng") {
    auto proto =
        std::make_unique<BolengProtocol>(world.transport(), world.rng());
    proto->start_beacons();
    return proto;
  }
  throw std::invalid_argument("unknown protocol '" + name + "'");
}

void digest_u64(std::uint64_t& h, std::uint64_t v) {
  h = fnv1a64(&v, sizeof(v), h);
}

void digest_double(std::uint64_t& h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  digest_u64(h, bits);
}

}  // namespace

CellRunner::CellRunner(const CellSpec& spec) : spec_(spec) {
  ctx_ = std::make_unique<SimContext>(spec.seed);
  WorldParams wp;
  wp.transmission_range = spec.range;
  wp.speed = spec.speed;
  world_ = std::make_unique<World>(wp, spec.seed, *ctx_);
  proto_ = make_protocol(spec.protocol, *world_);
  driver_ = std::make_unique<Driver>(*world_, *proto_);
  roam_slices_ = spec.duration > 0
                     ? static_cast<std::size_t>(std::ceil(spec.duration))
                     : 0;
  phase_count_ = 1 + spec.churn + roam_slices_;
}

CellRunner::~CellRunner() = default;

void CellRunner::run_phase() {
  QIP_ASSERT_MSG(phases_run_ < phase_count_, "cell already complete");
  const std::size_t phase = phases_run_;
  if (phase == 0) {
    // Bringup: sequential arrivals, then a settle window (the qip-sim
    // choreography).
    driver_->join(spec_.nodes);
    world_->run_for(2.0);
  } else if (phase <= spec_.churn) {
    // One departure (graceful or abrupt) plus a replacement arrival.
    if (!driver_->members().empty()) {
      const NodeId victim =
          driver_->members()[world_->rng().index(driver_->members().size())];
      if (world_->rng().chance(spec_.abrupt)) {
        driver_->depart_abrupt(victim);
      } else {
        driver_->depart_graceful(victim);
      }
      driver_->join_one();
    }
  } else {
    // Roam: equal slices of the post-churn duration.
    world_->run_for(spec_.duration / static_cast<double>(roam_slices_));
  }
  ++phases_run_;
}

std::uint64_t CellRunner::state_digest() const {
  std::uint64_t h = fnv1a64(spec_.canonical());
  digest_u64(h, phases_run_);
  digest_double(h, world_->sim().now());
  digest_u64(h, world_->sim().events_executed());
  digest_u64(h, world_->sim().live_events());
  for (std::uint64_t w : world_->rng().state()) digest_u64(h, w);
  for (std::uint64_t w : ctx_->rng().state()) digest_u64(h, w);
  const MessageStats& stats = world_->stats();
  for (std::size_t t = 0; t < static_cast<std::size_t>(Traffic::kCount); ++t) {
    digest_u64(h, stats.of(static_cast<Traffic>(t)).messages);
    digest_u64(h, stats.of(static_cast<Traffic>(t)).hops);
  }
  digest_u64(h, stats.dropped_in_flight());
  digest_u64(h, stats.retransmissions());
  digest_u64(h, stats.acks());
  // Per-node outcome records, in id order (ids are dense from the driver).
  for (NodeId id = 0; id < driver_->joined_count(); ++id) {
    const ConfigRecord* rec = proto_->config_record(id);
    if (rec == nullptr) {
      digest_u64(h, 0xdeadu);
      continue;
    }
    digest_u64(h, rec->success ? 1 : 2);
    digest_u64(h, rec->address.value());
    digest_u64(h, rec->latency_hops);
    digest_u64(h, rec->attempts);
    digest_double(h, rec->requested_at);
    digest_double(h, rec->completed_at);
  }
  // Live membership and positions pin the mobility layer.
  for (NodeId id : driver_->members()) {
    digest_u64(h, id);
    const Point& p = world_->topology().position(id);
    digest_double(h, p.x);
    digest_double(h, p.y);
  }
  return h;
}

CellResult CellRunner::result() const {
  QIP_ASSERT_MSG(phases_run_ == phase_count_,
                 "result() before the cell finished");
  CellResult r;
  r.configured = driver_->configured_fraction();
  r.latency_hops = driver_->mean_config_latency();
  r.protocol_hops = world_->stats().protocol_hops();
  r.joins = driver_->joined_count();
  r.state_digest = state_digest();
  return r;
}

std::string CellResult::render(const CellSpec& spec) const {
  std::string out = "qip-cell v1\n";
  out += "spec " + spec.canonical() + "\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "configured=%.17g\n", configured);
  out += buf;
  std::snprintf(buf, sizeof(buf), "latency_hops=%.17g\n", latency_hops);
  out += buf;
  std::snprintf(buf, sizeof(buf), "protocol_hops=%" PRIu64 "\n",
                protocol_hops);
  out += buf;
  std::snprintf(buf, sizeof(buf), "joins=%u\n", joins);
  out += buf;
  std::snprintf(buf, sizeof(buf), "digest=0x%016" PRIx64 "\n", state_digest);
  out += buf;
  return out;
}

bool CellResult::parse(const std::string& text, CellSpec* spec,
                       CellResult* out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "qip-cell v1") return false;
  if (!std::getline(in, line) || line.rfind("spec ", 0) != 0) return false;
  if (!CellSpec::parse(line.substr(5), spec)) return false;
  CellResult r;
  bool saw_configured = false, saw_latency = false, saw_hops = false,
       saw_joins = false, saw_digest = false;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    char* end = nullptr;
    if (key == "configured") {
      r.configured = std::strtod(value.c_str(), &end);
      saw_configured = end != value.c_str() && *end == '\0';
    } else if (key == "latency_hops") {
      r.latency_hops = std::strtod(value.c_str(), &end);
      saw_latency = end != value.c_str() && *end == '\0';
    } else if (key == "protocol_hops") {
      r.protocol_hops = std::strtoull(value.c_str(), &end, 10);
      saw_hops = end != value.c_str() && *end == '\0';
    } else if (key == "joins") {
      r.joins = static_cast<std::uint32_t>(
          std::strtoul(value.c_str(), &end, 10));
      saw_joins = end != value.c_str() && *end == '\0';
    } else if (key == "digest") {
      r.state_digest = std::strtoull(value.c_str(), &end, 16);
      saw_digest = end != value.c_str() && *end == '\0';
    } else {
      return false;
    }
  }
  if (!(saw_configured && saw_latency && saw_hops && saw_joins &&
        saw_digest)) {
    return false;
  }
  *out = r;
  return true;
}

}  // namespace qip
