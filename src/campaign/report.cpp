#include "campaign/report.hpp"

#include <cinttypes>
#include <cstdio>

namespace qip {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return buf;
}

}  // namespace

std::string render_campaign_report(const CampaignSpec& spec,
                                   const CampaignOutcome& outcome) {
  std::string out = "qip-campaign v1\n";
  out += "grid " + spec.canonical() + "\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "cells=%zu done=%zu exhausted=%zu\n\n",
                outcome.cells.size(), outcome.done, outcome.exhausted);
  out += buf;
  out +=
      "  idx protocol    nodes   range                 seed att status  "
      "configured latency_hops protocol_hops joins             digest\n";
  for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
    const CellOutcome& c = outcome.cells[i];
    const std::uint32_t attempts =
        c.status == CellStatus::kDone ? c.fails + 1 : c.fails;
    std::snprintf(buf, sizeof(buf), "%5zu %-11s %5u %7.6g %020" PRIu64
                  " %3u ",
                  i, c.spec.protocol.c_str(), c.spec.nodes, c.spec.range,
                  c.spec.seed, attempts);
    out += buf;
    if (c.status == CellStatus::kDone) {
      std::snprintf(buf, sizeof(buf),
                    "done    %10.6g %12.6g %13" PRIu64 " %5u %s\n",
                    c.result.configured, c.result.latency_hops,
                    c.result.protocol_hops, c.result.joins,
                    hex64(c.result.state_digest).c_str());
    } else {
      std::snprintf(buf, sizeof(buf),
                    "FAILED  %10s %12s %13s %5s %18s\n", "-", "-", "-", "-",
                    "-");
    }
    out += buf;
  }
  if (outcome.exhausted > 0) {
    out += "\nexhausted cells (retry budget spent; re-run with --resume to "
           "re-arm):\n";
    for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
      const CellOutcome& c = outcome.cells[i];
      if (c.status == CellStatus::kDone) continue;
      std::snprintf(buf, sizeof(buf), "  %zu: %u failures, last: %s\n", i,
                    c.fails, c.last_reason.c_str());
      out += buf;
    }
  }
  return out;
}

JsonValue render_campaign_json(const CampaignSpec& spec,
                               const CampaignOutcome& outcome) {
  JsonValue doc = JsonValue::object();
  doc.set("bench", "qip_campaign");
  doc.set("grid", spec.canonical());
  doc.set("total", static_cast<std::int64_t>(outcome.cells.size()));
  doc.set("done", static_cast<std::int64_t>(outcome.done));
  doc.set("exhausted", static_cast<std::int64_t>(outcome.exhausted));
  JsonValue cells = JsonValue::array();
  for (std::size_t i = 0; i < outcome.cells.size(); ++i) {
    const CellOutcome& c = outcome.cells[i];
    JsonValue cell = JsonValue::object();
    cell.set("index", static_cast<std::int64_t>(i));
    cell.set("protocol", c.spec.protocol);
    cell.set("nodes", c.spec.nodes);
    cell.set("range", c.spec.range);
    cell.set("seed", hex64(c.spec.seed));
    cell.set("status",
             c.status == CellStatus::kDone ? "done" : "exhausted");
    cell.set("attempts",
             c.status == CellStatus::kDone ? c.fails + 1 : c.fails);
    if (c.status == CellStatus::kDone) {
      cell.set("configured", c.result.configured);
      cell.set("latency_hops", c.result.latency_hops);
      cell.set("protocol_hops", c.result.protocol_hops);
      cell.set("joins", c.result.joins);
      cell.set("digest", hex64(c.result.state_digest));
    } else {
      cell.set("last_reason", c.last_reason);
    }
    cells.push(std::move(cell));
  }
  doc.set("cells", std::move(cells));
  return doc;
}

bool write_campaign_artifacts(const CampaignSpec& spec,
                              const CampaignOutcome& outcome,
                              const std::string& out_dir, std::string* err) {
  const std::string report = render_campaign_report(spec, outcome);
  const std::string report_path = out_dir + "/report.txt";
  {
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      if (err) *err = "cannot create " + report_path;
      return false;
    }
    const bool wrote = std::fputs(report.c_str(), f) >= 0;
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
      if (err) *err = "cannot write " + report_path;
      return false;
    }
  }
  if (!render_campaign_json(spec, outcome)
           .write_file(out_dir + "/BENCH_campaign.json")) {
    if (err) *err = "cannot write " + out_dir + "/BENCH_campaign.json";
    return false;
  }
  return true;
}

}  // namespace qip
