// One campaign cell as an executable, checkpointable scenario.
//
// A CellRunner owns everything one cell needs — SimContext, World, protocol
// engine, Driver — and exposes the scenario as an ordered sequence of
// *phases* (bringup, churn steps, roam slices).  Phases are the campaign's
// checkpoint grain: between phases no host-side control flow is suspended
// mid-loop, so a snapshot (campaign/snapshot.hpp) can name a phase boundary
// and a restore can re-materialize the exact state there deterministically.
//
// state_digest() folds every piece of observable simulation state — sim
// clock, event counts, both RNG streams, message accounting, per-node
// configuration records, node positions — into one 64-bit value.  Two runs
// of the same spec agree on the digest at every phase boundary iff they are
// byte-identical; the snapshot layer and the campaign journal both pin it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "campaign/campaign_spec.hpp"
#include "harness/driver.hpp"
#include "harness/world.hpp"
#include "net/protocol.hpp"
#include "sim/sim_context.hpp"

namespace qip {

/// The measurements a finished cell reports (the qip-sim summary set).
/// render()/parse() round-trip through the per-cell result artifact the
/// campaign runner writes; doubles render round-trippably so a re-run cell
/// reproduces the artifact byte-for-byte.
struct CellResult {
  double configured = 0.0;  ///< fraction of joins that ended configured
  double latency_hops = 0.0;
  std::uint64_t protocol_hops = 0;
  std::uint32_t joins = 0;
  std::uint64_t state_digest = 0;

  std::string render(const CellSpec& spec) const;
  static bool parse(const std::string& text, CellSpec* spec, CellResult* out);
};

class CellRunner {
 public:
  /// Builds the world and engine for `spec` on a fresh SimContext seeded
  /// with the cell seed.  Throws std::invalid_argument on an unknown
  /// protocol name.
  explicit CellRunner(const CellSpec& spec);
  ~CellRunner();

  const CellSpec& spec() const { return spec_; }
  SimContext& ctx() { return *ctx_; }
  World& world() { return *world_; }

  /// Phase layout: [0] bringup (join all + settle), [1..churn] one
  /// departure+replacement each, then roam slices of <= 1 s of simulated
  /// time until `duration` is spent.
  std::size_t phase_count() const { return phase_count_; }
  std::size_t phases_run() const { return phases_run_; }

  /// Runs the next phase (phases execute strictly in order).
  void run_phase();
  /// Runs every remaining phase.
  void run_to_end() {
    while (phases_run_ < phase_count_) run_phase();
  }

  /// Digest of the full observable simulation state; see file comment.
  std::uint64_t state_digest() const;

  /// Only meaningful once every phase has run.
  CellResult result() const;

 private:
  CellSpec spec_;
  std::unique_ptr<SimContext> ctx_;
  std::unique_ptr<World> world_;
  std::unique_ptr<AutoconfProtocol> proto_;
  std::unique_ptr<Driver> driver_;
  std::size_t phase_count_ = 0;
  std::size_t phases_run_ = 0;
  std::size_t roam_slices_ = 0;
};

}  // namespace qip
