#include "campaign/inject.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace qip {

namespace {

bool fail(std::string* err, const std::string& why) {
  if (err) *err = why;
  return false;
}

/// Parses a strictly-decimal non-negative integer (no sign, no trailing
/// garbage).
bool parse_dec(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
  }
  *out = v;
  return true;
}

}  // namespace

bool InjectPlan::matches(InjectKind kind, std::size_t cell,
                         std::uint32_t attempt) const {
  for (const InjectPoint& p : points) {
    if (p.kind == kind && p.cell == cell && p.attempt == attempt) return true;
  }
  return false;
}

bool InjectPlan::parse(const std::string& text, InjectPlan* out,
                       std::string* err) {
  InjectPlan plan;
  std::istringstream in(text);
  std::string term;
  while (std::getline(in, term, ',')) {
    if (term.empty()) {
      return fail(err, "empty injection term");
    }
    const auto colon = term.find(':');
    if (colon == std::string::npos) {
      return fail(err, "injection term '" + term + "' has no ':'");
    }
    const std::string kind = term.substr(0, colon);
    const std::string rest = term.substr(colon + 1);
    if (kind == "die-after") {
      std::uint64_t n = 0;
      if (!parse_dec(rest, &n)) {
        return fail(err, "die-after wants a count, got '" + rest + "'");
      }
      plan.die_after = static_cast<std::size_t>(n);
      continue;
    }
    if (kind != "crash" && kind != "hang") {
      return fail(err, "unknown injection kind '" + kind + "'");
    }
    const auto at = rest.find('@');
    if (at == std::string::npos) {
      return fail(err, "injection term '" + term +
                  "' wants <cell>@<attempt>");
    }
    std::uint64_t cell = 0, attempt = 0;
    if (!parse_dec(rest.substr(0, at), &cell) ||
        !parse_dec(rest.substr(at + 1), &attempt)) {
      return fail(err, "injection term '" + term +
                  "' wants decimal <cell>@<attempt>");
    }
    InjectPoint p;
    p.kind = kind == "crash" ? InjectKind::kCrash : InjectKind::kHang;
    p.cell = static_cast<std::size_t>(cell);
    p.attempt = static_cast<std::uint32_t>(attempt);
    plan.points.push_back(p);
  }
  *out = plan;
  return true;
}

InjectPlan inject_plan_from_env() {
  const char* text = std::getenv("QIP_CAMPAIGN_INJECT");
  if (text == nullptr || *text == '\0') return {};
  InjectPlan plan;
  std::string err;
  if (!InjectPlan::parse(text, &plan, &err)) {
    std::fprintf(stderr, "qip: QIP_CAMPAIGN_INJECT: %s\n", err.c_str());
    std::exit(2);
  }
  return plan;
}

}  // namespace qip
