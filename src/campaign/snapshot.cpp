#include "campaign/snapshot.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace qip {

namespace {

void append_rng(std::string& out, const char* key,
                const std::array<std::uint64_t, 4>& s) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "%s %016" PRIx64 " %016" PRIx64 " %016" PRIx64 " %016" PRIx64
                "\n",
                key, s[0], s[1], s[2], s[3]);
  out += buf;
}

bool parse_rng(const std::string& line, const char* key,
               std::array<std::uint64_t, 4>* out) {
  std::istringstream in(line);
  std::string tok;
  if (!(in >> tok) || tok != key) return false;
  for (auto& w : *out) {
    if (!(in >> tok)) return false;
    char* end = nullptr;
    w = std::strtoull(tok.c_str(), &end, 16);
    if (end == tok.c_str() || *end != '\0') return false;
  }
  return !(in >> tok);  // no trailing garbage
}

bool fail(std::string* err, const std::string& why) {
  if (err) *err = why;
  return false;
}

/// Double bits as hex, so the clock round-trips exactly (no decimal loss).
std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

bool save_snapshot(CellRunner& runner, const std::string& path,
                   std::string* err) {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s v%u\n", kSnapshotMagic,
                kSnapshotVersion);
  out += buf;
  out += "spec " + runner.spec().canonical() + "\n";
  std::snprintf(buf, sizeof(buf), "phase %zu\n", runner.phases_run());
  out += buf;
  std::snprintf(buf, sizeof(buf), "now %016" PRIx64 "\n",
                double_bits(runner.world().sim().now()));
  out += buf;
  std::snprintf(buf, sizeof(buf), "executed %" PRIu64 "\n",
                runner.world().sim().events_executed());
  out += buf;
  std::snprintf(buf, sizeof(buf), "live %" PRIu64 "\n",
                static_cast<std::uint64_t>(runner.world().sim().live_events()));
  out += buf;
  append_rng(out, "world_rng", runner.world().rng().state());
  append_rng(out, "ctx_rng", runner.ctx().rng().state());
  std::snprintf(buf, sizeof(buf), "digest %016" PRIx64 "\n",
                runner.state_digest());
  out += buf;
  out += "end\n";

  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc | std::ios::binary);
    if (!f) return fail(err, "cannot write " + tmp);
    f << out;
    if (!f.flush()) return fail(err, "write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(err, "rename " + tmp + " -> " + path + " failed");
  }
  return true;
}

std::optional<Snapshot> load_snapshot(const std::string& path,
                                      std::string* err) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    fail(err, "cannot open " + path);
    return std::nullopt;
  }
  auto bad = [&](const std::string& why) {
    fail(err, path + ": " + why);
    return std::nullopt;
  };
  std::string line;
  if (!std::getline(f, line)) return bad("empty file");
  {
    std::istringstream head(line);
    std::string magic, ver;
    if (!(head >> magic >> ver) || magic != kSnapshotMagic) {
      return bad("bad magic (not a snapshot file)");
    }
    char buf[16];
    std::snprintf(buf, sizeof(buf), "v%u", kSnapshotVersion);
    if (ver != buf) {
      return bad("unsupported snapshot version '" + ver + "' (this build "
                 "reads " + buf + ")");
    }
  }
  Snapshot s;
  if (!std::getline(f, line) || line.rfind("spec ", 0) != 0 ||
      !CellSpec::parse(line.substr(5), &s.spec)) {
    return bad("missing or malformed spec line");
  }
  auto read_u64 = [&](const char* key, std::uint64_t* out, int base) {
    if (!std::getline(f, line)) return false;
    std::istringstream in(line);
    std::string k, v, rest;
    if (!(in >> k >> v) || k != key || (in >> rest)) return false;
    char* end = nullptr;
    *out = std::strtoull(v.c_str(), &end, base);
    return end != v.c_str() && *end == '\0';
  };
  std::uint64_t phase = 0, now_bits = 0;
  if (!read_u64("phase", &phase, 10)) return bad("malformed phase");
  s.phase = static_cast<std::size_t>(phase);
  if (!read_u64("now", &now_bits, 16)) return bad("malformed clock");
  s.now = bits_double(now_bits);
  if (!read_u64("executed", &s.executed, 10)) return bad("malformed executed");
  if (!read_u64("live", &s.live, 10)) return bad("malformed live");
  if (!std::getline(f, line) || !parse_rng(line, "world_rng", &s.world_rng)) {
    return bad("malformed world_rng");
  }
  if (!std::getline(f, line) || !parse_rng(line, "ctx_rng", &s.ctx_rng)) {
    return bad("malformed ctx_rng");
  }
  if (!read_u64("digest", &s.digest, 16)) return bad("malformed digest");
  if (!std::getline(f, line) || line != "end") {
    return bad("truncated (no end marker)");
  }
  return s;
}

std::unique_ptr<CellRunner> restore_snapshot(const Snapshot& snap,
                                             std::string* err) {
  auto runner = std::make_unique<CellRunner>(snap.spec);
  if (snap.phase > runner->phase_count()) {
    fail(err, "snapshot phase out of range for this spec");
    return nullptr;
  }
  // Deterministic replay to the phase boundary (see file comment: v1 cannot
  // decode event-queue closures, so it re-derives them).
  while (runner->phases_run() < snap.phase) runner->run_phase();

  // Exact-state verification: every saved field must match the replayed
  // state bit for bit, or the snapshot does not describe this build/spec.
  auto mismatch = [&](const std::string& what) {
    fail(err, "snapshot mismatch after replay: " + what);
    return nullptr;
  };
  if (runner->world().sim().now() != snap.now) {
    return mismatch("simulation clock");
  }
  if (runner->world().sim().events_executed() != snap.executed) {
    return mismatch("executed-event count");
  }
  if (static_cast<std::uint64_t>(runner->world().sim().live_events()) !=
      snap.live) {
    return mismatch("live-event count");
  }
  if (runner->world().rng().state() != snap.world_rng) {
    return mismatch("world RNG stream");
  }
  if (runner->ctx().rng().state() != snap.ctx_rng) {
    return mismatch("context RNG stream");
  }
  if (runner->state_digest() != snap.digest) {
    return mismatch("state digest");
  }
  // Belt and braces: install the saved streams explicitly, so continuation
  // consumes exactly the recorded state regardless of how verification
  // evolves in later format versions.
  runner->world().rng().set_state(snap.world_rng);
  runner->ctx().rng().set_state(snap.ctx_rng);
  return runner;
}

}  // namespace qip
