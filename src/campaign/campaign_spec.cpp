#include "campaign/campaign_spec.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "harness/parallel.hpp"

namespace qip {

namespace {

/// Round-trippable double rendering: %.17g re-reads to the identical bits,
/// so canonical strings digest and parse stably.
void append_double(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%.17g", key, v);
  out += buf;
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key, v);
  out += buf;
}

/// Pulls `key=` from a "k=v k=v ..." line.  Returns nullptr when absent.
const char* find_field(const std::string& text, const char* key,
                       std::string* value) {
  const std::string needle = std::string(key) + "=";
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) {
    if (tok.rfind(needle, 0) == 0) {
      *value = tok.substr(needle.size());
      return value->c_str();
    }
  }
  return nullptr;
}

bool parse_double_field(const std::string& text, const char* key,
                        double* out) {
  std::string v;
  if (!find_field(text, key, &v) || v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return errno == 0 && end != v.c_str() && *end == '\0';
}

bool parse_u64_field(const std::string& text, const char* key,
                     std::uint64_t* out) {
  std::string v;
  if (!find_field(text, key, &v) || v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  *out = std::strtoull(v.c_str(), &end, 0);
  return errno == 0 && end != v.c_str() && *end == '\0';
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(const std::string& s) {
  return fnv1a64(s.data(), s.size());
}

bool known_protocol(const std::string& name) {
  return name == "qip" || name == "manetconf" || name == "buddy" ||
         name == "ctree" || name == "dad" || name == "weakdad" ||
         name == "pdad" || name == "boleng";
}

std::string CellSpec::canonical() const {
  std::string out = "proto=" + protocol;
  append_u64(out, "nodes", nodes);
  append_double(out, "range", range);
  append_double(out, "speed", speed);
  append_double(out, "duration", duration);
  append_u64(out, "churn", churn);
  append_double(out, "abrupt", abrupt);
  char buf[32];
  std::snprintf(buf, sizeof(buf), " seed=0x%016" PRIx64, seed);
  out += buf;
  return out;
}

bool CellSpec::parse(const std::string& text, CellSpec* out) {
  CellSpec s;
  std::string proto;
  if (!find_field(text, "proto", &proto) || !known_protocol(proto)) {
    return false;
  }
  s.protocol = proto;
  std::uint64_t nodes = 0, churn = 0;
  if (!parse_u64_field(text, "nodes", &nodes) || nodes == 0 ||
      nodes > 0xffffffffULL) {
    return false;
  }
  s.nodes = static_cast<std::uint32_t>(nodes);
  if (!parse_double_field(text, "range", &s.range) || s.range <= 0) {
    return false;
  }
  if (!parse_double_field(text, "speed", &s.speed) || s.speed < 0) {
    return false;
  }
  if (!parse_double_field(text, "duration", &s.duration) || s.duration < 0) {
    return false;
  }
  if (!parse_u64_field(text, "churn", &churn) || churn > 0xffffffffULL) {
    return false;
  }
  s.churn = static_cast<std::uint32_t>(churn);
  if (!parse_double_field(text, "abrupt", &s.abrupt) || s.abrupt < 0 ||
      s.abrupt > 1) {
    return false;
  }
  if (!parse_u64_field(text, "seed", &s.seed)) return false;
  *out = s;
  return true;
}

std::vector<CellSpec> CampaignSpec::expand() const {
  std::vector<CellSpec> cells;
  cells.reserve(cell_count());
  // Grid-point index feeds the historical derive_cell_seed(base, xi, round)
  // formula, so a campaign point replicates the equivalent figure cell.
  std::uint64_t point = 0;
  for (const std::string& proto : protocols) {
    for (std::uint32_t nn : nodes) {
      for (double tr : ranges) {
        for (std::uint32_t round = 0; round < seeds; ++round) {
          CellSpec c;
          c.protocol = proto;
          c.nodes = nn;
          c.range = tr;
          c.speed = speed;
          c.duration = duration;
          c.churn = churn;
          c.abrupt = abrupt;
          c.seed = derive_cell_seed(base_seed, point, round);
          cells.push_back(std::move(c));
        }
        ++point;
      }
    }
  }
  return cells;
}

std::string CampaignSpec::canonical() const {
  std::string out = "protocols=";
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    if (i) out += ',';
    out += protocols[i];
  }
  out += " nodes=";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(nodes[i]);
  }
  out += " ranges=";
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i) out += ',';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", ranges[i]);
    out += buf;
  }
  append_double(out, "speed", speed);
  append_double(out, "duration", duration);
  append_u64(out, "churn", churn);
  append_double(out, "abrupt", abrupt);
  append_u64(out, "seeds", seeds);
  char buf[32];
  std::snprintf(buf, sizeof(buf), " base_seed=0x%016" PRIx64, base_seed);
  out += buf;
  return out;
}

std::uint64_t CampaignSpec::digest() const { return fnv1a64(canonical()); }

bool CampaignSpec::validate(std::string* err) const {
  auto fail = [&](const std::string& why) {
    if (err) *err = why;
    return false;
  };
  if (protocols.empty()) return fail("no protocols");
  for (const std::string& p : protocols) {
    if (!known_protocol(p)) return fail("unknown protocol '" + p + "'");
  }
  if (nodes.empty()) return fail("no node counts");
  for (std::uint32_t n : nodes) {
    if (n == 0) return fail("node count must be positive");
  }
  if (ranges.empty()) return fail("no transmission ranges");
  for (double r : ranges) {
    if (!(r > 0)) return fail("transmission range must be positive");
  }
  if (!(speed >= 0)) return fail("speed must be non-negative");
  if (!(duration >= 0)) return fail("duration must be non-negative");
  if (!(abrupt >= 0 && abrupt <= 1)) return fail("abrupt must be in [0,1]");
  if (seeds == 0) return fail("seeds must be positive");
  return true;
}

}  // namespace qip
