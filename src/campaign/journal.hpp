// The campaign journal: an append-only, crash-durable record of cell
// progress, and the thing --resume replays.
//
// Format (text, one record per line; every line fsync'd before the runner
// acts on it, so a SIGKILL at any instant loses at most work, never truth):
//
//   campaign v1 digest=<spec digest> cells=<n>
//   start <idx> <attempt>
//   done <idx> <attempt> <result digest>
//   fail <idx> <attempt> <reason>
//   exhausted <idx> <attempts>
//
// Replay rules (resume semantics, docs/CAMPAIGN.md):
//   * `done` is terminal: the cell is complete, its result artifact is on
//     disk (written tmp+rename *before* the done record), never re-run.
//   * `fail` counts a real cell failure (crash, nonzero exit, deadline);
//     attempts in the consolidated report = fails + 1 for a finished cell.
//   * `start` without a terminal record means the campaign process died
//     mid-cell; the cell is simply incomplete.  It does NOT count as an
//     attempt — a campaign killed at 90% must not inflate the attempt
//     numbers of the cells it happened to be running, or a resumed report
//     could never be byte-identical to an uninterrupted one.
//   * `exhausted` cells are re-armed on resume with a fresh attempt budget
//     (the fail count carries over into the report); resuming is an
//     explicit operator request to try to finish the grid.
//   * a final line without '\n' is a torn write from the fatal signal and
//     is ignored.
//
// The header digest pins the grid: --resume against a journal whose spec
// digest differs is refused (exit 2) rather than silently mixing grids.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/campaign_spec.hpp"

namespace qip {

enum class CellStatus { kPending, kDone, kExhausted };

struct CellProgress {
  CellStatus status = CellStatus::kPending;
  std::uint32_t fails = 0;  ///< `fail` records seen (cumulative over resumes)
  std::uint64_t result_digest = 0;   ///< from the `done` record
  std::string last_reason;           ///< last `fail` reason, for the report
};

class CampaignJournal {
 public:
  CampaignJournal() = default;
  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  /// Creates a fresh journal (refuses to overwrite an existing one: a
  /// non-resume run must not silently destroy history).
  bool open_fresh(const std::string& path, const CampaignSpec& spec,
                  std::string* err);

  /// Replays an existing journal, validates the header against `spec`, and
  /// reopens it for appending.  Fills `progress` with one entry per cell
  /// (exhausted cells come back re-armed as pending; see file comment).
  bool open_resume(const std::string& path, const CampaignSpec& spec,
                   std::vector<CellProgress>* progress, std::string* err);

  bool is_open() const { return file_ != nullptr; }

  void record_start(std::size_t idx, std::uint32_t attempt);
  void record_done(std::size_t idx, std::uint32_t attempt,
                   std::uint64_t result_digest);
  void record_fail(std::size_t idx, std::uint32_t attempt,
                   const std::string& reason);
  void record_exhausted(std::size_t idx, std::uint32_t attempts);

  void close();

 private:
  void append(const std::string& line);

  std::FILE* file_ = nullptr;
};

}  // namespace qip
