// The fault-tolerant campaign runner (ROADMAP item 5).
//
// A campaign is a declarative (scenario × parameter × seed) grid
// (campaign_spec.hpp) fanned across worker *processes*: each cell forks, so
// a crashing or wedged simulation takes down one attempt, never the
// campaign.  The parent supervises with
//
//   * a durable journal (campaign/journal.hpp) — every state change is
//     fsync'd before the runner acts on it, so `--resume` after SIGKILL
//     re-runs exactly the incomplete cells,
//   * a per-cell wall-clock deadline — a hung worker is SIGKILLed and the
//     attempt counted as failed,
//   * bounded retry with exponential backoff — `retries` extra attempts per
//     cell per run, backoff_ms * 2^attempt between them,
//   * graceful degradation — a cell that exhausts its budget is marked in
//     the journal and the consolidated report; the campaign still completes
//     and reports every other cell.
//
// Determinism contract: the consolidated report is a pure function of the
// per-cell results and cumulative fail counts, and cells are simulated on
// seeds derived only from (base_seed, cell index) — never from scheduling.
// Hence a campaign that is SIGKILLed mid-grid and resumed produces a report
// byte-identical to an uninterrupted run (tools/check_resume_invariance.cmake
// pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign_spec.hpp"
#include "campaign/inject.hpp"
#include "campaign/journal.hpp"
#include "campaign/scenario.hpp"

namespace qip {

struct CampaignOptions {
  std::uint32_t jobs = 2;         ///< concurrent worker processes
  std::uint32_t retries = 2;      ///< extra attempts per cell, per run
  std::uint32_t deadline_ms = 60000;  ///< per-attempt wall-clock budget
  std::uint32_t backoff_ms = 100;     ///< base retry backoff (doubles)
  bool resume = false;
  std::string out_dir = "campaign-out";
};

/// Overlays QIP_CAMPAIGN_JOBS / QIP_CAMPAIGN_RETRIES /
/// QIP_CAMPAIGN_DEADLINE_MS / QIP_CAMPAIGN_BACKOFF_MS on `defaults` with the
/// strict env convention (harness/env.hpp): unset keeps the default,
/// malformed exits 2.  JOBS must be positive; the others may be zero.
CampaignOptions campaign_options_from_env(CampaignOptions defaults = {});

/// Worker exit codes (distinct from simulation exit paths so the journal
/// records *why* an attempt died).
inline constexpr int kCellExitInjectedCrash = 70;
inline constexpr int kCellExitException = 71;
inline constexpr int kCellExitArtifactError = 72;

/// Final state of one cell after a run (journal state + parsed result).
struct CellOutcome {
  CellSpec spec;
  CellStatus status = CellStatus::kPending;
  std::uint32_t fails = 0;  ///< cumulative over resumes
  std::string last_reason;
  CellResult result;  ///< valid iff status == kDone
};

struct CampaignOutcome {
  std::vector<CellOutcome> cells;
  std::size_t done = 0;
  std::size_t exhausted = 0;
  bool complete() const { return exhausted == 0; }
};

class CampaignRunner {
 public:
  CampaignRunner(CampaignSpec spec, CampaignOptions options,
                 InjectPlan inject = {});

  /// Executes (or resumes) the campaign and fills *out.  Returns false with
  /// a diagnostic in *err on setup errors (invalid spec, journal refusal,
  /// unreadable artifacts); cell failures are NOT setup errors — they
  /// surface as exhausted cells in the outcome.
  bool run(CampaignOutcome* out, std::string* err);

  const std::string& journal_path() const { return journal_path_; }
  const std::string& cells_dir() const { return cells_dir_; }

 private:
  struct Pending;  // per-cell scheduling state (runner.cpp)

  /// Body of a forked worker; never returns (always _exit()s).
  [[noreturn]] void run_cell_child(std::size_t idx, std::uint32_t attempt);

  std::string result_path(std::size_t idx) const;
  std::string log_path(std::size_t idx, std::uint32_t attempt) const;

  CampaignSpec spec_;
  CampaignOptions options_;
  InjectPlan inject_;
  std::vector<CellSpec> cells_;
  std::string journal_path_;
  std::string cells_dir_;
  CampaignJournal journal_;
  std::size_t done_records_ = 0;  ///< for die-after injection
};

}  // namespace qip
