#include "geom/grid_index.hpp"

#include <algorithm>

namespace qip {

void GridIndex::insert(std::uint32_t id, const Point& p) {
  QIP_ASSERT_MSG(!contains(id), "id " << id << " already indexed");
  const CellKey key = key_for(p);
  cells_[key].push_back(id);
  where_.emplace(id, Entry{p, key});
}

void GridIndex::remove(std::uint32_t id) {
  auto it = where_.find(id);
  QIP_ASSERT_MSG(it != where_.end(), "id " << id << " not indexed");
  auto cell_it = cells_.find(it->second.cell);
  QIP_ASSERT(cell_it != cells_.end());
  auto& bucket = cell_it->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), id));
  if (bucket.empty()) cells_.erase(cell_it);
  where_.erase(it);
}

void GridIndex::move(std::uint32_t id, const Point& p) {
  auto it = where_.find(id);
  QIP_ASSERT_MSG(it != where_.end(), "id " << id << " not indexed");
  const CellKey new_key = key_for(p);
  if (!(new_key == it->second.cell)) {
    auto& old_bucket = cells_[it->second.cell];
    old_bucket.erase(std::find(old_bucket.begin(), old_bucket.end(), id));
    if (old_bucket.empty()) cells_.erase(it->second.cell);
    cells_[new_key].push_back(id);
    it->second.cell = new_key;
  }
  it->second.pos = p;
}

const Point& GridIndex::position(std::uint32_t id) const {
  auto it = where_.find(id);
  QIP_ASSERT_MSG(it != where_.end(), "id " << id << " not indexed");
  return it->second.pos;
}

std::vector<std::uint32_t> GridIndex::query(const Point& center, double radius,
                                            std::int64_t exclude) const {
  QIP_ASSERT(radius > 0.0);
  std::vector<std::uint32_t> out;
  const double r_sq = radius * radius;
  // The query radius can exceed the cell size (rare but allowed); widen the
  // cell window accordingly.
  const auto span = static_cast<std::int64_t>(std::ceil(radius / cell_));
  const CellKey base = key_for(center);
  for (std::int64_t dx = -span; dx <= span; ++dx) {
    for (std::int64_t dy = -span; dy <= span; ++dy) {
      auto it = cells_.find({base.cx + dx, base.cy + dy});
      if (it == cells_.end()) continue;
      for (std::uint32_t id : it->second) {
        if (static_cast<std::int64_t>(id) == exclude) continue;
        if (distance_sq(where_.at(id).pos, center) <= r_sq) out.push_back(id);
      }
    }
  }
  return out;
}

}  // namespace qip
