#include "geom/grid_index.hpp"

#include <algorithm>

namespace qip {

namespace {

template <typename Bucket>
auto slot_for(Bucket& bucket, std::uint32_t id) {
  return std::find_if(bucket.begin(), bucket.end(),
                      [id](const auto& s) { return s.id == id; });
}

}  // namespace

void GridIndex::insert(std::uint32_t id, const Point& p) {
  QIP_ASSERT_MSG(!contains(id), "id " << id << " already indexed");
  const CellKey key = key_for(p);
  cells_[key].push_back({id, p});
  where_.emplace(id, Entry{p, key});
  touch(key);
}

void GridIndex::remove(std::uint32_t id) {
  auto it = where_.find(id);
  QIP_ASSERT_MSG(it != where_.end(), "id " << id << " not indexed");
  auto cell_it = cells_.find(it->second.cell);
  QIP_ASSERT(cell_it != cells_.end());
  auto& bucket = cell_it->second;
  bucket.erase(slot_for(bucket, id));
  if (bucket.empty()) cells_.erase(cell_it);
  touch(it->second.cell);
  where_.erase(it);
}

void GridIndex::move(std::uint32_t id, const Point& p) {
  auto it = where_.find(id);
  QIP_ASSERT_MSG(it != where_.end(), "id " << id << " not indexed");
  const CellKey new_key = key_for(p);
  if (new_key == it->second.cell) {
    slot_for(cells_[new_key], id)->pos = p;
  } else {
    auto& old_bucket = cells_[it->second.cell];
    old_bucket.erase(slot_for(old_bucket, id));
    if (old_bucket.empty()) cells_.erase(it->second.cell);
    cells_[new_key].push_back({id, p});
    touch(it->second.cell);
    it->second.cell = new_key;
  }
  // A same-cell move still changes the position, so the cell is stale either
  // way; touching it last stamps both cells with distinct epochs on a
  // cross-cell move.
  touch(new_key);
  it->second.pos = p;
}

const Point& GridIndex::position(std::uint32_t id) const {
  auto it = where_.find(id);
  QIP_ASSERT_MSG(it != where_.end(), "id " << id << " not indexed");
  return it->second.pos;
}

void GridIndex::touch(const CellKey& key) {
  ++epoch_;
  cell_version_[key] = epoch_;
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      window_version_[{key.cx + dx, key.cy + dy}] = epoch_;
    }
  }
}

std::uint64_t GridIndex::window_version(const Point& center,
                                        double radius) const {
  QIP_ASSERT(radius > 0.0);
  if (radius <= cell_) {
    // A disk of radius <= cell centered anywhere in a cell stays inside the
    // cell's 3×3 neighborhood, whose version is maintained on write.
    const auto it = window_version_.find(key_for(center));
    return it == window_version_.end() ? 0 : it->second;
  }
  std::uint64_t version = 0;
  const auto span = static_cast<std::int64_t>(std::ceil(radius / cell_));
  const CellKey base = key_for(center);
  for (std::int64_t dx = -span; dx <= span; ++dx) {
    for (std::int64_t dy = -span; dy <= span; ++dy) {
      auto it = cell_version_.find({base.cx + dx, base.cy + dy});
      if (it != cell_version_.end()) version = std::max(version, it->second);
    }
  }
  return version;
}

std::vector<std::uint32_t> GridIndex::query(const Point& center, double radius,
                                            std::int64_t exclude) const {
  std::vector<std::uint32_t> out;
  query_into(center, radius, exclude, out);
  return out;
}

void GridIndex::query_into(const Point& center, double radius,
                           std::int64_t exclude,
                           std::vector<std::uint32_t>& out) const {
  QIP_ASSERT(radius > 0.0);
  out.clear();
  const double r_sq = radius * radius;
  // The query radius can exceed the cell size (rare but allowed); widen the
  // cell window accordingly.
  const auto span = static_cast<std::int64_t>(std::ceil(radius / cell_));
  const CellKey base = key_for(center);
  for (std::int64_t dx = -span; dx <= span; ++dx) {
    for (std::int64_t dy = -span; dy <= span; ++dy) {
      auto it = cells_.find({base.cx + dx, base.cy + dy});
      if (it == cells_.end()) continue;
      for (const Slot& s : it->second) {
        if (static_cast<std::int64_t>(s.id) == exclude) continue;
        if (distance_sq(s.pos, center) <= r_sq) out.push_back(s.id);
      }
    }
  }
}

}  // namespace qip
