// Uniform-grid spatial index for O(1) expected-time range queries.
//
// Neighbor discovery ("all nodes within transmission range r of p") is the
// hottest geometric query in the simulator: it runs after every movement
// step.  The grid cell size equals the query radius so a query inspects at
// most the 3×3 cell neighborhood.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "util/assert.hpp"

namespace qip {

/// Spatial hash keyed by opaque integer ids.  Ids must be inserted before
/// being moved or queried, and removed when the owning node leaves.
class GridIndex {
 public:
  /// `cell` should match the dominant query radius (transmission range).
  explicit GridIndex(double cell) : cell_(cell) { QIP_ASSERT(cell > 0.0); }

  void insert(std::uint32_t id, const Point& p);
  void remove(std::uint32_t id);
  void move(std::uint32_t id, const Point& p);
  bool contains(std::uint32_t id) const { return where_.count(id) != 0; }
  const Point& position(std::uint32_t id) const;
  std::size_t size() const { return where_.size(); }

  /// All ids strictly within `radius` of `center` (excluding `exclude` if
  /// given).  Distance is inclusive: d <= radius, matching the unit-disk
  /// connectivity model.
  std::vector<std::uint32_t> query(const Point& center, double radius,
                                   std::int64_t exclude = -1) const;

  /// Applies `fn(id, point)` to every entry (iteration order unspecified).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [id, entry] : where_) fn(id, entry.pos);
  }

 private:
  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    bool operator==(const CellKey&) const = default;
  };
  struct CellKeyHash {
    std::size_t operator()(const CellKey& k) const {
      // 2-D -> 1-D mix; constants from SplitMix64.
      std::uint64_t h = static_cast<std::uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<std::uint64_t>(k.cy) + 0xbf58476d1ce4e5b9ULL + (h << 6) +
           (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    Point pos;
    CellKey cell;
  };

  CellKey key_for(const Point& p) const {
    return {static_cast<std::int64_t>(std::floor(p.x / cell_)),
            static_cast<std::int64_t>(std::floor(p.y / cell_))};
  }

  double cell_;
  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellKeyHash> cells_;
  std::unordered_map<std::uint32_t, Entry> where_;
};

}  // namespace qip
