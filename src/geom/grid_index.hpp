// Uniform-grid spatial index for O(1) expected-time range queries.
//
// Neighbor discovery ("all nodes within transmission range r of p") is the
// hottest geometric query in the simulator: it runs after every movement
// step.  The grid cell size equals the query radius so a query inspects at
// most the 3×3 cell neighborhood.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "util/assert.hpp"

namespace qip {

/// Spatial hash keyed by opaque integer ids.  Ids must be inserted before
/// being moved or queried, and removed when the owning node leaves.
class GridIndex {
 public:
  /// `cell` should match the dominant query radius (transmission range).
  explicit GridIndex(double cell) : cell_(cell) { QIP_ASSERT(cell > 0.0); }

  void insert(std::uint32_t id, const Point& p);
  void remove(std::uint32_t id);
  void move(std::uint32_t id, const Point& p);
  bool contains(std::uint32_t id) const { return where_.count(id) != 0; }
  const Point& position(std::uint32_t id) const;
  std::size_t size() const { return where_.size(); }

  /// Monotone mutation counter: every insert/remove/move bumps it, so a
  /// consumer can tell "nothing changed since I looked" with one compare.
  /// Starts at 0; the first mutation makes it 1.
  std::uint64_t epoch() const { return epoch_; }

  /// Greatest epoch at which any cell overlapping the disk (`center`,
  /// `radius`) was mutated (0 if none ever was).  A cached neighborhood of
  /// that disk computed at epoch E is still exact iff the returned value is
  /// <= E: mutations elsewhere in the grid cannot affect it.
  std::uint64_t window_version(const Point& center, double radius) const;

  /// All ids within `radius` of `center` (excluding `exclude` if given).
  /// Distance is inclusive — d <= radius counts, so two nodes exactly a
  /// transmission range apart are connected, matching the unit-disk model.
  std::vector<std::uint32_t> query(const Point& center, double radius,
                                   std::int64_t exclude = -1) const;

  /// Same query into a caller-owned buffer (cleared first), so repeated
  /// callers — the topology cache refreshing adjacency rows — reuse one
  /// allocation.
  void query_into(const Point& center, double radius, std::int64_t exclude,
                  std::vector<std::uint32_t>& out) const;

  /// Applies `fn(id, point)` to every entry (iteration order unspecified).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [id, entry] : where_) fn(id, entry.pos);
  }

 private:
  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    bool operator==(const CellKey&) const = default;
  };
  struct CellKeyHash {
    std::size_t operator()(const CellKey& k) const {
      // 2-D -> 1-D mix; constants from SplitMix64.
      std::uint64_t h = static_cast<std::uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<std::uint64_t>(k.cy) + 0xbf58476d1ce4e5b9ULL + (h << 6) +
           (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    Point pos;
    CellKey cell;
  };
  /// Bucket slot: the position rides along with the id so a range query
  /// never pays a hash lookup per candidate.
  struct Slot {
    std::uint32_t id;
    Point pos;
  };

  CellKey key_for(const Point& p) const {
    return {static_cast<std::int64_t>(std::floor(p.x / cell_)),
            static_cast<std::int64_t>(std::floor(p.y / cell_))};
  }

  /// Stamps `key` (and the global counter) with a fresh mutation epoch.
  void touch(const CellKey& key);

  double cell_;
  std::unordered_map<CellKey, std::vector<Slot>, CellKeyHash> cells_;
  std::unordered_map<std::uint32_t, Entry> where_;
  std::uint64_t epoch_ = 0;
  /// Last mutation epoch per cell.  Entries persist after a cell empties —
  /// an emptying *is* a mutation a cached reader must observe — so the map
  /// is bounded by the number of cells ever occupied, not currently
  /// occupied.
  std::unordered_map<CellKey, std::uint64_t, CellKeyHash> cell_version_;
  /// Last mutation epoch within each cell's 3×3 neighborhood, maintained on
  /// write (9 stamps per mutation) so the common radius<=cell validity
  /// probe is a single lookup instead of a 9-cell scan per cached row.
  std::unordered_map<CellKey, std::uint64_t, CellKeyHash> window_version_;
};

}  // namespace qip
