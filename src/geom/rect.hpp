// Axis-aligned simulation area.
#pragma once

#include <algorithm>

#include "geom/point.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace qip {

/// The rectangular field nodes live in; [0,width) × [0,height) metres.
struct Rect {
  double width = 1000.0;
  double height = 1000.0;

  bool contains(const Point& p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }

  Point clamp(const Point& p) const {
    return {std::clamp(p.x, 0.0, width), std::clamp(p.y, 0.0, height)};
  }

  /// Uniformly random point inside the rectangle.
  Point sample(Rng& rng) const {
    QIP_ASSERT(width > 0.0 && height > 0.0);
    return {rng.uniform(0.0, width), rng.uniform(0.0, height)};
  }

  double area() const { return width * height; }
};

}  // namespace qip
