// 2-D geometry primitives for node placement and mobility.
//
// Positions are metres in a planar simulation area (the paper uses a
// 1 km × 1 km field).  distance_sq is preferred in hot paths (neighbor
// discovery) to avoid the sqrt.
#pragma once

#include <cmath>

namespace qip {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double k) const { return {x * k, y * k}; }
};

inline double distance_sq(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point& a, const Point& b) {
  return std::sqrt(distance_sq(a, b));
}

inline double length(const Point& v) { return std::sqrt(v.x * v.x + v.y * v.y); }

/// Unit vector from `from` toward `to`; returns {0,0} if the points coincide.
inline Point direction(const Point& from, const Point& to) {
  const Point d = to - from;
  const double len = length(d);
  if (len == 0.0) return {0.0, 0.0};
  return {d.x / len, d.y / len};
}

/// Point advanced `dist` metres from `from` toward `to`, clamped at `to`.
inline Point advance(const Point& from, const Point& to, double dist) {
  const double total = distance(from, to);
  if (dist >= total || total == 0.0) return to;
  const Point dir = direction(from, to);
  return {from.x + dir.x * dist, from.y + dir.y * dist};
}

}  // namespace qip
