// Cluster bookkeeping shared by the QIP engine (§II-B).
//
// The network self-organizes into a two-layer hierarchy: every cluster has
// exactly one *cluster head*, heads are never neighbors (≥ 2 hops apart when
// formed), and every *common node* is configured by — and belongs to — some
// head.  ClusterView tracks role assignments and membership and answers the
// topology-coupled queries the protocol needs ("is there a head within two
// hops?", "which heads are in my 3-hop QDSet neighborhood?").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/node_id.hpp"
#include "net/topology.hpp"

namespace qip {

enum class Role : std::uint8_t {
  kUnconfigured = 0,
  kCommonNode = 1,
  kClusterHead = 2,
};

const char* to_string(Role role);

class ClusterView {
 public:
  explicit ClusterView(const Topology& topology) : topology_(&topology) {}

  Role role(NodeId id) const;
  bool is_head(NodeId id) const { return role(id) == Role::kClusterHead; }

  /// Declares `id` a cluster head (it becomes its own cluster's head).
  void set_head(NodeId id);

  /// Declares `id` a common node in `head`'s cluster.
  void set_member(NodeId id, NodeId head);

  /// Moves `id` (a common node) into another head's cluster.
  void reassign_member(NodeId id, NodeId new_head);

  /// Removes `id` entirely (departure).  Members of a removed head keep
  /// their role but are flagged orphaned until reassigned.
  void remove(NodeId id);

  /// The head whose cluster `id` belongs to (itself for a head), or nullopt
  /// if unconfigured/orphaned.
  std::optional<NodeId> head_of(NodeId id) const;

  /// Members configured into `head`'s cluster (sorted; excludes the head).
  std::vector<NodeId> members_of(NodeId head) const;

  /// All current cluster heads, sorted.
  std::vector<NodeId> heads() const;

  std::size_t head_count() const { return heads_.size(); }

  /// Cluster heads within `k` hops of `id` on the current topology
  /// (excluding `id` itself), sorted by (hop distance, id).
  std::vector<NodeId> heads_within(NodeId id, std::uint32_t k) const;

  /// Nearest cluster head reachable from `id` (any distance), or nullopt.
  std::optional<NodeId> nearest_head(NodeId id) const;

  /// Invariant from §II-B: no two cluster heads are one-hop neighbors.
  /// (May be transiently violated by mobility; the protocol tolerates it.)
  bool heads_nonadjacent() const;

 private:
  const Topology* topology_;
  std::unordered_map<NodeId, Role> roles_;
  std::unordered_map<NodeId, NodeId> member_head_;       // member -> head
  std::unordered_map<NodeId, std::unordered_set<NodeId>> cluster_;  // head -> members
  std::unordered_set<NodeId> heads_;
};

}  // namespace qip
