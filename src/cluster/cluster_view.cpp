#include "cluster/cluster_view.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qip {

const char* to_string(Role role) {
  switch (role) {
    case Role::kUnconfigured:
      return "unconfigured";
    case Role::kCommonNode:
      return "common-node";
    case Role::kClusterHead:
      return "cluster-head";
  }
  return "?";
}

Role ClusterView::role(NodeId id) const {
  auto it = roles_.find(id);
  return it == roles_.end() ? Role::kUnconfigured : it->second;
}

void ClusterView::set_head(NodeId id) {
  QIP_ASSERT_MSG(role(id) != Role::kClusterHead, "node " << id << " already a head");
  // A common node promoted to head (partition recovery) leaves its cluster.
  auto member_it = member_head_.find(id);
  if (member_it != member_head_.end()) {
    auto cluster_it = cluster_.find(member_it->second);
    if (cluster_it != cluster_.end()) cluster_it->second.erase(id);
    member_head_.erase(member_it);
  }
  roles_[id] = Role::kClusterHead;
  heads_.insert(id);
  cluster_.try_emplace(id);
}

void ClusterView::set_member(NodeId id, NodeId head) {
  QIP_ASSERT_MSG(heads_.count(head), "configuring under non-head " << head);
  QIP_ASSERT_MSG(role(id) != Role::kClusterHead,
                 "head " << id << " cannot become a member");
  roles_[id] = Role::kCommonNode;
  member_head_[id] = head;
  cluster_[head].insert(id);
}

void ClusterView::reassign_member(NodeId id, NodeId new_head) {
  QIP_ASSERT(role(id) == Role::kCommonNode);
  QIP_ASSERT(heads_.count(new_head));
  auto it = member_head_.find(id);
  if (it != member_head_.end()) {
    auto cluster_it = cluster_.find(it->second);
    if (cluster_it != cluster_.end()) cluster_it->second.erase(id);
  }
  member_head_[id] = new_head;
  cluster_[new_head].insert(id);
}

void ClusterView::remove(NodeId id) {
  const Role r = role(id);
  if (r == Role::kClusterHead) {
    // Members become orphaned (kept as common nodes with no head) until the
    // protocol reassigns them.
    auto cluster_it = cluster_.find(id);
    if (cluster_it != cluster_.end()) {
      for (NodeId member : cluster_it->second) member_head_.erase(member);
      cluster_.erase(cluster_it);
    }
    heads_.erase(id);
  } else if (r == Role::kCommonNode) {
    auto it = member_head_.find(id);
    if (it != member_head_.end()) {
      auto cluster_it = cluster_.find(it->second);
      if (cluster_it != cluster_.end()) cluster_it->second.erase(id);
      member_head_.erase(it);
    }
  }
  roles_.erase(id);
}

std::optional<NodeId> ClusterView::head_of(NodeId id) const {
  if (is_head(id)) return id;
  auto it = member_head_.find(id);
  if (it == member_head_.end()) return std::nullopt;
  return it->second;
}

std::vector<NodeId> ClusterView::members_of(NodeId head) const {
  std::vector<NodeId> out;
  auto it = cluster_.find(head);
  if (it == cluster_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> ClusterView::heads() const {
  std::vector<NodeId> out(heads_.begin(), heads_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> ClusterView::heads_within(NodeId id, std::uint32_t k) const {
  std::vector<std::pair<std::uint32_t, NodeId>> found;
  for (const auto& [node, dist] : topology_->k_hop_view(id, k)) {
    if (heads_.count(node)) found.emplace_back(dist, node);
  }
  std::sort(found.begin(), found.end());
  std::vector<NodeId> out;
  out.reserve(found.size());
  for (const auto& [dist, node] : found) out.push_back(node);
  return out;
}

std::optional<NodeId> ClusterView::nearest_head(NodeId id) const {
  // Expanding-ring search.  A BFS bounded to radius k sees every head at
  // depth <= k, so as soon as any head lands inside the ring the
  // (hops, id)-minimum over the ring IS the global minimum — identical to
  // folding over the whole component, at the cost of the ring.  In the
  // paper's density regime the nearest head is a hop or two away; the full
  // component (what the old fold always paid) is only reached when no head
  // exists at all.
  std::optional<std::pair<std::uint32_t, NodeId>> best;
  std::size_t prev_seen = 0;
  for (std::uint32_t radius = 2;; radius *= 2) {
    std::size_t seen = 0;
    topology_->for_each_within(id, radius, [&](NodeId n, std::uint32_t d) {
      ++seen;
      if (n == id || !heads_.count(n)) return;
      const std::pair<std::uint32_t, NodeId> cand{d, n};
      if (!best || cand < *best) best = cand;
    });
    if (best) return best->second;
    if (seen == prev_seen) return std::nullopt;  // ring covered the component
    prev_seen = seen;
  }
}

bool ClusterView::heads_nonadjacent() const {
  for (NodeId head : heads_) {
    if (!topology_->has_node(head)) continue;
    for (NodeId n : topology_->neighbors_view(head)) {
      if (heads_.count(n)) return false;
    }
  }
  return true;
}

}  // namespace qip
