#include "addr/allocation_table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qip {

const char* to_string(AddressStatus status) {
  switch (status) {
    case AddressStatus::kFree:
      return "free";
    case AddressStatus::kAllocated:
      return "allocated";
  }
  return "?";
}

AddressRecord AllocationTable::get(IpAddress a) const {
  const AddressRecord* rec = records_.find(a);
  return rec ? *rec : AddressRecord{};
}

AddressRecord AllocationTable::commit_allocate(IpAddress a,
                                               std::uint32_t holder,
                                               std::uint64_t min_timestamp) {
  AddressRecord rec = get(a);
  QIP_ASSERT_MSG(rec.status == AddressStatus::kFree || rec.holder == holder,
                 "allocating " << a << " already held by node " << rec.holder);
  rec.status = AddressStatus::kAllocated;
  rec.holder = holder;
  rec.timestamp = std::max(rec.timestamp, min_timestamp) + 1;
  records_[a] = rec;
  return rec;
}

AddressRecord AllocationTable::commit_free(IpAddress a,
                                           std::uint64_t min_timestamp) {
  AddressRecord rec = get(a);
  rec.status = AddressStatus::kFree;
  rec.holder = 0;
  rec.timestamp = std::max(rec.timestamp, min_timestamp) + 1;
  records_[a] = rec;
  return rec;
}

bool AllocationTable::adopt_if_newer(IpAddress a, const AddressRecord& record) {
  AddressRecord* mine = records_.find(a);
  if (mine == nullptr) {
    if (record == AddressRecord{}) return false;
    records_[a] = record;
    return true;
  }
  if (record.timestamp > mine->timestamp) {
    *mine = record;
    return true;
  }
  return false;
}

void AllocationTable::install(IpAddress a, const AddressRecord& record) {
  records_[a] = record;
}

std::size_t AllocationTable::merge_newer(const AllocationTable& other) {
  std::size_t adopted = 0;
  other.records_.for_each([&](IpAddress addr, const AddressRecord& rec) {
    if (adopt_if_newer(addr, rec)) ++adopted;
  });
  return adopted;
}

std::uint64_t AllocationTable::allocated_count() const {
  std::uint64_t n = 0;
  records_.for_each([&](IpAddress, const AddressRecord& rec) {
    if (rec.status == AddressStatus::kAllocated) ++n;
  });
  return n;
}

std::vector<IpAddress> AllocationTable::known_addresses() const {
  std::vector<IpAddress> out;
  out.reserve(records_.size());
  records_.for_each(
      [&](IpAddress addr, const AddressRecord&) { out.push_back(addr); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace qip
