// IPv4 address value type.
//
// The protocol only needs totally-ordered, densely-packed identifiers, so an
// address is a thin wrapper over its 32-bit host-order integer value with
// dotted-quad formatting for traces and examples.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace qip {

class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t value) : value_(value) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return value_; }

  /// Next / previous address in the space (wraps at the 32-bit boundary,
  /// which the protocol never reaches: pools are tiny sub-ranges).
  constexpr IpAddress next() const { return IpAddress(value_ + 1); }
  constexpr IpAddress prev() const { return IpAddress(value_ - 1); }

  std::string to_string() const;

  friend constexpr auto operator<=>(IpAddress a, IpAddress b) = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, IpAddress addr);

/// The conventional base of the simulation address pool (10.0.0.0/8 space).
inline constexpr IpAddress kPoolBase{10, 0, 0, 0};

}  // namespace qip

template <>
struct std::hash<qip::IpAddress> {
  std::size_t operator()(qip::IpAddress a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
