// Interval set of IP addresses (a cluster head's IPSpace).
//
// Stored as sorted, coalesced, non-overlapping closed ranges.  The dominant
// operations are:
//   * pop_lowest()   — configure a common node with the first free address;
//   * split_half()   — hand the upper half of the pool to a new cluster head
//                      ("the allocator assigns half its IP block", §IV-B);
//   * insert/erase   — return / lend individual addresses;
// all O(log k + k) in the number of ranges k, which stays tiny because the
// protocol allocates and returns mostly-contiguous runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "addr/ip_address.hpp"

namespace qip {

class AddressBlock {
 public:
  /// Closed range [lo, hi].
  struct Range {
    IpAddress lo;
    IpAddress hi;
    bool operator==(const Range&) const = default;
    std::uint64_t size() const {
      return std::uint64_t{hi.value()} - lo.value() + 1;
    }
  };

  AddressBlock() = default;
  /// Block holding the closed range [lo, hi].
  AddressBlock(IpAddress lo, IpAddress hi);
  /// Block holding `count` addresses starting at `base`.
  static AddressBlock contiguous(IpAddress base, std::uint64_t count);

  bool empty() const { return ranges_.empty(); }
  std::uint64_t size() const;
  bool contains(IpAddress a) const;
  /// Lowest address in the block; block must be non-empty.
  IpAddress lowest() const;
  IpAddress highest() const;

  /// Adds one address.  Asserts it was absent (double-free of an address is
  /// a protocol bug, not a recoverable condition).
  void insert(IpAddress a);
  /// Adds a closed range, asserting no overlap with existing contents.
  void insert(Range r);
  /// Merges another block in (ranges must be disjoint from ours).
  void merge(const AddressBlock& other);

  /// Removes one address; asserts it was present.
  void erase(IpAddress a);

  /// Removes a closed range; asserts every address in it was present.
  void erase(Range r);

  /// Removes every address of `sub`; asserts all were present.
  void erase_all(const AddressBlock& sub);

  /// True iff every address of `sub` is in this block.
  bool contains_all(const AddressBlock& sub) const;

  /// Addresses in this block but not in `other`.
  AddressBlock minus(const AddressBlock& other) const;

  /// Removes and returns the lowest address; block must be non-empty.
  IpAddress pop_lowest();

  /// Splits off the upper half (⌈size/2⌉ stays, ⌊size/2⌋ leaves) and returns
  /// it.  The remaining lower half keeps this block's lowest address, so a
  /// head's identity address never migrates.  Block must hold ≥ 2 addresses.
  AddressBlock split_half();

  /// True iff no address is in both blocks.
  bool disjoint_with(const AddressBlock& other) const;

  const std::vector<Range>& ranges() const { return ranges_; }

  /// Enumerates every address (test/debug use; pools are small).
  std::vector<IpAddress> to_vector() const;

  /// "[10.0.0.0-10.0.0.127], [10.0.1.3]" style rendering.
  std::string to_string() const;

  bool operator==(const AddressBlock&) const = default;

 private:
  /// Validates sortedness/coalescing in debug builds.
  void check_invariant() const;

  std::vector<Range> ranges_;
};

std::ostream& operator<<(std::ostream& os, const AddressBlock& block);

}  // namespace qip
