#include "addr/address_block.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace qip {

AddressBlock::AddressBlock(IpAddress lo, IpAddress hi) {
  QIP_ASSERT_MSG(lo <= hi, "inverted range " << lo << "-" << hi);
  ranges_.push_back({lo, hi});
}

AddressBlock AddressBlock::contiguous(IpAddress base, std::uint64_t count) {
  QIP_ASSERT(count > 0);
  QIP_ASSERT_MSG(std::uint64_t{base.value()} + count - 1 <= 0xffffffffULL,
                 "pool overflows the IPv4 space");
  return AddressBlock(base,
                      IpAddress(base.value() + static_cast<std::uint32_t>(count) - 1));
}

std::uint64_t AddressBlock::size() const {
  std::uint64_t total = 0;
  for (const auto& r : ranges_) total += r.size();
  return total;
}

bool AddressBlock::contains(IpAddress a) const {
  // First range with hi >= a; a is present iff that range's lo <= a.
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), a,
      [](const Range& r, IpAddress v) { return r.hi < v; });
  return it != ranges_.end() && it->lo <= a;
}

IpAddress AddressBlock::lowest() const {
  QIP_ASSERT_MSG(!empty(), "lowest() on empty block");
  return ranges_.front().lo;
}

IpAddress AddressBlock::highest() const {
  QIP_ASSERT_MSG(!empty(), "highest() on empty block");
  return ranges_.back().hi;
}

void AddressBlock::insert(IpAddress a) { insert(Range{a, a}); }

void AddressBlock::insert(Range r) {
  QIP_ASSERT_MSG(r.lo <= r.hi, "inverted range");
  // Position of the first range that could follow or touch r.
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), r,
      [](const Range& existing, const Range& probe) {
        return existing.hi < probe.lo;
      });
  QIP_ASSERT_MSG(it == ranges_.end() || it->lo > r.hi,
                 "inserting overlapping range " << r.lo << "-" << r.hi);
  // Coalesce with left neighbour (it-1 ends exactly at r.lo-1)?
  bool merged_left = false;
  if (it != ranges_.begin()) {
    auto left = std::prev(it);
    if (left->hi.value() != 0xffffffffu && left->hi.next() == r.lo) {
      left->hi = r.hi;
      it = left;
      merged_left = true;
    }
  }
  if (!merged_left) {
    it = ranges_.insert(it, r);
  }
  // Coalesce with right neighbour?
  auto right = std::next(it);
  if (right != ranges_.end() && it->hi.value() != 0xffffffffu &&
      it->hi.next() == right->lo) {
    it->hi = right->hi;
    ranges_.erase(right);
  }
  check_invariant();
}

void AddressBlock::merge(const AddressBlock& other) {
  for (const auto& r : other.ranges_) insert(r);
}

void AddressBlock::erase(IpAddress a) {
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), a,
      [](const Range& r, IpAddress v) { return r.hi < v; });
  QIP_ASSERT_MSG(it != ranges_.end() && it->lo <= a,
                 "erasing absent address " << a);
  if (it->lo == a && it->hi == a) {
    ranges_.erase(it);
  } else if (it->lo == a) {
    it->lo = a.next();
  } else if (it->hi == a) {
    it->hi = a.prev();
  } else {
    const Range tail{a.next(), it->hi};
    it->hi = a.prev();
    ranges_.insert(std::next(it), tail);
  }
  check_invariant();
}

void AddressBlock::erase(Range r) {
  QIP_ASSERT_MSG(r.lo <= r.hi, "inverted range");
  auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), r.lo,
      [](const Range& existing, IpAddress v) { return existing.hi < v; });
  QIP_ASSERT_MSG(it != ranges_.end() && it->lo <= r.lo && r.hi <= it->hi,
                 "erasing range " << r.lo << "-" << r.hi
                                  << " not fully contained");
  const Range host = *it;
  if (host.lo == r.lo && host.hi == r.hi) {
    ranges_.erase(it);
  } else if (host.lo == r.lo) {
    it->lo = r.hi.next();
  } else if (host.hi == r.hi) {
    it->hi = r.lo.prev();
  } else {
    const Range tail{r.hi.next(), host.hi};
    it->hi = r.lo.prev();
    ranges_.insert(std::next(it), tail);
  }
  check_invariant();
}

void AddressBlock::erase_all(const AddressBlock& sub) {
  for (const auto& r : sub.ranges_) erase(r);
}

bool AddressBlock::contains_all(const AddressBlock& sub) const {
  for (const auto& r : sub.ranges_) {
    auto it = std::lower_bound(
        ranges_.begin(), ranges_.end(), r.lo,
        [](const Range& existing, IpAddress v) { return existing.hi < v; });
    if (it == ranges_.end() || it->lo > r.lo || r.hi > it->hi) return false;
  }
  return true;
}

IpAddress AddressBlock::pop_lowest() {
  const IpAddress a = lowest();
  erase(a);
  return a;
}

AddressBlock AddressBlock::minus(const AddressBlock& other) const {
  AddressBlock out;
  auto cut = other.ranges_.begin();
  for (Range r : ranges_) {
    // Advance past cuts entirely below r.
    while (cut != other.ranges_.end() && cut->hi < r.lo) ++cut;
    IpAddress lo = r.lo;
    auto c = cut;
    while (c != other.ranges_.end() && c->lo <= r.hi) {
      if (c->lo > lo) out.ranges_.push_back({lo, c->lo.prev()});
      if (c->hi >= r.hi) {
        lo = r.hi.next();
        break;
      }
      lo = c->hi.next();
      ++c;
    }
    if (lo <= r.hi) out.ranges_.push_back({lo, r.hi});
  }
  out.check_invariant();
  return out;
}

AddressBlock AddressBlock::split_half() {
  const std::uint64_t total = size();
  QIP_ASSERT_MSG(total >= 2, "cannot split a block of size " << total);
  const std::uint64_t keep = (total + 1) / 2;  // lower ⌈n/2⌉ stays
  AddressBlock upper;
  // Walk ranges from the low end, skipping `keep` addresses; everything
  // beyond moves to `upper`.
  std::uint64_t skipped = 0;
  std::vector<Range> kept;
  for (const auto& r : ranges_) {
    const std::uint64_t len = r.size();
    if (skipped + len <= keep) {
      kept.push_back(r);
      skipped += len;
    } else if (skipped >= keep) {
      upper.ranges_.push_back(r);
    } else {
      const std::uint64_t take = keep - skipped;
      const IpAddress cut(r.lo.value() + static_cast<std::uint32_t>(take) - 1);
      kept.push_back({r.lo, cut});
      upper.ranges_.push_back({cut.next(), r.hi});
      skipped = keep;
    }
  }
  ranges_ = std::move(kept);
  check_invariant();
  upper.check_invariant();
  return upper;
}

bool AddressBlock::disjoint_with(const AddressBlock& other) const {
  auto a = ranges_.begin();
  auto b = other.ranges_.begin();
  while (a != ranges_.end() && b != other.ranges_.end()) {
    if (a->hi < b->lo) {
      ++a;
    } else if (b->hi < a->lo) {
      ++b;
    } else {
      return false;
    }
  }
  return true;
}

std::vector<IpAddress> AddressBlock::to_vector() const {
  std::vector<IpAddress> out;
  out.reserve(size());
  for (const auto& r : ranges_)
    for (std::uint32_t v = r.lo.value();; ++v) {
      out.push_back(IpAddress(v));
      if (v == r.hi.value()) break;
    }
  return out;
}

std::string AddressBlock::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

void AddressBlock::check_invariant() const {
#ifndef NDEBUG
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    QIP_ASSERT(ranges_[i].lo <= ranges_[i].hi);
    if (i + 1 < ranges_.size()) {
      // Strictly separated (a gap of at least one address), else they would
      // have been coalesced.
      QIP_ASSERT(ranges_[i].hi.value() + 1 < ranges_[i + 1].lo.value());
    }
  }
#endif
}

std::ostream& operator<<(std::ostream& os, const AddressBlock& block) {
  if (block.empty()) return os << "[]";
  bool first = true;
  for (const auto& r : block.ranges()) {
    if (!first) os << ", ";
    first = false;
    if (r.lo == r.hi)
      os << '[' << r.lo << ']';
    else
      os << '[' << r.lo << '-' << r.hi << ']';
  }
  return os;
}

}  // namespace qip
