#include "addr/ip_address.hpp"

#include <ostream>

namespace qip {

std::string IpAddress::to_string() const {
  std::string out;
  out.reserve(15);
  out += std::to_string((value_ >> 24) & 0xff);
  out += '.';
  out += std::to_string((value_ >> 16) & 0xff);
  out += '.';
  out += std::to_string((value_ >> 8) & 0xff);
  out += '.';
  out += std::to_string(value_ & 0xff);
  return out;
}

std::ostream& operator<<(std::ostream& os, IpAddress addr) {
  return os << addr.to_string();
}

}  // namespace qip
