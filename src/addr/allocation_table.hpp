// Timestamped per-address allocation state.
//
// Every copy of an address record carries a logical timestamp that starts at
// zero and increments on each committed update (§II-C).  Quorum reads take
// the record with the latest timestamp; replica stores adopt newer records
// wholesale (last-writer-wins is safe because quorum intersection serializes
// writers).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "addr/ip_address.hpp"
#include "util/flat_hash.hpp"

namespace qip {

enum class AddressStatus : std::uint8_t {
  kFree = 0,      ///< available for allocation
  kAllocated = 1, ///< bound to a configured node
};

const char* to_string(AddressStatus status);

struct AddressRecord {
  AddressStatus status = AddressStatus::kFree;
  std::uint64_t timestamp = 0;
  /// Simulator id of the node currently holding the address (meaningful only
  /// when allocated).  This mirrors the paper's allocation table contents.
  std::uint32_t holder = 0;

  bool operator==(const AddressRecord&) const = default;
};

/// Sparse table: addresses without an entry are implicitly kFree at
/// timestamp 0 (the initial state of every copy).
///
/// Backed by a flat open-addressing hash (util/flat_hash.hpp): every head
/// holds one table plus a replica copy per QDSet member, and quorum rounds
/// probe them on the hot path, so record lookups stay one cache line and
/// replication copies are a single flat-array clone.  Internal order never
/// escapes: every order-sensitive consumer goes through known_addresses(),
/// which sorts (docs/SCALE.md).
class AllocationTable {
 public:
  /// Record for `a`, or the implicit initial record.
  AddressRecord get(IpAddress a) const;

  /// True if `a` has status kAllocated.
  bool allocated(IpAddress a) const {
    return get(a).status == AddressStatus::kAllocated;
  }

  /// Commits an allocation: bumps the timestamp past `min_timestamp` (the
  /// freshest value seen in the quorum read) and returns the new record.
  AddressRecord commit_allocate(IpAddress a, std::uint32_t holder,
                                std::uint64_t min_timestamp);

  /// Commits a release (address returned / reclaimed).
  AddressRecord commit_free(IpAddress a, std::uint64_t min_timestamp);

  /// Adopts `record` for `a` iff it is strictly newer than ours (replica
  /// update path).  Returns true if adopted.
  bool adopt_if_newer(IpAddress a, const AddressRecord& record);

  /// Unconditionally installs a record (initial replica seeding).
  void install(IpAddress a, const AddressRecord& record);

  /// Adopts every record of `other` that is newer than ours (replica
  /// reconciliation).  Returns how many records were adopted.
  std::size_t merge_newer(const AllocationTable& other);

  void erase(IpAddress a) { records_.erase(a); }
  void clear() { records_.clear(); }

  std::size_t entries() const { return records_.size(); }
  std::uint64_t allocated_count() const;

  /// All addresses with explicit records (test/inspection use).
  std::vector<IpAddress> known_addresses() const;

 private:
  FlatHashMap<IpAddress, AddressRecord> records_;
};

}  // namespace qip
