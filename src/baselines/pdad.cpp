#include "baselines/pdad.hpp"

#include <map>

#include "util/assert.hpp"

namespace qip {

PdadProtocol::PdadProtocol(Transport& transport, Rng& rng, PdadParams params)
    : AutoconfProtocol(transport, rng), params_(params) {}

PdadProtocol::~PdadProtocol() { routing_timer_.cancel(); }

PdadProtocol::NodeState& PdadProtocol::node(NodeId id) {
  auto it = nodes_.find(id);
  QIP_ASSERT_MSG(it != nodes_.end(), "unknown node " << id);
  return it->second;
}

std::optional<IpAddress> PdadProtocol::address_of(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.configured) return std::nullopt;
  return it->second.ip;
}

void PdadProtocol::pick_address(NodeId id, bool count_as_attempt) {
  auto& st = node(id);
  st.ip = IpAddress(params_.pool_base.value() +
                    static_cast<std::uint32_t>(rng().below(params_.pool_size)));
  st.seq = 0;
  st.configured = true;
  auto& rec = record_for(id);
  rec.success = true;
  rec.address = st.ip;
  rec.latency_hops = 0;  // purely local pick
  if (count_as_attempt) ++rec.attempts;
  rec.completed_at = sim().now();
}

void PdadProtocol::node_entered(NodeId id) {
  auto [it, fresh] = nodes_.try_emplace(id);
  if (!fresh) it->second = NodeState{};
  auto& rec = record_for(id);
  rec = ConfigRecord{};
  rec.requested_at = sim().now();
  rec.attempts = 0;
  pick_address(id, /*count_as_attempt=*/true);
}

void PdadProtocol::start_routing() {
  if (routing_running_) return;
  routing_running_ = true;
  routing_timer_ = sim().after(params_.routing_interval, [this] {
    if (!routing_running_) return;
    routing_tick();
    routing_running_ = false;
    start_routing();
  });
}

void PdadProtocol::stop_routing() {
  routing_running_ = false;
  routing_timer_.cancel();
}

void PdadProtocol::flag_duplicate(NodeId observer, IpAddress addr) {
  (void)observer;
  if (!flagged_.insert(addr).second) return;
  ++duplicates_flagged_;
  // Every holder of the flagged address picks a fresh one (the paper's
  // conflict-resolution policy is protocol-specific; re-picking is the
  // minimal stateless reaction).
  for (auto& [id, st] : nodes_) {
    if (st.configured && st.ip == addr) {
      pick_address(id, /*count_as_attempt=*/true);
      ++reconfigurations_;
    }
  }
  // The flag is cleared after a grace period so the re-picked survivors can
  // use the address again if it became unique.
  const IpAddress a = addr;
  sim().post(5.0, [this, a] { flagged_.erase(a); });
}

void PdadProtocol::routing_tick() {
  ++round_;
  // The proactive routing substrate floods one update per node per round —
  // this traffic exists anyway; PDAD merely eavesdrops on it.  Metered as
  // hello so the figures exclude it, matching "PDAD generates no additional
  // protocol overhead".
  std::vector<NodeId> configured;
  for (auto& [id, st] : nodes_) {
    if (st.configured && topology().has_node(id)) configured.push_back(id);
  }
  const std::uint64_t round = round_;
  for (NodeId id : configured) {
    auto& st = node(id);
    const std::uint64_t seq = ++st.seq;
    const IpAddress addr = st.ip;
    transport().flood_component_view(
        id, Traffic::kHello,
        [this, addr, seq, round](NodeId n, std::uint32_t hops) {
          if (!alive(n)) return;
          auto& ns = node(n);
          if (!ns.configured || ns.ip == addr) {
            // PDAD-SN variant "own address": hearing an update that claims
            // to originate from *our own* address is itself a hint.
            if (ns.configured && ns.ip == addr) flag_duplicate(n, addr);
            return;
          }
          auto& obs = ns.seen[addr];
          // PDAD-SN: sequence numbers from one originator never decrease.
          if (seq < obs.highest_seq) {
            flag_duplicate(n, addr);
          }
          // PDAD-NH: two updates for one address in the same round with
          // very different hop distances cannot come from one place.
          if (obs.last_round == round &&
              (obs.last_hops > hops + 2 || hops > obs.last_hops + 2)) {
            flag_duplicate(n, addr);
          }
          obs.highest_seq = std::max(obs.highest_seq, seq);
          obs.last_hops = hops;
          obs.last_round = round;
        });
  }
}

std::uint64_t PdadProtocol::actual_duplicates() const {
  std::map<IpAddress, std::uint64_t> census;
  for (const auto& [id, st] : nodes_) {
    if (st.configured) ++census[st.ip];
  }
  std::uint64_t dups = 0;
  for (const auto& [addr, count] : census) {
    if (count > 1) dups += count - 1;
  }
  return dups;
}

void PdadProtocol::node_left(NodeId id) { nodes_.erase(id); }

}  // namespace qip
