#include "baselines/boleng.hpp"

#include <map>

#include "util/assert.hpp"

namespace qip {

BolengProtocol::BolengProtocol(Transport& transport, Rng& rng,
                               BolengParams params)
    : AutoconfProtocol(transport, rng), params_(params) {}

BolengProtocol::~BolengProtocol() { beacon_timer_.cancel(); }

BolengProtocol::NodeState& BolengProtocol::node(NodeId id) {
  auto it = nodes_.find(id);
  QIP_ASSERT_MSG(it != nodes_.end(), "unknown node " << id);
  return it->second;
}

std::optional<IpAddress> BolengProtocol::address_of(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.configured) return std::nullopt;
  return it->second.ip;
}

std::uint32_t BolengProtocol::bits_for(IpAddress base, IpAddress a) {
  const std::uint32_t offset = a.value() - base.value();
  std::uint32_t bits = 1;
  while ((offset >> bits) != 0) ++bits;
  return bits;
}

std::uint32_t BolengProtocol::address_bits(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.bits;
}

IpAddress BolengProtocol::known_max(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? IpAddress{} : it->second.max_seen;
}

void BolengProtocol::node_entered(NodeId id) {
  auto [slot, fresh] = nodes_.try_emplace(id);
  if (!fresh) slot->second = NodeState{};
  auto& rec = record_for(id);
  rec = ConfigRecord{};
  rec.requested_at = sim().now();

  // Learn the current maximum from one overheard packet of any configured
  // neighbor-reachable node (the parameters ride on every data packet, so a
  // single query/overhear suffices); an empty network starts at the base.
  IpAddress current_max = params_.pool_base.prev();  // "none assigned"
  std::uint64_t latency = 0;
  auto reach = topology().hop_distances_from(id);
  NodeId informant = kNoNode;
  std::uint32_t best = ~0u;
  for (const auto& [n, d] : reach) {
    if (n == id || !alive(n)) continue;
    const auto& st = node(n);
    if (!st.configured) continue;
    if (d < best) {
      best = d;
      informant = n;
    }
  }
  if (informant != kNoNode) {
    transport().stats().record(Traffic::kConfiguration, 2ULL * best, 2);
    latency = 2ULL * best;
    current_max = node(informant).max_seen;
    // The parameters ride on every packet, so the whole one-hop
    // neighborhood is heard essentially for free; take the freshest view.
    for (NodeId nb : topology().neighbors_view(id)) {
      if (!alive(nb)) continue;
      const auto& ns = node(nb);
      if (ns.configured && ns.max_seen > current_max)
        current_max = ns.max_seen;
    }
  }

  auto& st = node(id);
  st.ip = informant == kNoNode ? params_.pool_base : current_max.next();
  st.max_seen = st.ip;
  st.bits = bits_for(params_.pool_base, st.ip);
  st.configured = true;

  // Announce the new maximum right away (one transmission): neighbors adopt
  // it, which is what keeps back-to-back arrivals from reusing it.
  transport().local_broadcast_view(
      id, Traffic::kMaintenance,
      [this, max = st.ip](NodeId n, std::uint32_t) {
        if (!alive(n)) return;
        auto& ns = node(n);
        if (!ns.configured) return;
        if (max > ns.max_seen) {
          ns.max_seen = max;
          ns.bits = bits_for(params_.pool_base, max);
        }
      });

  rec.success = true;
  rec.address = st.ip;
  rec.latency_hops = latency;
  rec.attempts = 1;
  rec.completed_at = sim().now();
}

void BolengProtocol::start_beacons() {
  if (beacons_running_) return;
  beacons_running_ = true;
  beacon_timer_ = sim().after(params_.beacon_interval, [this] {
    if (!beacons_running_) return;
    beacon_tick();
    beacons_running_ = false;
    start_beacons();
  });
}

void BolengProtocol::stop_beacons() {
  beacons_running_ = false;
  beacon_timer_.cancel();
}

void BolengProtocol::beacon_tick() {
  // The addressing parameters ride on ordinary packets; we model one local
  // broadcast per node per period carrying (max address, bit count).  A
  // node that learns a higher maximum adopts it; a node that detects its
  // OWN address at-or-below a neighbor's maximum issued elsewhere cannot —
  // detection of duplicates happens only at merge via the max ordering.
  std::vector<NodeId> configured;
  for (const auto& [id, st] : nodes_) {
    if (st.configured && topology().has_node(id)) configured.push_back(id);
  }
  for (NodeId id : configured) {
    const auto& st = node(id);
    transport().local_broadcast_view(
        id, Traffic::kMaintenance,
        [this, max = st.max_seen](NodeId n, std::uint32_t) {
          if (!alive(n)) return;
          auto& ns = node(n);
          if (!ns.configured) return;
          if (max > ns.max_seen) {
            ns.max_seen = max;
            ns.bits = bits_for(params_.pool_base, max);
          }
        });
  }
  // Merge handling: nodes holding an address someone else also holds (only
  // possible after a partition assigned on both sides) re-take a fresh
  // address above the united maximum — modelled with the harness's
  // omniscient duplicate census standing in for [10]'s merge beacons.
  std::map<IpAddress, std::vector<NodeId>> census;
  IpAddress global_max = params_.pool_base;
  for (NodeId id : configured) {
    census[node(id).ip].push_back(id);
    global_max = std::max(global_max, node(id).max_seen);
  }
  // Strictly increasing fresh assignments so one correction round converges
  // (re-picking "own max + 1" hands several losers the same value).
  IpAddress fresh = global_max;
  for (const auto& [addr, holders] : census) {
    if (holders.size() < 2) continue;
    // All but the lowest-id holder re-assign.
    for (std::size_t i = 1; i < holders.size(); ++i) {
      const NodeId n = holders[i];
      // Check they can actually hear each other (merged); separate
      // partitions keep their duplicates until they meet.
      if (!topology().reachable(holders[0], n)) continue;
      fresh = fresh.next();
      auto& st = node(n);
      st.max_seen = fresh;
      st.ip = fresh;
      st.bits = bits_for(params_.pool_base, st.ip);
      transport().stats().record(Traffic::kConfiguration, 2, 2);
      auto& rec = record_for(n);
      rec.address = st.ip;
      ++rec.attempts;
    }
  }
}

std::uint64_t BolengProtocol::actual_duplicates() const {
  std::map<IpAddress, std::uint64_t> census;
  for (const auto& [id, st] : nodes_) {
    if (st.configured) ++census[st.ip];
  }
  std::uint64_t dups = 0;
  for (const auto& [addr, count] : census) {
    if (count > 1) dups += count - 1;
  }
  return dups;
}

void BolengProtocol::node_left(NodeId id) { nodes_.erase(id); }

}  // namespace qip
