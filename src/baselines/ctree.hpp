// Distributed C-tree baseline (Sheu, Tu & Chan, ICPADS'05) — reference [3].
//
// Only *coordinators* maintain disjoint IP address pools and configure
// newcomers; the coordinators form a virtual tree (the C-tree) rooted at the
// first node (the C-root), and each coordinator periodically pushes its
// allocation table up the tree so the root holds the global view.  There is
// no replication: when a coordinator dies, the only other copy of its
// allocation state is whatever the root received at the last periodic
// update, and reclamation is driven by the root flooding the network.
//
// The paper compares against this protocol on maintenance overhead
// (Fig. 10), visible IP space (Fig. 12), information loss under mass abrupt
// departure (Fig. 13) and reclamation overhead (Fig. 14).
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "addr/address_block.hpp"
#include "net/protocol.hpp"

namespace qip {

struct CTreeParams {
  std::uint64_t pool_size = 1024;
  IpAddress pool_base = kPoolBase;
  /// A newcomer joins an existing coordinator when one is within this many
  /// hops; otherwise it becomes a coordinator itself (mirrors [3]'s cluster
  /// structure and QIP's ch_radius for comparability).
  std::uint32_t coord_radius = 2;
  std::uint32_t max_r = 3;
  SimTime retry_wait = 1.0;
  /// Period of coordinator -> C-root allocation updates (same cadence as
  /// QIP's hello/location-update machinery, for a fair Fig. 10 comparison).
  SimTime update_interval = 1.0;
};

class CTreeProtocol : public AutoconfProtocol {
 public:
  CTreeProtocol(Transport& transport, Rng& rng, CTreeParams params = {});
  ~CTreeProtocol() override;

  std::string name() const override { return "C-tree"; }

  /// No replication: a crashed coordinator's allocations survive only in the
  /// root's last periodic snapshot, so reclamation after information loss
  /// re-issues addresses crashed-and-returned or stranded nodes still hold.
  /// That vulnerability is the phenomenon Figs. 13/14 measure — not a bug
  /// the auditor should abort on.
  bool audit_uniqueness() const override { return false; }

  void node_entered(NodeId id) override;
  void node_departing(NodeId id) override;
  void node_left(NodeId id) override;
  void node_vanished(NodeId id) override;

  std::optional<IpAddress> address_of(NodeId id) const override;

  void start_updates();
  void stop_updates();
  /// One periodic update round (exposed for tests / figures).
  void update_tick();

  NodeId root() const { return root_; }
  bool is_coordinator(NodeId id) const;
  std::size_t coordinator_count() const;

  /// Free pool a coordinator can allocate from — no replication, so this is
  /// its own block only (Fig. 12's comparison quantity).
  std::uint64_t visible_space(NodeId coordinator) const;
  double average_visible_space() const;

  /// Addresses whose allocation state is lost if `dead` coordinators vanish
  /// right now: allocations made since their last root update — or their
  /// whole tables when the root itself is among the dead (Fig. 13).
  std::uint64_t info_loss_if_dead(const std::set<NodeId>& dead) const;
  std::uint64_t total_tracked_allocations() const;
  /// Allocations recorded by one coordinator (0 for non-coordinators).
  std::uint64_t allocations_of(NodeId coordinator) const;

  /// Copy of a coordinator's free pool (empty for non-coordinators) —
  /// fragmentation studies inspect its range structure.
  AddressBlock pool_of(NodeId coordinator) const;

 private:
  struct CoordinatorState {
    AddressBlock pool;               ///< free addresses
    AddressBlock universe;           ///< everything this coordinator manages
    std::map<IpAddress, NodeId> allocated;  ///< fine-grained allocations
    NodeId parent = kNoNode;         ///< C-tree edge toward the root
  };
  struct NodeState {
    bool configured = false;
    bool coordinator = false;
    IpAddress ip{};
    NodeId coordinator_id = kNoNode;  ///< who configured me
    CoordinatorState coord;           ///< valid iff coordinator
    std::uint32_t bootstrap_tries = 0;
    EventHandle bootstrap_timer;
  };

  NodeState& node(NodeId id);
  bool alive(NodeId id) const { return nodes_.count(id) != 0; }
  std::optional<NodeId> coordinator_within(NodeId id, std::uint32_t k) const;
  std::optional<NodeId> nearest_coordinator(NodeId id) const;
  void bootstrap(NodeId id);
  void root_reclaim(NodeId dead_coordinator);

  CTreeParams params_;
  std::unordered_map<NodeId, NodeState> nodes_;
  NodeId root_ = kNoNode;
  /// Root-side snapshots: coordinator -> allocations known at last update.
  std::map<NodeId, std::map<IpAddress, NodeId>> root_view_;
  std::set<NodeId> reclaimed_;
  EventHandle update_timer_;
  bool updates_running_ = false;
};

}  // namespace qip
