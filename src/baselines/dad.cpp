#include "baselines/dad.hpp"

#include "sim/sim_context.hpp"
#include "util/assert.hpp"

namespace qip {

DadProtocol::DadProtocol(Transport& transport, Rng& rng, DadParams params)
    : AutoconfProtocol(transport, rng), params_(params) {}

DadProtocol::~DadProtocol() {
  for (auto& [id, st] : nodes_) st.timer.cancel();
}

DadProtocol::NodeState& DadProtocol::node(NodeId id) {
  auto it = nodes_.find(id);
  QIP_ASSERT_MSG(it != nodes_.end(), "unknown node " << id);
  return it->second;
}

std::optional<IpAddress> DadProtocol::address_of(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.configured) return std::nullopt;
  return it->second.ip;
}

void DadProtocol::node_entered(NodeId id) {
  auto [it, fresh] = nodes_.try_emplace(id);
  if (!fresh) it->second = NodeState{};
  auto& rec = record_for(id);
  rec = ConfigRecord{};
  rec.requested_at = sim().now();
  pick_candidate(id);
}

void DadProtocol::pick_candidate(NodeId id) {
  auto& st = node(id);
  if (st.picks >= 8) {
    auto& rec = record_for(id);
    rec.success = false;
    rec.attempts = st.picks;
    rec.completed_at = sim().now();
    return;
  }
  ++st.picks;
  st.candidate = IpAddress(params_.pool_base.value() +
                           static_cast<std::uint32_t>(
                               rng().below(params_.pool_size)));
  st.floods_done = 0;
  st.conflicted = false;
  areq_round(id);
}

void DadProtocol::areq_round(NodeId id) {
  if (!alive(id) || !topology().has_node(id)) return;
  auto& st = node(id);
  if (st.configured) return;

  if (st.conflicted) {
    pick_candidate(id);
    return;
  }
  if (st.floods_done >= params_.areq_retries) {
    // Silence across all retries: the address is considered unique.
    st.configured = true;
    st.ip = st.candidate;
    auto& rec = record_for(id);
    rec.success = true;
    rec.address = st.ip;
    rec.latency_hops = st.hops;
    rec.attempts = st.picks;
    rec.completed_at = sim().now();
    return;
  }

  ++st.floods_done;
  if (ctx().tracing_on()) {
    ctx().recorder().instant(
        sim().now(), "AREQ", "dad", id,
        {{"pick", st.picks}, {"round", st.floods_done}});
  }
  // Flood AREQ; critical path grows by the flood's eccentricity (the
  // requestor must wait long enough for the farthest possible reply).
  const std::uint32_t ecc = topology().eccentricity(id);
  st.hops += ecc > 0 ? 2ULL * ecc : 1ULL;
  transport().flood_component_view(
      id, Traffic::kConfiguration,
      [this, id, candidate = st.candidate](NodeId n, std::uint32_t) {
        if (!alive(n) || !alive(id)) return;
        auto& ns = node(n);
        if (!ns.configured || ns.ip != candidate) return;
        // AREP: the holder defends its address.
        if (ctx().tracing_on()) {
          ctx().recorder().instant(sim().now(), "AREP", "dad", n,
                                   {{"to", id}});
        }
        transport().unicast(n, id, Traffic::kConfiguration,
                            [this, id](NodeId, std::uint32_t) {
                              if (!alive(id)) return;
                              node(id).conflicted = true;
                            });
      });
  st.timer = sim().after(params_.areq_wait, [this, id] { areq_round(id); });
}

void DadProtocol::node_left(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  it->second.timer.cancel();
  nodes_.erase(it);
}

}  // namespace qip
