// Stateless query-based DAD baseline (Perkins et al., IETF draft) — ref [9].
//
// No node keeps allocation state.  A newcomer picks a random address and
// floods an Address Request (AREQ); any node already holding that address
// unicasts an Address Reply (AREP) back.  After AREQ_RETRIES silent floods
// the newcomer adopts the address.  Cheap state, expensive and slow
// configuration — the related-work contrast of §III.
#pragma once

#include <unordered_map>

#include "addr/ip_address.hpp"
#include "net/protocol.hpp"

namespace qip {

struct DadParams {
  std::uint64_t pool_size = 1024;
  IpAddress pool_base = kPoolBase;
  std::uint32_t areq_retries = 3;  ///< AREQ_RETRIES in the draft
  SimTime areq_wait = 0.5;         ///< wait between AREQ floods
};

class DadProtocol : public AutoconfProtocol {
 public:
  DadProtocol(Transport& transport, Rng& rng, DadParams params = {});
  ~DadProtocol() override;

  std::string name() const override { return "DAD"; }

  void node_entered(NodeId id) override;
  void node_departing(NodeId id) override {}  // stateless: nothing to return
  void node_left(NodeId id) override;
  void node_vanished(NodeId id) override { node_left(id); }

  std::optional<IpAddress> address_of(NodeId id) const override;

 private:
  struct NodeState {
    bool configured = false;
    IpAddress ip{};
    IpAddress candidate{};
    std::uint32_t floods_done = 0;
    std::uint32_t picks = 0;
    bool conflicted = false;
    std::uint64_t hops = 0;
    EventHandle timer;
  };

  NodeState& node(NodeId id);
  bool alive(NodeId id) const { return nodes_.count(id) != 0; }
  void pick_candidate(NodeId id);
  void areq_round(NodeId id);

  DadParams params_;
  std::unordered_map<NodeId, NodeState> nodes_;
};

}  // namespace qip
