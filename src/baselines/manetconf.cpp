#include "baselines/manetconf.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace qip {

ManetConf::ManetConf(Transport& transport, Rng& rng, ManetConfParams params)
    : AutoconfProtocol(transport, rng), params_(params) {}

ManetConf::~ManetConf() {
  for (auto& [id, st] : nodes_) st.bootstrap_timer.cancel();
}

ManetConf::NodeState& ManetConf::node(NodeId id) {
  auto it = nodes_.find(id);
  QIP_ASSERT_MSG(it != nodes_.end(), "unknown node " << id);
  return it->second;
}

std::optional<IpAddress> ManetConf::address_of(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.configured) return std::nullopt;
  return it->second.ip;
}

std::size_t ManetConf::table_size(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.used.size();
}

std::optional<NodeId> ManetConf::nearest_configured(NodeId id) const {
  // Fold over the cached BFS instead of materializing a distance map; the
  // minimum over (hops, node) pairs is order-independent.
  std::optional<std::pair<std::uint32_t, NodeId>> best;
  topology().for_each_reachable(id, [&](NodeId n, std::uint32_t d) {
    if (n == id) return;
    auto it = nodes_.find(n);
    if (it == nodes_.end() || !it->second.configured) return;
    const std::pair<std::uint32_t, NodeId> cand{d, n};
    if (!best || cand < *best) best = cand;
  });
  if (!best) return std::nullopt;
  return best->second;
}

void ManetConf::node_entered(NodeId id) {
  auto [it, fresh] = nodes_.try_emplace(id);
  if (!fresh) it->second = NodeState{};
  auto& rec = record_for(id);
  rec = ConfigRecord{};
  rec.requested_at = sim().now();

  auto init = nearest_configured(id);
  if (!init) {
    bootstrap(id);
    return;
  }
  // Ask the nearest configured node to act as initiator.
  transport().unicast(id, *init, Traffic::kConfiguration,
                      [this, id](NodeId initiator, std::uint32_t d) {
                        initiate(initiator, id, d, 1);
                      });
}

void ManetConf::bootstrap(NodeId id) {
  auto& st = node(id);
  if (st.configured) return;
  if (nearest_configured(id)) {
    // Someone appeared: restart entry properly.
    node_entered(id);
    return;
  }
  if (st.bootstrap_tries >= params_.max_r) {
    st.configured = true;
    st.ip = params_.pool_base;
    st.used.insert(st.ip);
    auto& rec = record_for(id);
    rec.success = true;
    rec.address = st.ip;
    rec.latency_hops = params_.max_r;
    rec.attempts = params_.max_r;
    rec.completed_at = sim().now();
    return;
  }
  ++st.bootstrap_tries;
  transport().stats().record(Traffic::kConfiguration, 1);
  st.bootstrap_timer =
      sim().after(params_.retry_wait, [this, id] { bootstrap(id); });
}

void ManetConf::initiate(NodeId initiator, NodeId requestor,
                         std::uint64_t hops, std::uint32_t attempt) {
  if (!alive(initiator) || !alive(requestor)) return;
  auto& ini = node(initiator);
  if (!ini.configured) return;
  if (attempt > 8) {
    auto& rec = record_for(requestor);
    rec.success = false;
    rec.attempts = attempt;
    rec.completed_at = sim().now();
    return;
  }

  // Lowest address the initiator believes free.
  IpAddress candidate = params_.pool_base;
  while (ini.used.count(candidate)) candidate = candidate.next();
  QIP_ASSERT_MSG(candidate.value() <
                     params_.pool_base.value() + params_.pool_size,
                 "MANETconf pool exhausted");

  const std::uint64_t pid = next_pending_++;
  Pending p;
  p.requestor = requestor;
  p.initiator = initiator;
  p.candidate = candidate;
  p.base_hops = hops;
  p.attempt = attempt;

  // Flood the query through the whole network; every configured node must
  // reply affirmatively before the address may be assigned.
  auto reached = transport().flood_component(
      initiator, Traffic::kConfiguration,
      [this, pid, candidate, initiator](NodeId n, std::uint32_t d) {
        if (!alive(n)) return;
        auto& st = node(n);
        if (!st.configured) return;
        const bool veto = st.ip == candidate;
        transport().unicast(
            n, initiator, Traffic::kConfiguration,
            [this, pid, veto, d](NodeId, std::uint32_t back) {
              auto it = pending_.find(pid);
              if (it == pending_.end()) return;
              Pending& p = it->second;
              QIP_ASSERT(p.awaiting > 0);
              --p.awaiting;
              if (veto) p.vetoed = true;
              p.max_reply_hops =
                  std::max<std::uint64_t>(p.max_reply_hops,
                                          std::uint64_t{d} + back);
              if (p.awaiting == 0) conclude(pid);
            });
      });
  // Count how many configured nodes will answer.
  std::uint32_t expected = 0;
  for (NodeId n : reached) {
    auto it = nodes_.find(n);
    if (it != nodes_.end() && it->second.configured) ++expected;
  }
  p.awaiting = expected;
  // Flood-out latency is bounded by the farthest replier; replies return by
  // unicast.  With no other configured node, decide immediately.
  pending_.emplace(pid, p);
  if (expected == 0) conclude(pid);
}

void ManetConf::conclude(std::uint64_t pending_id) {
  auto it = pending_.find(pending_id);
  QIP_ASSERT(it != pending_.end());
  const Pending p = it->second;
  pending_.erase(it);

  if (!alive(p.initiator)) return;
  auto& ini = node(p.initiator);

  if (p.vetoed) {
    // Address in use somewhere: note it and retry with the next candidate.
    ini.used.insert(p.candidate);
    initiate(p.initiator, p.requestor, p.base_hops + p.max_reply_hops,
             p.attempt + 1);
    return;
  }

  // Commit: the initiator floods the allocation so every table updates.
  ini.used.insert(p.candidate);
  transport().flood_component_view(
      p.initiator, Traffic::kConfiguration,
      [this, candidate = p.candidate](NodeId n, std::uint32_t) {
        if (!alive(n)) return;
        auto& st = node(n);
        if (st.configured) st.used.insert(candidate);
      });

  // Hand the address to the requestor.
  const std::uint64_t latency_base = p.base_hops + p.max_reply_hops;
  transport().unicast(
      p.initiator, p.requestor, Traffic::kConfiguration,
      [this, p, latency_base](NodeId requestor, std::uint32_t d) {
        if (!alive(requestor)) return;
        auto& st = node(requestor);
        if (st.configured) return;
        st.configured = true;
        st.ip = p.candidate;
        if (alive(p.initiator)) {
          st.used = node(p.initiator).used;  // copy of the full table
        }
        st.used.insert(p.candidate);
        auto& rec = record_for(requestor);
        rec.success = true;
        rec.address = p.candidate;
        rec.latency_hops = latency_base + d;
        rec.attempts = p.attempt;
        rec.completed_at = sim().now();
      });
}

void ManetConf::node_departing(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.configured) return;
  const IpAddress addr = it->second.ip;
  // Graceful leave: flood the release so every table forgets the address.
  transport().flood_component_view(
      id, Traffic::kDeparture, [this, addr](NodeId n, std::uint32_t) {
        if (!alive(n)) return;
        node(n).used.erase(addr);
      });
}

void ManetConf::node_left(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  it->second.bootstrap_timer.cancel();
  nodes_.erase(it);
}

void ManetConf::node_vanished(NodeId id) {
  // Abrupt: no release flood; the address leaks in every table.
  node_left(id);
}

}  // namespace qip
