// Variable-length address assignment baseline (Boleng, ICWN'02) — ref [10].
//
// Every entering node takes the next address above the current network-wide
// maximum, so assignment needs no negotiation at all — only knowledge of two
// *addressing parameters*: the highest address in use and the number of bits
// currently needed to encode it.  Both parameters piggyback on every data
// packet and are updated proactively; we model that dissemination as a
// periodic parameter beacon (metered as maintenance, since unlike PDAD this
// scheme genuinely extends each packet).
//
// Properties reproduced from [10]:
//   * constant-time, collision-free assignment while the network is
//     connected (the maximum is a consensus-free monotone counter);
//   * address length grows over time and never shrinks within one epoch —
//     addresses are not reused, so churn steadily inflates the bit-length
//     (the storage cost §III points out);
//   * partitions can issue the same "next" address on both sides; on merge
//     the later-assigned side re-takes addresses above the united maximum.
#pragma once

#include <unordered_map>

#include "addr/ip_address.hpp"
#include "net/protocol.hpp"

namespace qip {

struct BolengParams {
  IpAddress pool_base = kPoolBase;
  /// Addressing-parameter beacon period.
  SimTime beacon_interval = 1.0;
};

class BolengProtocol : public AutoconfProtocol {
 public:
  BolengProtocol(Transport& transport, Rng& rng, BolengParams params = {});
  ~BolengProtocol() override;

  std::string name() const override { return "Boleng"; }
  /// Disjoint camps assign independently; the beacon census resolves the
  /// duplicates only after contact, so instantaneous uniqueness is not part
  /// of the scheme's contract.
  bool audit_uniqueness() const override { return false; }

  void node_entered(NodeId id) override;
  void node_departing(NodeId id) override {}  // addresses are never returned
  void node_left(NodeId id) override;
  void node_vanished(NodeId id) override { node_left(id); }

  std::optional<IpAddress> address_of(NodeId id) const override;

  void start_beacons();
  void stop_beacons();
  /// One parameter-dissemination round (exposed for tests).
  void beacon_tick();

  /// Bits needed for the highest address a node currently knows of.
  std::uint32_t address_bits(NodeId id) const;
  /// Highest address this node believes exists.
  IpAddress known_max(NodeId id) const;
  /// Duplicate assignments currently live (omniscient view; arise only from
  /// assignment during partitions).
  std::uint64_t actual_duplicates() const;

 private:
  struct NodeState {
    bool configured = false;
    IpAddress ip{};
    /// The two addressing parameters of [10].
    IpAddress max_seen{};
    std::uint32_t bits = 1;
  };

  NodeState& node(NodeId id);
  bool alive(NodeId id) const { return nodes_.count(id) != 0; }
  static std::uint32_t bits_for(IpAddress base, IpAddress a);

  BolengParams params_;
  std::unordered_map<NodeId, NodeState> nodes_;
  EventHandle beacon_timer_;
  bool beacons_running_ = false;
};

}  // namespace qip
