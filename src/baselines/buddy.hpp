// Buddy-system baseline (Mohsin & Prakash, MILCOM'02) — reference [2].
//
// Every node owns a disjoint address block and can configure a newcomer
// single-handedly by splitting its block in half (binary buddy system), so
// configuration itself is cheap and local.  The cost moves elsewhere: every
// node maintains the IP allocation table of the WHOLE network, kept loosely
// consistent by periodic global synchronization, and each node tracks its
// "buddy" so leaked blocks can be recovered.
//
// Figures 8 and 9 compare this protocol's configuration/departure overhead
// against QIP: the buddy protocol's totals are dominated by the periodic
// table synchronization (each sync round costs one network-wide flood per
// node), which QIP avoids.
#pragma once

#include <map>
#include <unordered_map>

#include "addr/address_block.hpp"
#include "net/protocol.hpp"

namespace qip {

struct BuddyParams {
  std::uint64_t pool_size = 1024;
  IpAddress pool_base = kPoolBase;
  std::uint32_t max_r = 3;
  SimTime retry_wait = 1.0;
  /// Period of the global allocation-table synchronization (§[2]).
  SimTime sync_interval = 5.0;
};

class BuddyProtocol : public AutoconfProtocol {
 public:
  BuddyProtocol(Transport& transport, Rng& rng, BuddyParams params = {});
  ~BuddyProtocol() override;

  std::string name() const override { return "Buddy"; }
  /// A joiner that exhausts its bootstrap retries without reaching a
  /// splittable allocator seizes the full pool as a fresh root — the
  /// paper's global sync would repair the resulting duplicates, but the
  /// model does not, so instantaneous uniqueness is not promised.
  bool audit_uniqueness() const override { return false; }

  void node_entered(NodeId id) override;
  void node_departing(NodeId id) override;
  void node_left(NodeId id) override;
  void node_vanished(NodeId id) override;

  std::optional<IpAddress> address_of(NodeId id) const override;

  void start_sync();
  void stop_sync();
  /// One synchronization round (exposed for tests).
  void sync_tick();

  /// The block a node currently owns (tests).
  const AddressBlock& block_of(NodeId id) const;

 private:
  struct NodeState {
    bool configured = false;
    IpAddress ip{};
    /// This node's disjoint free block.
    AddressBlock block;
    /// The buddy that received the other half of our last split (and the
    /// node we received our block from): checked for liveness each sync.
    NodeId buddy = kNoNode;
    /// Global allocation table: node id -> address, refreshed by sync.
    std::map<NodeId, IpAddress> global_table;
    std::uint32_t bootstrap_tries = 0;
    EventHandle bootstrap_timer;
  };

  NodeState& node(NodeId id);
  bool alive(NodeId id) const { return nodes_.count(id) != 0; }
  std::optional<NodeId> nearest_configured(NodeId id) const;
  void bootstrap(NodeId id);

  BuddyParams params_;
  std::unordered_map<NodeId, NodeState> nodes_;
  EventHandle sync_timer_;
  bool sync_running_ = false;
};

}  // namespace qip
