#include "baselines/ctree.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace qip {

CTreeProtocol::CTreeProtocol(Transport& transport, Rng& rng,
                             CTreeParams params)
    : AutoconfProtocol(transport, rng), params_(params) {}

CTreeProtocol::~CTreeProtocol() {
  update_timer_.cancel();
  for (auto& [id, st] : nodes_) st.bootstrap_timer.cancel();
}

CTreeProtocol::NodeState& CTreeProtocol::node(NodeId id) {
  auto it = nodes_.find(id);
  QIP_ASSERT_MSG(it != nodes_.end(), "unknown node " << id);
  return it->second;
}

std::optional<IpAddress> CTreeProtocol::address_of(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.configured) return std::nullopt;
  return it->second.ip;
}

bool CTreeProtocol::is_coordinator(NodeId id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.coordinator;
}

std::size_t CTreeProtocol::coordinator_count() const {
  std::size_t n = 0;
  for (const auto& [id, st] : nodes_)
    if (st.coordinator) ++n;
  return n;
}

std::uint64_t CTreeProtocol::visible_space(NodeId coordinator) const {
  auto it = nodes_.find(coordinator);
  if (it == nodes_.end() || !it->second.coordinator) return 0;
  return it->second.coord.pool.size();
}

double CTreeProtocol::average_visible_space() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, st] : nodes_) {
    if (!st.coordinator) continue;
    sum += static_cast<double>(st.coord.pool.size());
    ++n;
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::optional<NodeId> CTreeProtocol::coordinator_within(
    NodeId id, std::uint32_t k) const {
  std::optional<std::pair<std::uint32_t, NodeId>> best;
  for (const auto& [n, d] : topology().k_hop_view(id, k)) {
    auto it = nodes_.find(n);
    if (it == nodes_.end() || !it->second.coordinator) continue;
    if (it->second.coord.pool.empty()) continue;
    const std::pair<std::uint32_t, NodeId> cand{d, n};
    if (!best || cand < *best) best = cand;
  }
  if (!best) return std::nullopt;
  return best->second;
}

std::optional<NodeId> CTreeProtocol::nearest_coordinator(NodeId id) const {
  // Fold over the cached BFS instead of materializing a distance map; the
  // minimum over (hops, node) pairs is order-independent.
  std::optional<std::pair<std::uint32_t, NodeId>> best;
  topology().for_each_reachable(id, [&](NodeId n, std::uint32_t d) {
    if (n == id) return;
    auto it = nodes_.find(n);
    if (it == nodes_.end() || !it->second.coordinator) return;
    const std::pair<std::uint32_t, NodeId> cand{d, n};
    if (!best || cand < *best) best = cand;
  });
  if (!best) return std::nullopt;
  return best->second;
}

void CTreeProtocol::node_entered(NodeId id) {
  auto [it, fresh] = nodes_.try_emplace(id);
  if (!fresh) it->second = NodeState{};
  auto& rec = record_for(id);
  rec = ConfigRecord{};
  rec.requested_at = sim().now();

  // Near coordinator: plain address assignment (request/assign, local).
  if (auto c = coordinator_within(id, params_.coord_radius)) {
    transport().unicast(
        id, *c, Traffic::kConfiguration,
        [this, id](NodeId coord, std::uint32_t d) {
          if (!alive(coord) || !alive(id)) return;
          auto& cs = node(coord);
          if (!cs.coordinator || cs.coord.pool.empty()) {
            sim().post(params_.retry_wait, [this, id] {
              if (alive(id) && !node(id).configured) node_entered(id);
            });
            return;
          }
          const IpAddress addr = cs.coord.pool.pop_lowest();
          cs.coord.allocated[addr] = id;
          transport().unicast(
              coord, id, Traffic::kConfiguration,
              [this, id, coord, addr, d](NodeId, std::uint32_t back) {
                if (!alive(id)) return;
                auto& st = node(id);
                if (st.configured) return;
                st.configured = true;
                st.ip = addr;
                st.coordinator_id = coord;
                auto& rec = record_for(id);
                rec.success = true;
                rec.address = addr;
                rec.latency_hops = std::uint64_t{d} + back;
                rec.attempts = 1;
                rec.completed_at = sim().now();
              });
        });
    return;
  }

  // No coordinator nearby: become one with half of the nearest
  // coordinator's pool (C-tree grows an edge).
  if (auto c = nearest_coordinator(id)) {
    transport().unicast(
        id, *c, Traffic::kConfiguration,
        [this, id](NodeId parent, std::uint32_t d) {
          if (!alive(parent) || !alive(id)) return;
          auto& ps = node(parent);
          if (!ps.coordinator || ps.coord.pool.size() < 2) {
            sim().post(params_.retry_wait, [this, id] {
              if (alive(id) && !node(id).configured) node_entered(id);
            });
            return;
          }
          AddressBlock half = ps.coord.pool.split_half();
          ps.coord.universe.erase_all(half);
          transport().unicast(
              parent, id, Traffic::kConfiguration,
              [this, id, parent, half, d](NodeId, std::uint32_t back) {
                if (!alive(id)) return;
                auto& st = node(id);
                if (st.configured) return;
                st.configured = true;
                st.coordinator = true;
                st.coord.universe = half;
                st.coord.pool = half;
                st.ip = st.coord.pool.pop_lowest();
                st.coord.allocated[st.ip] = id;
                st.coord.parent = parent;
                st.coordinator_id = parent;
                auto& rec = record_for(id);
                rec.success = true;
                rec.address = st.ip;
                rec.latency_hops = std::uint64_t{d} + back;
                rec.attempts = 1;
                rec.completed_at = sim().now();
              });
        });
    return;
  }

  bootstrap(id);
}

void CTreeProtocol::bootstrap(NodeId id) {
  auto& st = node(id);
  if (st.configured) return;
  if (nearest_coordinator(id)) {
    node_entered(id);
    return;
  }
  if (st.bootstrap_tries >= params_.max_r) {
    st.configured = true;
    st.coordinator = true;
    st.coord.universe =
        AddressBlock::contiguous(params_.pool_base, params_.pool_size);
    st.coord.pool = st.coord.universe;
    st.ip = st.coord.pool.pop_lowest();
    st.coord.allocated[st.ip] = id;
    st.coord.parent = kNoNode;
    if (root_ == kNoNode) root_ = id;  // the first node is the C-root
    auto& rec = record_for(id);
    rec.success = true;
    rec.address = st.ip;
    rec.latency_hops = params_.max_r;
    rec.attempts = params_.max_r;
    rec.completed_at = sim().now();
    return;
  }
  ++st.bootstrap_tries;
  transport().stats().record(Traffic::kConfiguration, 1);
  st.bootstrap_timer =
      sim().after(params_.retry_wait, [this, id] { bootstrap(id); });
}

// ---------------------------------------------------------------------------
// Periodic updates to the C-root
// ---------------------------------------------------------------------------

void CTreeProtocol::start_updates() {
  if (updates_running_) return;
  updates_running_ = true;
  update_timer_ = sim().after(params_.update_interval, [this] {
    if (!updates_running_) return;
    update_tick();
    updates_running_ = false;
    start_updates();
  });
}

void CTreeProtocol::stop_updates() {
  updates_running_ = false;
  update_timer_.cancel();
}

void CTreeProtocol::update_tick() {
  if (root_ == kNoNode || !alive(root_) || !topology().has_node(root_)) {
    // C-root gone: [3] has no recovery; the protocol limps on without
    // global state (exactly the weakness Fig. 13 probes).
    return;
  }
  // Every coordinator unicasts its allocation table to the root.
  std::set<NodeId> missing;
  for (const auto& [coordinator, view] : root_view_) missing.insert(coordinator);
  for (auto& [id, st] : nodes_) {
    if (!st.coordinator || !topology().has_node(id)) continue;
    missing.erase(id);
    if (id == root_) {
      root_view_[id] = st.coord.allocated;
      continue;
    }
    transport().unicast(
        id, root_, Traffic::kMaintenance,
        [this, id, table = st.coord.allocated](NodeId, std::uint32_t) {
          root_view_[id] = table;
        });
  }
  // Coordinators that failed to report are presumed dead: the root starts
  // address reclamation for them (§[3], root-driven).
  for (NodeId dead : missing) {
    if (alive(dead) && topology().has_node(dead) &&
        topology().reachable(root_, dead)) {
      continue;  // merely quiet this round
    }
    if (reclaimed_.insert(dead).second) root_reclaim(dead);
  }
}

void CTreeProtocol::root_reclaim(NodeId dead_coordinator) {
  // The root floods a collection request through the whole network; every
  // node configured by the dead coordinator replies to the root directly.
  auto view = root_view_.find(dead_coordinator);
  if (view == root_view_.end()) return;
  transport().flood_component_view(
      root_, Traffic::kReclamation,
      [this, dead_coordinator](NodeId n, std::uint32_t) {
        if (!alive(n)) return;
        auto& st = node(n);
        if (!st.configured || st.coordinator_id != dead_coordinator) return;
        transport().unicast(n, root_, Traffic::kReclamation,
                            [](NodeId, std::uint32_t) {});
      });
  root_view_.erase(view);
}

// ---------------------------------------------------------------------------
// Departure
// ---------------------------------------------------------------------------

void CTreeProtocol::node_departing(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.configured) return;
  auto& st = it->second;

  if (!st.coordinator) {
    // [3] returns a leaver's address to the *nearest* coordinator, not the
    // issuing one — the very behavior the paper blames for long-run address
    // fragmentation (§VI-C).  The receiver absorbs a foreign address into
    // its pool; the issuer merely forgets the allocation at the next root
    // update cycle.
    auto nearest = nearest_coordinator(id);
    if (!nearest || !alive(*nearest)) return;
    const NodeId c = *nearest;
    const NodeId issuer = st.coordinator_id;
    const IpAddress addr = st.ip;
    transport().unicast(
        id, c, Traffic::kDeparture,
        [this, c, issuer, addr](NodeId, std::uint32_t) {
          if (!alive(c)) return;
          auto& cs = node(c);
          if (!cs.coordinator) return;
          if (!cs.coord.universe.contains(addr)) cs.coord.universe.insert(addr);
          if (!cs.coord.pool.contains(addr)) cs.coord.pool.insert(addr);
          cs.coord.allocated.erase(addr);
          if (issuer != c && alive(issuer) && is_coordinator(issuer)) {
            auto& is = node(issuer);
            is.coord.allocated.erase(addr);
            if (is.coord.universe.contains(addr))
              is.coord.universe.erase(addr);
          }
        });
    return;
  }

  // Coordinator: return the pool to the parent (or any coordinator).
  NodeId target = st.coord.parent;
  if (target == kNoNode || !alive(target) || !is_coordinator(target) ||
      !topology().has_node(target) || !topology().reachable(id, target)) {
    auto nearest = nearest_coordinator(id);
    if (!nearest) return;
    target = *nearest;
  }
  AddressBlock returned = st.coord.pool;
  if (st.coord.universe.contains(st.ip) && !returned.contains(st.ip))
    returned.insert(st.ip);
  transport().unicast(
      id, target, Traffic::kDeparture,
      [this, target, returned, leaver = id](NodeId, std::uint32_t) {
        if (!alive(target)) return;
        auto& ts = node(target);
        if (!ts.coordinator) return;
        const AddressBlock fresh = returned.minus(ts.coord.pool);
        ts.coord.pool.merge(fresh);
        ts.coord.universe.merge(fresh.minus(ts.coord.universe));
        root_view_.erase(leaver);
      });
}

void CTreeProtocol::node_left(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  it->second.bootstrap_timer.cancel();
  nodes_.erase(it);
}

void CTreeProtocol::node_vanished(NodeId id) { node_left(id); }

// ---------------------------------------------------------------------------
// Information-loss accounting (Fig. 13)
// ---------------------------------------------------------------------------

AddressBlock CTreeProtocol::pool_of(NodeId coordinator) const {
  auto it = nodes_.find(coordinator);
  if (it == nodes_.end() || !it->second.coordinator) return {};
  return it->second.coord.pool;
}

std::uint64_t CTreeProtocol::allocations_of(NodeId coordinator) const {
  auto it = nodes_.find(coordinator);
  if (it == nodes_.end() || !it->second.coordinator) return 0;
  return it->second.coord.allocated.size();
}

std::uint64_t CTreeProtocol::total_tracked_allocations() const {
  std::uint64_t n = 0;
  for (const auto& [id, st] : nodes_) {
    if (st.coordinator) n += st.coord.allocated.size();
  }
  return n;
}

std::uint64_t CTreeProtocol::info_loss_if_dead(
    const std::set<NodeId>& dead) const {
  const bool root_dead = dead.count(root_) != 0;
  std::uint64_t lost = 0;
  for (const auto& [id, st] : nodes_) {
    if (!st.coordinator || !dead.count(id)) continue;
    if (root_dead) {
      // No surviving copy anywhere.
      lost += st.coord.allocated.size();
      continue;
    }
    // The root's last snapshot survives; allocations made since then (or
    // never reported) are lost.
    auto view = root_view_.find(id);
    if (view == root_view_.end()) {
      lost += st.coord.allocated.size();
      continue;
    }
    for (const auto& [addr, holder] : st.coord.allocated) {
      if (!view->second.count(addr)) ++lost;
    }
  }
  return lost;
}

}  // namespace qip
