#include "baselines/weak_dad.hpp"

#include <map>

#include "util/assert.hpp"

namespace qip {

WeakDadProtocol::WeakDadProtocol(Transport& transport, Rng& rng,
                                 WeakDadParams params)
    : AutoconfProtocol(transport, rng), params_(params) {
  QIP_ASSERT(params_.key_bits >= 1 && params_.key_bits <= 63);
}

WeakDadProtocol::~WeakDadProtocol() { update_timer_.cancel(); }

WeakDadProtocol::NodeState& WeakDadProtocol::node(NodeId id) {
  auto it = nodes_.find(id);
  QIP_ASSERT_MSG(it != nodes_.end(), "unknown node " << id);
  return it->second;
}

std::optional<IpAddress> WeakDadProtocol::address_of(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.configured) return std::nullopt;
  return it->second.ip;
}

std::uint64_t WeakDadProtocol::key_of(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.key;
}

void WeakDadProtocol::node_entered(NodeId id) {
  auto [it, fresh] = nodes_.try_emplace(id);
  if (!fresh) it->second = NodeState{};
  auto& st = it->second;
  auto& rec = record_for(id);
  rec = ConfigRecord{};
  rec.requested_at = sim().now();

  // Configuration is entirely local: random address + hardware-derived key.
  st.ip = IpAddress(params_.pool_base.value() +
                    static_cast<std::uint32_t>(rng().below(params_.pool_size)));
  st.key = rng().below(1ULL << params_.key_bits);
  st.configured = true;
  st.routing_view[st.ip].insert(st.key);

  rec.success = true;
  rec.address = st.ip;
  rec.latency_hops = 0;  // no message exchange at all
  rec.attempts = 1;
  rec.completed_at = sim().now();
}

void WeakDadProtocol::start_updates() {
  if (updates_running_) return;
  updates_running_ = true;
  update_timer_ = sim().after(params_.update_interval, [this] {
    if (!updates_running_) return;
    update_tick();
    updates_running_ = false;
    start_updates();
  });
}

void WeakDadProtocol::stop_updates() {
  updates_running_ = false;
  update_timer_.cancel();
}

void WeakDadProtocol::update_tick() {
  // Each node floods its link-state (address, key) binding; receivers merge
  // it into their routing view and flag addresses with two distinct keys.
  std::vector<NodeId> configured;
  for (const auto& [id, st] : nodes_) {
    if (st.configured && topology().has_node(id)) configured.push_back(id);
  }
  for (NodeId id : configured) {
    const auto& st = node(id);
    transport().flood_component_view(
        id, Traffic::kMaintenance,
        [this, addr = st.ip, key = st.key](NodeId n, std::uint32_t) {
          if (!alive(n)) return;
          auto& ns = node(n);
          if (!ns.configured) return;
          auto& keys = ns.routing_view[addr];
          keys.insert(key);
          if (keys.size() > 1) {
            // Duplicate detected at this router; count each offending
            // (address, key) binding once globally.
            for (std::uint64_t k : keys) {
              if (flagged_.insert({addr, k}).second) ++conflicts_detected_;
            }
          }
        });
  }
}

std::uint64_t WeakDadProtocol::silent_collisions() const {
  // Omniscient check: nodes sharing both address and key can never be told
  // apart by any router — [11]'s acknowledged limitation.
  std::map<std::pair<IpAddress, std::uint64_t>, std::uint64_t> census;
  for (const auto& [id, st] : nodes_) {
    if (st.configured) ++census[{st.ip, st.key}];
  }
  std::uint64_t collisions = 0;
  for (const auto& [binding, count] : census) {
    if (count > 1) collisions += count - 1;
  }
  return collisions;
}

void WeakDadProtocol::node_left(NodeId id) { nodes_.erase(id); }

}  // namespace qip
