// Passive DAD baseline (Weniger, WCNC'03) — reference [14].
//
// PDAD adds *no* protocol traffic at all: every node continuously analyzes
// the routing packets it overhears and derives hints that "rarely occur for
// unique addresses but often occur with duplicates".  We model the classic
// PDAD-SN (sequence number) and PDAD-LP (locality/physics) hints over a
// simulated proactive routing substrate:
//
//   * each configured node periodically floods a routing update carrying
//     (address, monotonically increasing sequence number, originator hop
//     coordinates);
//   * PDAD-SN: seeing a sequence number for an address that is lower than
//     one already seen — impossible for a single originator — flags a
//     duplicate;
//   * PDAD-NH (neighborhood): two updates for the same address observed in
//     the same beacon round with incompatible hop distances flags a
//     duplicate.
//
// Configuration itself is a local random pick (like Weak DAD, but without
// keys); the detector is the contribution.  The routing substrate's floods
// are metered as hello traffic — they exist with or without PDAD, which is
// the protocol's whole selling point.
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "addr/ip_address.hpp"
#include "net/protocol.hpp"

namespace qip {

struct PdadParams {
  std::uint64_t pool_size = 1024;
  IpAddress pool_base = kPoolBase;
  /// Routing-update period of the underlying proactive protocol.
  SimTime routing_interval = 1.0;
};

class PdadProtocol : public AutoconfProtocol {
 public:
  PdadProtocol(Transport& transport, Rng& rng, PdadParams params = {});
  ~PdadProtocol() override;

  std::string name() const override { return "PDAD"; }
  /// Passive detection: duplicates exist until routing hints reveal them.
  bool audit_uniqueness() const override { return false; }

  void node_entered(NodeId id) override;
  void node_departing(NodeId id) override {}
  void node_left(NodeId id) override;
  void node_vanished(NodeId id) override { node_left(id); }

  std::optional<IpAddress> address_of(NodeId id) const override;

  void start_routing();
  void stop_routing();
  /// One routing round (exposed for tests).
  void routing_tick();

  /// Addresses flagged as duplicated by any node's passive analysis.
  std::uint64_t duplicates_flagged() const { return duplicates_flagged_; }
  /// Nodes that restarted configuration after their address was flagged.
  std::uint64_t reconfigurations() const { return reconfigurations_; }
  /// True duplicates currently present (omniscient harness view).
  std::uint64_t actual_duplicates() const;

 private:
  struct Observation {
    std::uint64_t highest_seq = 0;
    std::uint32_t last_hops = 0;
    std::uint64_t last_round = 0;
  };
  struct NodeState {
    bool configured = false;
    IpAddress ip{};
    std::uint64_t seq = 0;  ///< own routing sequence number
    /// Passive analysis state per overheard address.
    std::map<IpAddress, Observation> seen;
  };

  NodeState& node(NodeId id);
  bool alive(NodeId id) const { return nodes_.count(id) != 0; }
  void pick_address(NodeId id, bool count_as_attempt);
  void flag_duplicate(NodeId observer, IpAddress addr);

  PdadParams params_;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::uint64_t round_ = 0;
  std::uint64_t duplicates_flagged_ = 0;
  std::uint64_t reconfigurations_ = 0;
  std::set<IpAddress> flagged_;
  EventHandle routing_timer_;
  bool routing_running_ = false;
};

}  // namespace qip
