// Weak DAD baseline (Vaidya, 2002) — reference [11].
//
// Weak duplicate address detection gives up on global uniqueness and settles
// for a weaker—but sufficient—property: packets are always routed to the
// intended node even if two nodes ever pick the same IP address.  Every node
// augments its address with a (statistically unique) key derived from its
// hardware; link-state routing entries carry (address, key) pairs, so a
// router that sees the same address with two different keys detects the
// duplicate and keeps the routes distinct.
//
// Configuration is therefore trivial and local: pick a random address, no
// flood, no handshake.  The cost moves into the routing layer: every routing
// update carries keys, and a conflict is only *detected* when the two
// holders' link-state updates meet at some router.  We model the link-state
// dissemination as a periodic per-node flood (metered as maintenance) and
// report detected conflicts; per [11], an address conflict cannot be
// resolved (only tolerated) — and is invisible if two nodes collide in both
// address and key.
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "addr/ip_address.hpp"
#include "net/protocol.hpp"

namespace qip {

struct WeakDadParams {
  std::uint64_t pool_size = 1024;
  IpAddress pool_base = kPoolBase;
  /// Bits of the per-node key; small values make key collisions (the
  /// scheme's blind spot) observable in simulation.
  std::uint32_t key_bits = 16;
  /// Link-state update period.
  SimTime update_interval = 2.0;
};

class WeakDadProtocol : public AutoconfProtocol {
 public:
  WeakDadProtocol(Transport& transport, Rng& rng, WeakDadParams params = {});
  ~WeakDadProtocol() override;

  std::string name() const override { return "WeakDAD"; }
  /// Duplicates are tolerated by design: routing keys keep packets flowing
  /// past address collisions, so the auditor must not treat them as fatal.
  bool audit_uniqueness() const override { return false; }

  void node_entered(NodeId id) override;
  void node_departing(NodeId id) override {}  // stateless: nothing to return
  void node_left(NodeId id) override;
  void node_vanished(NodeId id) override { node_left(id); }

  std::optional<IpAddress> address_of(NodeId id) const override;

  void start_updates();
  void stop_updates();
  /// One link-state dissemination round (exposed for tests).
  void update_tick();

  std::uint64_t key_of(NodeId id) const;

  /// Duplicate (address, different-key) pairs observed by any router so far.
  std::uint64_t conflicts_detected() const { return conflicts_detected_; }
  /// Address+key collisions — the undetectable case of [11].  Counted by
  /// the omniscient harness, not by any node.
  std::uint64_t silent_collisions() const;

 private:
  struct NodeState {
    bool configured = false;
    IpAddress ip{};
    std::uint64_t key = 0;
    /// Link-state view: address -> set of keys seen for it.
    std::map<IpAddress, std::set<std::uint64_t>> routing_view;
  };

  NodeState& node(NodeId id);
  bool alive(NodeId id) const { return nodes_.count(id) != 0; }

  WeakDadParams params_;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::uint64_t conflicts_detected_ = 0;
  /// (address, key) pairs already counted as detected conflicts.
  std::set<std::pair<IpAddress, std::uint64_t>> flagged_;
  EventHandle update_timer_;
  bool updates_running_ = false;
};

}  // namespace qip
