// MANETconf baseline (Nesargi & Prakash, INFOCOM'02) — reference [1].
//
// Fully replicated state: every configured node keeps the allocation table
// of the whole network.  Configuring a newcomer requires an *initiator* to
// flood an address query through the entire network and collect an
// affirmative reply from every node before assigning, then flood the commit
// so all tables stay identical.  This gives high availability at the price
// of per-configuration global floods — the latency and overhead the paper's
// Figures 5 and 6 compare against.
//
// Faithfulness notes:
//   * the initiator is the nearest configured node to the requestor;
//   * candidate address = lowest address the initiator believes free;
//   * assignment completes only after ALL reachable configured nodes reply,
//     so the critical path is request + flood out + slowest reply + assign;
//   * graceful departure floods an address-release so every table shrinks;
//   * abrupt departure leaves stale entries (MANETconf cleans them lazily,
//     which we model as a permanent leak within one run).
#pragma once

#include <set>
#include <unordered_map>

#include "addr/ip_address.hpp"
#include "net/protocol.hpp"

namespace qip {

struct ManetConfParams {
  std::uint64_t pool_size = 1024;
  IpAddress pool_base = kPoolBase;
  /// Initiator-search broadcasts before self-configuring as the first node.
  std::uint32_t max_r = 3;
  SimTime retry_wait = 1.0;
};

class ManetConf : public AutoconfProtocol {
 public:
  ManetConf(Transport& transport, Rng& rng, ManetConfParams params = {});
  ~ManetConf() override;

  std::string name() const override { return "MANETconf"; }
  /// Two concurrent initiators can pick the same lowest-free candidate and
  /// both assign it (the paper's initiator mutual exclusion is not part of
  /// this model), so uniqueness cannot be promised at every instant.
  bool audit_uniqueness() const override { return false; }

  void node_entered(NodeId id) override;
  void node_departing(NodeId id) override;
  void node_left(NodeId id) override;
  void node_vanished(NodeId id) override;

  std::optional<IpAddress> address_of(NodeId id) const override;

  /// Size of a node's allocation table (full replication: ~network size).
  std::size_t table_size(NodeId id) const;

 private:
  struct NodeState {
    bool configured = false;
    IpAddress ip{};
    /// Full-replication allocation table: every address believed in use.
    std::set<IpAddress> used;
    std::uint32_t bootstrap_tries = 0;
    EventHandle bootstrap_timer;
  };

  /// One in-flight configuration coordinated by its initiator.
  struct Pending {
    NodeId requestor = kNoNode;
    NodeId initiator = kNoNode;
    IpAddress candidate{};
    std::uint32_t awaiting = 0;
    bool vetoed = false;
    std::uint64_t base_hops = 0;
    std::uint64_t max_reply_hops = 0;
    std::uint32_t attempt = 0;
  };

  NodeState& node(NodeId id);
  bool alive(NodeId id) const { return nodes_.count(id) != 0; }
  std::optional<NodeId> nearest_configured(NodeId id) const;
  void bootstrap(NodeId id);
  void initiate(NodeId initiator, NodeId requestor, std::uint64_t hops,
                std::uint32_t attempt);
  void conclude(std::uint64_t pending_id);

  ManetConfParams params_;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_pending_ = 1;
};

}  // namespace qip
