#include "baselines/buddy.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace qip {

BuddyProtocol::BuddyProtocol(Transport& transport, Rng& rng,
                             BuddyParams params)
    : AutoconfProtocol(transport, rng), params_(params) {}

BuddyProtocol::~BuddyProtocol() {
  sync_timer_.cancel();
  for (auto& [id, st] : nodes_) st.bootstrap_timer.cancel();
}

BuddyProtocol::NodeState& BuddyProtocol::node(NodeId id) {
  auto it = nodes_.find(id);
  QIP_ASSERT_MSG(it != nodes_.end(), "unknown node " << id);
  return it->second;
}

std::optional<IpAddress> BuddyProtocol::address_of(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.configured) return std::nullopt;
  return it->second.ip;
}

const AddressBlock& BuddyProtocol::block_of(NodeId id) const {
  auto it = nodes_.find(id);
  QIP_ASSERT(it != nodes_.end());
  return it->second.block;
}

std::optional<NodeId> BuddyProtocol::nearest_configured(NodeId id) const {
  // Fold over the cached BFS instead of materializing a distance map; the
  // minimum over (hops, node) pairs is order-independent.
  std::optional<std::pair<std::uint32_t, NodeId>> best;
  topology().for_each_reachable(id, [&](NodeId n, std::uint32_t d) {
    if (n == id) return;
    auto it = nodes_.find(n);
    if (it == nodes_.end() || !it->second.configured) return;
    // Prefer allocators that can still split (≥ 2 spare addresses).
    if (it->second.block.size() < 2) return;
    const std::pair<std::uint32_t, NodeId> cand{d, n};
    if (!best || cand < *best) best = cand;
  });
  if (!best) return std::nullopt;
  return best->second;
}

void BuddyProtocol::node_entered(NodeId id) {
  auto [it, fresh] = nodes_.try_emplace(id);
  if (!fresh) it->second = NodeState{};
  auto& rec = record_for(id);
  rec = ConfigRecord{};
  rec.requested_at = sim().now();

  auto alloc = nearest_configured(id);
  if (!alloc) {
    bootstrap(id);
    return;
  }
  // One request/assign exchange: the allocator splits its block in half and
  // hands the upper half over — no global coordination needed.
  transport().unicast(
      id, *alloc, Traffic::kConfiguration,
      [this, id](NodeId allocator, std::uint32_t d) {
        if (!alive(allocator) || !alive(id)) return;
        auto& a = node(allocator);
        if (!a.configured || a.block.size() < 2) {
          // Raced empty; requestor retries.
          sim().post(params_.retry_wait, [this, id] {
            if (alive(id) && !node(id).configured) node_entered(id);
          });
          return;
        }
        AddressBlock half = a.block.split_half();
        a.buddy = id;
        transport().unicast(
            allocator, id, Traffic::kConfiguration,
            [this, id, allocator, half, d,
             table = a.global_table](NodeId, std::uint32_t back) {
              if (!alive(id)) return;
              auto& st = node(id);
              if (st.configured) return;
              st.configured = true;
              st.block = half;
              st.ip = st.block.pop_lowest();
              st.buddy = allocator;
              st.global_table = table;
              st.global_table[id] = st.ip;
              auto& rec = record_for(id);
              rec.success = true;
              rec.address = st.ip;
              rec.latency_hops = std::uint64_t{d} + back;
              rec.attempts = 1;
              rec.completed_at = sim().now();
            });
      });
}

void BuddyProtocol::bootstrap(NodeId id) {
  auto& st = node(id);
  if (st.configured) return;
  if (nearest_configured(id)) {
    node_entered(id);
    return;
  }
  if (st.bootstrap_tries >= params_.max_r) {
    st.configured = true;
    st.block = AddressBlock::contiguous(params_.pool_base, params_.pool_size);
    st.ip = st.block.pop_lowest();
    st.global_table[id] = st.ip;
    auto& rec = record_for(id);
    rec.success = true;
    rec.address = st.ip;
    rec.latency_hops = params_.max_r;
    rec.attempts = params_.max_r;
    rec.completed_at = sim().now();
    return;
  }
  ++st.bootstrap_tries;
  transport().stats().record(Traffic::kConfiguration, 1);
  st.bootstrap_timer =
      sim().after(params_.retry_wait, [this, id] { bootstrap(id); });
}

// ---------------------------------------------------------------------------
// Periodic global synchronization — the protocol's defining cost ([2]).
// ---------------------------------------------------------------------------

void BuddyProtocol::start_sync() {
  if (sync_running_) return;
  sync_running_ = true;
  sync_timer_ = sim().after(params_.sync_interval, [this] {
    if (!sync_running_) return;
    sync_tick();
    sync_running_ = false;
    start_sync();
  });
}

void BuddyProtocol::stop_sync() {
  sync_running_ = false;
  sync_timer_.cancel();
}

void BuddyProtocol::sync_tick() {
  // Every configured node floods its view of the allocation table so that
  // all tables converge; one network-wide flood per node per period.
  std::vector<NodeId> configured;
  for (const auto& [id, st] : nodes_) {
    if (st.configured && topology().has_node(id)) configured.push_back(id);
  }
  for (NodeId id : configured) {
    transport().flood_component_view(
        id, Traffic::kMaintenance,
        [this, id](NodeId n, std::uint32_t) {
          if (!alive(n) || !alive(id)) return;
          auto& receiver = node(n);
          if (!receiver.configured) return;
          const auto& sender = node(id);
          for (const auto& [node_id, addr] : sender.global_table)
            receiver.global_table[node_id] = addr;
        });
  }
  // Buddy liveness: a node whose buddy became unreachable absorbs nothing
  // here (the block was the buddy's to lose) but announces the loss so
  // tables drop the entry — detection of address leaking via buddies ([2]).
  for (NodeId id : configured) {
    auto& st = node(id);
    if (st.buddy == kNoNode) continue;
    const bool gone = !alive(st.buddy) || !topology().has_node(st.buddy) ||
                      !topology().reachable(id, st.buddy);
    if (!gone) continue;
    const NodeId lost = st.buddy;
    st.buddy = kNoNode;
    transport().flood_component_view(
        id, Traffic::kReclamation, [this, lost](NodeId n, std::uint32_t) {
          if (!alive(n)) return;
          node(n).global_table.erase(lost);
        });
  }
}

// ---------------------------------------------------------------------------
// Departure
// ---------------------------------------------------------------------------

void BuddyProtocol::node_departing(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end() || !it->second.configured) return;
  auto& st = it->second;
  // Return block + address to the buddy (or nearest configured node when the
  // buddy is gone); the periodic sync spreads the news.
  NodeId target = st.buddy;
  if (target == kNoNode || !alive(target) || !topology().has_node(target) ||
      !topology().reachable(id, target)) {
    auto nearest = nearest_configured(id);
    if (!nearest) return;  // last node leaves; pool evaporates
    target = *nearest;
  }
  AddressBlock returned = st.block;
  if (!returned.contains(st.ip)) returned.insert(st.ip);
  transport().unicast(
      id, target, Traffic::kDeparture,
      [this, leaver = id, returned](NodeId t, std::uint32_t) {
        if (!alive(t)) return;
        auto& ts = node(t);
        ts.block.merge(returned.minus(ts.block));
        ts.global_table.erase(leaver);
        if (ts.buddy == leaver) ts.buddy = kNoNode;
      });
}

void BuddyProtocol::node_left(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  it->second.bootstrap_timer.cancel();
  nodes_.erase(it);
}

void BuddyProtocol::node_vanished(NodeId id) {
  // Abrupt: the block leaks until a buddy notices at the next sync round.
  node_left(id);
}

}  // namespace qip
