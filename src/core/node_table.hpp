// Slab-allocated per-node protocol state keyed by dense rank.
//
// The engine used to keep `std::map<NodeId, QipNodeState>`: every lookup a
// pointer chase down a red-black tree, every full scan (hello tick,
// location updates, merge scan — all O(n) per tick) hopping between
// heap-scattered tree nodes.  At metropolis scale (n >= 100k,
// docs/SCALE.md) that map walk dominates the maintenance path.
//
// NodeTable replaces it with three planes:
//
//   * a slot slab (std::deque, so references are stable across growth —
//     handlers hold `QipNodeState&` while sending) holding the states;
//   * a dense rank index: id -> slot as a direct vector lookup (driver ids
//     are sequential), making find()/contains() O(1) with one probe;
//   * a lazily sorted live-id list for deterministic ascending-id
//     iteration — exactly the order std::map gave, which figure outputs
//     and protocol scans observe, so the swap is behavior-invariant.
//
// Departed slots go on a free list and are recycled; their state is reset
// to a default-constructed QipNodeState immediately so container payloads
// (tables, replica copies) release at departure, not at slot reuse.
//
// Structural mutations (ensure/erase) during for_each/scan are not
// supported — the engine's scans only mutate the states themselves, never
// membership (arrivals and departures enter through the driver between
// events).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "core/qip_node.hpp"
#include "net/node_id.hpp"
#include "util/assert.hpp"

namespace qip {

class NodeTable {
 public:
  QipNodeState* find(NodeId id) {
    const std::uint32_t slot = slot_of(id);
    return slot == kNpos ? nullptr : &slab_[slot];
  }
  const QipNodeState* find(NodeId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot == kNpos ? nullptr : &slab_[slot];
  }

  bool contains(NodeId id) const { return slot_of(id) != kNpos; }
  std::size_t size() const { return live_; }

  QipNodeState& at(NodeId id) {
    QipNodeState* st = find(id);
    QIP_ASSERT_MSG(st != nullptr, "unknown node " << id);
    return *st;
  }
  const QipNodeState& at(NodeId id) const {
    const QipNodeState* st = find(id);
    QIP_ASSERT_MSG(st != nullptr, "unknown node " << id);
    return *st;
  }

  /// State for `id`, creating a fresh slot if absent.  Returns
  /// (state, created) — the try_emplace shape node_entered wants.
  std::pair<QipNodeState&, bool> ensure(NodeId id) {
    if (QipNodeState* st = find(id)) return {*st, false};
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
      slot_ids_.push_back(kNoNode);
    }
    slot_ids_[slot] = id;
    if (std::size_t{id} >= rank_.size()) {
      rank_.resize(std::size_t{id} + 1, kNpos);
    }
    rank_[id] = slot;
    iter_ids_.push_back(id);
    iter_dirty_ = true;
    ++live_;
    return {slab_[slot], true};
  }

  bool erase(NodeId id) {
    const std::uint32_t slot = slot_of(id);
    if (slot == kNpos) return false;
    slab_[slot] = QipNodeState{};  // release container payloads now
    slot_ids_[slot] = kNoNode;
    rank_[id] = kNpos;
    free_.push_back(slot);
    iter_dirty_ = true;  // lazy: the dead id filters out on the next sweep
    --live_;
    return true;
  }

  /// fn(id, state) for every node in ascending id order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    refresh_iter();
    for (NodeId id : iter_ids_) fn(id, slab_[rank_[id]]);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    refresh_iter();
    for (NodeId id : iter_ids_) fn(id, slab_[rank_[id]]);
  }

  /// Like for_each, but fn returns bool; true stops the scan (the
  /// one-boundary-per-tick merge scan's early return).
  template <typename Fn>
  void scan(Fn&& fn) const {
    refresh_iter();
    for (NodeId id : iter_ids_) {
      if (fn(id, slab_[rank_[id]])) return;
    }
  }

 private:
  static constexpr std::uint32_t kNpos =
      static_cast<std::uint32_t>(-1);

  std::uint32_t slot_of(NodeId id) const {
    if (std::size_t{id} >= rank_.size()) return kNpos;
    return rank_[id];
  }

  void refresh_iter() const {
    if (!iter_dirty_) return;
    // Drop departed ids (rank kNpos) and re-entry duplicates, then sort:
    // one O(m log m) pass per membership-change batch, amortized across
    // every scan until the next arrival/departure.
    std::sort(iter_ids_.begin(), iter_ids_.end());
    iter_ids_.erase(std::unique(iter_ids_.begin(), iter_ids_.end()),
                    iter_ids_.end());
    iter_ids_.erase(
        std::remove_if(iter_ids_.begin(), iter_ids_.end(),
                       [&](NodeId id) { return slot_of(id) == kNpos; }),
        iter_ids_.end());
    iter_dirty_ = false;
  }

  std::deque<QipNodeState> slab_;      // slot -> state (stable references)
  std::vector<NodeId> slot_ids_;       // slot -> id (kNoNode when free)
  std::vector<std::uint32_t> rank_;    // id -> slot (dense direct index)
  std::vector<std::uint32_t> free_;    // recyclable slots
  mutable std::vector<NodeId> iter_ids_;  // live ids, lazily sorted
  mutable bool iter_dirty_ = false;
  std::size_t live_ = 0;
};

}  // namespace qip
